//! Minimal complex arithmetic for the FFT paths.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A real number as a complex value.
    #[inline]
    pub const fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Complex {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication() {
        // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
        let p = Complex::new(1.0, 2.0) * Complex::new(3.0, 4.0);
        assert_eq!(p, Complex::new(-5.0, 10.0));
    }

    #[test]
    fn magnitude_and_conjugate() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sq(), 25.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert!((z * z.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn cis_unit_circle() {
        let q = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!((q.re).abs() < 1e-15);
        assert!((q.im - 1.0).abs() < 1e-15);
        assert!((Complex::cis(1.2).abs() - 1.0).abs() < 1e-15);
    }
}
