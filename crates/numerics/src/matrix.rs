//! A minimal row-major dense matrix.

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Swap two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (top, bot) = self.data.split_at_mut(hi * self.cols);
        top[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut bot[..self.cols]);
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn identity_matvec() {
        let i = Matrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matvec_known() {
        let m = Matrix::from_fn(2, 3, |r, c| (r + c) as f64);
        // [[0,1,2],[1,2,3]] * [1,1,1] = [3,6]
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 6.0]);
    }

    #[test]
    fn swap_rows() {
        let mut m = Matrix::from_fn(3, 3, |r, _| r as f64);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[2.0, 2.0, 2.0]);
        assert_eq!(m.row(2), &[0.0, 0.0, 0.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[1.0, 1.0, 1.0]);
    }
}
