//! Successive overrelaxation (the SOR kernel's local computation).
//!
//! "In each step, each element of an N×N matrix computes its next value as
//! a function of its neighboring elements" (§3.1). We use the 5-point
//! Jacobi-style update with an overrelaxation factor ω, formulated so a
//! block of rows can be updated given halo rows above and below — exactly
//! what the distributed kernel exchanges with its neighbors.

/// One weighted-Jacobi/SOR sweep over the row block `rows` (each of width
/// `n`), using `above` and `below` as halo rows (`None` ⇒ physical
/// boundary, held fixed). Returns the updated block.
pub fn sor_sweep_block(
    rows: &[Vec<f64>],
    above: Option<&[f64]>,
    below: Option<&[f64]>,
    omega: f64,
) -> Vec<Vec<f64>> {
    let m = rows.len();
    let n = rows[0].len();
    let mut out = rows.to_vec();
    for i in 0..m {
        let up: Option<&[f64]> = if i == 0 { above } else { Some(&rows[i - 1]) };
        let down: Option<&[f64]> = if i + 1 == m {
            below
        } else {
            Some(&rows[i + 1])
        };
        // Boundary rows of the global domain are fixed.
        let (up, down) = match (up, down) {
            (Some(u), Some(d)) => (u, d),
            _ => continue,
        };
        let row = &rows[i];
        let o = &mut out[i];
        for j in 1..n - 1 {
            let neighbors = up[j] + down[j] + row[j - 1] + row[j + 1];
            o[j] = row[j] + omega * 0.25 * (neighbors - 4.0 * row[j]);
        }
    }
    out
}

/// Sequential reference: sweep the whole `n × n` grid `steps` times with
/// fixed boundary values.
pub fn sor_reference(grid: &mut [Vec<f64>], omega: f64, steps: usize) {
    for _ in 0..steps {
        let interior = sor_sweep_block(
            &grid[1..grid.len() - 1],
            Some(&grid[0].clone()),
            Some(&grid[grid.len() - 1].clone()),
            omega,
        );
        let len = grid.len();
        grid[1..len - 1].clone_from_slice(&interior);
    }
}

/// Approximate flops per updated interior point (adds + multiplies of the
/// 5-point stencil), for the compute cost model.
pub const SOR_FLOPS_PER_POINT: u64 = 7;

/// Residual of the Laplace equation over the interior: max |Δu|.
pub fn laplace_residual(grid: &[Vec<f64>]) -> f64 {
    let mut worst: f64 = 0.0;
    for i in 1..grid.len() - 1 {
        for j in 1..grid[0].len() - 1 {
            let lap = grid[i - 1][j] + grid[i + 1][j] + grid[i][j - 1] + grid[i][j + 1]
                - 4.0 * grid[i][j];
            worst = worst.max(lap.abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_top_grid(n: usize) -> Vec<Vec<f64>> {
        let mut g = vec![vec![0.0; n]; n];
        for v in g[0].iter_mut() {
            *v = 100.0;
        }
        g
    }

    #[test]
    fn converges_toward_laplace_solution() {
        let mut g = hot_top_grid(16);
        let before = laplace_residual(&g);
        sor_reference(&mut g, 1.0, 400);
        let after = laplace_residual(&g);
        assert!(after < before * 0.01, "residual {before} -> {after}");
    }

    #[test]
    fn fixed_point_is_preserved() {
        // A linear-in-i field is harmonic: one sweep must not change it.
        let n = 8;
        let g: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64; n]).collect();
        let out = sor_sweep_block(&g[1..n - 1], Some(&g[0]), Some(&g[n - 1]), 1.5);
        for (i, row) in out.iter().enumerate() {
            for (j, v) in row.iter().enumerate().take(n - 1).skip(1) {
                assert!(
                    (v - (i + 1) as f64).abs() < 1e-12,
                    "changed at ({i},{j}): {v}"
                );
            }
        }
    }

    #[test]
    fn block_decomposition_matches_reference() {
        // Sweeping the interior as two blocks with exchanged halos must
        // equal sweeping it as one block.
        let n = 12;
        let mut g = hot_top_grid(n);
        for (i, row) in g.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v += ((i * 7 + j * 13) % 5) as f64;
            }
        }
        let whole = sor_sweep_block(&g[1..n - 1], Some(&g[0]), Some(&g[n - 1]), 0.9);
        let mid = 1 + (n - 2) / 2;
        let top = sor_sweep_block(&g[1..mid], Some(&g[0]), Some(&g[mid]), 0.9);
        let bot = sor_sweep_block(&g[mid..n - 1], Some(&g[mid - 1]), Some(&g[n - 1]), 0.9);
        let stitched: Vec<Vec<f64>> = top.into_iter().chain(bot).collect();
        assert_eq!(whole.len(), stitched.len());
        for (a, b) in whole.iter().zip(&stitched) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn omega_zero_is_identity() {
        let g = hot_top_grid(6);
        let out = sor_sweep_block(&g[1..5], Some(&g[0]), Some(&g[5]), 0.0);
        assert_eq!(out, g[1..5].to_vec());
    }
}
