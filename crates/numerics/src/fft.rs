//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! Used in two roles: as the *workload* of the 2DFFT and T2DFFT kernels
//! (local row/column FFTs over distributed matrices), and as the *analysis
//! tool* computing the power spectra of Figures 7 and 11.

use crate::complex::Complex;

/// In-place forward FFT. Length must be a power of two.
pub fn fft(x: &mut [Complex]) {
    transform(x, false);
}

/// In-place inverse FFT (including the 1/N normalization).
pub fn ifft(x: &mut [Complex]) {
    transform(x, true);
    let scale = 1.0 / x.len() as f64;
    for v in x.iter_mut() {
        *v = v.scale(scale);
    }
}

/// `|FFT(x)|²` for a real-valued signal, returning only the first half of
/// the spectrum (DC through Nyquist inclusive). This is the periodogram
/// core used by the trace analysis.
pub fn fft_magnitude_squared(signal: &[f64]) -> Vec<f64> {
    let n = signal.len().next_power_of_two();
    let mut buf = vec![Complex::ZERO; n];
    for (b, &s) in buf.iter_mut().zip(signal) {
        *b = Complex::real(s);
    }
    fft(&mut buf);
    buf[..n / 2 + 1].iter().map(|z| z.norm_sq()).collect()
}

fn transform(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            x.swap(i, j);
        }
    }
    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = x[start + k];
                let v = x[start + k + len / 2] * w;
                x[start + k] = u + v;
                x[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Approximate floating-point operation count of one length-`n` FFT
/// (the standard `5 n log2 n` figure), used by the compute cost model.
pub fn fft_flops(n: usize) -> u64 {
    let n = n as u64;
    5 * n * (63 - n.leading_zeros() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc += v * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let want = naive_dft(&x);
        let mut got = x.clone();
        fft(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!(close(*g, *w, 1e-9), "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        fft(&mut x);
        for z in &x {
            assert!(close(*z, Complex::ONE, 1e-12));
        }
    }

    #[test]
    fn pure_tone_has_single_bin() {
        let n = 256;
        let k0 = 17;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let p = fft_magnitude_squared(&signal);
        let peak = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k0);
        // Energy concentrated in that bin.
        let total: f64 = p.iter().sum();
        assert!(p[k0] / total > 0.9);
    }

    #[test]
    fn degenerate_lengths() {
        let mut empty: Vec<Complex> = vec![];
        fft(&mut empty);
        let mut one = vec![Complex::new(2.0, 3.0)];
        fft(&mut one);
        assert_eq!(one[0], Complex::new(2.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut x = vec![Complex::ZERO; 12];
        fft(&mut x);
    }

    #[test]
    fn flops_estimate() {
        assert_eq!(fft_flops(512), 5 * 512 * 9);
    }

    proptest! {
        #[test]
        fn round_trip(vals in prop::collection::vec(-100.0f64..100.0, 1..6)) {
            // Build a power-of-two signal from the values.
            let n = vals.len().next_power_of_two() * 8;
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new(vals[i % vals.len()] * (i as f64 * 0.1).sin(), 0.0))
                .collect();
            let mut y = x.clone();
            fft(&mut y);
            ifft(&mut y);
            for (a, b) in x.iter().zip(&y) {
                prop_assert!(close(*a, *b, 1e-9));
            }
        }

        #[test]
        fn parseval(vals in prop::collection::vec(-10.0f64..10.0, 8..64)) {
            let n = vals.len().next_power_of_two();
            let mut x = vec![Complex::ZERO; n];
            for (xi, &v) in x.iter_mut().zip(&vals) {
                *xi = Complex::real(v);
            }
            let time_energy: f64 = x.iter().map(|z| z.norm_sq()).sum();
            fft(&mut x);
            let freq_energy: f64 = x.iter().map(|z| z.norm_sq()).sum::<f64>() / n as f64;
            prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
        }

        #[test]
        fn linearity(scale in -5.0f64..5.0) {
            let x: Vec<Complex> = (0..32).map(|i| Complex::new((i as f64).cos(), 0.0)).collect();
            let mut fx = x.clone();
            fft(&mut fx);
            let mut sx: Vec<Complex> = x.iter().map(|z| z.scale(scale)).collect();
            fft(&mut sx);
            for (a, b) in fx.iter().zip(&sx) {
                prop_assert!(close(a.scale(scale), *b, 1e-8));
            }
        }
    }
}
