//! # fxnet-numerics
//!
//! The dense-matrix numerics the measured Fx programs actually perform,
//! implemented from scratch:
//!
//! * [`Complex`] and an iterative radix-2 [`fft`] — used both by the
//!   2DFFT/T2DFFT kernels and by the trace analysis (the periodogram of
//!   the instantaneous bandwidth is `|FFT|²`).
//! * [`sor`] — the 5-point successive-overrelaxation stencil.
//! * [`hist`] — local histograms and the tree-merge operator.
//! * [`linalg`] — dense LU factorization with partial pivoting plus
//!   triangular backsolves, the direct solver AIRSHED's horizontal
//!   transport applies per layer and species.
//! * [`Matrix`] — a minimal row-major dense matrix.
//!
//! The SPMD applications in `fxnet-apps` run these kernels *for real* on
//! their block-distributed data and exchange actual bytes through the
//! simulated network; integration tests check their results against the
//! sequential references here.

//! ```
//! use fxnet_numerics::{fft, ifft, Complex};
//!
//! let mut x: Vec<Complex> = (0..8).map(|i| Complex::real(i as f64)).collect();
//! let orig = x.clone();
//! fft(&mut x);
//! ifft(&mut x);
//! for (a, b) in x.iter().zip(&orig) {
//!     assert!((*a - *b).abs() < 1e-12);
//! }
//! ```

pub mod complex;
pub mod fft;
pub mod hist;
pub mod linalg;
pub mod matrix;
pub mod sor;

pub use complex::Complex;
pub use fft::{fft, fft_magnitude_squared, ifft};
pub use matrix::Matrix;
