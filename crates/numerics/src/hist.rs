//! Histogram computation and the tree-merge operator (the HIST kernel).

/// Compute the histogram of `values` over `bins` equal-width bins spanning
/// `[lo, hi)`. Values outside the range clamp to the end bins, as image
/// histogramming does.
pub fn local_histogram(values: &[f64], bins: usize, lo: f64, hi: f64) -> Vec<u32> {
    assert!(bins > 0 && hi > lo);
    let mut h = vec![0u32; bins];
    let scale = bins as f64 / (hi - lo);
    for &v in values {
        let idx = ((v - lo) * scale).floor();
        let idx = (idx.max(0.0) as usize).min(bins - 1);
        h[idx] += 1;
    }
    h
}

/// Merge `other` into `acc` (the tree-reduction combine step).
pub fn merge_histograms(acc: &mut [u32], other: &[u32]) {
    assert_eq!(acc.len(), other.len());
    for (a, b) in acc.iter_mut().zip(other) {
        *a += b;
    }
}

/// Approximate scalar operations per histogrammed point, for the cost model.
pub const HIST_OPS_PER_POINT: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_land_in_correct_bins() {
        let h = local_histogram(&[0.0, 0.5, 1.5, 2.5, 2.9], 3, 0.0, 3.0);
        assert_eq!(h, vec![2, 1, 2]);
    }

    #[test]
    fn out_of_range_clamps() {
        let h = local_histogram(&[-5.0, 10.0], 4, 0.0, 1.0);
        assert_eq!(h, vec![1, 0, 0, 1]);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = vec![1, 2, 3];
        merge_histograms(&mut a, &[10, 20, 30]);
        assert_eq!(a, vec![11, 22, 33]);
    }

    proptest! {
        #[test]
        fn total_count_preserved(vals in prop::collection::vec(-100.0f64..100.0, 0..500)) {
            let h = local_histogram(&vals, 16, -50.0, 50.0);
            prop_assert_eq!(h.iter().sum::<u32>() as usize, vals.len());
        }

        #[test]
        fn merge_equals_concatenated_histogram(
            a in prop::collection::vec(0.0f64..10.0, 0..200),
            b in prop::collection::vec(0.0f64..10.0, 0..200),
        ) {
            let mut ha = local_histogram(&a, 8, 0.0, 10.0);
            let hb = local_histogram(&b, 8, 0.0, 10.0);
            merge_histograms(&mut ha, &hb);
            let mut both = a.clone();
            both.extend_from_slice(&b);
            prop_assert_eq!(ha, local_histogram(&both, 8, 0.0, 10.0));
        }
    }
}
