//! Dense LU factorization and triangular solves.
//!
//! AIRSHED's horizontal-transport phase assembles and factors one finite
//! element stiffness matrix per atmospheric layer once per simulated hour,
//! then performs `l × s` backsolves per transport phase (one per layer and
//! species). This module provides that direct solver.

use crate::matrix::Matrix;

/// An LU factorization with partial pivoting: `P·A = L·U`, stored packed
/// in a single matrix plus a pivot vector.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    pivots: Vec<usize>,
}

/// Error returned when the matrix is singular to working precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Singular;

impl Lu {
    /// Factor `a` (consumed). O(n³/3) flops.
    pub fn factor(mut a: Matrix) -> Result<Lu, Singular> {
        let n = a.rows();
        assert_eq!(n, a.cols(), "LU requires a square matrix");
        let mut pivots = Vec::with_capacity(n);
        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut p = k;
            let mut best = a[(k, k)].abs();
            for r in k + 1..n {
                let v = a[(r, k)].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < f64::EPSILON * 16.0 {
                return Err(Singular);
            }
            a.swap_rows(k, p);
            pivots.push(p);
            let inv = 1.0 / a[(k, k)];
            for r in k + 1..n {
                let m = a[(r, k)] * inv;
                a[(r, k)] = m;
                for c in k + 1..n {
                    a[(r, c)] -= m * a[(k, c)];
                }
            }
        }
        Ok(Lu { lu: a, pivots })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b` in place. O(n²) flops — this is the per-species
    /// backsolve AIRSHED repeats.
    pub fn solve(&self, b: &mut [f64]) {
        let n = self.n();
        assert_eq!(b.len(), n);
        // Apply the row permutation.
        for (k, &p) in self.pivots.iter().enumerate() {
            b.swap(k, p);
        }
        // Forward substitution with unit-diagonal L.
        for r in 1..n {
            let mut acc = b[r];
            for (c, &bc) in b.iter().enumerate().take(r) {
                acc -= self.lu[(r, c)] * bc;
            }
            b[r] = acc;
        }
        // Back substitution with U.
        for r in (0..n).rev() {
            let mut acc = b[r];
            for (c, &bc) in b.iter().enumerate().skip(r + 1) {
                acc -= self.lu[(r, c)] * bc;
            }
            b[r] = acc / self.lu[(r, r)];
        }
    }

    /// Approximate flop count of one `solve`.
    pub fn solve_flops(&self) -> u64 {
        2 * (self.n() as u64).pow(2)
    }

    /// Approximate flop count of one `factor` of size `n`.
    pub fn factor_flops(n: usize) -> u64 {
        2 * (n as u64).pow(3) / 3
    }
}

/// Assemble a 1-D Poisson-like stiffness matrix of dimension `n` with
/// wrap-around coupling scaled by `coupling`, a stand-in for AIRSHED's
/// per-layer finite element stiffness matrix (diagonally dominant, hence
/// always factorable).
pub fn stiffness_matrix(n: usize, coupling: f64) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        if r == c {
            2.0 + coupling.abs() * 2.0
        } else if r + 1 == c || c + 1 == r || (r == 0 && c == n - 1) || (c == 0 && r == n - 1) {
            -coupling
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_known_system() {
        // [[2,1],[1,3]] x = [3,5] → x = [0.8, 1.4]
        let a = Matrix::from_fn(2, 2, |r, c| [[2.0, 1.0], [1.0, 3.0]][r][c]);
        let lu = Lu::factor(a).unwrap();
        let mut b = vec![3.0, 5.0];
        lu.solve(&mut b);
        assert!((b[0] - 0.8).abs() < 1e-12);
        assert!((b[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn identity_solve_is_identity() {
        let lu = Lu::factor(Matrix::identity(5)).unwrap();
        let mut b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        lu.solve(&mut b);
        assert_eq!(b, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Without pivoting this matrix fails at k=0.
        let a = Matrix::from_fn(2, 2, |r, c| [[0.0, 1.0], [1.0, 0.0]][r][c]);
        let lu = Lu::factor(a).unwrap();
        let mut b = vec![7.0, 9.0];
        lu.solve(&mut b);
        // x = [9, 7]
        assert!((b[0] - 9.0).abs() < 1e-12);
        assert!((b[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_fn(3, 3, |_, c| c as f64); // rank 1
        assert!(Lu::factor(a).is_err());
    }

    #[test]
    fn stiffness_is_factorable_and_symmetric() {
        let m = stiffness_matrix(32, 0.9);
        for r in 0..32 {
            for c in 0..32 {
                assert_eq!(m[(r, c)], m[(c, r)]);
            }
        }
        assert!(Lu::factor(m).is_ok());
    }

    proptest! {
        #[test]
        fn solves_random_diagonally_dominant_systems(
            n in 2usize..24,
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
            for i in 0..n {
                let rowsum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
                a[(i, i)] = rowsum + 1.0; // enforce strict dominance
            }
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let mut b = a.matvec(&x_true);
            let lu = Lu::factor(a).unwrap();
            lu.solve(&mut b);
            for (got, want) in b.iter().zip(&x_true) {
                prop_assert!((got - want).abs() < 1e-8, "{got} vs {want}");
            }
        }
    }
}
