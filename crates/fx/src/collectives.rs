//! Collective communication phases over a [`RankCtx`].
//!
//! The Fx compiler emits communication phases as whole collectives; these
//! helpers run one complete pattern (Figure 1) as a phase, using the same
//! schedules as [`crate::Pattern`], so user programs written against this
//! runtime produce the same wire behaviour as the measured kernels.
//!
//! All collectives are synchronous with respect to the data (every rank
//! returns with the bytes it is owed) but sends are buffered, so the
//! schedules are deadlock-free on any rank count.

use crate::engine::RankCtx;
use crate::pattern::Pattern;
use fxnet_pvm::{Message, MessageBuilder, OutMessage};

fn msg(tag: i32, payload: &[u8]) -> OutMessage {
    let mut b = MessageBuilder::new(tag);
    b.pack_bytes(payload);
    b.finish()
}

/// Neighbor exchange (SOR's phase): send `up`/`down` to ranks `me−1` /
/// `me+1` and return what they sent back, `(from_above, from_below)`.
/// Ends of the chain exchange on one side only.
pub fn neighbor_exchange(
    ctx: &mut RankCtx,
    tag: i32,
    up: &[u8],
    down: &[u8],
) -> (Option<Vec<u8>>, Option<Vec<u8>>) {
    ctx.phase("neighbor_exchange", |ctx| {
        let me = ctx.rank();
        let np = ctx.nprocs();
        if me > 0 {
            ctx.send(me - 1, msg(tag, up));
        }
        if me + 1 < np {
            ctx.send(me + 1, msg(tag, down));
        }
        let above = (me > 0).then(|| {
            let m = ctx.recv(me - 1);
            m.body.to_vec()
        });
        let below = (me + 1 < np).then(|| {
            let m = ctx.recv(me + 1);
            m.body.to_vec()
        });
        (above, below)
    })
}

/// All-to-all (the distribution transpose): `blocks[d]` goes to rank `d`
/// (`blocks[me]` stays local); returns the blocks received, indexed by
/// source rank. Uses the shift schedule: round `r` sends to `(me+r) mod P`
/// and receives from `(me−r) mod P`, tightly synchronizing the ranks.
pub fn all_to_all(ctx: &mut RankCtx, tag: i32, blocks: &[Vec<u8>]) -> Vec<Vec<u8>> {
    ctx.phase("all_to_all", |ctx| {
        let me = ctx.rank() as usize;
        let np = ctx.nprocs() as usize;
        assert_eq!(blocks.len(), np, "one block per destination rank");
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); np];
        out[me] = blocks[me].clone();
        for r in 1..np {
            let dst = (me + r) % np;
            let src = (me + np - r) % np;
            ctx.send(dst as u32, msg(tag, &blocks[dst]));
            let m = ctx.recv(src as u32);
            out[src] = m.body.to_vec();
        }
        out
    })
}

/// Broadcast from `root` (SEQ's pattern, message-granular): the root's
/// `payload` is returned on every rank.
pub fn broadcast(ctx: &mut RankCtx, tag: i32, root: u32, payload: &[u8]) -> Vec<u8> {
    ctx.phase("broadcast", |ctx| {
        let me = ctx.rank();
        let np = ctx.nprocs();
        if me == root {
            for d in 0..np {
                if d != root {
                    ctx.send(d, msg(tag, payload));
                }
            }
            payload.to_vec()
        } else {
            ctx.recv(root).body.to_vec()
        }
    })
}

/// Tree reduction to rank 0 (HIST's up-sweep): combine message bodies
/// pairwise with `combine`; returns `Some(total)` on rank 0, `None`
/// elsewhere. Works for any rank count.
pub fn reduce_tree(
    ctx: &mut RankCtx,
    tag: i32,
    mine: Vec<u8>,
    mut combine: impl FnMut(Vec<u8>, &Message) -> Vec<u8>,
) -> Option<Vec<u8>> {
    ctx.phase("reduce_tree", |ctx| {
        let me = ctx.rank();
        let np = ctx.nprocs();
        let mut acc = mine;
        for round in Pattern::TreeUp.schedule(np) {
            for (src, dst) in round {
                if src == me {
                    ctx.send(dst, msg(tag, &acc));
                } else if dst == me {
                    let m = ctx.recv(src);
                    acc = combine(acc, &m);
                }
            }
        }
        (me == 0).then_some(acc)
    })
}

/// Scatter from `root`: rank `d` receives `blocks[d]`; the root keeps its
/// own block locally (the distribution step of an Fx array assignment).
/// `blocks` is only read on the root.
pub fn scatter(ctx: &mut RankCtx, tag: i32, root: u32, blocks: &[Vec<u8>]) -> Vec<u8> {
    ctx.phase("scatter", |ctx| {
        let me = ctx.rank();
        let np = ctx.nprocs();
        if me == root {
            assert_eq!(blocks.len(), np as usize, "one block per rank");
            for d in 0..np {
                if d != root {
                    ctx.send(d, msg(tag, &blocks[d as usize]));
                }
            }
            blocks[root as usize].clone()
        } else {
            ctx.recv(root).body.to_vec()
        }
    })
}

/// Gather to `root`: returns `Some(blocks)` (indexed by source rank) on
/// the root, `None` elsewhere — the inverse of [`scatter`], e.g. for
/// collecting a distributed result for output.
pub fn gather(ctx: &mut RankCtx, tag: i32, root: u32, mine: &[u8]) -> Option<Vec<Vec<u8>>> {
    ctx.phase("gather", |ctx| {
        let me = ctx.rank();
        let np = ctx.nprocs();
        if me == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); np as usize];
            out[root as usize] = mine.to_vec();
            for s in 0..np {
                if s != root {
                    out[s as usize] = ctx.recv(s).body.to_vec();
                }
            }
            Some(out)
        } else {
            ctx.send(root, msg(tag, mine));
            None
        }
    })
}

/// Shift: send `payload` to `(me+k) mod P`, return what arrives from
/// `(me−k) mod P` (§7.3's example pattern).
pub fn shift(ctx: &mut RankCtx, tag: i32, k: u32, payload: &[u8]) -> Vec<u8> {
    ctx.phase("shift", |ctx| {
        let me = ctx.rank();
        let np = ctx.nprocs();
        assert!(
            !k.is_multiple_of(np),
            "shift by a multiple of P is a self-send"
        );
        ctx.send((me + k) % np, msg(tag, payload));
        ctx.recv((me + np - k % np) % np).body.to_vec()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, GroupSpec, RunOptions, RunResult, SpmdConfig};

    fn cfg(p: u32) -> SpmdConfig {
        let mut c = SpmdConfig {
            p,
            hosts: p,
            ..SpmdConfig::default()
        };
        c.pvm.heartbeat = None;
        c
    }

    fn run_spmd<T: Send + 'static>(
        cfg: SpmdConfig,
        f: impl Fn(&mut RankCtx) -> T + Send + Sync + 'static,
    ) -> RunResult<T> {
        let p = cfg.p;
        run(cfg, vec![GroupSpec::single(p, f)], RunOptions::default())
            .expect("valid config")
            .into_single()
    }

    #[test]
    fn neighbor_exchange_swaps_edges() {
        let res = run_spmd(cfg(4), |ctx| {
            let me = ctx.rank() as u8;
            let (above, below) = neighbor_exchange(ctx, 0, &[me, 1], &[me, 2]);
            (above, below)
        });
        // Rank 1 receives rank 0's "down" edge and rank 2's "up" edge.
        assert_eq!(res.results[1].0, Some(vec![0, 2]));
        assert_eq!(res.results[1].1, Some(vec![2, 1]));
        // Chain ends see one side only.
        assert_eq!(res.results[0].0, None);
        assert_eq!(res.results[3].1, None);
    }

    #[test]
    fn all_to_all_routes_every_block() {
        let res = run_spmd(cfg(4), |ctx| {
            let me = ctx.rank() as u8;
            let blocks: Vec<Vec<u8>> = (0..4).map(|d| vec![me, d as u8]).collect();
            all_to_all(ctx, 7, &blocks)
        });
        for (me, got) in res.results.iter().enumerate() {
            for (src, block) in got.iter().enumerate() {
                assert_eq!(block, &vec![src as u8, me as u8], "rank {me} from {src}");
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let res = run_spmd(cfg(5), |ctx| broadcast(ctx, 1, 2, &[9, 8, 7]));
        for r in &res.results {
            assert_eq!(r, &vec![9, 8, 7]);
        }
    }

    #[test]
    fn reduce_tree_sums_on_root() {
        let res = run_spmd(cfg(6), |ctx| {
            let mine = vec![ctx.rank() as u8];
            reduce_tree(ctx, 3, mine, |mut acc, m| {
                acc[0] += m.body[0];
                acc
            })
        });
        assert_eq!(res.results[0], Some(vec![1 + 2 + 3 + 4 + 5]));
        for r in &res.results[1..] {
            assert!(r.is_none());
        }
    }

    #[test]
    fn shift_rotates_payloads() {
        let res = run_spmd(cfg(4), |ctx| shift(ctx, 0, 1, &[ctx.rank() as u8]));
        for (me, got) in res.results.iter().enumerate() {
            assert_eq!(got, &vec![((me + 3) % 4) as u8]);
        }
    }

    #[test]
    fn scatter_distributes_root_blocks() {
        let res = run_spmd(cfg(4), |ctx| {
            let blocks: Vec<Vec<u8>> = (0..4).map(|d| vec![d as u8 * 10]).collect();
            scatter(ctx, 4, 1, &blocks)
        });
        for (me, got) in res.results.iter().enumerate() {
            assert_eq!(got, &vec![me as u8 * 10]);
        }
    }

    #[test]
    fn gather_collects_on_root_only() {
        let res = run_spmd(cfg(4), |ctx| {
            let mine = vec![ctx.rank() as u8 + 100];
            gather(ctx, 5, 2, &mine)
        });
        let collected = res.results[2].as_ref().expect("root has the blocks");
        for (s, b) in collected.iter().enumerate() {
            assert_eq!(b, &vec![s as u8 + 100]);
        }
        assert!(res.results[0].is_none());
        assert!(res.results[3].is_none());
    }

    #[test]
    fn scatter_gather_round_trip() {
        let res = run_spmd(cfg(3), |ctx| {
            let blocks: Vec<Vec<u8>> = (0..3).map(|d| vec![d as u8; 64]).collect();
            let mine = scatter(ctx, 1, 0, &blocks);
            gather(ctx, 2, 0, &mine)
        });
        let back = res.results[0].as_ref().expect("root");
        for (d, b) in back.iter().enumerate() {
            assert_eq!(b, &vec![d as u8; 64]);
        }
    }

    #[test]
    fn collectives_compose_into_a_phase_program() {
        // Exchange, reduce, broadcast back: every rank ends with the sum.
        let res = run_spmd(cfg(4), |ctx| {
            let mine = vec![ctx.rank() as u8 + 1];
            let total = reduce_tree(ctx, 1, mine, |mut acc, m| {
                acc[0] += m.body[0];
                acc
            });
            let out = broadcast(ctx, 2, 0, &total.unwrap_or_default());
            out[0]
        });
        assert!(res.results.iter().all(|&v| v == 10));
    }
}
