//! # fxnet-fx
//!
//! An Fx-style SPMD run-time (paper §2) over the simulated PVM system.
//!
//! The Fx compiler parallelizes dense-matrix HPF programs into the Single
//! Program, Multiple Data model: every processor runs the same program on
//! processor-local data, alternating *local computation phases* with
//! *global communication phases*. This crate provides:
//!
//! * [`Pattern`] — the five collective communication patterns of the
//!   paper's Figure 1 (neighbor, all-to-all, partition, broadcast, tree)
//!   plus the shift pattern of §7.3, each with its explicit round
//!   schedule (all-to-all uses the shift schedule the paper mentions).
//! * [`BlockDist`] — the block row/column distribution arithmetic.
//! * [`CostModel`] — maps operation counts of the *real* local
//!   computations to simulated compute-phase durations on a 133 MHz
//!   Alpha 21064-class workstation (the single calibration knob of
//!   DESIGN.md §5), plus messaging software overheads including the
//!   message-assembly "copy loop" the paper describes.
//! * [`run`] — a deterministic process-oriented engine: each rank runs
//!   as a real OS thread executing straight-line SPMD code (`compute` /
//!   `send` / `recv` / `barrier` on a [`RankCtx`]), while a conservative
//!   sequencer on the calling thread interleaves rank progress with the
//!   network simulation in global simulated-time order. Two runs with
//!   the same seed produce byte-identical packet traces, and per-run
//!   state is fully owned, so independent runs may execute concurrently.
//!   One or many programs (tenants) per run; [`RunOptions`] carries the
//!   frame tap, telemetry, deschedule, and causal-capture hooks.
//! * Optional *deschedule injection* — reproducing the paper's
//!   observation that an OS descheduling a processor stalls the whole
//!   synchronous communication schedule and merges bursts.
//!
//! ```
//! use fxnet_fx::{run, GroupSpec, RunOptions, SpmdConfig};
//! use fxnet_pvm::MessageBuilder;
//!
//! let mut cfg = SpmdConfig { p: 2, hosts: 2, ..SpmdConfig::default() };
//! cfg.pvm.heartbeat = None;
//! let group = GroupSpec::single(2, |ctx| {
//!     if ctx.rank() == 0 {
//!         let mut b = MessageBuilder::new(0);
//!         b.pack_u32(&[99]);
//!         ctx.send(1, b.finish());
//!         0
//!     } else {
//!         ctx.recv(0).reader().u32s(1)[0]
//!     }
//! });
//! let result = run(cfg, vec![group], RunOptions::default())
//!     .expect("valid config")
//!     .into_single();
//! assert_eq!(result.results, vec![0, 99]);
//! assert!(!result.trace.is_empty()); // the exchange is on the wire
//! ```

pub mod collectives;
pub mod cost;
pub mod dist;
pub mod engine;
pub mod pattern;

pub use collectives::{
    all_to_all, broadcast, gather, neighbor_exchange, reduce_tree, scatter, shift,
};
pub use cost::CostModel;
pub use dist::BlockDist;
pub use engine::{
    run, run_single, AppOp, CausalRun, DescheduleConfig, GroupRunResult, GroupSpec, MultiRunResult,
    RankCtx, RunOptions, RunResult, SpmdConfig,
};
pub use fxnet_sim::{FxnetError, FxnetResult};
pub use pattern::Pattern;
