//! Block distribution arithmetic.
//!
//! Fx distributes the rows (or columns, or layers) of an `n`-element axis
//! across `p` processors by contiguous blocks: "processor 0 owns the first
//! N/P rows, processor 1 the next N/P rows, etc." (§3.1). Non-divisible
//! sizes give the leading ranks one extra element, as HPF BLOCK does.

/// A block distribution of `n` elements over `p` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDist {
    n: usize,
    p: usize,
}

impl BlockDist {
    /// Distribute `n` elements over `p` ranks.
    pub fn new(n: usize, p: usize) -> BlockDist {
        assert!(p >= 1);
        BlockDist { n, p }
    }

    /// Total element count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rank count.
    pub fn p(&self) -> usize {
        self.p
    }

    /// First global index owned by `rank`.
    pub fn lo(&self, rank: usize) -> usize {
        assert!(rank < self.p);
        let base = self.n / self.p;
        let extra = self.n % self.p;
        rank * base + rank.min(extra)
    }

    /// One past the last global index owned by `rank`.
    pub fn hi(&self, rank: usize) -> usize {
        if rank + 1 == self.p {
            self.n
        } else {
            self.lo(rank + 1)
        }
    }

    /// Number of elements owned by `rank`.
    pub fn size(&self, rank: usize) -> usize {
        self.hi(rank) - self.lo(rank)
    }

    /// The rank owning global index `i`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n);
        let base = self.n / self.p;
        let extra = self.n % self.p;
        let split = extra * (base + 1);
        if i < split {
            i / (base + 1)
        } else {
            extra + (i - split) / base
        }
    }

    /// Local index of global index `i` on its owner.
    pub fn local(&self, i: usize) -> usize {
        i - self.lo(self.owner(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_split() {
        let d = BlockDist::new(512, 4);
        assert_eq!(d.lo(0), 0);
        assert_eq!(d.hi(0), 128);
        assert_eq!(d.lo(3), 384);
        assert_eq!(d.hi(3), 512);
        assert!((0..4).all(|r| d.size(r) == 128));
        assert_eq!(d.owner(127), 0);
        assert_eq!(d.owner(128), 1);
        assert_eq!(d.local(130), 2);
    }

    #[test]
    fn uneven_split_gives_leading_ranks_extra() {
        let d = BlockDist::new(10, 3);
        assert_eq!((d.size(0), d.size(1), d.size(2)), (4, 3, 3));
        assert_eq!(d.lo(1), 4);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.owner(4), 1);
        assert_eq!(d.owner(9), 2);
    }

    #[test]
    fn single_rank_owns_everything() {
        let d = BlockDist::new(7, 1);
        assert_eq!(d.size(0), 7);
        assert_eq!(d.owner(6), 0);
    }

    proptest! {
        #[test]
        fn blocks_tile_the_axis(n in 0usize..2000, p in 1usize..33) {
            let d = BlockDist::new(n, p);
            let mut covered = 0;
            for r in 0..p {
                prop_assert_eq!(d.lo(r), covered);
                covered = d.hi(r);
                // Sizes differ by at most one.
                prop_assert!(d.size(r) + 1 >= n / p.max(1));
            }
            prop_assert_eq!(covered, n);
        }

        #[test]
        fn owner_and_local_are_consistent(n in 1usize..2000, p in 1usize..33, frac in 0.0f64..1.0) {
            let d = BlockDist::new(n, p);
            let i = ((n as f64 - 1.0) * frac) as usize;
            let r = d.owner(i);
            prop_assert!(d.lo(r) <= i && i < d.hi(r));
            prop_assert_eq!(d.local(i), i - d.lo(r));
        }
    }
}
