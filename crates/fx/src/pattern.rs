//! The collective communication patterns of Figure 1.
//!
//! A communication phase is classified by its pattern of message exchange.
//! Each pattern here yields an explicit *schedule*: a sequence of rounds,
//! each round a set of `(src, dst)` rank pairs that exchange in parallel.
//! The schedule determines both which connections carry traffic and how
//! tightly the pattern synchronizes the processors — load-bearing facts
//! for the per-connection analyses (§6.1) and the QoS model (§7).

/// A global collective communication pattern over `P` SPMD ranks.
///
/// The general case of §2 — "each processor sends to any arbitrary group
/// of the remaining processors" — is [`Pattern::many_to_many`]; the named
/// variants are the common special cases dense-matrix codes exhibit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Each rank exchanges with its lattice neighbors `p±1` (SOR).
    Neighbor,
    /// Every rank sends to every other rank, scheduled as `P−1` shift
    /// rounds (2DFFT's distribution transpose).
    AllToAll,
    /// Ranks split in half; each sender sends to every receiver
    /// (T2DFFT's pipeline hand-off).
    Partition,
    /// One root sends to every other rank (SEQ's sequential I/O).
    Broadcast { root: u32 },
    /// Up-sweep reduction: at step `i`, odd multiples of `2^i` send to the
    /// even multiples `2^i` below them (HIST's histogram merge).
    TreeUp,
    /// Down-sweep: the reverse of [`Pattern::TreeUp`].
    TreeDown,
    /// Each rank sends to the rank `k` ahead, mod `P` (§7.3's example).
    Shift { k: u32 },
    /// The general many-to-many case: an explicit round schedule.
    ManyToMany(std::sync::Arc<Vec<Vec<(u32, u32)>>>),
}

impl Pattern {
    /// Build the general many-to-many pattern from explicit rounds of
    /// `(src, dst)` pairs.
    pub fn many_to_many(rounds: Vec<Vec<(u32, u32)>>) -> Pattern {
        Pattern::ManyToMany(std::sync::Arc::new(rounds))
    }
}

impl Pattern {
    /// The round schedule for `p` ranks. Every inner `Vec` is one round of
    /// concurrent simplex transfers.
    pub fn schedule(&self, p: u32) -> Vec<Vec<(u32, u32)>> {
        assert!(p >= 1);
        match *self {
            Pattern::Neighbor => {
                let mut round = Vec::new();
                for i in 0..p {
                    if i + 1 < p {
                        round.push((i, i + 1));
                        round.push((i + 1, i));
                    }
                }
                vec![round]
            }
            Pattern::AllToAll => (1..p)
                .map(|r| (0..p).map(|i| (i, (i + r) % p)).collect())
                .collect(),
            Pattern::Partition => {
                let h = p / 2;
                if h == 0 {
                    return Vec::new();
                }
                (0..h)
                    .map(|r| (0..h).map(|i| (i, h + (i + r) % h)).collect())
                    .collect()
            }
            Pattern::Broadcast { root } => {
                assert!(root < p);
                vec![(0..p).filter(|&i| i != root).map(|i| (root, i)).collect()]
            }
            Pattern::TreeUp => {
                let mut rounds = Vec::new();
                let mut step = 1;
                while step < p {
                    let mut round = Vec::new();
                    let mut src = step;
                    while src < p {
                        round.push((src, src - step));
                        src += 2 * step;
                    }
                    rounds.push(round);
                    step *= 2;
                }
                rounds
            }
            Pattern::TreeDown => {
                let mut rounds = Pattern::TreeUp.schedule(p);
                rounds.reverse();
                for round in &mut rounds {
                    for pair in round.iter_mut() {
                        *pair = (pair.1, pair.0);
                    }
                }
                rounds
            }
            Pattern::Shift { k } => {
                if k % p == 0 {
                    // Degenerate: every rank would send to itself.
                    return Vec::new();
                }
                vec![(0..p).map(|i| (i, (i + k) % p)).collect()]
            }
            Pattern::ManyToMany(ref rounds) => {
                for round in rounds.iter() {
                    for &(s, d) in round {
                        assert!(s < p && d < p, "pair ({s},{d}) outside 0..{p}");
                        assert_ne!(s, d, "self-send in many-to-many schedule");
                    }
                }
                rounds.as_ref().clone()
            }
        }
    }

    /// Number of distinct simplex connections the pattern uses — the
    /// quantity §7.1 calls out: all-to-all uses `P(P−1)`, neighbor at most
    /// `2P`, an equal partition `P²/4`.
    pub fn connection_count(&self, p: u32) -> usize {
        let mut pairs: Vec<(u32, u32)> = self.schedule(p).into_iter().flatten().collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len()
    }

    /// Human-readable name matching Figure 2's table.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Neighbor => "neighbor",
            Pattern::AllToAll => "all-to-all",
            Pattern::Partition => "partition",
            Pattern::Broadcast { .. } => "broadcast",
            Pattern::TreeUp => "tree (up)",
            Pattern::TreeDown => "tree (down)",
            Pattern::Shift { .. } => "shift",
            Pattern::ManyToMany(_) => "many-to-many",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn neighbor_connection_count() {
        // 2(P−1) simplex connections.
        assert_eq!(Pattern::Neighbor.connection_count(4), 6);
        assert_eq!(Pattern::Neighbor.connection_count(8), 14);
    }

    #[test]
    fn all_to_all_covers_every_pair() {
        let p = 5;
        let mut seen = HashSet::new();
        for round in Pattern::AllToAll.schedule(p) {
            // Within a round no rank sends twice and no rank receives twice.
            let srcs: HashSet<u32> = round.iter().map(|&(s, _)| s).collect();
            let dsts: HashSet<u32> = round.iter().map(|&(_, d)| d).collect();
            assert_eq!(srcs.len(), round.len());
            assert_eq!(dsts.len(), round.len());
            seen.extend(round);
        }
        assert_eq!(seen.len(), (p * (p - 1)) as usize);
        assert_eq!(Pattern::AllToAll.connection_count(p), 20);
    }

    #[test]
    fn partition_is_p_squared_over_four() {
        assert_eq!(Pattern::Partition.connection_count(4), 4);
        assert_eq!(Pattern::Partition.connection_count(8), 16);
        for round in Pattern::Partition.schedule(8) {
            for (s, d) in round {
                assert!(s < 4 && d >= 4, "sender half to receiver half only");
            }
        }
    }

    #[test]
    fn broadcast_from_root() {
        let sched = Pattern::Broadcast { root: 2 }.schedule(4);
        assert_eq!(sched.len(), 1);
        let dsts: HashSet<u32> = sched[0].iter().map(|&(_, d)| d).collect();
        assert_eq!(dsts, HashSet::from([0, 1, 3]));
        assert!(sched[0].iter().all(|&(s, _)| s == 2));
    }

    #[test]
    fn tree_up_reduces_to_rank_zero() {
        // P = 8: steps (1,3,5,7)→(0,2,4,6), (2,6)→(0,4), (4)→(0).
        let sched = Pattern::TreeUp.schedule(8);
        assert_eq!(sched.len(), 3);
        assert_eq!(sched[0], vec![(1, 0), (3, 2), (5, 4), (7, 6)]);
        assert_eq!(sched[1], vec![(2, 0), (6, 4)]);
        assert_eq!(sched[2], vec![(4, 0)]);
    }

    #[test]
    fn tree_down_mirrors_tree_up() {
        let up = Pattern::TreeUp.schedule(8);
        let down = Pattern::TreeDown.schedule(8);
        assert_eq!(down.len(), up.len());
        assert_eq!(down[0], vec![(0, 4)]);
        assert_eq!(down[2], vec![(0, 1), (2, 3), (4, 5), (6, 7)]);
    }

    #[test]
    fn tree_handles_non_power_of_two() {
        let sched = Pattern::TreeUp.schedule(6);
        // Steps: (1,3,5)→(0,2,4), (2,6? no)→... step2: (2)→(0); step4: (4)→(0).
        assert_eq!(sched[0], vec![(1, 0), (3, 2), (5, 4)]);
        assert_eq!(sched[1], vec![(2, 0)]);
        assert_eq!(sched[2], vec![(4, 0)]);
    }

    #[test]
    fn shift_rotates() {
        let sched = Pattern::Shift { k: 1 }.schedule(4);
        assert_eq!(sched, vec![vec![(0, 1), (1, 2), (2, 3), (3, 0)]]);
    }

    #[test]
    fn many_to_many_takes_custom_rounds() {
        let pat = Pattern::many_to_many(vec![vec![(0, 3), (1, 2)], vec![(3, 0)]]);
        let sched = pat.schedule(4);
        assert_eq!(sched.len(), 2);
        assert_eq!(sched[0], vec![(0, 3), (1, 2)]);
        assert_eq!(pat.connection_count(4), 3);
        assert_eq!(pat.name(), "many-to-many");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn many_to_many_validates_rank_bounds() {
        let pat = Pattern::many_to_many(vec![vec![(0, 9)]]);
        let _ = pat.schedule(4);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn many_to_many_rejects_self_sends() {
        let pat = Pattern::many_to_many(vec![vec![(2, 2)]]);
        let _ = pat.schedule(4);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Pattern::AllToAll.name(), "all-to-all");
        assert_eq!(Pattern::Broadcast { root: 0 }.name(), "broadcast");
    }

    proptest! {
        #[test]
        fn no_self_sends_and_valid_ranks(p in 2u32..33) {
            for pat in [
                Pattern::Neighbor,
                Pattern::AllToAll,
                Pattern::Broadcast { root: p - 1 },
                Pattern::TreeUp,
                Pattern::TreeDown,
                Pattern::Shift { k: 1 },
            ] {
                for round in pat.schedule(p) {
                    for (s, d) in round {
                        prop_assert!(s != d, "{pat:?} self-send");
                        prop_assert!(s < p && d < p);
                    }
                }
            }
        }

        #[test]
        fn tree_up_message_count_is_p_minus_one(p in 2u32..65) {
            let total: usize = Pattern::TreeUp.schedule(p).iter().map(Vec::len).sum();
            prop_assert_eq!(total, (p - 1) as usize);
        }

        #[test]
        fn all_to_all_rounds_are_permutation_free(p in 2u32..17) {
            // Each rank appears exactly once as src and once as dst per round.
            for round in Pattern::AllToAll.schedule(p) {
                prop_assert_eq!(round.len(), p as usize);
            }
        }
    }
}
