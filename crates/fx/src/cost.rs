//! The compute-phase cost model.
//!
//! The applications run their numerics *for real*; what the simulator
//! needs is how long each local computation phase would have taken on the
//! paper's testbed — a DEC 3000/400 (Alpha 21064 at 133 MHz, 64 MB). The
//! model maps operation counts to simulated time with two rates:
//!
//! * `flops_per_sec` — effective sustained scalar floating-point rate for
//!   cache-resident dense kernels. The 21064 could issue one FP op per
//!   cycle in ideal code; compiled Fortran at `-O` on this workload class
//!   sustained single-digit MFLOP/s. This is the calibration knob of
//!   DESIGN.md §5: it is chosen so the 2DFFT aggregate fundamental lands
//!   near the paper's 0.5 Hz, and all other periodicities follow.
//! * `mem_bytes_per_sec` — streaming copy bandwidth, governing both the
//!   message-assembly "copy loop" (§4) and memory-bound sweeps.
//!
//! Software messaging overheads (`per_message`, `per_write`) model the
//! PVM library and socket syscall path.

use fxnet_pvm::OutMessage;
use fxnet_sim::SimTime;

/// Operation-count → simulated-duration model for one workstation.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Effective sustained FLOP/s for dense arithmetic.
    pub flops_per_sec: f64,
    /// Streaming memory bandwidth (bytes/s) for copies and memory-bound
    /// sweeps.
    pub mem_bytes_per_sec: f64,
    /// Fixed software cost per message sent or received (PVM call,
    /// buffer management, kernel crossing).
    pub per_message: SimTime,
    /// Cost per socket write (one per PVM fragment).
    pub per_write: SimTime,
}

impl Default for CostModel {
    /// The calibrated 133 MHz Alpha 21064 workstation model.
    fn default() -> Self {
        CostModel {
            flops_per_sec: 8.0e6,
            mem_bytes_per_sec: 25.0e6,
            per_message: SimTime::from_micros(120),
            per_write: SimTime::from_micros(45),
        }
    }
}

impl CostModel {
    /// Duration of `n` floating-point operations.
    pub fn flops(&self, n: u64) -> SimTime {
        SimTime::from_secs_f64(n as f64 / self.flops_per_sec)
    }

    /// Duration of moving `n` bytes through memory.
    pub fn mem(&self, n: u64) -> SimTime {
        SimTime::from_secs_f64(n as f64 / self.mem_bytes_per_sec)
    }

    /// Sender-side software time for a message.
    ///
    /// Copy-loop messages (single fragment) pay the assembly copy over the
    /// whole payload plus one write; multi-pack messages (T2DFFT) skip the
    /// copy but pay one write per fragment.
    pub fn send_overhead(&self, msg: &OutMessage) -> SimTime {
        let writes = SimTime(self.per_write.as_nanos() * msg.frags.len() as u64);
        if msg.frags.len() == 1 {
            self.per_message + writes + self.mem(msg.payload_len() as u64)
        } else {
            self.per_message + writes
        }
    }

    /// Receiver-side software time for a delivered message of `len`
    /// payload bytes (socket read plus unpack copy).
    pub fn recv_overhead(&self, len: usize) -> SimTime {
        self.per_message + self.mem(len as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_pvm::MessageBuilder;

    #[test]
    fn flops_duration() {
        let m = CostModel {
            flops_per_sec: 1e6,
            ..CostModel::default()
        };
        assert_eq!(m.flops(1_000_000), SimTime::from_secs(1));
        assert_eq!(m.flops(0), SimTime::ZERO);
    }

    #[test]
    fn copy_loop_message_pays_assembly_copy() {
        let m = CostModel::default();
        let mut b = MessageBuilder::new(0);
        b.pack_f64(&vec![0.0; 125_000]); // 1 MB
        let single = b.finish();
        let t = m.send_overhead(&single);
        // 1 MB at 25 MB/s = 40 ms, dominating the fixed costs.
        assert!(t > SimTime::from_millis(40));
        assert!(t < SimTime::from_millis(41));
    }

    #[test]
    fn multi_pack_skips_copy_but_pays_per_write() {
        let m = CostModel::default();
        let mut b = MessageBuilder::new(0).multi_pack();
        for _ in 0..100 {
            b.pack_f64(&vec![0.0; 1250]); // 100 × 10 KB = 1 MB total
        }
        let multi = b.finish();
        let t = m.send_overhead(&multi);
        // 100 writes at 45 µs each + 120 µs ≈ 4.6 ms: far below the 40 ms copy.
        assert!(t < SimTime::from_millis(5));
        assert!(t > SimTime::from_millis(4));
    }

    #[test]
    fn recv_overhead_scales_with_length() {
        let m = CostModel::default();
        assert!(m.recv_overhead(1_000_000) > m.recv_overhead(1_000));
        assert!(m.recv_overhead(0) >= m.per_message);
    }

    #[test]
    fn calibration_lands_2dfft_period_near_half_hz() {
        // Per-processor 2DFFT work at N=512, P=4: two stages of N/P
        // length-N FFTs = 2 × 128 × 5·512·9 flops ≈ 5.9 MFLOP.
        let m = CostModel::default();
        let per_stage = 128u64 * 5 * 512 * 9;
        let compute = m.flops(2 * per_stage);
        // Compute phase ≈ 0.74 s; with ~1.3 s of wire time per transpose
        // the period is ~2 s → fundamental ≈ 0.5 Hz.
        let s = compute.as_secs_f64();
        assert!(s > 0.5 && s < 1.1, "compute phase {s}s");
    }
}
