//! The deterministic SPMD rank engine.
//!
//! Each rank runs as a real OS thread executing straight-line SPMD code
//! against a [`RankCtx`]. A conservative sequencer on the calling thread
//! owns the simulated clock: it collects one pending request per live
//! rank, then repeatedly either executes the request with the earliest
//! local clock or advances the network simulation by one event, whichever
//! is earlier in simulated time. Rank threads therefore run concurrently
//! on the host machine, but every simulation decision is made from a
//! fully collected, deterministically ordered state — two runs with the
//! same configuration produce byte-identical packet traces.
//!
//! The engine also implements *deschedule injection*: the paper observed
//! (§6) that when the OS deschedules one processor, the fixed synchronous
//! communication schedule stalls until that processor returns, merging
//! adjacent traffic bursts. Enabling [`DescheduleConfig`] inserts
//! exponentially spaced involuntary delays into compute phases.

use crate::cost::CostModel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use fxnet_pvm::{Message, MsgDelivery, OutMessage, PvmConfig, PvmSystem, TaskId, TenantMap};
use fxnet_sim::{
    CausalEvent, CauseId, EtherStats, FrameRecord, FxnetError, FxnetResult, SimRng, SimTime,
};
use fxnet_telemetry::{EventClass, RunTelemetry, SimProfile, SpanKind, SpanRecord};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Involuntary OS descheduling model.
#[derive(Debug, Clone)]
pub struct DescheduleConfig {
    /// Mean CPU time between deschedule events (exponentially distributed).
    pub mean_cpu_between: SimTime,
    /// Length of each descheduled interval.
    pub duration: SimTime,
}

/// Configuration for one SPMD run.
#[derive(Debug, Clone)]
pub struct SpmdConfig {
    /// Number of SPMD ranks (the paper compiles for 4).
    pub p: u32,
    /// Total workstations on the LAN (the paper's testbed had 9; the
    /// extras are idle except for daemon chatter and one is the tracer).
    pub hosts: u32,
    /// PVM and network stack configuration.
    pub pvm: PvmConfig,
    /// Compute cost model.
    pub cost: CostModel,
    /// Optional deschedule injection.
    pub deschedule: Option<DescheduleConfig>,
    /// Engine RNG seed (deschedule sampling).
    pub seed: u64,
    /// Sender-side socket buffer: a rank's `send` blocks while its host's
    /// TCP backlog exceeds this, pacing fast senders with the network as
    /// blocking socket writes do (64 KB was a typical OSF/1 default).
    pub socket_buf: u64,
    /// Abort if any rank's clock passes this (runaway guard).
    pub max_sim_time: SimTime,
    /// Collect telemetry (phase spans, counter registry, sim profile).
    /// Span requests never advance a rank's clock, so the packet trace is
    /// byte-identical with telemetry on or off.
    pub telemetry: bool,
}

impl Default for SpmdConfig {
    fn default() -> Self {
        SpmdConfig {
            p: 4,
            hosts: 9,
            pvm: PvmConfig::default(),
            cost: CostModel::default(),
            deschedule: None,
            seed: 42,
            socket_buf: 64 * 1024,
            max_sim_time: SimTime::from_secs(24 * 3600),
            telemetry: false,
        }
    }
}

/// Outcome of a run: per-rank return values plus the captured trace.
#[derive(Debug)]
pub struct RunResult<T> {
    /// Rank return values, indexed by rank.
    pub results: Vec<T>,
    /// The promiscuous packet trace (the paper's tcpdump capture).
    pub trace: Vec<FrameRecord>,
    /// MAC statistics.
    pub ether: EtherStats,
    /// Simulated time at which the last rank finished.
    pub finished_at: SimTime,
    /// Telemetry captured for the run, when [`SpmdConfig::telemetry`] is on.
    pub telemetry: Option<RunTelemetry>,
    /// Causal capture, when [`RunOptions::causal`] was set.
    pub causal: Option<CausalRun>,
    /// Per-link sample series, when [`RunOptions::sample_links`] was set.
    pub link_stats: Option<fxnet_sim::LinkStats>,
}

/// One application-level send operation recorded during a causal run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AppOp {
    /// The op's causal id; decodes to (tenant, global rank, phase-span
    /// sequence, op sequence).
    pub cause: CauseId,
    /// Destination global task id.
    pub dst: u32,
    /// Simulated time the op committed its first byte to the transport.
    pub time: SimTime,
    /// Application payload bytes packed in the message.
    pub payload_bytes: u64,
    /// Transport bytes committed on behalf of the op (payload plus
    /// fragment headers — and daemon-route gram headers, where the
    /// message is re-fragmented). Causal conservation checks each op's
    /// delivered data bytes against exactly this number.
    pub wire_bytes: u64,
}

/// The causal capture of one run: every application op plus the tagged
/// delivery stream (one [`CausalEvent`] per trace row, in trace order).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct CausalRun {
    /// Application send ops, in sequencing order.
    pub ops: Vec<AppOp>,
    /// Tagged frame deliveries, in delivery (= trace) order.
    pub events: Vec<CausalEvent>,
}

enum Request {
    Compute(SimTime),
    Send {
        dst: u32,
        msg: OutMessage,
    },
    Recv {
        src: u32,
    },
    Barrier,
    /// Open a named collective span at the rank's current clock.
    SpanBegin(&'static str),
    /// Close the most recent open span on this rank.
    SpanEnd,
    Done,
}

enum Reply {
    Proceed,
    Message(Message),
}

/// The per-rank handle SPMD program code runs against.
///
/// Ranks are always *group-local*: a program sees ids `0..nprocs()`
/// regardless of where its group's task-id block sits in a multi-program
/// run ([`run`]). The context translates to global task ids at the
/// request boundary, so cross-group sends are impossible by construction.
pub struct RankCtx {
    rank: u32,
    p: u32,
    /// First global task id of this rank's group (0 for single-program runs).
    base: u32,
    cost: CostModel,
    telemetry: bool,
    tx: Sender<(u32, Request)>,
    rx: Receiver<Reply>,
}

impl RankCtx {
    /// This rank's id, `0..nprocs()`.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of SPMD ranks.
    pub fn nprocs(&self) -> u32 {
        self.p
    }

    /// The cost model in effect (for apps that precompute durations).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn request(&mut self, r: Request) -> Reply {
        self.tx
            .send((self.base + self.rank, r))
            .expect("engine terminated while rank still running");
        self.rx
            .recv()
            .expect("engine terminated while rank still running")
    }

    /// Spend a local computation phase of `n` floating-point operations.
    pub fn compute_flops(&mut self, n: u64) {
        let d = self.cost.flops(n);
        self.compute_time(d);
    }

    /// Spend a memory-bound phase moving `bytes` through memory.
    pub fn compute_mem(&mut self, bytes: u64) {
        let d = self.cost.mem(bytes);
        self.compute_time(d);
    }

    /// Spend an explicit amount of local computation time.
    pub fn compute_time(&mut self, d: SimTime) {
        if d == SimTime::ZERO {
            return;
        }
        let _ = self.request(Request::Compute(d));
    }

    /// Send a message to `dst` (asynchronous, PVM semantics: returns once
    /// the message is handed to the transport).
    pub fn send(&mut self, dst: u32, msg: OutMessage) {
        assert!(dst < self.p && dst != self.rank);
        let dst = self.base + dst;
        let _ = self.request(Request::Send { dst, msg });
    }

    /// Block until a message from `src` arrives.
    pub fn recv(&mut self, src: u32) -> Message {
        assert!(src < self.p && src != self.rank);
        let src = self.base + src;
        match self.request(Request::Recv { src }) {
            Reply::Message(m) => m,
            Reply::Proceed => unreachable!("recv must return a message"),
        }
    }

    /// Global barrier across all ranks.
    pub fn barrier(&mut self) {
        let _ = self.request(Request::Barrier);
    }

    /// Open a named collective phase span (telemetry). Spans cost no
    /// simulated time; when telemetry is off this is a no-op.
    pub fn phase_begin(&mut self, name: &'static str) {
        if self.telemetry {
            let _ = self.request(Request::SpanBegin(name));
        }
    }

    /// Close the most recently opened phase span on this rank.
    pub fn phase_end(&mut self) {
        if self.telemetry {
            let _ = self.request(Request::SpanEnd);
        }
    }

    /// Run `f` inside a named collective phase span.
    pub fn phase<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.phase_begin(name);
        let out = f(self);
        self.phase_end();
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    /// Reply sent; the rank thread is executing and will request again.
    Waiting,
    /// A request is queued for sequencing.
    Ready,
    /// Blocked in `recv(src)`.
    BlockedRecv(u32),
    /// Blocked in `send` waiting for socket-buffer space.
    BlockedSend,
    /// Blocked in `barrier()`.
    BlockedBarrier,
    /// Finished.
    Done,
}

struct Deschedule {
    rng: SimRng,
    mean_s: f64,
    duration: SimTime,
    /// CPU seconds consumed so far.
    cpu_acc: f64,
    /// CPU-time threshold of the next involuntary deschedule.
    next_at: f64,
}

impl Deschedule {
    fn new(cfg: &DescheduleConfig, mut rng: SimRng) -> Deschedule {
        let mean_s = cfg.mean_cpu_between.as_secs_f64();
        let first = rng.exponential(mean_s);
        Deschedule {
            rng,
            mean_s,
            duration: cfg.duration,
            cpu_acc: 0.0,
            next_at: first,
        }
    }

    /// Extra wall time injected into a compute phase of length `d`.
    fn extra_for(&mut self, d: SimTime) -> SimTime {
        self.cpu_acc += d.as_secs_f64();
        let mut extra = SimTime::ZERO;
        while self.cpu_acc >= self.next_at {
            extra += self.duration;
            self.next_at += self.rng.exponential(self.mean_s);
        }
        extra
    }
}

/// Per-call options for [`run`] that are not part of the simulated
/// configuration proper: hooks and overrides that must not force the
/// config out of `Clone + Debug` (taps are neither) and that callers
/// routinely want to vary without rebuilding a [`SpmdConfig`].
#[derive(Default)]
pub struct RunOptions {
    /// Live frame tap installed at the tracer's capture point for the
    /// duration of the run (the `fxnet-watch` hook). The tap observes
    /// every delivered frame as it is captured; it cannot perturb the
    /// simulation, so the trace is byte-identical with and without one.
    pub tap: Option<fxnet_sim::FrameTap>,
    /// Override [`SpmdConfig::telemetry`] for this run only.
    pub telemetry: Option<bool>,
    /// Override [`SpmdConfig::deschedule`] for this run only.
    pub deschedule: Option<DescheduleConfig>,
    /// Capture causal provenance: tag every frame with the application
    /// op (or protocol artifact) that caused it and record every send op.
    /// Forces telemetry on (phase spans carry the phase sequence the
    /// cause ids reference). Tagging rides the token side-table, so the
    /// trace stays byte-identical with capture on or off.
    pub causal: bool,
    /// Enable passive per-link sampling at the given base window (ns) —
    /// the `fxnet-metrics` weather-map feed. Strictly observational: the
    /// trace is byte-identical with sampling on or off.
    pub sample_links: Option<u64>,
    /// Override the DES shard count for this run (`fxnet-shard`). `0`
    /// keeps [`fxnet_proto::NetConfig::shards`] as configured; any other
    /// value replaces it. Only multi-segment topologies partition;
    /// output is byte-identical at every shard count.
    pub shards: usize,
}

impl RunOptions {
    /// Options with just a frame tap installed.
    pub fn tapped(tap: fxnet_sim::FrameTap) -> RunOptions {
        RunOptions {
            tap: Some(tap),
            ..RunOptions::default()
        }
    }
}

/// One program (tenant) of a multi-program run: a rank group with its own
/// task-id block and start time on the shared network.
pub struct GroupSpec<T> {
    /// Display name ("SOR", "tenant-2", ...), also the tenant name in the
    /// returned [`TenantMap`].
    pub name: String,
    /// Ranks in this group; local ids are `0..p`.
    pub p: u32,
    /// Simulated time at which the group's ranks begin executing
    /// (staggered starts model tenants arriving at different times).
    pub start: SimTime,
    /// The SPMD program, invoked once per rank.
    pub program: Arc<dyn Fn(&mut RankCtx) -> T + Send + Sync + 'static>,
}

impl<T> GroupSpec<T> {
    /// A named group starting at time `start`.
    pub fn new(
        name: impl Into<String>,
        p: u32,
        start: SimTime,
        f: impl Fn(&mut RankCtx) -> T + Send + Sync + 'static,
    ) -> GroupSpec<T> {
        GroupSpec {
            name: name.into(),
            p,
            start,
            program: Arc::new(f),
        }
    }

    /// The single-program shape: one group named "main" starting at time
    /// zero — the shape [`run_single`] builds internally.
    pub fn single(p: u32, f: impl Fn(&mut RankCtx) -> T + Send + Sync + 'static) -> GroupSpec<T> {
        GroupSpec::new("main", p, SimTime::ZERO, f)
    }
}

/// Per-group outcome of a multi-program run.
#[derive(Debug)]
pub struct GroupRunResult<T> {
    /// The group's name as given in its [`GroupSpec`].
    pub name: String,
    /// First global task id of the group's block.
    pub base: u32,
    /// Ranks in the group.
    pub p: u32,
    /// The group's start time.
    pub start: SimTime,
    /// Rank return values, indexed by local rank.
    pub results: Vec<T>,
    /// Simulated time at which the group's last rank finished.
    pub finished_at: SimTime,
}

/// Outcome of a multi-program run: per-group results plus the single
/// shared promiscuous trace.
#[derive(Debug)]
pub struct MultiRunResult<T> {
    /// Per-group results, in spec order.
    pub groups: Vec<GroupRunResult<T>>,
    /// Task-id/host ownership of each group, for trace demultiplexing.
    pub map: TenantMap,
    /// The promiscuous packet trace of the whole shared network.
    pub trace: Vec<FrameRecord>,
    /// MAC statistics.
    pub ether: EtherStats,
    /// Simulated time at which the last rank of any group finished.
    pub finished_at: SimTime,
    /// Telemetry captured for the run, when [`SpmdConfig::telemetry`] is on.
    pub telemetry: Option<RunTelemetry>,
    /// Causal capture, when [`RunOptions::causal`] was set.
    pub causal: Option<CausalRun>,
    /// Per-link sample series, when [`RunOptions::sample_links`] was set.
    pub link_stats: Option<fxnet_sim::LinkStats>,
}

impl<T> MultiRunResult<T> {
    /// Collapse a single-group result into the flat [`RunResult`] shape.
    ///
    /// # Panics
    /// If the run had more than one group (their results would be
    /// silently discarded).
    pub fn into_single(self) -> RunResult<T> {
        assert_eq!(
            self.groups.len(),
            1,
            "into_single on a {}-group result",
            self.groups.len()
        );
        let g = self.groups.into_iter().next().expect("one group");
        RunResult {
            results: g.results,
            trace: self.trace,
            ether: self.ether,
            finished_at: self.finished_at,
            telemetry: self.telemetry,
            causal: self.causal,
            link_stats: self.link_stats,
        }
    }
}

/// Abandon a failed run: leak both channel endpoints so rank threads
/// blocked in `request()` park quietly forever instead of panicking on a
/// closed channel, and detach their join handles. The threads are leaked
/// — an accepted cost on the error path, where the run's outcome is
/// already lost; a panicking teardown would spray every rank's panic
/// output over the caller's terminal instead.
fn abandon<T>(
    req_rx: Receiver<(u32, Request)>,
    reply_txs: Vec<Sender<Reply>>,
    handles: Vec<std::thread::JoinHandle<T>>,
) {
    std::mem::forget(req_rx);
    std::mem::forget(reply_txs);
    drop(handles);
}

/// Sugar for the single-program case of [`run`]: one group named "main"
/// with `cfg.p` ranks starting at time zero, collapsed to the flat
/// [`RunResult`] shape. Unlike the multi-group path, `cfg.p` is honoured
/// and `cfg.hosts < cfg.p` is rejected (idle hosts are part of the
/// paper's testbed shape, missing hosts are a config error).
pub fn run_single<T, F>(cfg: SpmdConfig, f: F, opts: RunOptions) -> FxnetResult<RunResult<T>>
where
    T: Send + 'static,
    F: Fn(&mut RankCtx) -> T + Send + Sync + 'static,
{
    if cfg.p == 0 || cfg.hosts < cfg.p {
        return Err(FxnetError::InvalidConfig(format!(
            "p = {} with hosts = {}",
            cfg.p, cfg.hosts
        )));
    }
    let p = cfg.p;
    Ok(run(cfg, vec![GroupSpec::single(p, f)], opts)?.into_single())
}

/// The unified engine entry point: run one or more SPMD programs on a
/// shared virtual machine and LAN.
///
/// A single program is a one-element group list (see
/// [`GroupSpec::single`] and [`MultiRunResult::into_single`]), and the
/// tap, telemetry, deschedule, and causal hooks travel in [`RunOptions`].
///
/// Each [`GroupSpec`] receives a contiguous block of global task ids (and
/// therefore hosts), packed in spec order from task 0; `cfg.p` is ignored
/// and `cfg.hosts` is raised to the total rank count if smaller, so idle
/// hosts beyond the packed blocks keep contributing daemon chatter.
/// Groups are fully isolated at the message layer (local rank spaces,
/// per-group barriers) but share the wire, the MAC, and the tracer.
/// Determinism is preserved: same config and groups → byte-identical
/// trace, on any host thread — per-run state is fully owned, so
/// independent `run` calls may execute concurrently (the basis of
/// `fxnet-harness`).
///
/// # Errors
/// [`FxnetError::InvalidConfig`] for an empty group list or a zero-rank
/// group; [`FxnetError::Deadlock`] when no rank can run and the network
/// is idle; [`FxnetError::SimTimeExceeded`] when a rank's clock passes
/// `cfg.max_sim_time`. A panic *inside a rank's program* is still
/// propagated as a panic (it is a bug in the caller's code, not a
/// simulation outcome).
pub fn run<T>(
    mut cfg: SpmdConfig,
    groups: Vec<GroupSpec<T>>,
    opts: RunOptions,
) -> FxnetResult<MultiRunResult<T>>
where
    T: Send + 'static,
{
    if let Some(t) = opts.telemetry {
        cfg.telemetry = t;
    }
    let causal = opts.causal;
    if causal {
        // Cause ids reference phase-span sequence numbers, which only
        // flow when telemetry is on. Telemetry is itself non-perturbing,
        // so the trace stays byte-identical.
        cfg.telemetry = true;
    }
    if opts.deschedule.is_some() {
        cfg.deschedule = opts.deschedule;
    }
    if opts.shards > 0 {
        cfg.pvm.net.shards = opts.shards;
    }
    let tap = opts.tap;
    if groups.is_empty() {
        return Err(FxnetError::InvalidConfig("need at least one group".into()));
    }
    if let Some(g) = groups.iter().find(|g| g.p == 0) {
        return Err(FxnetError::InvalidConfig(format!(
            "group \"{}\" has zero ranks",
            g.name
        )));
    }
    let map = TenantMap::pack(groups.iter().map(|g| (g.name.clone(), g.p)));
    let total = map.total_ranks();
    let hosts = cfg.hosts.max(total);
    // A declarative topology fixes host placement: its attachment list
    // must cover every workstation this run will stand up, or rank→NIC
    // mapping would fall off the spec.
    if let fxnet_proto::LinkKind::Topology(spec) = &cfg.pvm.net.link {
        if (spec.host_count() as u32) < hosts {
            return Err(FxnetError::InvalidConfig(format!(
                "topology '{}' attaches {} hosts but the run needs {hosts}",
                spec.id,
                spec.host_count(),
            )));
        }
    }
    let mut pvm = PvmSystem::new(cfg.pvm.clone(), total, hosts);
    pvm.set_promiscuous(true);
    pvm.set_tap(tap);
    pvm.set_causal(causal);
    pvm.set_link_sampling(opts.sample_links);

    let p = total as usize;
    // Global rank → group index.
    let group_of: Vec<usize> = (0..total)
        .map(|r| map.owner_of_task(TaskId(r)).expect("packed rank"))
        .collect();
    let (req_tx, req_rx) = unbounded::<(u32, Request)>();
    let mut reply_txs: Vec<Sender<Reply>> = Vec::with_capacity(p);
    let mut handles = Vec::with_capacity(p);
    for (gi, slice) in map.slices().iter().enumerate() {
        let program = Arc::clone(&groups[gi].program);
        for local in 0..slice.p {
            let (rtx, rrx) = unbounded::<Reply>();
            reply_txs.push(rtx);
            let mut ctx = RankCtx {
                rank: local,
                p: slice.p,
                base: slice.base,
                cost: cfg.cost.clone(),
                telemetry: cfg.telemetry,
                tx: req_tx.clone(),
                rx: rrx,
            };
            let program = Arc::clone(&program);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("spmd-rank-{}", slice.base + local))
                    .spawn(move || {
                        let out = program(&mut ctx);
                        // Signal completion; ignore failure if the engine
                        // already tore down due to another rank's panic.
                        let _ = ctx.tx.send((ctx.base + ctx.rank, Request::Done));
                        out
                    })
                    .expect("spawn rank thread"),
            );
        }
    }
    drop(req_tx);

    let mut clocks: Vec<SimTime> = (0..p).map(|r| groups[group_of[r]].start).collect();
    let mut states = vec![RankState::Waiting; p];
    let mut pending: Vec<Option<Request>> = (0..p).map(|_| None).collect();
    let mut mailbox: HashMap<(u32, u32), VecDeque<(SimTime, Message)>> = HashMap::new();
    let mut barrier_waiters: Vec<Vec<u32>> = vec![Vec::new(); groups.len()];
    let mut engine_rng = SimRng::new(cfg.seed);
    let mut desched: Vec<Option<Deschedule>> = (0..p)
        .map(|r| {
            cfg.deschedule
                .as_ref()
                .map(|d| Deschedule::new(d, engine_rng.fork(r as u64)))
        })
        .collect();
    let mut deliveries: Vec<MsgDelivery> = Vec::new();
    let mut done_at = vec![SimTime::ZERO; p];

    // Causal state; all of it stays empty when capture is off.
    let mut ops: Vec<AppOp> = Vec::new();
    let mut op_seq = vec![0u32; p];
    let mut phase_seq = vec![0u32; p];

    // Telemetry state; all of it stays empty when cfg.telemetry is off.
    let run_start = Instant::now();
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut open_spans: Vec<Vec<(&'static str, SimTime)>> = vec![Vec::new(); p];
    let mut blocked_since: Vec<Option<(SpanKind, SimTime)>> = vec![None; p];
    let mut event_counts = [0u64; EventClass::ALL.len()];
    let mut profile = SimProfile::default();
    let mut mailbox_high_water = 0usize;
    let mut mailbox_len = 0usize;

    let wake = |rank: u32,
                t_deliver: SimTime,
                msg: Message,
                clocks: &mut [SimTime],
                states: &mut [RankState],
                reply_txs: &[Sender<Reply>],
                cost: &CostModel,
                blocked_since: &mut [Option<(SpanKind, SimTime)>],
                spans: &mut Vec<SpanRecord>| {
        let r = rank as usize;
        let overhead = cost.recv_overhead(msg.body.len());
        clocks[r] = clocks[r].max(t_deliver) + overhead;
        if let Some((kind, begin)) = blocked_since[r].take() {
            spans.push(SpanRecord {
                rank,
                name: kind.label().to_string(),
                kind,
                begin,
                end: clocks[r],
            });
        }
        states[r] = RankState::Waiting;
        reply_txs[r]
            .send(Reply::Message(msg))
            .expect("rank thread alive");
    };

    loop {
        // Phase 1: every non-blocked, non-done rank must have a request in
        // hand before we sequence anything.
        while states.contains(&RankState::Waiting) {
            match req_rx.recv() {
                Ok((rank, req)) => {
                    let r = rank as usize;
                    debug_assert_eq!(states[r], RankState::Waiting);
                    if matches!(req, Request::Done) {
                        states[r] = RankState::Done;
                        done_at[r] = clocks[r];
                    } else {
                        states[r] = RankState::Ready;
                        pending[r] = Some(req);
                    }
                }
                Err(_) => {
                    // A rank thread died without Done: surface its panic.
                    for h in handles {
                        if let Err(e) = h.join() {
                            std::panic::resume_unwind(e);
                        }
                    }
                    panic!("rank channel closed without completion");
                }
            }
        }

        // All ranks finished: stop sequencing (the network may still hold
        // events — e.g. periodic daemon chatter — which are drained up to
        // the program's end time below, never past it).
        if states.iter().all(|s| *s == RankState::Done) {
            break;
        }

        // Phase 2: pick the next action in simulated-time order.
        let mut best: Option<usize> = None;
        for r in 0..p {
            if states[r] == RankState::Ready && best.is_none_or(|b| clocks[r] < clocks[b]) {
                best = Some(r);
            }
        }
        let t_net = pvm.next_event_time();
        let rank_first = match (best, t_net) {
            (Some(r), Some(tn)) => clocks[r] <= tn,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                let blocked: Vec<String> = states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !matches!(s, RankState::Done))
                    .map(|(r, s)| format!("rank {r}: {s:?} at {}", clocks[r]))
                    .collect();
                abandon(req_rx, reply_txs, handles);
                return Err(FxnetError::Deadlock(blocked.join("\n")));
            }
        };

        let t0 = if cfg.telemetry {
            Some(Instant::now())
        } else {
            None
        };
        let mut class = EventClass::NetAdvance;
        if rank_first {
            let r = best.expect("rank_first implies a ready rank");
            let req = pending[r].take().expect("ready rank has request");
            if clocks[r] > cfg.max_sim_time {
                abandon(req_rx, reply_txs, handles);
                return Err(FxnetError::SimTimeExceeded {
                    rank: r as u32,
                    at: clocks[r],
                    limit: cfg.max_sim_time,
                });
            }
            match req {
                Request::Compute(d) => {
                    class = EventClass::Compute;
                    let begin = clocks[r];
                    let extra = desched[r]
                        .as_mut()
                        .map_or(SimTime::ZERO, |ds| ds.extra_for(d));
                    clocks[r] += d + extra;
                    if cfg.telemetry {
                        spans.push(SpanRecord {
                            rank: r as u32,
                            name: "compute".to_string(),
                            kind: SpanKind::Compute,
                            begin,
                            end: clocks[r],
                        });
                    }
                    states[r] = RankState::Waiting;
                    reply_txs[r].send(Reply::Proceed).expect("rank alive");
                }
                Request::Send { dst, msg } => {
                    class = EventClass::Send;
                    let overhead = cfg.cost.send_overhead(&msg);
                    let t_wire = clocks[r] + overhead;
                    if causal {
                        let phase = if open_spans[r].is_empty() {
                            0
                        } else {
                            phase_seq[r]
                        };
                        let cause = CauseId::app(group_of[r] as u32, r as u32, phase, op_seq[r]);
                        op_seq[r] += 1;
                        let payload_bytes = msg.payload_len() as u64;
                        let wire_bytes =
                            pvm.send_caused(t_wire, TaskId(r as u32), TaskId(dst), msg, cause);
                        ops.push(AppOp {
                            cause,
                            dst,
                            time: t_wire,
                            payload_bytes,
                            wire_bytes,
                        });
                    } else {
                        pvm.send(t_wire, TaskId(r as u32), TaskId(dst), msg);
                    }
                    clocks[r] = t_wire;
                    // A blocking socket write: the rank stalls while its
                    // host's TCP backlog exceeds the socket buffer.
                    if pvm.sender_backlog(TaskId(r as u32)) > cfg.socket_buf {
                        states[r] = RankState::BlockedSend;
                        if cfg.telemetry {
                            blocked_since[r] = Some((SpanKind::BlockedSend, clocks[r]));
                        }
                    } else {
                        states[r] = RankState::Waiting;
                        reply_txs[r].send(Reply::Proceed).expect("rank alive");
                    }
                }
                Request::Recv { src } => {
                    class = EventClass::Recv;
                    let key = (src, r as u32);
                    let queued = mailbox.get_mut(&key).and_then(VecDeque::pop_front);
                    if let Some((t_d, msg)) = queued {
                        mailbox_len -= 1;
                        wake(
                            r as u32,
                            t_d,
                            msg,
                            &mut clocks,
                            &mut states,
                            &reply_txs,
                            &cfg.cost,
                            &mut blocked_since,
                            &mut spans,
                        );
                    } else {
                        states[r] = RankState::BlockedRecv(src);
                        if cfg.telemetry {
                            blocked_since[r] = Some((SpanKind::BlockedRecv, clocks[r]));
                        }
                    }
                }
                Request::Barrier => {
                    class = EventClass::Barrier;
                    states[r] = RankState::BlockedBarrier;
                    if cfg.telemetry {
                        blocked_since[r] = Some((SpanKind::Barrier, clocks[r]));
                    }
                    // Barriers are group-local: only the requesting rank's
                    // group synchronizes; other tenants are unaffected.
                    let gi = group_of[r];
                    barrier_waiters[gi].push(r as u32);
                    if barrier_waiters[gi].len() == groups[gi].p as usize {
                        let t = barrier_waiters[gi]
                            .iter()
                            .map(|&w| clocks[w as usize])
                            .max()
                            .unwrap()
                            + cfg.cost.per_message;
                        for &w in &barrier_waiters[gi] {
                            let w = w as usize;
                            clocks[w] = t;
                            if let Some((kind, begin)) = blocked_since[w].take() {
                                spans.push(SpanRecord {
                                    rank: w as u32,
                                    name: kind.label().to_string(),
                                    kind,
                                    begin,
                                    end: t,
                                });
                            }
                            states[w] = RankState::Waiting;
                            reply_txs[w].send(Reply::Proceed).expect("rank alive");
                        }
                        barrier_waiters[gi].clear();
                    }
                }
                Request::SpanBegin(name) => {
                    class = EventClass::Span;
                    phase_seq[r] += 1;
                    open_spans[r].push((name, clocks[r]));
                    states[r] = RankState::Waiting;
                    reply_txs[r].send(Reply::Proceed).expect("rank alive");
                }
                Request::SpanEnd => {
                    class = EventClass::Span;
                    if let Some((name, begin)) = open_spans[r].pop() {
                        spans.push(SpanRecord {
                            rank: r as u32,
                            name: name.to_string(),
                            kind: SpanKind::Collective,
                            begin,
                            end: clocks[r],
                        });
                    }
                    states[r] = RankState::Waiting;
                    reply_txs[r].send(Reply::Proceed).expect("rank alive");
                }
                Request::Done => unreachable!("handled at intake"),
            }
        } else {
            deliveries.clear();
            let event_time = pvm.advance(&mut deliveries);
            for d in deliveries.drain(..) {
                let dst = d.dst.0 as usize;
                if states[dst] == RankState::BlockedRecv(d.src.0) {
                    wake(
                        d.dst.0,
                        d.time,
                        d.msg,
                        &mut clocks,
                        &mut states,
                        &reply_txs,
                        &cfg.cost,
                        &mut blocked_since,
                        &mut spans,
                    );
                } else {
                    mailbox
                        .entry((d.src.0, d.dst.0))
                        .or_default()
                        .push_back((d.time, d.msg));
                    mailbox_len += 1;
                    mailbox_high_water = mailbox_high_water.max(mailbox_len);
                }
            }
            // Network drain may have freed socket-buffer space.
            if let Some(t) = event_time {
                for r in 0..p {
                    if states[r] == RankState::BlockedSend
                        && pvm.sender_backlog(TaskId(r as u32)) <= cfg.socket_buf
                    {
                        clocks[r] = clocks[r].max(t);
                        if let Some((kind, begin)) = blocked_since[r].take() {
                            spans.push(SpanRecord {
                                rank: r as u32,
                                name: kind.label().to_string(),
                                kind,
                                begin,
                                end: clocks[r],
                            });
                        }
                        states[r] = RankState::Waiting;
                        reply_txs[r].send(Reply::Proceed).expect("rank alive");
                    }
                }
            }
        }
        if let Some(t0) = t0 {
            let idx = EventClass::ALL
                .iter()
                .position(|&c| c == class)
                .expect("class listed in ALL");
            event_counts[idx] += 1;
            profile.record(class, t0.elapsed());
        }
    }

    // All ranks done. First advance the network through events scheduled
    // within the program's lifetime (periodic daemon chatter a compute-
    // heavy program never yielded to), then let trailing wire activity
    // (delayed ACKs, in-flight frames) complete so the trace is whole.
    let end_of_run = clocks.iter().copied().max().unwrap_or(SimTime::ZERO);
    while let Some(t) = pvm.next_event_time() {
        if t > end_of_run {
            break;
        }
        deliveries.clear();
        pvm.advance(&mut deliveries);
    }
    let _ = pvm.finish();
    let mut results: VecDeque<T> = handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked after completion"))
        .collect();
    let finished_at = clocks.iter().copied().max().unwrap_or(SimTime::ZERO);
    let group_results: Vec<GroupRunResult<T>> = groups
        .iter()
        .zip(map.slices())
        .map(|(g, slice)| {
            let members = slice.base as usize..(slice.base + slice.p) as usize;
            GroupRunResult {
                name: g.name.clone(),
                base: slice.base,
                p: slice.p,
                start: g.start,
                results: results.drain(..slice.p as usize).collect(),
                finished_at: members.map(|r| done_at[r]).max().unwrap_or(g.start),
            }
        })
        .collect();

    let telemetry = if cfg.telemetry {
        // Close any span the application never ended.
        for r in 0..p {
            while let Some((name, begin)) = open_spans[r].pop() {
                spans.push(SpanRecord {
                    rank: r as u32,
                    name: name.to_string(),
                    kind: SpanKind::Collective,
                    begin,
                    end: clocks[r],
                });
            }
        }
        spans.sort_by(|a, b| {
            (a.begin, a.rank, &a.name, a.end).cmp(&(b.begin, b.rank, &b.name, b.end))
        });

        let mut reg = fxnet_telemetry::TelemetryRegistry::new();
        let mac = pvm.ether_stats();
        reg.set_counter("mac.frames_delivered", mac.frames_delivered);
        reg.set_counter("mac.bytes_delivered", mac.bytes_delivered);
        reg.set_counter("mac.collisions", mac.collisions);
        reg.set_counter("mac.backoffs", mac.backoffs);
        reg.set_counter("mac.frames_dropped", mac.frames_dropped);
        reg.set_counter("mac.busy_ns", mac.busy_ns);
        let tcp = pvm.tcp_stats();
        reg.set_counter("tcp.data_segments", tcp.data_segments);
        reg.set_counter("tcp.acks_sent", tcp.acks_sent);
        reg.set_counter("tcp.delayed_ack_fires", tcp.delayed_ack_fires);
        reg.set_counter("tcp.syn_frames", tcp.syn_frames);
        reg.set_counter("tcp.retransmits", tcp.retransmits);
        let pstats = pvm.pvm_stats();
        reg.set_counter("pvm.messages_sent", pstats.messages_sent);
        reg.set_counter("pvm.fragments_sent", pstats.fragments_sent);
        reg.set_counter("pvm.pack_bytes", pstats.pack_bytes);
        reg.set_counter("pvm.daemon_datagrams", pstats.daemon_datagrams);
        reg.set_counter("pvm.daemon_acks", pstats.daemon_acks);
        reg.set_counter("pvm.heartbeats", pstats.heartbeats);
        for (class, &n) in EventClass::ALL.iter().zip(&event_counts) {
            reg.set_counter(format!("engine.events.{}", class.label()), n);
        }
        reg.set_counter(
            "engine.timer_queue_high_water",
            pvm.timer_high_water() as u64,
        );
        reg.set_counter("engine.mailbox_high_water", mailbox_high_water as u64);
        for r in 0..p {
            let blocked_ns: u64 = spans
                .iter()
                .filter(|s| {
                    s.rank == r as u32
                        && matches!(
                            s.kind,
                            SpanKind::BlockedRecv | SpanKind::BlockedSend | SpanKind::Barrier
                        )
                })
                .map(|s| s.duration().as_nanos())
                .sum();
            reg.set_counter(format!("engine.rank{r}.blocked_ns"), blocked_ns);
        }
        // Per-tenant registry scoping: in multi-program runs, roll the
        // rank-level counters up under each tenant's name so a tenant's
        // share of engine time is legible without knowing its task block.
        if map.len() > 1 {
            for (gi, slice) in map.slices().iter().enumerate() {
                let members = slice.base..slice.base + slice.p;
                let blocked_ns: u64 = spans
                    .iter()
                    .filter(|s| {
                        members.contains(&s.rank)
                            && matches!(
                                s.kind,
                                SpanKind::BlockedRecv | SpanKind::BlockedSend | SpanKind::Barrier
                            )
                    })
                    .map(|s| s.duration().as_nanos())
                    .sum();
                let name = &slice.name;
                reg.set_counter(format!("tenant.{name}.ranks"), u64::from(slice.p));
                reg.set_counter(format!("tenant.{name}.base_task"), u64::from(slice.base));
                reg.set_counter(format!("tenant.{name}.blocked_ns"), blocked_ns);
                reg.set_counter(
                    format!("tenant.{name}.start_ns"),
                    groups[gi].start.as_nanos(),
                );
                reg.set_counter(
                    format!("tenant.{name}.finished_ns"),
                    group_results[gi].finished_at.as_nanos(),
                );
            }
        }

        profile.wall = run_start.elapsed();
        profile.sim_seconds = finished_at.as_secs_f64();
        Some(RunTelemetry {
            spans,
            registry: reg,
            profile: Some(profile),
        })
    } else {
        None
    };

    Ok(MultiRunResult {
        groups: group_results,
        map,
        trace: pvm.take_trace(),
        ether: pvm.ether_stats(),
        finished_at,
        telemetry,
        causal: if causal {
            Some(CausalRun {
                ops,
                events: pvm.take_causal().unwrap_or_default(),
            })
        } else {
            None
        },
        link_stats: pvm.take_link_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_pvm::MessageBuilder;

    fn quiet_cfg(p: u32) -> SpmdConfig {
        let mut cfg = SpmdConfig {
            p,
            hosts: p,
            ..SpmdConfig::default()
        };
        cfg.pvm.heartbeat = None;
        cfg
    }

    fn f64_msg(tag: i32, v: &[f64]) -> OutMessage {
        let mut b = MessageBuilder::new(tag);
        b.pack_f64(v);
        b.finish()
    }

    /// Single-program run through the unified entry point.
    fn run_one<T: Send + 'static>(
        cfg: SpmdConfig,
        f: impl Fn(&mut RankCtx) -> T + Send + Sync + 'static,
    ) -> RunResult<T> {
        let p = cfg.p;
        run(cfg, vec![GroupSpec::single(p, f)], RunOptions::default())
            .expect("valid config")
            .into_single()
    }

    /// Multi-group run through the unified entry point.
    fn run_groups<T: Send + 'static>(
        cfg: SpmdConfig,
        groups: Vec<GroupSpec<T>>,
    ) -> MultiRunResult<T> {
        run(cfg, groups, RunOptions::default()).expect("valid config")
    }

    #[test]
    fn ping_pong_content_and_causality() {
        let res = run_one(quiet_cfg(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, f64_msg(1, &[3.5, 4.5]));
                let back = ctx.recv(1);
                back.reader().f64s(2)
            } else {
                let m = ctx.recv(0);
                let mut v = m.reader().f64s(2);
                for x in &mut v {
                    *x *= 2.0;
                }
                ctx.send(0, f64_msg(2, &v));
                v
            }
        });
        assert_eq!(res.results[0], vec![7.0, 9.0]);
        assert_eq!(res.results[1], vec![7.0, 9.0]);
        assert!(res.finished_at > SimTime::ZERO);
        assert!(!res.trace.is_empty());
    }

    #[test]
    fn compute_advances_only_local_clock() {
        let res = run_one(quiet_cfg(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.compute_time(SimTime::from_millis(500));
            }
            ctx.barrier();
        });
        // The barrier aligns both ranks at ≥ 500 ms.
        assert!(res.finished_at >= SimTime::from_millis(500));
        assert!(res.finished_at < SimTime::from_millis(502));
    }

    #[test]
    fn messages_queue_when_receiver_is_late() {
        let res = run_one(quiet_cfg(2), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..5 {
                    ctx.send(1, f64_msg(i, &[f64::from(i)]));
                }
                0.0
            } else {
                ctx.compute_time(SimTime::from_secs(1));
                let mut sum = 0.0;
                for _ in 0..5 {
                    sum += ctx.recv(0).reader().f64s(1)[0];
                }
                sum
            }
        });
        assert_eq!(res.results[1], 10.0);
    }

    #[test]
    fn recv_before_send_blocks_until_delivery() {
        let res = run_one(quiet_cfg(2), |ctx| {
            if ctx.rank() == 1 {
                let m = ctx.recv(0);
                m.reader().f64s(1)[0]
            } else {
                ctx.compute_time(SimTime::from_millis(300));
                ctx.send(1, f64_msg(0, &[9.0]));
                0.0
            }
        });
        assert_eq!(res.results[1], 9.0);
        assert!(res.finished_at >= SimTime::from_millis(300));
    }

    #[test]
    fn deterministic_trace_across_threaded_runs() {
        let run = || {
            run_one(quiet_cfg(4), |ctx| {
                let me = ctx.rank();
                ctx.compute_flops(u64::from(me + 1) * 100_000);
                for d in 0..4 {
                    if d != me {
                        ctx.send(d, f64_msg(0, &vec![f64::from(me); 200]));
                    }
                }
                for s in 0..4 {
                    if s != me {
                        let _ = ctx.recv(s);
                    }
                }
            })
            .trace
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn deadlock_is_detected() {
        let err = run(
            quiet_cfg(2),
            vec![GroupSpec::single(2, |ctx: &mut RankCtx| {
                if ctx.rank() == 0 {
                    let _ = ctx.recv(1); // nobody ever sends
                }
            })],
            RunOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FxnetError::Deadlock(_)), "{err:?}");
        assert!(err.to_string().contains("SPMD deadlock"));
    }

    #[test]
    fn deschedule_injection_slows_the_run() {
        let base = run_one(quiet_cfg(2), |ctx| {
            ctx.compute_time(SimTime::from_secs(10));
            ctx.barrier();
        })
        .finished_at;
        let mut cfg = quiet_cfg(2);
        cfg.deschedule = Some(DescheduleConfig {
            mean_cpu_between: SimTime::from_secs(1),
            duration: SimTime::from_millis(100),
        });
        let slowed = run_one(cfg, |ctx| {
            ctx.compute_time(SimTime::from_secs(10));
            ctx.barrier();
        })
        .finished_at;
        assert!(slowed > base, "{slowed} vs {base}");
    }

    #[test]
    fn barrier_synchronizes_staggered_ranks() {
        let res = run_one(quiet_cfg(3), |ctx| {
            ctx.compute_time(SimTime::from_millis(u64::from(ctx.rank()) * 100));
            ctx.barrier();
            // After the barrier all clocks are equal; a second barrier
            // should not reorder anything.
            ctx.barrier();
        });
        assert!(res.finished_at >= SimTime::from_millis(200));
    }

    #[test]
    fn runaway_guard_trips() {
        let mut cfg = quiet_cfg(1);
        cfg.max_sim_time = SimTime::from_secs(1);
        let err = run(
            cfg,
            vec![GroupSpec::single(1, |ctx: &mut RankCtx| {
                for _ in 0..10 {
                    ctx.compute_time(SimTime::from_secs(1));
                }
            })],
            RunOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, FxnetError::SimTimeExceeded { rank: 0, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("max_sim_time"));
    }

    #[test]
    fn per_pair_fifo_order() {
        let res = run_one(quiet_cfg(2), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..20 {
                    ctx.send(1, f64_msg(i, &[f64::from(i)]));
                }
                Vec::new()
            } else {
                (0..20).map(|_| ctx.recv(0).msg_tag_and_val()).collect()
            }
        });
        let got = &res.results[1];
        for (i, (tag, v)) in got.iter().enumerate() {
            assert_eq!(*tag, i as i32);
            assert_eq!(*v, i as f64);
        }
    }

    trait TagVal {
        fn msg_tag_and_val(&self) -> (i32, f64);
    }
    impl TagVal for Message {
        fn msg_tag_and_val(&self) -> (i32, f64) {
            (self.tag, self.reader().f64s(1)[0])
        }
    }

    #[test]
    fn blocking_send_paces_a_fast_sender() {
        // A sender blasting far more than the socket buffer must be paced
        // by the wire: its messages cannot all be timestamped at ~0.
        let big = 512 * 1024; // bytes per message, » 64 KB socket buffer
        let res = run_one(quiet_cfg(2), move |ctx| {
            if ctx.rank() == 0 {
                for i in 0..4 {
                    let mut b = MessageBuilder::new(i);
                    b.pack_bytes(&vec![0u8; big]);
                    ctx.send(1, b.finish());
                }
                SimTime::ZERO
            } else {
                for _ in 0..4 {
                    let _ = ctx.recv(0);
                }
                SimTime::from_nanos(1)
            }
        });
        // 4 × 512 KB at ≤1.25 MB/s needs ≥ 1.6 s of simulated time.
        assert!(
            res.finished_at > SimTime::from_millis(1500),
            "run finished implausibly fast at {} — sender was not paced",
            res.finished_at
        );
    }

    #[test]
    fn small_sends_do_not_block() {
        // Below the socket buffer, sends are asynchronous: a sender can
        // race far ahead of a sleeping receiver.
        let res = run_one(quiet_cfg(2), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..10 {
                    ctx.send(1, f64_msg(i, &[1.0]));
                }
                // All sends complete in software-overhead time only.
                SimTime::ZERO
            } else {
                ctx.compute_time(SimTime::from_secs(5));
                for _ in 0..10 {
                    let _ = ctx.recv(0);
                }
                SimTime::ZERO
            }
        });
        assert!(res.finished_at >= SimTime::from_secs(5));
        assert!(res.finished_at < SimTime::from_secs(6));
    }

    #[test]
    fn cost_model_is_visible_to_ranks() {
        let res = run_one(quiet_cfg(1), |ctx| ctx.cost().flops(8_000_000).as_nanos());
        // Default model: 8 MFLOP at 8 MFLOP/s = 1 s.
        assert_eq!(res.results[0], 1_000_000_000);
    }

    #[test]
    fn trace_is_sorted_and_complete() {
        let res = run_one(quiet_cfg(3), |ctx| {
            let me = ctx.rank();
            ctx.send((me + 1) % 3, f64_msg(0, &vec![2.0; 500]));
            let _ = ctx.recv((me + 2) % 3);
        });
        assert!(res.trace.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(res.ether.frames_dropped, 0);
        assert!(res.ether.frames_delivered as usize >= res.trace.len());
    }

    #[test]
    fn barrier_after_a_rank_exits_is_a_deadlock() {
        // A barrier can never complete once some rank has finished: the
        // engine must detect it rather than hang.
        let err = run(
            quiet_cfg(2),
            vec![GroupSpec::single(2, |ctx: &mut RankCtx| {
                if ctx.rank() == 0 {
                    ctx.barrier();
                }
            })],
            RunOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FxnetError::Deadlock(_)), "{err:?}");
    }

    #[test]
    fn empty_group_list_is_invalid_config() {
        let err = run::<()>(quiet_cfg(2), Vec::new(), RunOptions::default()).unwrap_err();
        assert!(matches!(err, FxnetError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn zero_rank_group_is_invalid_config() {
        let err = run(
            quiet_cfg(2),
            vec![GroupSpec::new(
                "empty",
                0,
                SimTime::ZERO,
                |_ctx: &mut RankCtx| {},
            )],
            RunOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FxnetError::InvalidConfig(_)), "{err:?}");
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn run_options_override_telemetry() {
        let cfg = quiet_cfg(1);
        assert!(!cfg.telemetry);
        let res = run(
            cfg,
            vec![GroupSpec::single(1, |ctx: &mut RankCtx| {
                ctx.phase("solve", |c| c.compute_time(SimTime::from_millis(1)));
            })],
            RunOptions {
                telemetry: Some(true),
                ..RunOptions::default()
            },
        )
        .expect("valid config");
        let tel = res.telemetry.expect("telemetry forced on via options");
        assert!(tel.spans.iter().any(|s| s.name == "compute"));
    }

    #[test]
    fn run_options_tap_sees_every_traced_frame() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let prog = |ctx: &mut RankCtx| {
            if ctx.rank() == 0 {
                ctx.send(1, f64_msg(0, &vec![1.0; 200]));
            } else {
                let _ = ctx.recv(0);
            }
        };
        let res = run(
            quiet_cfg(2),
            vec![GroupSpec::single(2, prog)],
            RunOptions::tapped(Box::new(move |_r| {
                seen2.fetch_add(1, Ordering::Relaxed);
            })),
        )
        .expect("valid config");
        assert_eq!(seen.load(Ordering::Relaxed), res.trace.len());
        assert!(!res.trace.is_empty());
    }

    fn group<T>(
        name: &str,
        p: u32,
        start: SimTime,
        f: impl Fn(&mut RankCtx) -> T + Send + Sync + 'static,
    ) -> GroupSpec<T> {
        GroupSpec {
            name: name.to_string(),
            p,
            start,
            program: Arc::new(f),
        }
    }

    #[test]
    fn multi_groups_are_message_isolated() {
        // Two ping-pong pairs; each group only ever names local ranks 0/1,
        // and each group's answer depends only on its own traffic.
        let mk = |scale: f64| {
            move |ctx: &mut RankCtx| {
                if ctx.rank() == 0 {
                    ctx.send(1, f64_msg(1, &[scale]));
                    ctx.recv(1).reader().f64s(1)[0]
                } else {
                    let v = ctx.recv(0).reader().f64s(1)[0];
                    ctx.send(0, f64_msg(2, &[v * 10.0]));
                    v
                }
            }
        };
        let res = run_groups(
            quiet_cfg(2),
            vec![
                group("A", 2, SimTime::ZERO, mk(1.0)),
                group("B", 2, SimTime::ZERO, mk(5.0)),
            ],
        );
        assert_eq!(res.groups[0].results, vec![10.0, 1.0]);
        assert_eq!(res.groups[1].results, vec![50.0, 5.0]);
        assert_eq!(res.map.total_ranks(), 4);
        assert_eq!(res.groups[1].base, 2);
        // All four hosts put frames on the shared wire.
        assert!(!res.trace.is_empty());
    }

    #[test]
    fn multi_group_barriers_do_not_couple_groups() {
        // Group A barriers while group B computes for much longer; A must
        // finish long before B despite sharing the engine.
        let res = run_groups(
            quiet_cfg(2),
            vec![
                group("fast", 2, SimTime::ZERO, |ctx: &mut RankCtx| {
                    ctx.compute_time(SimTime::from_millis(10));
                    ctx.barrier();
                }),
                group("slow", 2, SimTime::ZERO, |ctx: &mut RankCtx| {
                    ctx.compute_time(SimTime::from_secs(5));
                    ctx.barrier();
                }),
            ],
        );
        assert!(res.groups[0].finished_at < SimTime::from_secs(1));
        assert!(res.groups[1].finished_at >= SimTime::from_secs(5));
    }

    #[test]
    fn staggered_start_delays_a_group() {
        let res = run_groups(
            quiet_cfg(1),
            vec![
                group("early", 1, SimTime::ZERO, |ctx: &mut RankCtx| {
                    ctx.compute_time(SimTime::from_millis(100));
                }),
                group("late", 1, SimTime::from_secs(2), |ctx: &mut RankCtx| {
                    ctx.compute_time(SimTime::from_millis(100));
                }),
            ],
        );
        assert!(res.groups[0].finished_at < SimTime::from_secs(1));
        assert!(res.groups[1].finished_at >= SimTime::from_secs(2));
        assert_eq!(res.finished_at, res.groups[1].finished_at);
    }

    #[test]
    fn multi_run_is_deterministic() {
        let run = || {
            let mk = || {
                move |ctx: &mut RankCtx| {
                    let me = ctx.rank();
                    let np = ctx.nprocs();
                    ctx.compute_flops(u64::from(me + 1) * 50_000);
                    ctx.send((me + 1) % np, f64_msg(0, &vec![1.0; 300]));
                    let _ = ctx.recv((me + np - 1) % np);
                }
            };
            run_groups(
                quiet_cfg(2),
                vec![
                    group("A", 3, SimTime::ZERO, mk()),
                    group("B", 3, SimTime::from_millis(50), mk()),
                ],
            )
            .trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_group_multi_matches_single_run_trace() {
        // run_single is the single-group special case; the two entry
        // points must produce identical traffic.
        let prog = |ctx: &mut RankCtx| {
            if ctx.rank() == 0 {
                ctx.send(1, f64_msg(0, &vec![2.0; 400]));
            } else {
                let _ = ctx.recv(0);
            }
        };
        let a = run_one(quiet_cfg(2), prog).trace;
        let b = run_groups(quiet_cfg(2), vec![group("main", 2, SimTime::ZERO, prog)]).trace;
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank_program_needs_no_network() {
        let res = run_one(quiet_cfg(1), |ctx| {
            ctx.compute_flops(1000);
            ctx.barrier();
            42u32
        });
        assert_eq!(res.results, vec![42]);
        assert!(res.trace.is_empty());
    }
}
