//! # fxnet-pvm
//!
//! A PVM-style message-passing presentation layer (§4 of the paper) over
//! the simulated TCP/UDP stack of [`fxnet_proto`].
//!
//! PVM semantics reproduced here, because they shape the measured traffic:
//!
//! * **Pack/unpack with fragment lists.** Data is "packed" into a message
//!   with typed calls; PVM stores the message as a *list of fragments*
//!   which are written to the socket independently. Programs that assemble
//!   their message in a copy loop and pack once (SOR, 2DFFT, SEQ, HIST,
//!   AIRSHED) produce a single large fragment → one large TCP write →
//!   trimodal packet sizes. T2DFFT packs many times per message → many
//!   fragments → many independent writes → the broad packet-size mix of
//!   Figure 3.
//! * **Routing.** The default *direct route* sends task-to-task over a
//!   lazily established TCP connection (what all six measured programs
//!   used). The *daemon route* relays through per-host daemons over UDP
//!   with stop-and-wait reliability — "better scalability, but tends to be
//!   somewhat slow" — provided as an ablation.
//! * **Daemon chatter.** The per-host daemons exchange periodic UDP state
//!   datagrams; the paper's connection definition explicitly includes
//!   "UDP traffic between the PVM daemons".
//!
//! Like the layers below, the system is pull-driven: the SPMD engine in
//! `fxnet-fx` interleaves [`PvmSystem::advance`] with rank execution.
//!
//! ```
//! use fxnet_pvm::{MessageBuilder, PvmConfig, PvmSystem, TaskId};
//! use fxnet_sim::SimTime;
//!
//! let cfg = PvmConfig { heartbeat: None, ..PvmConfig::default() };
//! let mut vm = PvmSystem::new(cfg, 2, 2);
//! let mut b = MessageBuilder::new(42);
//! b.pack_f64(&[1.0, 2.0, 3.0]);
//! vm.send(SimTime::ZERO, TaskId(0), TaskId(1), b.finish());
//! let delivered = vm.finish();
//! assert_eq!(delivered[0].msg.tag, 42);
//! assert_eq!(delivered[0].msg.reader().f64s(3), vec![1.0, 2.0, 3.0]);
//! ```

pub mod message;
pub mod system;
pub mod tenancy;

pub use message::{Message, MessageBuilder, MessageReader, OutMessage, FRAG_HEADER};
pub use system::{MsgDelivery, PvmConfig, PvmStats, PvmSystem, Route, TaskId};
pub use tenancy::{TenantMap, TenantSlice};
