//! The PVM system: tasks, routing, daemons, and the event pump.

use crate::message::{Message, OutMessage, StreamParser, FRAG_HEADER, MAGIC};
use bytes::{BufMut, Bytes, BytesMut};
use fxnet_proto::{AppEvent, ConnId, Dir, NetConfig, Network};
use fxnet_sim::{CausalEvent, CauseId, EtherStats, FrameRecord, HostId, ProtoCause, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};

/// Identifier of a PVM task (one per compute host in our runs; task `t`
/// lives on host `t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// Message routing mode (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Task-to-task TCP connections, established lazily on first send.
    /// "All of the Fx kernels and AIRSHED use this mechanism."
    Direct,
    /// Relay through the per-host daemons over UDP with stop-and-wait
    /// reliability: scalable but "tends to be somewhat slow".
    Daemon,
}

/// Magic opening a daemon-level acknowledgment datagram.
const MAGIC_ACK: u32 = 0x7076_6D41; // "pvmA"
/// Magic opening a daemon heartbeat datagram.
const MAGIC_HB: u32 = 0x7076_6D48; // "pvmH"

/// PVM layer configuration.
#[derive(Debug, Clone)]
pub struct PvmConfig {
    pub net: NetConfig,
    pub route: Route,
    /// Spacing between successive fragment writes of one message,
    /// modelling per-write syscall and copy cost at the sender. This is
    /// what spreads T2DFFT's fragments out on the wire.
    pub frag_stagger: SimTime,
    /// Period of daemon status datagrams to the master daemon
    /// (`None` disables the chatter).
    pub heartbeat: Option<SimTime>,
    /// Payload bytes of a heartbeat datagram.
    pub heartbeat_payload: usize,
    /// Local IPC hop cost for the daemon route (task↔daemon copies).
    pub ipc_latency: SimTime,
    /// Maximum data bytes per daemon-route UDP datagram.
    pub daemon_frag: usize,
    /// Daemon per-datagram processing cost (context switch + copy), paid
    /// when acknowledging an inbound datagram and when launching the next
    /// one. This is what makes the daemon route "somewhat slow" (§4).
    pub daemon_proc: SimTime,
}

impl Default for PvmConfig {
    fn default() -> Self {
        PvmConfig {
            net: NetConfig::default(),
            route: Route::Direct,
            frag_stagger: SimTime::from_micros(50),
            heartbeat: Some(SimTime::from_secs(30)),
            heartbeat_payload: 32,
            ipc_latency: SimTime::from_micros(200),
            daemon_frag: 1400,
            daemon_proc: SimTime::from_micros(500),
        }
    }
}

/// A completed message handed to the SPMD runtime.
#[derive(Debug, Clone)]
pub struct MsgDelivery {
    pub time: SimTime,
    pub src: TaskId,
    pub dst: TaskId,
    pub msg: Message,
}

/// Aggregate PVM-layer counters, snapshot via [`PvmSystem::pvm_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PvmStats {
    /// Messages accepted by [`PvmSystem::send`].
    pub messages_sent: u64,
    /// Direct-route fragments written to TCP.
    pub fragments_sent: u64,
    /// Application payload bytes packed across all sent messages.
    pub pack_bytes: u64,
    /// Daemon-route datagrams launched on the wire.
    pub daemon_datagrams: u64,
    /// Daemon-route stop-and-wait acks sent.
    pub daemon_acks: u64,
    /// Daemon heartbeat datagrams emitted.
    pub heartbeats: u64,
}

/// The PVM "parallel virtual machine": all tasks, daemons, and routing
/// state over one simulated LAN.
pub struct PvmSystem {
    cfg: PvmConfig,
    net: Network,
    n_tasks: u32,
    /// Lazily opened direct-route connections, keyed by unordered pair.
    conns: HashMap<(u32, u32), ConnId>,
    conn_ends: HashMap<ConnId, (HostId, HostId)>,
    parsers: HashMap<(u32, u8), StreamParser>,
    msg_seq: u32,
    /// Daemon route: pending datagrams (with their causes) per
    /// (src_host, dst_host).
    daemon_out: HashMap<(u32, u32), VecDeque<(Bytes, CauseId)>>,
    /// Daemon route: pairs with a datagram in flight (stop-and-wait).
    daemon_wait: HashSet<(u32, u32)>,
    daemon_parsers: HashMap<(u32, u32), StreamParser>,
    next_heartbeat: Option<SimTime>,
    events_scratch: Vec<AppEvent>,
    stats: PvmStats,
}

impl PvmSystem {
    /// Create a virtual machine with `n_tasks` tasks on the first
    /// `n_tasks` of `n_hosts` workstations (extra hosts model the idle
    /// office machines sharing the paper's LAN, including the tracer).
    pub fn new(cfg: PvmConfig, n_tasks: u32, n_hosts: u32) -> PvmSystem {
        assert!(n_tasks >= 1 && n_hosts >= n_tasks);
        let net = Network::new(cfg.net.clone(), n_hosts as usize);
        let next_heartbeat = cfg.heartbeat;
        PvmSystem {
            cfg,
            net,
            n_tasks,
            conns: HashMap::new(),
            conn_ends: HashMap::new(),
            parsers: HashMap::new(),
            msg_seq: 0,
            daemon_out: HashMap::new(),
            daemon_wait: HashSet::new(),
            daemon_parsers: HashMap::new(),
            next_heartbeat,
            events_scratch: Vec::new(),
            stats: PvmStats::default(),
        }
    }

    /// Number of tasks in the virtual machine.
    pub fn n_tasks(&self) -> u32 {
        self.n_tasks
    }

    /// Host a task runs on.
    pub fn host_of(&self, t: TaskId) -> HostId {
        assert!(t.0 < self.n_tasks);
        HostId(t.0)
    }

    /// Enable the promiscuous tracer workstation.
    pub fn set_promiscuous(&mut self, on: bool) {
        self.net.set_promiscuous(on);
    }

    /// Install a live frame tap at the tracer's capture point; `None`
    /// removes it. The tap observes delivered frames only — it cannot
    /// perturb the simulation.
    pub fn set_tap(&mut self, tap: Option<fxnet_sim::FrameTap>) {
        self.net.set_tap(tap);
    }

    /// Captured trace so far.
    pub fn trace(&self) -> &[FrameRecord] {
        self.net.trace()
    }

    /// Take ownership of the captured trace.
    pub fn take_trace(&mut self) -> Vec<FrameRecord> {
        self.net.take_trace()
    }

    /// Enable or disable passive per-link sampling (see
    /// [`Network::set_link_sampling`]).
    pub fn set_link_sampling(&mut self, bin_ns: Option<u64>) {
        self.net.set_link_sampling(bin_ns);
    }

    /// Take the accumulated per-link sample series, if sampling is on.
    pub fn take_link_stats(&mut self) -> Option<fxnet_sim::LinkStats> {
        self.net.take_link_stats()
    }

    /// Enable or disable causal capture (see [`Network::set_causal`]).
    pub fn set_causal(&mut self, on: bool) {
        self.net.set_causal(on);
    }

    /// Take ownership of the causal event log, if capture was enabled.
    pub fn take_causal(&mut self) -> Option<Vec<CausalEvent>> {
        self.net.take_causal()
    }

    /// MAC layer statistics.
    pub fn ether_stats(&self) -> EtherStats {
        self.net.ether_stats()
    }

    /// TCP layer statistics.
    pub fn tcp_stats(&self) -> fxnet_proto::TcpStats {
        self.net.tcp_stats()
    }

    /// PVM layer statistics.
    pub fn pvm_stats(&self) -> PvmStats {
        self.stats
    }

    /// Largest number of TCP timers ever pending at once.
    pub fn timer_high_water(&self) -> usize {
        self.net.timer_high_water()
    }

    /// Sender-side TCP backlog of the task's host (socket-buffer
    /// occupancy), used by the SPMD engine to block fast senders the way
    /// a real blocking socket write does.
    pub fn sender_backlog(&self, t: TaskId) -> u64 {
        self.net.host_tcp_backlog(HostId(t.0))
    }

    /// Stop daemon heartbeats (end of measurement run).
    pub fn stop_heartbeats(&mut self) {
        self.next_heartbeat = None;
    }

    fn direct_conn(&mut self, a: HostId, b: HostId, now: SimTime) -> ConnId {
        let key = (a.0.min(b.0), a.0.max(b.0));
        if let Some(&c) = self.conns.get(&key) {
            return c;
        }
        let c = self.net.connect(a, b, now);
        self.conns.insert(key, c);
        self.conn_ends.insert(c, (a, b));
        c
    }

    /// Send `msg` from `src` to `dst`, with fragment writes beginning at
    /// simulated time `now`.
    pub fn send(&mut self, now: SimTime, src: TaskId, dst: TaskId, msg: OutMessage) {
        self.send_caused(now, src, dst, msg, CauseId::NONE);
    }

    /// [`PvmSystem::send`] with a causal tag: every transport byte of the
    /// message carries `cause` down to the MAC. Returns the number of
    /// transport-payload bytes committed (message payload plus fragment
    /// headers — and, on the daemon route, the re-fragmented gram
    /// headers), which is what causal conservation checks against.
    pub fn send_caused(
        &mut self,
        now: SimTime,
        src: TaskId,
        dst: TaskId,
        msg: OutMessage,
        cause: CauseId,
    ) -> u64 {
        assert_ne!(src, dst, "self-sends are host-local IPC, never on the wire");
        self.msg_seq += 1;
        let seq = self.msg_seq;
        self.stats.messages_sent += 1;
        self.stats.pack_bytes += msg.payload_len() as u64;
        let mut transport_bytes = 0u64;
        match self.cfg.route {
            Route::Direct => {
                let (ha, hb) = (self.host_of(src), self.host_of(dst));
                let conn = self.direct_conn(ha, hb, now);
                let stagger = self.cfg.frag_stagger;
                self.stats.fragments_sent += msg.frags.len() as u64;
                for i in 0..msg.frags.len() {
                    let wire = msg.encode_frag(i, src.0, seq);
                    let t = now + SimTime(stagger.as_nanos() * i as u64);
                    transport_bytes += wire.len() as u64;
                    self.net.tcp_write_caused(conn, ha, wire, t, cause);
                }
            }
            Route::Daemon => {
                // The local daemon re-fragments the flattened message into
                // MTU-sized datagrams and relays with stop-and-wait.
                let body: Vec<u8> = msg.frags.iter().flat_map(|f| f.iter().copied()).collect();
                let chunks: Vec<&[u8]> = if body.is_empty() {
                    vec![&[][..]]
                } else {
                    body.chunks(self.cfg.daemon_frag).collect()
                };
                let n = chunks.len();
                let mut grams = VecDeque::with_capacity(n);
                for (i, c) in chunks.iter().enumerate() {
                    let mut flags = 0u32;
                    if i == 0 {
                        flags |= 0b01;
                    }
                    if i + 1 == n {
                        flags |= 0b10;
                    }
                    let mut b = BytesMut::with_capacity(FRAG_HEADER + c.len());
                    b.put_u32_le(MAGIC);
                    b.put_u32_le(seq);
                    b.put_u32_le(c.len() as u32);
                    b.put_u32_le(flags);
                    b.put_i32_le(msg.tag);
                    b.put_u32_le(src.0);
                    b.extend_from_slice(c);
                    let gram = b.freeze();
                    transport_bytes += gram.len() as u64;
                    grams.push_back((gram, cause));
                }
                let key = (src.0, dst.0);
                self.daemon_out.entry(key).or_default().extend(grams);
                // First hop: task → local daemon costs one IPC latency.
                self.pump_daemon_pair(key, now + self.cfg.ipc_latency);
            }
        }
        transport_bytes
    }

    /// If the pair has no datagram in flight, launch the next one.
    fn pump_daemon_pair(&mut self, key: (u32, u32), now: SimTime) {
        if self.daemon_wait.contains(&key) {
            return;
        }
        let q = match self.daemon_out.get_mut(&key) {
            Some(q) => q,
            None => return,
        };
        if let Some((gram, cause)) = q.pop_front() {
            self.daemon_wait.insert(key);
            self.stats.daemon_datagrams += 1;
            self.net
                .udp_send_caused(HostId(key.0), HostId(key.1), gram, now, cause);
        }
    }

    /// Time of the next event anywhere in the stack.
    pub fn next_event_time(&self) -> Option<SimTime> {
        match (self.net.next_event_time(), self.next_heartbeat) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Process exactly one event, appending completed message deliveries.
    /// Returns the event time, or `None` when idle.
    pub fn advance(&mut self, out: &mut Vec<MsgDelivery>) -> Option<SimTime> {
        let t_net = self.net.next_event_time();
        let t_hb = self.next_heartbeat;
        let hb_first = match (t_net, t_hb) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(tn), Some(th)) => th < tn,
        };
        if hb_first {
            let t = t_hb.expect("checked");
            self.emit_heartbeats(t);
            self.next_heartbeat = self.cfg.heartbeat.map(|p| t + p);
            return Some(t);
        }
        let mut events = std::mem::take(&mut self.events_scratch);
        events.clear();
        let t = self.net.advance(&mut events);
        for e in &events {
            self.handle_event(e, out);
        }
        self.events_scratch = events;
        t
    }

    /// Drain every pending event, disabling further heartbeats first.
    pub fn finish(&mut self) -> Vec<MsgDelivery> {
        self.stop_heartbeats();
        let mut out = Vec::new();
        while self.advance(&mut out).is_some() {}
        out
    }

    fn emit_heartbeats(&mut self, t: SimTime) {
        // Every slave daemon reports to the master daemon on host 0.
        let payload_len = self.cfg.heartbeat_payload.max(8);
        let n_hosts = self.net.host_count() as u32;
        for h in 1..n_hosts {
            let mut b = BytesMut::with_capacity(payload_len);
            b.put_u32_le(MAGIC_HB);
            b.put_u32_le(h);
            b.resize(payload_len, 0);
            self.stats.heartbeats += 1;
            self.net.udp_send_caused(
                HostId(h),
                HostId(0),
                b.freeze(),
                t,
                CauseId::protocol(ProtoCause::Heartbeat),
            );
        }
    }

    fn handle_event(&mut self, e: &AppEvent, out: &mut Vec<MsgDelivery>) {
        match e {
            AppEvent::TcpEstablished { .. } => {}
            AppEvent::TcpData {
                time,
                conn,
                dir,
                data,
            } => {
                let key = (conn.0, matches!(dir, Dir::BtoA) as u8);
                let msgs = self.parsers.entry(key).or_default().feed(data);
                if msgs.is_empty() {
                    return;
                }
                let (a, b) = self.conn_ends[conn];
                let dst_host = match dir {
                    Dir::AtoB => b,
                    Dir::BtoA => a,
                };
                for m in msgs {
                    out.push(MsgDelivery {
                        time: *time,
                        src: TaskId(m.src_task),
                        dst: TaskId(dst_host.0),
                        msg: m,
                    });
                }
            }
            AppEvent::Udp {
                time,
                src,
                dst,
                data,
            } => {
                let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
                if magic == MAGIC_HB {
                    return; // state chatter only
                }
                if magic == MAGIC_ACK {
                    // Ack arrives back at the *sender* (dst of the ack).
                    let key = (dst.0, src.0);
                    self.daemon_wait.remove(&key);
                    let t = *time + self.cfg.daemon_proc;
                    self.pump_daemon_pair(key, t);
                    return;
                }
                debug_assert_eq!(magic, MAGIC);
                // A relayed fragment at the destination daemon: ack it and
                // feed the reassembler.
                let mut ack = BytesMut::with_capacity(12);
                self.stats.daemon_acks += 1;
                ack.put_u32_le(MAGIC_ACK);
                ack.put_u32_le(u32::from_le_bytes(data[4..8].try_into().unwrap()));
                ack.put_u32_le(0);
                self.net.udp_send_caused(
                    *dst,
                    *src,
                    ack.freeze(),
                    *time + self.cfg.daemon_proc,
                    CauseId::protocol(ProtoCause::DaemonAck),
                );
                let msgs = self
                    .daemon_parsers
                    .entry((src.0, dst.0))
                    .or_default()
                    .feed(data);
                let ipc = self.cfg.ipc_latency;
                for m in msgs {
                    out.push(MsgDelivery {
                        // Final hop: daemon → task IPC.
                        time: *time + ipc,
                        src: TaskId(m.src_task),
                        dst: TaskId(dst.0),
                        msg: m,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageBuilder;
    use fxnet_sim::{FrameKind, Proto};

    fn direct_cfg() -> PvmConfig {
        PvmConfig {
            heartbeat: None,
            ..PvmConfig::default()
        }
    }

    fn msg_of(tag: i32, data: &[f64]) -> OutMessage {
        let mut b = MessageBuilder::new(tag);
        b.pack_f64(data);
        b.finish()
    }

    #[test]
    fn direct_route_delivers_content() {
        let mut p = PvmSystem::new(direct_cfg(), 2, 2);
        let data: Vec<f64> = (0..1000).map(f64::from).collect();
        p.send(SimTime::ZERO, TaskId(0), TaskId(1), msg_of(7, &data));
        let out = p.finish();
        assert_eq!(out.len(), 1);
        let d = &out[0];
        assert_eq!(d.src, TaskId(0));
        assert_eq!(d.dst, TaskId(1));
        assert_eq!(d.msg.tag, 7);
        assert_eq!(d.msg.reader().f64s(1000), data);
    }

    #[test]
    fn connection_reused_across_sends() {
        let mut p = PvmSystem::new(direct_cfg(), 2, 2);
        p.set_promiscuous(true);
        p.send(SimTime::ZERO, TaskId(0), TaskId(1), msg_of(1, &[1.0]));
        let mut out = Vec::new();
        while p.advance(&mut out).is_some() {}
        p.send(
            SimTime::from_secs(1),
            TaskId(1),
            TaskId(0),
            msg_of(2, &[2.0]),
        );
        let _ = p.finish();
        let syns = p
            .trace()
            .iter()
            .filter(|r| r.kind == FrameKind::Syn)
            .count();
        // One handshake total (SYN + SYN-ACK; the final ACK is FrameKind::Ack).
        assert_eq!(syns, 2);
    }

    #[test]
    fn copy_loop_message_is_trimodal_on_wire() {
        let mut p = PvmSystem::new(direct_cfg(), 2, 2);
        p.set_promiscuous(true);
        // 1000 f64s = 8024 wire bytes = 5×1460 + 724.
        p.send(
            SimTime::ZERO,
            TaskId(0),
            TaskId(1),
            msg_of(0, &vec![1.0; 1000]),
        );
        p.finish();
        let mut sizes: Vec<u32> = p
            .trace()
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .map(|r| r.wire_len)
            .collect();
        let tail = sizes.pop().unwrap();
        assert!(sizes.iter().all(|&s| s == 1518), "full segments first");
        assert_eq!(tail, 58 + 8024 - 5 * 1460);
    }

    #[test]
    fn multi_pack_message_spreads_fragments() {
        let mut p = PvmSystem::new(direct_cfg(), 2, 2);
        p.set_promiscuous(true);
        let mut b = MessageBuilder::new(3).multi_pack();
        for _ in 0..8 {
            b.pack_f32(&vec![0.5f32; 128]); // 512-byte fragments
        }
        p.send(SimTime::ZERO, TaskId(0), TaskId(1), b.finish());
        let out = p.finish();
        assert_eq!(out[0].msg.n_frags, 8);
        let data_frames: Vec<u32> = p
            .trace()
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .map(|r| r.wire_len)
            .collect();
        // Each 536-byte fragment write becomes its own 594-byte frame.
        assert_eq!(data_frames.len(), 8);
        assert!(data_frames.iter().all(|&s| s == 58 + 536));
    }

    #[test]
    fn seq_element_frame_is_90_bytes() {
        let mut p = PvmSystem::new(direct_cfg(), 2, 2);
        p.set_promiscuous(true);
        p.send(SimTime::ZERO, TaskId(0), TaskId(1), msg_of(0, &[42.0]));
        p.finish();
        let d = p
            .trace()
            .iter()
            .find(|r| r.kind == FrameKind::Data)
            .unwrap();
        assert_eq!(d.wire_len, 90);
    }

    #[test]
    fn daemon_route_delivers_and_uses_udp_only() {
        let cfg = PvmConfig {
            route: Route::Daemon,
            heartbeat: None,
            ..PvmConfig::default()
        };
        let mut p = PvmSystem::new(cfg, 2, 2);
        p.set_promiscuous(true);
        let data: Vec<f64> = (0..2000).map(|i| f64::from(i) * 0.5).collect();
        p.send(SimTime::ZERO, TaskId(0), TaskId(1), msg_of(9, &data));
        let out = p.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.reader().f64s(2000), data);
        assert!(p.trace().iter().all(|r| r.proto == Proto::Udp));
        // Stop-and-wait: one ack per data datagram.
        let datagrams = p.trace().len();
        assert!(
            datagrams >= 2 && datagrams.is_multiple_of(2),
            "{datagrams} datagrams"
        );
    }

    #[test]
    fn daemon_route_is_slower_than_direct() {
        let run = |route| {
            let cfg = PvmConfig {
                route,
                heartbeat: None,
                ..PvmConfig::default()
            };
            let mut p = PvmSystem::new(cfg, 2, 2);
            p.send(
                SimTime::ZERO,
                TaskId(0),
                TaskId(1),
                msg_of(0, &vec![1.0; 20_000]),
            );
            let out = p.finish();
            out[0].time
        };
        let direct = run(Route::Direct);
        let daemon = run(Route::Daemon);
        assert!(
            daemon > direct,
            "daemon {daemon} should be slower than direct {direct}"
        );
    }

    #[test]
    fn heartbeats_appear_periodically() {
        let cfg = PvmConfig {
            heartbeat: Some(SimTime::from_secs(2)),
            ..PvmConfig::default()
        };
        let mut p = PvmSystem::new(cfg, 2, 4);
        p.set_promiscuous(true);
        // Pump until three heartbeat rounds have fired.
        let mut out = Vec::new();
        while let Some(t) = p.advance(&mut out) {
            if t > SimTime::from_secs(7) {
                break;
            }
        }
        let hb = p
            .trace()
            .iter()
            .filter(|r| r.proto == Proto::Udp && r.dst == HostId(0))
            .count();
        // 3 rounds × 3 slave daemons.
        assert_eq!(hb, 9);
    }

    #[test]
    fn interleaved_bidirectional_sends() {
        let mut p = PvmSystem::new(direct_cfg(), 3, 3);
        for i in 0..5u32 {
            let t = SimTime::from_millis(u64::from(i));
            p.send(t, TaskId(0), TaskId(1), msg_of(i as i32, &[f64::from(i)]));
            p.send(
                t,
                TaskId(1),
                TaskId(0),
                msg_of(100 + i as i32, &[f64::from(i)]),
            );
            p.send(
                t,
                TaskId(2),
                TaskId(0),
                msg_of(200 + i as i32, &[f64::from(i)]),
            );
        }
        let out = p.finish();
        assert_eq!(out.len(), 15);
        let to0 = out.iter().filter(|d| d.dst == TaskId(0)).count();
        assert_eq!(to0, 10);
        // Per-pair FIFO: tags increase along each (src,dst) stream.
        for (s, d) in [(1u32, 0u32), (0, 1), (2, 0)] {
            let tags: Vec<i32> = out
                .iter()
                .filter(|m| m.src == TaskId(s) && m.dst == TaskId(d))
                .map(|m| m.msg.tag)
                .collect();
            let mut sorted = tags.clone();
            sorted.sort_unstable();
            assert_eq!(tags, sorted, "FIFO violated for {s}->{d}");
        }
    }

    #[test]
    fn empty_message_crosses_the_wire() {
        let mut p = PvmSystem::new(direct_cfg(), 2, 2);
        p.set_promiscuous(true);
        p.send(
            SimTime::ZERO,
            TaskId(0),
            TaskId(1),
            MessageBuilder::new(9).finish(),
        );
        let out = p.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.tag, 9);
        assert_eq!(out[0].msg.body.len(), 0);
        // Header-only fragment: 58 + 24 = 82-byte frame.
        let d = p
            .trace()
            .iter()
            .find(|r| r.kind == FrameKind::Data)
            .unwrap();
        assert_eq!(d.wire_len, 82);
    }

    #[test]
    fn fragment_stagger_spreads_writes_in_time() {
        let cfg = PvmConfig {
            heartbeat: None,
            frag_stagger: SimTime::from_millis(5),
            ..PvmConfig::default()
        };
        let mut p = PvmSystem::new(cfg, 2, 2);
        // Warm the connection up first: writes queued during the TCP
        // handshake flush together, hiding the stagger.
        p.send(SimTime::ZERO, TaskId(0), TaskId(1), msg_of(0, &[0.0]));
        let mut sink = Vec::new();
        while p.advance(&mut sink).is_some() {}
        p.set_promiscuous(true);
        let mut b = MessageBuilder::new(0).multi_pack();
        for _ in 0..4 {
            b.pack_u32(&[1, 2, 3]);
        }
        p.send(SimTime::from_secs(1), TaskId(0), TaskId(1), b.finish());
        p.finish();
        let data: Vec<SimTime> = p
            .trace()
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .map(|r| r.time)
            .collect();
        assert_eq!(data.len(), 4);
        for w in data.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                gap >= SimTime::from_millis(4),
                "fragments must be staggered, gap {gap}"
            );
        }
    }

    #[test]
    fn daemon_route_fragments_large_messages() {
        let cfg = PvmConfig {
            route: Route::Daemon,
            heartbeat: None,
            daemon_frag: 1000,
            ..PvmConfig::default()
        };
        let mut p = PvmSystem::new(cfg, 2, 2);
        p.set_promiscuous(true);
        let data: Vec<f64> = (0..500).map(f64::from).collect(); // 4000 B
        p.send(SimTime::ZERO, TaskId(0), TaskId(1), msg_of(1, &data));
        let out = p.finish();
        assert_eq!(out[0].msg.reader().f64s(500), data);
        // 4 data datagrams (1000 B each) + 4 acks.
        let forward = p.trace().iter().filter(|r| r.dst == HostId(1)).count();
        assert_eq!(forward, 4);
    }

    #[test]
    fn sender_backlog_reflects_queued_bytes() {
        let mut p = PvmSystem::new(direct_cfg(), 2, 2);
        assert_eq!(p.sender_backlog(TaskId(0)), 0);
        p.send(
            SimTime::ZERO,
            TaskId(0),
            TaskId(1),
            msg_of(0, &vec![0.0; 10_000]),
        );
        assert!(p.sender_backlog(TaskId(0)) >= 80_000);
        p.finish();
        assert_eq!(p.sender_backlog(TaskId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_rejected() {
        let mut p = PvmSystem::new(direct_cfg(), 2, 2);
        p.send(SimTime::ZERO, TaskId(0), TaskId(0), msg_of(0, &[1.0]));
    }

    #[test]
    fn deterministic_trace() {
        let run = || {
            let mut p = PvmSystem::new(PvmConfig::default(), 4, 5);
            p.set_promiscuous(true);
            for i in 0..4u32 {
                for j in 0..4u32 {
                    if i != j {
                        p.send(
                            SimTime::from_micros(u64::from(i * 7 + j)),
                            TaskId(i),
                            TaskId(j),
                            msg_of(0, &vec![1.0; 500]),
                        );
                    }
                }
            }
            p.finish();
            p.take_trace()
        };
        assert_eq!(run(), run());
    }
}
