//! PVM message representation: typed packing into fragment lists, the wire
//! format, and typed unpacking.
//!
//! The fragment structure is observable on the network (paper §4/§6.1):
//! each fragment is written to the socket independently, so pack-call
//! boundaries become TCP write boundaries and ultimately packet
//! boundaries. The 24-byte fragment header is sized so that SEQ's
//! single-`f64` broadcasts appear as 90-byte frames (58 B protocol
//! overhead + 24 B header + 8 B data), matching Figure 3's SEQ maximum.

use bytes::{BufMut, Bytes, BytesMut};

/// Bytes of wire header preceding every fragment.
pub const FRAG_HEADER: usize = 24;

/// Magic tag opening every fragment header.
pub const MAGIC: u32 = 0x7076_6D33; // "pvm3"

const FLAG_FIRST: u32 = 0b01;
const FLAG_LAST: u32 = 0b10;

/// A message under construction at the sender.
///
/// In the default *copy-loop* mode every `pack_*` call appends to one
/// buffer, and the finished message is a single fragment — this is how
/// SOR, 2DFFT, SEQ, HIST and AIRSHED behave ("an artifact of other (older)
/// Fx implementations"). With [`MessageBuilder::multi_pack`], each pack
/// call closes the previous fragment and starts a new one — T2DFFT's
/// behaviour, which PVM sends as a series of independent socket writes.
#[derive(Debug)]
pub struct MessageBuilder {
    tag: i32,
    frags: Vec<Vec<u8>>,
    current: Vec<u8>,
    multi_pack: bool,
}

impl MessageBuilder {
    /// Start a message with the given application tag (copy-loop mode).
    pub fn new(tag: i32) -> MessageBuilder {
        MessageBuilder {
            tag,
            frags: Vec::new(),
            current: Vec::new(),
            multi_pack: false,
        }
    }

    /// Switch to multi-pack mode: each `pack_*` call becomes its own
    /// fragment (T2DFFT's pattern).
    pub fn multi_pack(mut self) -> MessageBuilder {
        self.multi_pack = true;
        self
    }

    fn close_fragment(&mut self) {
        if !self.current.is_empty() {
            self.frags.push(std::mem::take(&mut self.current));
        }
    }

    fn begin_pack(&mut self) {
        if self.multi_pack {
            self.close_fragment();
        }
    }

    /// Pack a slice of `f64` values.
    pub fn pack_f64(&mut self, v: &[f64]) -> &mut Self {
        self.begin_pack();
        self.current.reserve(v.len() * 8);
        for &x in v {
            self.current.extend_from_slice(&x.to_le_bytes());
        }
        self
    }

    /// Pack a slice of `f32` values (Fortran `REAL`, and the components of
    /// Fortran single-precision `COMPLEX`).
    pub fn pack_f32(&mut self, v: &[f32]) -> &mut Self {
        self.begin_pack();
        self.current.reserve(v.len() * 4);
        for &x in v {
            self.current.extend_from_slice(&x.to_le_bytes());
        }
        self
    }

    /// Pack a slice of `i32` values.
    pub fn pack_i32(&mut self, v: &[i32]) -> &mut Self {
        self.begin_pack();
        self.current.reserve(v.len() * 4);
        for &x in v {
            self.current.extend_from_slice(&x.to_le_bytes());
        }
        self
    }

    /// Pack a slice of `u32` values.
    pub fn pack_u32(&mut self, v: &[u32]) -> &mut Self {
        self.begin_pack();
        self.current.reserve(v.len() * 4);
        for &x in v {
            self.current.extend_from_slice(&x.to_le_bytes());
        }
        self
    }

    /// Pack a slice of `u64` values.
    pub fn pack_u64(&mut self, v: &[u64]) -> &mut Self {
        self.begin_pack();
        self.current.reserve(v.len() * 8);
        for &x in v {
            self.current.extend_from_slice(&x.to_le_bytes());
        }
        self
    }

    /// Pack raw bytes.
    pub fn pack_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.begin_pack();
        self.current.extend_from_slice(v);
        self
    }

    /// Finish packing; the result is ready for [`crate::PvmSystem::send`].
    pub fn finish(mut self) -> OutMessage {
        self.close_fragment();
        if self.frags.is_empty() {
            // Zero-length messages still occupy a fragment on the wire so
            // the receiver can observe them (e.g. barrier tokens).
            self.frags.push(Vec::new());
        }
        OutMessage {
            tag: self.tag,
            frags: self.frags.into_iter().map(Bytes::from).collect(),
        }
    }
}

/// A finished outbound message: an application tag plus its fragment list.
#[derive(Debug, Clone)]
pub struct OutMessage {
    pub tag: i32,
    pub frags: Vec<Bytes>,
}

impl OutMessage {
    /// Total payload bytes (excluding wire headers).
    pub fn payload_len(&self) -> usize {
        self.frags.iter().map(Bytes::len).sum()
    }

    /// Bytes this message will occupy on the TCP stream, headers included.
    pub fn wire_len(&self) -> usize {
        self.payload_len() + FRAG_HEADER * self.frags.len()
    }

    /// Encode fragment `i` (header + data) for transmission from `src_task`
    /// with message sequence number `seq`.
    pub fn encode_frag(&self, i: usize, src_task: u32, seq: u32) -> Bytes {
        let data = &self.frags[i];
        let mut flags = 0u32;
        if i == 0 {
            flags |= FLAG_FIRST;
        }
        if i + 1 == self.frags.len() {
            flags |= FLAG_LAST;
        }
        let mut b = BytesMut::with_capacity(FRAG_HEADER + data.len());
        b.put_u32_le(MAGIC);
        b.put_u32_le(seq);
        b.put_u32_le(data.len() as u32);
        b.put_u32_le(flags);
        b.put_i32_le(self.tag);
        b.put_u32_le(src_task);
        b.extend_from_slice(data);
        b.freeze()
    }
}

/// A fully reassembled inbound message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub tag: i32,
    /// Sending task id, recovered from the fragment headers.
    pub src_task: u32,
    /// Number of wire fragments the message arrived in (T2DFFT > 1).
    pub n_frags: u32,
    /// Concatenated payload.
    pub body: Bytes,
}

impl Message {
    /// Typed sequential reader over the body.
    pub fn reader(&self) -> MessageReader<'_> {
        MessageReader {
            body: &self.body,
            pos: 0,
        }
    }
}

/// Sequential typed unpacking, mirroring the pack calls.
#[derive(Debug)]
pub struct MessageReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> MessageReader<'a> {
    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(
            self.pos + n <= self.body.len(),
            "unpack past end of message ({} + {} > {})",
            self.pos,
            n,
            self.body.len()
        );
        let s = &self.body[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Unpack `n` `f64` values.
    pub fn f64s(&mut self, n: usize) -> Vec<f64> {
        self.take(n * 8)
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Unpack `n` `f32` values.
    pub fn f32s(&mut self, n: usize) -> Vec<f32> {
        self.take(n * 4)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Unpack `n` `i32` values.
    pub fn i32s(&mut self, n: usize) -> Vec<i32> {
        self.take(n * 4)
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Unpack `n` `u32` values.
    pub fn u32s(&mut self, n: usize) -> Vec<u32> {
        self.take(n * 4)
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Unpack `n` `u64` values.
    pub fn u64s(&mut self, n: usize) -> Vec<u64> {
        self.take(n * 8)
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Unpack `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> &'a [u8] {
        self.take(n)
    }

    /// Bytes not yet unpacked.
    pub fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }
}

/// Incremental parser converting an in-order byte stream back into
/// messages. One parser exists per (connection, direction); TCP delivers
/// arbitrary chunkings of the stream and the parser is insensitive to
/// where chunk boundaries fall.
#[derive(Debug, Default)]
pub struct StreamParser {
    buf: BytesMut,
    /// Fragments of the in-progress message.
    partial: Vec<Bytes>,
    partial_tag: i32,
    partial_src: u32,
}

impl StreamParser {
    /// A parser with empty state.
    pub fn new() -> StreamParser {
        StreamParser::default()
    }

    /// Feed stream bytes; returns any messages completed by this chunk.
    pub fn feed(&mut self, chunk: &[u8]) -> Vec<Message> {
        self.buf.extend_from_slice(chunk);
        let mut done = Vec::new();
        loop {
            if self.buf.len() < FRAG_HEADER {
                break;
            }
            let magic = u32::from_le_bytes(self.buf[0..4].try_into().unwrap());
            assert_eq!(magic, MAGIC, "stream desynchronized");
            let frag_len = u32::from_le_bytes(self.buf[8..12].try_into().unwrap()) as usize;
            if self.buf.len() < FRAG_HEADER + frag_len {
                break;
            }
            let flags = u32::from_le_bytes(self.buf[12..16].try_into().unwrap());
            let tag = i32::from_le_bytes(self.buf[16..20].try_into().unwrap());
            let src = u32::from_le_bytes(self.buf[20..24].try_into().unwrap());
            let _ = self.buf.split_to(FRAG_HEADER);
            let data = self.buf.split_to(frag_len).freeze();
            if flags & FLAG_FIRST != 0 {
                debug_assert!(
                    self.partial.is_empty(),
                    "interleaved fragments on one stream"
                );
                self.partial_tag = tag;
                self.partial_src = src;
            }
            self.partial.push(data);
            if flags & FLAG_LAST != 0 {
                let n_frags = self.partial.len() as u32;
                let body = if n_frags == 1 {
                    self.partial.pop().expect("one fragment")
                } else {
                    let total: usize = self.partial.iter().map(Bytes::len).sum();
                    let mut b = BytesMut::with_capacity(total);
                    for f in self.partial.drain(..) {
                        b.extend_from_slice(&f);
                    }
                    b.freeze()
                };
                self.partial.clear();
                done.push(Message {
                    tag: self.partial_tag,
                    src_task: self.partial_src,
                    n_frags,
                    body,
                });
            }
        }
        done
    }

    /// Whether a message is partially received.
    pub fn mid_message(&self) -> bool {
        !self.partial.is_empty() || !self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(out: OutMessage, src: u32) -> Message {
        let mut p = StreamParser::new();
        let mut msgs = Vec::new();
        for i in 0..out.frags.len() {
            msgs.extend(p.feed(&out.encode_frag(i, src, 42)));
        }
        assert_eq!(msgs.len(), 1);
        assert!(!p.mid_message());
        msgs.pop().unwrap()
    }

    #[test]
    fn copy_loop_mode_is_single_fragment() {
        let mut b = MessageBuilder::new(7);
        b.pack_f64(&[1.0, 2.0]).pack_i32(&[3, 4]).pack_bytes(b"xy");
        let m = b.finish();
        assert_eq!(m.frags.len(), 1);
        assert_eq!(m.payload_len(), 16 + 8 + 2);
        assert_eq!(m.wire_len(), 26 + FRAG_HEADER);
    }

    #[test]
    fn multi_pack_mode_fragments_per_pack() {
        let mut b = MessageBuilder::new(9).multi_pack();
        b.pack_f32(&[1.0; 8])
            .pack_f32(&[2.0; 8])
            .pack_f32(&[3.0; 8]);
        let m = b.finish();
        assert_eq!(m.frags.len(), 3);
        assert_eq!(m.wire_len(), 3 * 32 + 3 * FRAG_HEADER);
    }

    #[test]
    fn seq_style_message_is_32_wire_bytes() {
        // One f64 element: 24 B header + 8 B data → with 58 B protocol
        // overhead this is the paper's 90-byte SEQ frame.
        let mut b = MessageBuilder::new(0);
        b.pack_f64(&[3.25]);
        let m = b.finish();
        assert_eq!(m.wire_len(), 32);
    }

    #[test]
    fn typed_round_trip() {
        let mut b = MessageBuilder::new(-3);
        b.pack_f64(&[1.5, -2.5])
            .pack_f32(&[0.25])
            .pack_i32(&[-7])
            .pack_u32(&[9])
            .pack_u64(&[u64::MAX])
            .pack_bytes(&[1, 2, 3]);
        let m = round_trip(b.finish(), 2);
        assert_eq!(m.tag, -3);
        assert_eq!(m.src_task, 2);
        let mut r = m.reader();
        assert_eq!(r.f64s(2), vec![1.5, -2.5]);
        assert_eq!(r.f32s(1), vec![0.25]);
        assert_eq!(r.i32s(1), vec![-7]);
        assert_eq!(r.u32s(1), vec![9]);
        assert_eq!(r.u64s(1), vec![u64::MAX]);
        assert_eq!(r.bytes(3), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn multi_fragment_round_trip_preserves_frag_count() {
        let mut b = MessageBuilder::new(5).multi_pack();
        for i in 0..10 {
            b.pack_u32(&[i]);
        }
        let m = round_trip(b.finish(), 1);
        assert_eq!(m.n_frags, 10);
        let mut r = m.reader();
        assert_eq!(r.u32s(10), (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_message_still_transmits() {
        let m = MessageBuilder::new(11).finish();
        assert_eq!(m.frags.len(), 1);
        let got = round_trip(m, 0);
        assert_eq!(got.tag, 11);
        assert_eq!(got.body.len(), 0);
    }

    #[test]
    #[should_panic(expected = "unpack past end")]
    fn over_read_panics() {
        let mut b = MessageBuilder::new(0);
        b.pack_i32(&[1]);
        let m = round_trip(b.finish(), 0);
        let mut r = m.reader();
        let _ = r.i32s(2);
    }

    proptest! {
        #[test]
        fn parser_is_chunking_invariant(
            payload in prop::collection::vec(any::<u8>(), 0..2000),
            cuts in prop::collection::vec(1usize..64, 0..40),
            multi in any::<bool>(),
        ) {
            let mut b = MessageBuilder::new(1);
            if multi {
                b = b.multi_pack();
                for c in payload.chunks(97) {
                    b.pack_bytes(c);
                }
            } else {
                b.pack_bytes(&payload);
            }
            let out = b.finish();
            let mut wire = Vec::new();
            for i in 0..out.frags.len() {
                wire.extend_from_slice(&out.encode_frag(i, 3, 1));
            }
            // Feed the wire bytes in arbitrary chunk sizes.
            let mut p = StreamParser::new();
            let mut msgs = Vec::new();
            let mut pos = 0;
            for &c in &cuts {
                if pos >= wire.len() { break; }
                let end = (pos + c).min(wire.len());
                msgs.extend(p.feed(&wire[pos..end]));
                pos = end;
            }
            if pos < wire.len() {
                msgs.extend(p.feed(&wire[pos..]));
            }
            prop_assert_eq!(msgs.len(), 1);
            prop_assert_eq!(msgs[0].body.to_vec(), payload);
        }

        #[test]
        fn f64_pack_unpack_round_trip(v in prop::collection::vec(any::<f64>(), 0..200)) {
            let mut b = MessageBuilder::new(0);
            b.pack_f64(&v);
            let m = round_trip(b.finish(), 0);
            let got = m.reader().f64s(v.len());
            for (a, b) in got.iter().zip(&v) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }

        #[test]
        fn back_to_back_messages_parse(
            n1 in 0usize..300,
            n2 in 0usize..300,
        ) {
            let mut b1 = MessageBuilder::new(1);
            b1.pack_bytes(&vec![0xAA; n1]);
            let m1 = b1.finish();
            let mut b2 = MessageBuilder::new(2);
            b2.pack_bytes(&vec![0xBB; n2]);
            let m2 = b2.finish();
            let mut wire = Vec::new();
            wire.extend_from_slice(&m1.encode_frag(0, 0, 1));
            wire.extend_from_slice(&m2.encode_frag(0, 0, 2));
            let mut p = StreamParser::new();
            let msgs = p.feed(&wire);
            prop_assert_eq!(msgs.len(), 2);
            prop_assert_eq!(msgs[0].tag, 1);
            prop_assert_eq!(msgs[1].tag, 2);
            prop_assert_eq!(msgs[0].body.len(), n1);
            prop_assert_eq!(msgs[1].body.len(), n2);
        }
    }
}
