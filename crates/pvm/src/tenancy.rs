//! Multi-tenant task-id and host namespacing.
//!
//! When several SPMD programs share one virtual machine (the `fxnet-mix`
//! subsystem), each tenant receives a contiguous block of global task
//! ids — and therefore of hosts, since task `t` lives on host `t`. The
//! [`TenantMap`] records that ownership so that higher layers can
//! translate between a tenant's local rank space and the global task-id
//! space, and so the trace analyzer can attribute each captured frame to
//! the tenant whose hosts exchanged it.

use crate::system::TaskId;
use fxnet_sim::HostId;

/// One tenant's slice of the global task-id/host space.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TenantSlice {
    /// Display name of the tenant ("SOR", "tenant-3", ...).
    pub name: String,
    /// First global task id owned by the tenant.
    pub base: u32,
    /// Number of ranks (and hosts) the tenant owns.
    pub p: u32,
}

impl TenantSlice {
    /// Whether the tenant owns global task id `t`.
    pub fn owns_task(&self, t: TaskId) -> bool {
        t.0 >= self.base && t.0 < self.base + self.p
    }

    /// Whether the tenant owns host `h` (task `t` lives on host `t`).
    pub fn owns_host(&self, h: HostId) -> bool {
        h.0 >= self.base && h.0 < self.base + self.p
    }
}

/// Ownership map of the global task-id/host space across tenants.
///
/// Built by assigning each tenant a contiguous block in declaration
/// order; blocks are disjoint by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TenantMap {
    slices: Vec<TenantSlice>,
}

impl TenantMap {
    /// Build a map from `(name, p)` pairs, packing tenants into
    /// contiguous blocks starting at task 0.
    pub fn pack(tenants: impl IntoIterator<Item = (String, u32)>) -> TenantMap {
        let mut slices = Vec::new();
        let mut base = 0u32;
        for (name, p) in tenants {
            assert!(p >= 1, "tenant {name} must have at least one rank");
            slices.push(TenantSlice { name, base, p });
            base += p;
        }
        TenantMap { slices }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether the map holds no tenants.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// The tenant slices in declaration order.
    pub fn slices(&self) -> &[TenantSlice] {
        &self.slices
    }

    /// Total ranks across all tenants.
    pub fn total_ranks(&self) -> u32 {
        self.slices.iter().map(|s| s.p).sum()
    }

    /// Index of the tenant owning global task id `t`, if any.
    pub fn owner_of_task(&self, t: TaskId) -> Option<usize> {
        self.slices.iter().position(|s| s.owns_task(t))
    }

    /// Index of the tenant owning host `h`, if any.
    pub fn owner_of_host(&self, h: HostId) -> Option<usize> {
        self.slices.iter().position(|s| s.owns_host(h))
    }

    /// Translate a tenant-local rank to the global task id.
    pub fn global(&self, tenant: usize, local: u32) -> TaskId {
        let s = &self.slices[tenant];
        assert!(local < s.p, "rank {local} out of range for tenant {tenant}");
        TaskId(s.base + local)
    }

    /// Translate a global task id to `(tenant index, local rank)`.
    pub fn local(&self, t: TaskId) -> Option<(usize, u32)> {
        let i = self.owner_of_task(t)?;
        Some((i, t.0 - self.slices[i].base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map3() -> TenantMap {
        TenantMap::pack([
            ("A".to_string(), 4),
            ("B".to_string(), 2),
            ("C".to_string(), 3),
        ])
    }

    #[test]
    fn packing_is_contiguous_and_disjoint() {
        let m = map3();
        assert_eq!(m.len(), 3);
        assert_eq!(m.total_ranks(), 9);
        let bases: Vec<u32> = m.slices().iter().map(|s| s.base).collect();
        assert_eq!(bases, vec![0, 4, 6]);
        // Every global task id has exactly one owner.
        for t in 0..9 {
            let owners = (0..3)
                .filter(|&i| m.slices()[i].owns_task(TaskId(t)))
                .count();
            assert_eq!(owners, 1, "task {t}");
        }
        assert_eq!(m.owner_of_task(TaskId(9)), None);
    }

    #[test]
    fn translation_round_trips() {
        let m = map3();
        for tenant in 0..m.len() {
            for local in 0..m.slices()[tenant].p {
                let g = m.global(tenant, local);
                assert_eq!(m.local(g), Some((tenant, local)));
            }
        }
        assert_eq!(m.global(1, 0), TaskId(4));
        assert_eq!(m.global(2, 2), TaskId(8));
    }

    #[test]
    fn host_ownership_follows_task_ownership() {
        let m = map3();
        assert_eq!(m.owner_of_host(HostId(0)), Some(0));
        assert_eq!(m.owner_of_host(HostId(5)), Some(1));
        assert_eq!(m.owner_of_host(HostId(8)), Some(2));
        // An idle/tracer host beyond the packed blocks is unowned.
        assert_eq!(m.owner_of_host(HostId(12)), None);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_rank_tenant_rejected() {
        let _ = TenantMap::pack([("X".to_string(), 0)]);
    }
}
