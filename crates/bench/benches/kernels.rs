//! Criterion benches for the measured-program experiments: one bench per
//! kernel table/figure family (Figures 3–7) and one for AIRSHED
//! (Figures 8–11), at sharply reduced iteration counts so `cargo bench`
//! terminates quickly. Full-scale regeneration is `repro --div 1`.

use criterion::{criterion_group, criterion_main, Criterion};
use fxnet::apps::airshed::AirshedParams;
use fxnet::{KernelKind, Testbed};
use std::hint::black_box;

fn bench_kernel(c: &mut Criterion, kernel: KernelKind, div: usize) {
    // The measurement run behind Figures 3–7 for this kernel.
    let id = format!("fig3-7/{}", kernel.name());
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.bench_function(&id, |b| {
        b.iter(|| {
            let run = Testbed::paper().run_kernel(kernel, div).unwrap();
            black_box(run.trace.len())
        })
    });
    group.finish();
}

fn kernels(c: &mut Criterion) {
    bench_kernel(c, KernelKind::Sor, 50); // 2 steps
    bench_kernel(c, KernelKind::Fft2d, 50); // 2 iterations
    bench_kernel(c, KernelKind::T2dfft, 50);
    bench_kernel(c, KernelKind::Seq, 5); // 1 iteration
    bench_kernel(c, KernelKind::Hist, 50);
}

fn airshed(c: &mut Criterion) {
    let mut group = c.benchmark_group("airshed");
    group.sample_size(10);
    group.bench_function("fig8-11/AIRSHED_1hour", |b| {
        b.iter(|| {
            let params = AirshedParams {
                hours: 1,
                ..AirshedParams::paper()
            };
            let run = Testbed::paper().run_airshed(params).unwrap();
            black_box(run.trace.len())
        })
    });
    group.finish();
}

criterion_group!(benches, kernels, airshed);
criterion_main!(benches);
