//! Criterion benches for the analysis pipeline (the paper's offline
//! tooling): statistics, windowed bandwidth, periodograms, model fitting
//! and regeneration, and the QoS negotiation.

use criterion::{criterion_group, criterion_main, Criterion};
use fxnet::fx::Pattern;
use fxnet::qos::{negotiate, AppDescriptor, QosNetwork};
use fxnet::sim::{Frame, FrameKind, FrameRecord, HostId, SimRng, SimTime};
use fxnet::spectral::generate::SynthConfig;
use fxnet::spectral::{synthesize_trace, FourierModel};
use fxnet::trace::{binned_bandwidth, sliding_window_bandwidth, Periodogram, Stats};
use std::hint::black_box;

/// A deterministic synthetic trace shaped like bursty kernel traffic.
fn synthetic_trace(n: usize) -> Vec<FrameRecord> {
    let mut t_us = 0u64;
    (0..n)
        .map(|i| {
            let burst = (i / 200) % 3 == 0;
            t_us += if burst { 1_200 } else { 40_000 };
            let f = Frame::tcp(
                HostId((i % 4) as u32),
                HostId(((i + 1) % 4) as u32),
                FrameKind::Data,
                if i % 3 == 0 { 1460 } else { 100 },
                i as u64,
            );
            FrameRecord::capture(SimTime::from_micros(t_us), &f)
        })
        .collect()
}

fn bench_stats(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    c.bench_function("analysis/stats_100k_frames", |b| {
        b.iter(|| {
            black_box(Stats::packet_sizes(&tr));
            black_box(Stats::interarrivals_ms(&tr));
        })
    });
}

fn bench_window(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    c.bench_function("analysis/sliding_window_100k_frames", |b| {
        b.iter(|| black_box(sliding_window_bandwidth(&tr, SimTime::from_millis(10))))
    });
}

fn bench_periodogram(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    let series = binned_bandwidth(&tr, SimTime::from_millis(10));
    c.bench_function("analysis/periodogram", |b| {
        b.iter(|| black_box(Periodogram::compute(&series, SimTime::from_millis(10))))
    });
}

fn bench_model_fit_and_generate(c: &mut Criterion) {
    let tr = synthetic_trace(50_000);
    let series = binned_bandwidth(&tr, SimTime::from_millis(10));
    let spec = Periodogram::compute(&series, SimTime::from_millis(10));
    c.bench_function("analysis/fourier_fit_32_spikes", |b| {
        b.iter(|| black_box(FourierModel::from_periodogram(&spec, 32, 0.05)))
    });
    let model = FourierModel::from_periodogram(&spec, 16, 0.05);
    c.bench_function("analysis/synthesize_60s", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            black_box(synthesize_trace(
                &model,
                SimTime::from_secs(60),
                &SynthConfig::default(),
                &mut rng,
            ))
        })
    });
}

fn bench_qos(c: &mut Criterion) {
    c.bench_function("qos/negotiate_1_to_64", |b| {
        let app = AppDescriptor::scalable(Pattern::AllToAll, 24.0, |p| {
            (512 / u64::from(p).max(1)).pow(2) * 8
        });
        let net = QosNetwork::ethernet_10mbps();
        b.iter(|| black_box(negotiate(&app, &net, 1..=64)))
    });
}

criterion_group!(
    benches,
    bench_stats,
    bench_window,
    bench_periodogram,
    bench_model_fit_and_generate,
    bench_qos
);
criterion_main!(benches);
