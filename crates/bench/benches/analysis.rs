//! Criterion benches for the analysis pipeline (the paper's offline
//! tooling): statistics, windowed bandwidth, periodograms, model fitting
//! and regeneration, the QoS negotiation, and the columnar engine —
//! store build, fused report vs the multi-pass legacy report, indexed
//! connection views vs filtered copies, binary vs text trace IO, and
//! the chunked-container (FXTC v2) cursor decode.

use criterion::{criterion_group, criterion_main, Criterion};
use fxnet::fx::Pattern;
use fxnet::qos::{negotiate, AppDescriptor, QosNetwork};
use fxnet::sim::{Frame, FrameKind, FrameRecord, HostId, SimRng, SimTime};
use fxnet::spectral::generate::SynthConfig;
use fxnet::spectral::{synthesize_trace, FourierModel};
use fxnet::trace::{
    binned_bandwidth, connection, host_pairs, io, sliding_window_bandwidth, Periodogram,
    ReportOptions, Stats, TraceReport, TraceStore,
};
use std::hint::black_box;

/// A deterministic synthetic trace shaped like bursty kernel traffic.
fn synthetic_trace(n: usize) -> Vec<FrameRecord> {
    let mut t_us = 0u64;
    (0..n)
        .map(|i| {
            let burst = (i / 200) % 3 == 0;
            t_us += if burst { 1_200 } else { 40_000 };
            let f = Frame::tcp(
                HostId((i % 4) as u32),
                HostId(((i + 1) % 4) as u32),
                FrameKind::Data,
                if i % 3 == 0 { 1460 } else { 100 },
                i as u64,
            );
            FrameRecord::capture(SimTime::from_micros(t_us), &f)
        })
        .collect()
}

fn bench_stats(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    c.bench_function("analysis/stats_100k_frames", |b| {
        b.iter(|| {
            black_box(Stats::packet_sizes(&tr));
            black_box(Stats::interarrivals_ms(&tr));
        })
    });
}

fn bench_window(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    c.bench_function("analysis/sliding_window_100k_frames", |b| {
        b.iter(|| black_box(sliding_window_bandwidth(&tr, SimTime::from_millis(10))))
    });
}

fn bench_periodogram(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    let series = binned_bandwidth(&tr, SimTime::from_millis(10));
    c.bench_function("analysis/periodogram", |b| {
        b.iter(|| black_box(Periodogram::compute(&series, SimTime::from_millis(10))))
    });
}

fn bench_model_fit_and_generate(c: &mut Criterion) {
    let tr = synthetic_trace(50_000);
    let series = binned_bandwidth(&tr, SimTime::from_millis(10));
    let spec = Periodogram::compute(&series, SimTime::from_millis(10));
    c.bench_function("analysis/fourier_fit_32_spikes", |b| {
        b.iter(|| black_box(FourierModel::from_periodogram(&spec, 32, 0.05)))
    });
    let model = FourierModel::from_periodogram(&spec, 16, 0.05);
    c.bench_function("analysis/synthesize_60s", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            black_box(synthesize_trace(
                &model,
                SimTime::from_secs(60),
                &SynthConfig::default(),
                &mut rng,
            ))
        })
    });
}

fn bench_store_build(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    c.bench_function("columnar/store_build_100k_frames", |b| {
        b.iter(|| black_box(TraceStore::from_records(&tr)))
    });
}

fn bench_report_fused_vs_legacy(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    let store = TraceStore::from_records(&tr);
    let opts = ReportOptions::default();
    // Spectrum `None`: the periodogram is computed identically by both
    // paths and would swamp the comparison; this isolates the one fused
    // traversal against the legacy pass-per-quantity structure.
    c.bench_function("columnar/report_legacy_multipass", |b| {
        b.iter(|| {
            black_box(TraceReport::analyze_with_spectrum(
                "bench", &tr, &opts, None,
            ))
        })
    });
    c.bench_function("columnar/report_fused_view", |b| {
        b.iter(|| {
            black_box(TraceReport::analyze_view_with_spectrum(
                "bench",
                store.view(),
                &opts,
                None,
            ))
        })
    });
}

fn bench_connection_index_vs_copy(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    let store = TraceStore::from_records(&tr);
    let pairs = host_pairs(&tr);
    c.bench_function("columnar/connections_legacy_copy", |b| {
        b.iter(|| {
            for &((s, d), _) in &pairs {
                let conn = connection(&tr, s, d);
                black_box(Stats::packet_sizes(&conn));
            }
        })
    });
    c.bench_function("columnar/connections_indexed_view", |b| {
        b.iter(|| {
            for &((s, d), _) in &pairs {
                black_box(store.connection(s, d).packet_sizes());
            }
        })
    });
}

fn bench_trace_io(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    let store = TraceStore::from_records(&tr);
    let mut binary = Vec::new();
    io::write_store_binary(&mut binary, &store).expect("encode binary");
    let mut text = Vec::new();
    io::write_trace(&mut text, &tr).expect("encode text");
    c.bench_function("io/write_binary_100k_frames", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            io::write_store_binary(&mut out, &store).expect("encode binary");
            black_box(out)
        })
    });
    c.bench_function("io/read_binary_100k_frames", |b| {
        b.iter(|| black_box(io::read_store_binary(&mut binary.as_slice()).expect("decode")))
    });
    c.bench_function("io/read_text_100k_frames", |b| {
        b.iter(|| black_box(io::read_trace(&mut text.as_slice()).expect("parse")))
    });
}

fn bench_chunk_cursor(c: &mut Criterion) {
    let tr = synthetic_trace(100_000);
    let store = TraceStore::from_records(&tr);
    let dir = std::env::temp_dir().join(format!("fxnet-bench-chunks-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("cursor.fxb");
    io::save_store_chunked(&path, &store, 8_192).expect("write chunked trace");
    c.bench_function("io/chunk_cursor_decode_100k_frames", |b| {
        b.iter(|| {
            let mut cursor = io::ChunkCursor::open(&path).expect("open chunked trace");
            let mut frames = 0u64;
            while let Some((meta, buf)) = cursor.next_chunk().expect("decode chunk") {
                frames += meta.frames;
                black_box(buf.time_ns.last());
            }
            black_box(frames)
        })
    });
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_qos(c: &mut Criterion) {
    c.bench_function("qos/negotiate_1_to_64", |b| {
        let app = AppDescriptor::scalable(Pattern::AllToAll, 24.0, |p| {
            (512 / u64::from(p).max(1)).pow(2) * 8
        });
        let net = QosNetwork::ethernet_10mbps();
        b.iter(|| black_box(negotiate(&app, &net, 1..=64)))
    });
}

criterion_group!(
    benches,
    bench_stats,
    bench_window,
    bench_periodogram,
    bench_model_fit_and_generate,
    bench_store_build,
    bench_report_fused_vs_legacy,
    bench_connection_index_vs_copy,
    bench_trace_io,
    bench_chunk_cursor,
    bench_qos
);
criterion_main!(benches);
