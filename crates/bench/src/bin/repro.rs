//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p fxnet-bench --bin repro -- all --div 10
//! cargo run --release -p fxnet-bench --bin repro -- fig3 fig7 --jobs 4
//! cargo run --release -p fxnet-bench --bin repro -- --list
//! ```
//!
//! Every experiment lives in one declarative [`REGISTRY`] entry — a
//! stable id, a one-line description, which selection sets it belongs
//! to, the programs it reads from the shared run cache, and the runner
//! — so `--list`, `--help`, dispatch, and prewarming all derive from
//! the same table (DESIGN.md §4).
//!
//! `--div N` scales the kernels' outer iteration counts by 1/N (default
//! 1 = full paper scale); `--hours H` sets AIRSHED hours (default 100);
//! `--out DIR` sets the series/spectra output directory (default
//! `out/`); `--seed N` sets the simulation seed (default 1998) — the
//! same seed reproduces every trace and table byte for byte. `--jobs N`
//! fans the independent simulations (the cached programs, the ablation
//! and admission sweeps) across N workers; output stays byte-identical
//! to `--jobs 1` because results are collected in job order, never
//! completion order.
//!
//! Extras (run only when named): phases, summary, the ablations,
//! `all-extras` (all of those), the multi-tenant experiments `mix`
//! and `mix-admit`, the live-observability experiment `watch`
//! (streaming contract compliance; writes Prometheus-text metrics and a
//! JSONL event log, directed by `--metrics-out DIR`, default `--out`),
//! and `bench` (event-queue engines + parallel suite speedup; writes
//! `out/bench_repro.json`).

use fxnet::fx::Pattern;
use fxnet::qos::{negotiate, AppDescriptor, QosNetwork};
use fxnet::sim::SimRng;
use fxnet::spectral::generate::SynthConfig;
use fxnet::spectral::{
    hurst_aggregated_variance, onoff_vbr_trace, self_similar_trace, synthesize_trace, FourierModel,
};
use fxnet::telemetry::write_json_artifact;
use fxnet::trace::PhaseBreakdown;
use fxnet::trace::{
    average_bandwidth, binned_bandwidth, sliding_window_bandwidth, Periodogram, Stats,
};
use fxnet::{KernelKind, SimTime};
use fxnet_bench::{bandwidth_row, queue_benchmark, stats_row, Experiments};
use fxnet_harness::{timed, Pool};
use serde::Value;
use std::io::Write;

const BIN: SimTime = SimTime(10_000_000); // the paper's 10 ms window

/// Everything an experiment runner gets: the shared run cache, the
/// worker pool, and the raw CLI knobs.
struct Ctx {
    exps: Experiments,
    pool: Pool,
    div: usize,
    hours: usize,
    seed: u64,
    metrics_out: Option<String>,
}

/// One experiment: a stable id, what it is, which selection sets it
/// belongs to, what it reads from the shared run cache, and how to run
/// it. The whole CLI — `--list`, dispatch order, prewarming — derives
/// from this table.
struct Experiment {
    id: &'static str,
    desc: &'static str,
    /// Member of the default `all` set.
    in_all: bool,
    /// Member of `all-extras`.
    extra: bool,
    /// Kernels the runner reads from the shared cache (prewarmed
    /// through the pool before any experiment prints).
    needs_kernels: &'static [KernelKind],
    /// Whether the runner reads the shared AIRSHED run.
    needs_airshed: bool,
    run: fn(&mut Ctx),
}

/// The experiment registry, in execution order.
const REGISTRY: &[Experiment] = &[
    Experiment {
        id: "fig1",
        desc: "Fx communication patterns (P = 8)",
        in_all: true,
        extra: false,
        needs_kernels: &[],
        needs_airshed: false,
        run: fig1,
    },
    Experiment {
        id: "fig3",
        desc: "packet size statistics for Fx kernels",
        in_all: true,
        extra: false,
        needs_kernels: &KernelKind::ALL,
        needs_airshed: false,
        run: fig3,
    },
    Experiment {
        id: "fig4",
        desc: "packet interarrival statistics for Fx kernels",
        in_all: true,
        extra: false,
        needs_kernels: &KernelKind::ALL,
        needs_airshed: false,
        run: fig4,
    },
    Experiment {
        id: "fig5",
        desc: "average bandwidth for Fx kernels",
        in_all: true,
        extra: false,
        needs_kernels: &KernelKind::ALL,
        needs_airshed: false,
        run: fig5,
    },
    Experiment {
        id: "fig6",
        desc: "instantaneous bandwidth of Fx kernels (series files)",
        in_all: true,
        extra: false,
        needs_kernels: &KernelKind::ALL,
        needs_airshed: false,
        run: fig6,
    },
    Experiment {
        id: "fig7",
        desc: "power spectra of kernel bandwidth (spectrum files)",
        in_all: true,
        extra: false,
        needs_kernels: &KernelKind::ALL,
        needs_airshed: false,
        run: fig7,
    },
    Experiment {
        id: "fig8",
        desc: "packet size statistics for AIRSHED",
        in_all: true,
        extra: false,
        needs_kernels: &[],
        needs_airshed: true,
        run: fig8,
    },
    Experiment {
        id: "fig9",
        desc: "packet interarrival statistics for AIRSHED",
        in_all: true,
        extra: false,
        needs_kernels: &[],
        needs_airshed: true,
        run: fig9,
    },
    Experiment {
        id: "airshed-avg",
        desc: "AIRSHED average bandwidth (§6.2)",
        in_all: true,
        extra: false,
        needs_kernels: &[],
        needs_airshed: true,
        run: airshed_avg,
    },
    Experiment {
        id: "fig10",
        desc: "instantaneous bandwidth of AIRSHED (series files)",
        in_all: true,
        extra: false,
        needs_kernels: &[],
        needs_airshed: true,
        run: fig10,
    },
    Experiment {
        id: "fig11",
        desc: "power spectrum of AIRSHED bandwidth",
        in_all: true,
        extra: false,
        needs_kernels: &[],
        needs_airshed: true,
        run: fig11,
    },
    Experiment {
        id: "model",
        desc: "truncated Fourier-series models of kernel bandwidth (§7.2)",
        in_all: true,
        extra: false,
        needs_kernels: &[KernelKind::Fft2d, KernelKind::Hist, KernelKind::Seq],
        needs_airshed: false,
        run: model,
    },
    Experiment {
        id: "qos",
        desc: "QoS negotiation: t_bi vs P (§7.3)",
        in_all: true,
        extra: false,
        needs_kernels: &[],
        needs_airshed: false,
        run: qos,
    },
    Experiment {
        id: "baseline",
        desc: "parallel-program vs media traffic (§1/§8)",
        in_all: true,
        extra: false,
        needs_kernels: &[KernelKind::Fft2d, KernelKind::Hist],
        needs_airshed: false,
        run: baseline,
    },
    Experiment {
        id: "phases",
        desc: "per-phase traffic attribution (span × trace join; needs telemetry)",
        in_all: false,
        extra: true,
        needs_kernels: &KernelKind::ALL,
        needs_airshed: true,
        run: phases,
    },
    Experiment {
        id: "summary",
        desc: "one-page markdown summary of every measured program",
        in_all: false,
        extra: true,
        needs_kernels: &KernelKind::ALL,
        needs_airshed: true,
        run: summary,
    },
    Experiment {
        id: "ablate-switch",
        desc: "ablation: shared CSMA/CD bus vs store-and-forward switch",
        in_all: false,
        extra: true,
        needs_kernels: &[],
        needs_airshed: false,
        run: ablate_switch,
    },
    Experiment {
        id: "ablate-route",
        desc: "ablation: PVM direct TCP route vs daemon UDP relay",
        in_all: false,
        extra: true,
        needs_kernels: &[],
        needs_airshed: false,
        run: ablate_route,
    },
    Experiment {
        id: "ablate-p",
        desc: "ablation: processor-count sweep vs the §7.3 model",
        in_all: false,
        extra: true,
        needs_kernels: &[],
        needs_airshed: false,
        run: ablate_p,
    },
    Experiment {
        id: "mix",
        desc: "multi-tenant: SOR + 2DFFT + HIST sharing one wire",
        in_all: false,
        extra: false,
        needs_kernels: &[],
        needs_airshed: false,
        run: mix_kernels,
    },
    Experiment {
        id: "mix-admit",
        desc: "multi-tenant: QoS admission under rising offered load",
        in_all: false,
        extra: false,
        needs_kernels: &[],
        needs_airshed: false,
        run: mix_admit,
    },
    Experiment {
        id: "watch",
        desc: "live observability: streaming contract compliance",
        in_all: false,
        extra: false,
        needs_kernels: &[],
        needs_airshed: false,
        run: watch_live,
    },
    Experiment {
        id: "bench",
        desc: "perf probes: event-queue engines + parallel suite speedup",
        in_all: false,
        extra: false,
        needs_kernels: &[],
        needs_airshed: false,
        run: bench_repro,
    },
];

fn list_experiments() {
    println!("experiments (run with `repro <id>...`):");
    for e in REGISTRY {
        let set = if e.in_all {
            "all"
        } else if e.extra {
            "extras"
        } else {
            "named"
        };
        println!("  {:<14} [{set:<6}] {}", e.id, e.desc);
    }
    println!("\nsets: `all` (the default), `all-extras`; everything else runs only when named");
}

fn main() {
    let mut div = 1usize;
    let mut hours = 100usize;
    let mut out = "out".to_string();
    let mut metrics_out: Option<String> = None;
    let mut seed = 1998u64;
    let mut telemetry = false;
    let mut jobs = 1usize;
    let mut exps: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--div" => div = args.next().and_then(|s| s.parse().ok()).unwrap_or(1),
            "--hours" => hours = args.next().and_then(|s| s.parse().ok()).unwrap_or(100),
            "--out" => out = args.next().unwrap_or_else(|| "out".into()),
            "--metrics-out" => metrics_out = args.next(),
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(1998),
            "--jobs" => jobs = args.next().and_then(|s| s.parse().ok()).unwrap_or(1),
            "--telemetry" => telemetry = true,
            "--list" => {
                list_experiments();
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--div N] [--hours H] [--out DIR] [--metrics-out DIR] [--seed N] [--jobs N] [--telemetry] [--list] <exp>...\n\
                     `repro --list` prints every experiment id with its description\n\
                     sets: all (default) = every figure/table of the paper; all-extras = phases ablate-switch ablate-route ablate-p summary\n\
                     --seed N sets the simulation seed (default 1998); same seed, byte-identical output\n\
                     --jobs N fans independent runs across N workers (0 = all CPUs); output is byte-identical to --jobs 1\n\
                     --metrics-out DIR directs the watch artifacts (default: the --out dir)\n\
                     --telemetry collects spans/counters and writes out/telemetry_<exp>.json"
                );
                return;
            }
            other => exps.push(other.to_string()),
        }
    }
    if exps.is_empty() {
        exps.push("all".into());
    }
    let known = |id: &str| id == "all" || id == "all-extras" || REGISTRY.iter().any(|e| e.id == id);
    let unknown: Vec<&str> = exps
        .iter()
        .map(String::as_str)
        .filter(|e| !known(e))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id(s): {} — see `repro --list`",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
    let all = exps.iter().any(|e| e == "all");
    let extras = exps.iter().any(|e| e == "all-extras");
    // Selection preserves registry order, which is the execution order.
    let selected: Vec<&Experiment> = REGISTRY
        .iter()
        .filter(|e| (all && e.in_all) || (extras && e.extra) || exps.iter().any(|x| x == e.id))
        .collect();

    // The phases experiment is the span × trace join; it needs telemetry.
    if selected.iter().any(|e| e.id == "phases") && !telemetry {
        eprintln!("note: `phases` needs telemetry; enabling --telemetry\n");
        telemetry = true;
    }

    let mut ctx = Ctx {
        exps: Experiments::new(div, hours, &out)
            .with_seed(seed)
            .with_telemetry(telemetry),
        pool: Pool::new(jobs),
        div,
        hours,
        seed,
        metrics_out,
    };
    if div != 1 {
        println!(
            "note: kernel iteration counts scaled by 1/{div} (pass --div 1 for full paper scale)\n"
        );
    }

    // Prewarm the union of what the selected experiments read from the
    // shared cache, fanned across the pool. The cache is keyed by
    // program, so every analysis afterwards prints the same bytes at
    // any --jobs; only the [run] progress lines on stderr interleave.
    let mut kernels: Vec<KernelKind> = Vec::new();
    for e in &selected {
        for k in e.needs_kernels {
            if !kernels.contains(k) {
                kernels.push(*k);
            }
        }
    }
    let airshed = selected.iter().any(|e| e.needs_airshed);
    ctx.exps.prewarm(&ctx.pool, &kernels, airshed);

    for e in &selected {
        (e.run)(&mut ctx);
    }

    // Telemetry artifacts: one deterministic JSON (spans + counter
    // registry of every cached run) per requested experiment id.
    // `phases` writes its own, richer artifact.
    if telemetry {
        for e in exps.iter().filter(|e| e.as_str() != "phases") {
            let path = ctx.exps.out_path(&format!("telemetry_{e}.json"));
            write_json_artifact(&path, &ctx.exps.telemetry_value())
                .expect("write telemetry artifact");
            println!("wrote {}", path.display());
        }
    }
}

// --------------------------------------------------------------------
// Per-phase traffic attribution: the span × trace join.

fn phases(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Per-phase traffic attribution (10 ms peak bins)");
    let ranks = fxnet::Testbed::paper().config().p;
    let mut entries: Vec<(String, Value)> = Vec::new();
    let mut programs: Vec<(String, PhaseBreakdown, Value)> = Vec::new();
    for k in KernelKind::ALL {
        let run = ctx.kernel(k);
        let tel = run.telemetry.as_ref().expect("phases runs with telemetry");
        let bd = PhaseBreakdown::compute(&run.trace, &tel.spans, ranks, BIN);
        programs.push((k.name().to_string(), bd, tel.to_value()));
    }
    {
        let run = ctx.airshed();
        let tel = run.telemetry.as_ref().expect("phases runs with telemetry");
        let bd = PhaseBreakdown::compute(&run.trace, &tel.spans, ranks, BIN);
        programs.push(("AIRSHED".to_string(), bd, tel.to_value()));
    }
    for (name, bd, tel_value) in programs {
        println!("\n{name}:");
        print!("{}", bd.table());
        entries.push((
            name,
            Value::Object(vec![
                ("phases".to_string(), serde::Serialize::to_value(&bd)),
                ("telemetry".to_string(), tel_value),
            ]),
        ));
    }
    let path = ctx.out_path("telemetry_phases.json");
    write_json_artifact(&path, &Value::Object(entries)).expect("write telemetry artifact");
    println!("\nwrote {}", path.display());
}

// --------------------------------------------------------------------
// One-page markdown summary of every measured program.

fn summary(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Summary: all measured programs (markdown)");
    use fxnet::trace::{markdown_table, ReportOptions};
    let opts = ReportOptions::default();
    let mut traces: Vec<(String, Vec<fxnet::FrameRecord>)> = Vec::new();
    for k in KernelKind::ALL {
        traces.push((k.name().to_string(), ctx.kernel(k).trace.clone()));
    }
    traces.push(("AIRSHED".to_string(), ctx.airshed().trace.clone()));
    let rows: Vec<(&str, &[fxnet::FrameRecord])> = traces
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_slice()))
        .collect();
    println!("{}", markdown_table(rows, &opts));
}

// --------------------------------------------------------------------
// DESIGN.md §8 ablations.

fn kernel_row(label: &str, run: &fxnet::RunResult<u64>) -> String {
    let bw = average_bandwidth(&run.trace).unwrap_or(0.0) / 1000.0;
    let series = binned_bandwidth(&run.trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    format!(
        "{label:<22} {:>8.1}s {:>9.1} KB/s   {:>6.2} Hz   {:>6} collisions",
        run.finished_at.as_secs_f64(),
        bw,
        spec.dominant_frequency(0.15).unwrap_or(0.0),
        run.ether.collisions
    )
}

fn ablate_switch(c: &mut Ctx) {
    header("Ablation: shared CSMA/CD bus vs store-and-forward switch");
    use fxnet::Testbed;
    let (div, seed) = (c.div, c.seed);
    // Four independent (kernel, fabric) runs; the pool returns them in
    // input order, so the table reads the same at any --jobs.
    let runs = c.pool.map(
        [KernelKind::Fft2d, KernelKind::Hist]
            .into_iter()
            .flat_map(|k| [(k, false), (k, true)])
            .collect(),
        |(k, switched)| {
            let mut tb = Testbed::paper().with_seed(seed);
            if switched {
                tb = tb.with_switched_fabric();
            }
            tb.run_kernel(k, div.max(5)).unwrap()
        },
    );
    for (pair, k) in runs.chunks(2).zip([KernelKind::Fft2d, KernelKind::Hist]) {
        println!(
            "
{}:",
            k.name()
        );
        println!("{}", kernel_row("  shared bus", &pair[0]));
        println!("{}", kernel_row("  switched fabric", &pair[1]));
    }
    println!(
        "
(shape: the switch removes collisions and parallelizes disjoint transfers,"
    );
    println!(" raising bandwidth and the burst fundamental — but the quiet/burst alternation");
    println!(" persists: it is program structure, not MAC contention.)");
}

fn ablate_route(c: &mut Ctx) {
    header("Ablation: PVM direct TCP route vs daemon UDP relay");
    use fxnet::pvm::Route;
    use fxnet::Testbed;
    let (div, seed) = (c.div, c.seed);
    let runs = c.pool.map(
        [KernelKind::Fft2d, KernelKind::Hist]
            .into_iter()
            .flat_map(|k| [(k, Route::Direct), (k, Route::Daemon)])
            .collect(),
        |(k, route)| {
            Testbed::paper()
                .with_seed(seed)
                .with_route(route)
                .run_kernel(k, div.max(5))
                .unwrap()
        },
    );
    for (pair, k) in runs.chunks(2).zip([KernelKind::Fft2d, KernelKind::Hist]) {
        println!(
            "
{}:",
            k.name()
        );
        println!("{}", kernel_row("  direct (TCP)", &pair[0]));
        println!("{}", kernel_row("  daemon (UDP relay)", &pair[1]));
    }
    println!(
        "
(the daemon route is scalable but \"somewhat slow\" (§4): stop-and-wait"
    );
    println!(" relaying stretches every communication phase.)");
}

fn ablate_p(c: &mut Ctx) {
    header("Ablation: processor-count sweep vs the §7.3 model");
    use fxnet::pvm::MessageBuilder;
    use fxnet::Testbed;
    let work = SimTime::from_secs(8);
    let n_bytes = 200_000usize;
    let seed = c.seed;
    println!(
        "shift pattern, W = {}s total work, N = {} KB bursts:",
        work.as_secs_f64(),
        n_bytes / 1000
    );
    println!("    P    model t_bi    measured t_bi");
    // A keyed sweep: rows come back sorted by P no matter which worker
    // finishes first.
    let mut sweep = c.pool.sweep::<u32, String>();
    for p in [2u32, 4, 8] {
        sweep = sweep.add(p, move || {
            let run = Testbed::quiet(p).with_seed(seed).run(move |ctx| {
                let me = ctx.rank();
                let np = ctx.nprocs();
                let per_rank = SimTime::from_nanos(work.as_nanos() / u64::from(np));
                for i in 0..8usize {
                    ctx.compute_time(per_rank);
                    let mut b = MessageBuilder::new(i as i32);
                    b.pack_bytes(&vec![0u8; n_bytes]);
                    ctx.send((me + 1) % np, b.finish());
                    let _ = ctx.recv((me + np - 1) % np);
                }
            });
            let profile = fxnet::trace::BurstProfile::of(&run.trace, SimTime::from_millis(300))
                .expect("bursts");
            let measured = profile.intervals.map_or(f64::NAN, |i| i.avg);
            let app =
                AppDescriptor::scalable(Pattern::Shift { k: 1 }, work.as_secs_f64(), move |_| {
                    n_bytes as u64
                });
            let net = QosNetwork::ethernet_10mbps();
            let bw = net.offer(app.concurrent_connections(p)).expect("offer");
            let model = app.timing(p, bw).t_interval;
            format!("   {p:>2}    {model:>9.2}s    {measured:>12.2}s")
        });
    }
    for (_, row) in sweep.run() {
        println!("{row}");
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

// --------------------------------------------------------------------
// Multi-tenant experiments: the mixed workload and the admission sweep.

fn mix_kernels(c: &mut Ctx) {
    header("Mixed workload: SOR + 2DFFT + HIST sharing one wire");
    use fxnet::mix::MixTenant;
    use fxnet::Testbed;
    let ctx = &c.exps;
    let div = ctx.div;
    // 2DFFT alone presents a ~1.4 MB/s mean load — more than the paper's
    // whole 10 Mb/s Ethernet — so the admission controller would
    // (correctly) refuse the three-way mix there; see `mix-admit` for
    // that regime. The co-scheduling experiment runs on a 100 Mb/s
    // fabric instead.
    println!("(fabric: 100 Mb/s shared; the 10 Mb/s saturation regime is `mix-admit`)");
    let out = Testbed::paper()
        .with_seed(ctx.seed())
        .with_bandwidth_bps(100_000_000)
        .mix()
        .network(QosNetwork::new(12_500_000.0))
        .tenant(MixTenant::kernel(
            "SOR",
            KernelKind::Sor,
            div,
            4,
            SimTime::ZERO,
        ))
        .tenant(MixTenant::kernel(
            "2DFFT",
            KernelKind::Fft2d,
            div,
            4,
            SimTime::from_millis(250),
        ))
        .tenant(MixTenant::kernel(
            "HIST",
            KernelKind::Hist,
            div,
            4,
            SimTime::from_millis(500),
        ))
        .run();
    let total = out.check_conservation();
    print!("{}", out.report());

    println!("\n-- demuxed packet sizes: mixed vs solo (bytes) --");
    println!("              min       max       avg        sd");
    for t in &out.tenants {
        println!("{}", stats_row(&t.name, t.sizes));
        println!("{}", stats_row("  solo", t.solo_sizes));
    }
    println!("\n-- average bandwidth: mixed vs solo (KB/s) --");
    for t in &out.tenants {
        println!(
            "{:<10} {:>10.1}   solo {:>10.1}",
            t.name,
            t.avg_bw.unwrap_or(0.0) / 1000.0,
            t.solo_avg_bw.unwrap_or(0.0) / 1000.0
        );
    }

    // The combined spectrum of the shared wire: three periodic programs
    // superpose; their fundamentals coexist in one periodogram.
    let series = binned_bandwidth(&out.trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    println!("\n-- combined spectrum of the shared wire --");
    println!(
        "dominant {:.2} Hz, flatness {:.4}",
        spec.dominant_frequency(0.15).unwrap_or(0.0),
        spec.flatness()
    );
    for s in spec.top_spikes(6, 0.25) {
        println!("    spike {:>6.2} Hz  power {:.2e}", s.freq, s.power);
    }
    println!(
        "\nconservation: {} + {} background = {} frames total (exact)",
        out.tenants
            .iter()
            .map(|t| t.frames.len().to_string())
            .collect::<Vec<_>>()
            .join(" + "),
        out.background.len(),
        total
    );
}

fn mix_admit(c: &mut Ctx) {
    header("QoS admission under rising offered load (shift tenants, P=4)");
    use fxnet::mix::MixTenant;
    use fxnet::Testbed;
    use std::fmt::Write as _;
    let seed = c.seed;
    println!("offered  admitted  rejected  residual KB/s");
    // Each offered-load level is an independent mix run; sweep them
    // across the pool keyed by the level so the report prints in order.
    let mut sweep = c.pool.sweep::<usize, (String, bool)>();
    for offered in 1..=4usize {
        sweep = sweep.add(offered, move || {
            // Identical §7.3 shift tenants: 2 s of work per cycle,
            // 400 KB bursts. Each admission commits its negotiated mean
            // load, so the residual shrinks until the burst-bandwidth
            // floor (50 KB/s) refuses the next.
            let tenant = |i: usize| MixTenant::shift(&format!("T{}", i + 1), 2.0, 400_000, 3, 4);
            let net = || QosNetwork::ethernet_10mbps().with_min_burst_bw(50_000.0);
            let mut b = Testbed::paper()
                .with_seed(seed)
                .without_heartbeats()
                .mix()
                .network(net())
                .solo_baselines(offered == 2);
            for i in 0..offered {
                b = b.tenant(tenant(i));
            }
            let out = b.run();
            let committed: f64 = out.tenants.iter().map(|t| t.negotiation.mean_load).sum();
            let mut s = String::new();
            writeln!(
                s,
                "{offered:>7}  {:>8}  {:>8}  {:>13.1}",
                out.tenants.len(),
                out.rejected.len(),
                (net().capacity() - committed) / 1000.0
            )
            .expect("write row");
            for r in &out.rejected {
                writeln!(s, "         {r}").expect("write row");
            }
            if offered == 2 {
                writeln!(
                    s,
                    "         measured vs predicted slowdown at offered load 2:"
                )
                .expect("write row");
                for t in &out.tenants {
                    writeln!(
                        s,
                        "           {}: measured {:.3}  QoS-model predicted {:.3}",
                        t.name,
                        t.measured_slowdown.unwrap_or(f64::NAN),
                        t.predicted_slowdown
                    )
                    .expect("write row");
                }
            }
            (s, !out.rejected.is_empty())
        });
    }
    let mut any_rejected = false;
    for (_, (block, rejected)) in sweep.run() {
        print!("{block}");
        any_rejected |= rejected;
    }
    assert!(
        any_rejected,
        "the sweep must exhaust the residual bandwidth and reject"
    );
    println!("\n(the model splits burst bandwidth over every admitted tenant's concurrent");
    println!(" connections; the measured slowdown comes from actually sharing the wire.)");
}

// --------------------------------------------------------------------
// Live observability: the streaming watcher on the mixed workload.

fn watch_live(c: &mut Ctx) {
    header("Live watch: streaming contract compliance on the shared wire");
    use fxnet::mix::MixTenant;
    use fxnet::telemetry::write_prometheus;
    use fxnet::watch::WatchConfig;
    use fxnet::Testbed;
    let metrics_out = c.metrics_out.as_deref();
    let ctx = &c.exps;
    let div = ctx.div;
    // SOR honestly declares its compile-time descriptor; 2DFFT presents
    // only 1/8 of its true burst sizes at admission. Offline analysis
    // would catch that after the run — the streaming watcher catches it
    // while the frames are still going by, from the same frame tap that
    // feeds the trace (zero perturbation: the trace is byte-identical
    // with the watcher off).
    println!("(fabric: 100 Mb/s shared; 2DFFT claims 1/8 of its true burst sizes)");
    let out = Testbed::paper()
        .with_seed(ctx.seed())
        .with_bandwidth_bps(100_000_000)
        .mix()
        .network(QosNetwork::new(12_500_000.0))
        .solo_baselines(false)
        .tenant(MixTenant::kernel(
            "SOR",
            KernelKind::Sor,
            div,
            4,
            SimTime::ZERO,
        ))
        .tenant(
            MixTenant::kernel(
                "2DFFT",
                KernelKind::Fft2d,
                div,
                4,
                SimTime::from_millis(250),
            )
            .with_claim_scale(0.125),
        )
        .watch(WatchConfig::default())
        .run();
    for r in &out.rejected {
        println!("rejected: {r}");
    }
    let report = out.watch.as_ref().expect("watch was enabled");
    print!("{}", report.summary());

    let dir = metrics_out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| ctx.out_dir.clone());
    std::fs::create_dir_all(&dir).expect("create metrics dir");
    let prom = dir.join("watch.prom");
    write_prometheus(&prom, &report.registry).expect("write prometheus metrics");
    let jsonl = dir.join("watch_events.jsonl");
    std::fs::write(&jsonl, report.events_jsonl()).expect("write event log");
    println!("\nwrote {} and {}", prom.display(), jsonl.display());

    assert_eq!(
        report.violations_for("2DFFT"),
        1,
        "the over-driver must be caught (one latched violation)"
    );
    assert_eq!(
        report.violations_for("SOR"),
        0,
        "the honest tenant must stay clean"
    );
    println!("caught: 2DFFT latched 1 ContractViolation; SOR stayed clean");
}

// --------------------------------------------------------------------
// Figure 1: the communication patterns.

fn fig1(_c: &mut Ctx) {
    header("Figure 1: Fx communication patterns (P = 8)");
    for pat in [
        Pattern::Neighbor,
        Pattern::AllToAll,
        Pattern::Partition,
        Pattern::Broadcast { root: 0 },
        Pattern::TreeUp,
        Pattern::TreeDown,
    ] {
        let sched = pat.schedule(8);
        println!(
            "\n{} — {} connections, {} round(s):",
            pat.name(),
            pat.connection_count(8),
            sched.len()
        );
        for (i, round) in sched.iter().enumerate() {
            let pairs: Vec<String> = round.iter().map(|(s, d)| format!("{s}->{d}")).collect();
            println!("  round {i}: {}", pairs.join(" "));
        }
    }
}

// --------------------------------------------------------------------
// Figures 3–5: kernel tables.

fn fig3(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 3: packet size statistics for Fx kernels (bytes)");
    println!("-- aggregate --     min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = Stats::packet_sizes(&ctx.kernel(k).trace);
        println!("{}", stats_row(k.name(), s));
    }
    println!("-- connection --    min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = ctx
            .representative_connection(k)
            .and_then(|c| Stats::packet_sizes(&c));
        println!("{}", stats_row(k.name(), s));
    }
    println!("(paper aggregate: SOR 58/1518/473/568, 2DFFT 58/1518/969/678, T2DFFT 58/1518/912/663, SEQ 58/90/75/14, HIST 58/1518/499/575)");
}

fn fig4(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 4: packet interarrival time statistics for Fx kernels (ms)");
    println!("-- aggregate --     min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = Stats::interarrivals_ms(&ctx.kernel(k).trace);
        println!("{}", stats_row(k.name(), s));
    }
    println!("-- connection --    min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = ctx
            .representative_connection(k)
            .and_then(|c| Stats::interarrivals_ms(&c));
        println!("{}", stats_row(k.name(), s));
    }
    println!("(paper aggregate avg: SOR 82.1, 2DFFT 1.3, T2DFFT 1.5, SEQ 1.3, HIST 16.5)");
}

fn fig5(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 5: average bandwidth for Fx kernels (KB/s)");
    println!("-- aggregate --      KB/s");
    for k in KernelKind::ALL {
        let row = bandwidth_row(k.name(), &ctx.kernel(k).trace);
        println!("{row}");
    }
    println!("-- connection --     KB/s");
    for k in KernelKind::ALL {
        match ctx.representative_connection(k) {
            Some(c) => println!("{}", bandwidth_row(k.name(), &c)),
            None => println!("{:<10} {:>10}", k.name(), "-"),
        }
    }
    println!("(paper aggregate: SOR 5.6, 2DFFT 754.8, T2DFFT 607.1, SEQ 58.3, HIST 29.6)");
}

// --------------------------------------------------------------------
// Figures 6–7: instantaneous bandwidth + spectra.

fn dump_series(path: &std::path::Path, series: &[(SimTime, f64)], max_t: f64) {
    let mut f = std::fs::File::create(path).expect("create series file");
    for (t, v) in series {
        let ts = t.as_secs_f64();
        if ts > max_t {
            break;
        }
        writeln!(f, "{ts:.4} {:.2}", v / 1000.0).expect("write");
    }
}

fn dump_spectrum(path: &std::path::Path, spec: &Periodogram, max_hz: f64) {
    let mut f = std::fs::File::create(path).expect("create spectrum file");
    for i in 0..spec.power.len() {
        let hz = spec.freq(i);
        if hz > max_hz {
            break;
        }
        writeln!(f, "{hz:.5} {:.4e}", spec.power[i]).expect("write");
    }
}

fn fig6(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 6: instantaneous bandwidth of Fx kernels (10 ms window)");
    for k in KernelKind::ALL {
        let win = sliding_window_bandwidth(&ctx.kernel(k).trace, BIN);
        let path = ctx.out_path(&format!("{}.all.winbw", k.name()));
        dump_series(&path, &win, 10.0);
        println!(
            "wrote {} ({} points, 10 s span)",
            path.display(),
            win.len().min(10_000)
        );
        if let Some(conn) = ctx.representative_connection(k) {
            let win = sliding_window_bandwidth(&conn, BIN);
            let path = ctx.out_path(&format!("{}.conn.winbw", k.name()));
            dump_series(&path, &win, 10.0);
            println!("wrote {}", path.display());
        }
    }
}

fn fig7(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 7: power spectra of kernel bandwidth (10 ms bins)");
    let paper = [
        ("SOR", "conn ~5 Hz fundamental; aggregate less clean"),
        ("2DFFT", "aggregate 0.5 Hz fundamental, declining harmonics"),
        ("T2DFFT", "least clean spectra of all kernels"),
        ("SEQ", "4 Hz harmonic dominant"),
        ("HIST", "5 Hz fundamental, linearly declining harmonics"),
    ];
    for (k, (_, note)) in KernelKind::ALL.into_iter().zip(paper) {
        let series = binned_bandwidth(&ctx.kernel(k).trace, BIN);
        let spec = Periodogram::compute(&series, BIN);
        let path = ctx.out_path(&format!("{}.all.spectrum", k.name()));
        dump_spectrum(&path, &spec, 50.0);
        let dom = spec.dominant_frequency(0.15).unwrap_or(0.0);
        println!(
            "\n{}: aggregate dominant {:.2} Hz, flatness {:.4}  [paper: {note}]",
            k.name(),
            dom,
            spec.flatness()
        );
        for s in spec.top_spikes(4, 0.25) {
            println!("    spike {:>6.2} Hz  power {:.2e}", s.freq, s.power);
        }
        if let Some(conn) = ctx.representative_connection(k) {
            let cs = binned_bandwidth(&conn, BIN);
            let cspec = Periodogram::compute(&cs, BIN);
            let path = ctx.out_path(&format!("{}.conn.spectrum", k.name()));
            dump_spectrum(&path, &cspec, 50.0);
            println!(
                "    connection dominant {:.2} Hz, flatness {:.4}",
                cspec.dominant_frequency(0.15).unwrap_or(0.0),
                cspec.flatness()
            );
        }
    }
}

// --------------------------------------------------------------------
// Figures 8–11 + §6.2: AIRSHED.

fn fig8(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 8: packet size statistics for AIRSHED (bytes)");
    println!(
        "{}",
        stats_row("aggregate", Stats::packet_sizes(&ctx.airshed().trace))
    );
    let conn = fxnet::trace::connection(&ctx.airshed().trace, fxnet::HostId(0), fxnet::HostId(1));
    println!("{}", stats_row("connection", Stats::packet_sizes(&conn)));
    println!("(paper: aggregate 58/1518/899/693; connection 58/1518/889/688)");
}

fn fig9(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 9: packet interarrival statistics for AIRSHED (ms)");
    println!(
        "{}",
        stats_row("aggregate", Stats::interarrivals_ms(&ctx.airshed().trace))
    );
    let conn = fxnet::trace::connection(&ctx.airshed().trace, fxnet::HostId(0), fxnet::HostId(1));
    println!(
        "{}",
        stats_row("connection", Stats::interarrivals_ms(&conn))
    );
    println!("(paper: aggregate 0/23448.6/26.8/513.3; connection 0/37018.5/317.4/2353.6)");
}

fn airshed_avg(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("§6.2: AIRSHED average bandwidth");
    let agg = average_bandwidth(&ctx.airshed().trace).unwrap_or(0.0) / 1000.0;
    let conn = fxnet::trace::connection(&ctx.airshed().trace, fxnet::HostId(0), fxnet::HostId(1));
    let cbw = average_bandwidth(&conn).unwrap_or(0.0) / 1000.0;
    println!("aggregate  {agg:>8.1} KB/s   (paper: 32.7)");
    println!("connection {cbw:>8.1} KB/s   (paper:  2.7)");
}

fn fig10(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 10: instantaneous bandwidth of AIRSHED (10 ms window)");
    let total = ctx.airshed().finished_at.as_secs_f64();
    let win = sliding_window_bandwidth(&ctx.airshed().trace, BIN);
    let p500 = ctx.out_path("AIRSHED.all.winbw.500s");
    dump_series(&p500, &win, 500.0f64.min(total));
    let p60 = ctx.out_path("AIRSHED.all.winbw.60s");
    dump_series(&p60, &win, 60.0f64.min(total));
    println!("wrote {} and {}", p500.display(), p60.display());
    let conn = fxnet::trace::connection(&ctx.airshed().trace, fxnet::HostId(0), fxnet::HostId(1));
    let cw = sliding_window_bandwidth(&conn, BIN);
    let pc = ctx.out_path("AIRSHED.conn.winbw.500s");
    dump_series(&pc, &cw, 500.0f64.min(total));
    println!("wrote {}", pc.display());
}

fn fig11(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 11: power spectrum of AIRSHED bandwidth");
    let series = binned_bandwidth(&ctx.airshed().trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    for (suffix, max_hz) in [("0.1hz", 0.1), ("1hz", 1.0), ("20hz", 20.0)] {
        let path = ctx.out_path(&format!("AIRSHED.spectrum.{suffix}"));
        dump_spectrum(&path, &spec, max_hz);
        println!("wrote {}", path.display());
    }
    println!("\nband peaks (paper: ≈0.015 Hz hour, ≈0.2 Hz chem step, ≈5 Hz transport):");
    for (label, lo, hi) in [
        ("hour  ", 0.005, 0.05),
        ("step  ", 0.08, 0.8),
        ("trans ", 1.0, 20.0),
    ] {
        let mut best = (0.0, 0.0);
        for i in 1..spec.power.len() {
            let f = spec.freq(i);
            if f >= lo && f < hi && spec.power[i] > best.1 {
                best = (f, spec.power[i]);
            }
        }
        println!(
            "  {label} {:.4} Hz (period {:>6.1} s)  power {:.2e}",
            best.0,
            1.0 / best.0.max(1e-9),
            best.1
        );
    }
}

// --------------------------------------------------------------------
// §7.2 model, §7.3 QoS, §1/§8 baseline comparison.

fn model(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("§7.2: truncated Fourier-series models of kernel bandwidth");
    for k in [KernelKind::Fft2d, KernelKind::Hist, KernelKind::Seq] {
        let series = binned_bandwidth(&ctx.kernel(k).trace, BIN);
        let spec = Periodogram::compute(&series, BIN);
        println!(
            "\n{}:  spikes  captured-power  reconstruction-RMS",
            k.name()
        );
        for n in [1usize, 2, 4, 8, 16, 32, 64] {
            let m = FourierModel::from_periodogram(&spec, n, 0.05);
            println!(
                "        {n:>5}  {:>13.1}%  {:>17.3}",
                m.captured_power_fraction(&spec) * 100.0,
                m.reconstruction_error(&series, BIN)
            );
        }
        // Regenerate synthetic traffic from the 16-spike model.
        let m = FourierModel::from_periodogram(&spec, 16, 0.05);
        let mut rng = SimRng::new(1998);
        let synth = synthesize_trace(
            &m,
            SimTime::from_secs_f64((series.len() as f64 * 0.01).min(120.0)),
            &SynthConfig::default(),
            &mut rng,
        );
        if !synth.is_empty() {
            let sp = Periodogram::compute(&binned_bandwidth(&synth, BIN), BIN);
            println!(
                "        regenerated: dominant {:.2} Hz vs measured {:.2} Hz",
                sp.dominant_frequency(0.15).unwrap_or(0.0),
                spec.dominant_frequency(0.15).unwrap_or(0.0)
            );
        }
    }
}

fn qos(_c: &mut Ctx) {
    header("§7.3: QoS negotiation (t_bi vs P; the network returns P)");
    let net = QosNetwork::ethernet_10mbps();
    let apps: Vec<(&str, AppDescriptor)> = vec![
        (
            "2DFFT-like (all-to-all)",
            AppDescriptor::scalable(Pattern::AllToAll, 24.0, |p| (512 / u64::from(p)).pow(2) * 8),
        ),
        (
            "SOR-like (neighbor)",
            AppDescriptor::scalable(Pattern::Neighbor, 60.0, |_| 4096),
        ),
        (
            "shift, 1 MB bursts",
            AppDescriptor::scalable(Pattern::Shift { k: 1 }, 8.0, |_| 1_000_000),
        ),
    ];
    for (label, app) in &apps {
        println!("\n{label}:");
        println!("    P   B/conn KB/s     t_b s    t_bi s");
        for p in [2u32, 4, 8, 16] {
            if let Some(bw) = net.offer(app.concurrent_connections(p)) {
                let t = app.timing(p, bw);
                println!(
                    "   {p:>2}   {:>11.1}  {:>8.3}  {:>8.3}",
                    bw / 1000.0,
                    t.t_burst,
                    t.t_interval
                );
            }
        }
        match negotiate(app, &net, 1..=16) {
            Some(n) => println!("   -> network returns P = {}", n.p),
            None => println!("   -> rejected"),
        }
    }
}

fn baseline(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("§1/§8: parallel-program vs media traffic");
    let mut rows: Vec<(String, f64, f64, Option<f64>)> = Vec::new();
    for k in [KernelKind::Fft2d, KernelKind::Hist] {
        let series = binned_bandwidth(&ctx.kernel(k).trace, BIN);
        let spec = Periodogram::compute(&series, BIN);
        let conc = FourierModel::from_periodogram(&spec, 8, 0.1).captured_power_fraction(&spec);
        let coarse = binned_bandwidth(&ctx.kernel(k).trace, SimTime::from_millis(50));
        rows.push((
            k.name().to_string(),
            spec.flatness(),
            conc,
            hurst_aggregated_variance(&coarse),
        ));
    }
    let mut rng = SimRng::new(77);
    let dur = SimTime::from_secs(120);
    let vbr = onoff_vbr_trace(400_000.0, 0.4, 0.6, 1000, dur, &mut rng);
    let ss = self_similar_trace(16, 40_000.0, 1.5, 0.5, 800, dur, &mut rng);
    for (name, tr) in [("VBR on/off", vbr), ("self-similar", ss)] {
        let series = binned_bandwidth(&tr, BIN);
        let spec = Periodogram::compute(&series, BIN);
        let conc = FourierModel::from_periodogram(&spec, 8, 0.1).captured_power_fraction(&spec);
        let coarse = binned_bandwidth(&tr, SimTime::from_millis(50));
        rows.push((
            name.to_string(),
            spec.flatness(),
            conc,
            hurst_aggregated_variance(&coarse),
        ));
    }
    println!("source         flatness   8-spike-power   Hurst");
    for (name, flat, conc, h) in rows {
        let h = h.map_or("   -".to_string(), |v| format!("{v:.2}"));
        println!("{name:<14} {flat:>8.4}   {:>12.1}%   {h}", conc * 100.0);
    }
    println!("(expected shape: kernels = low flatness, high spike concentration; media = the reverse; self-similar H > 0.6)");
}

// --------------------------------------------------------------------
// Perf probes: the event-queue engines and the parallel suite.

fn bench_repro(c: &mut Ctx) {
    header("bench: event-queue engines + parallel suite speedup");
    let jobs = c.pool.jobs();
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Engine probe: the calendar queue against the reference heap on an
    // identical simulator-shaped schedule.
    let qb = queue_benchmark(300_000, 1024);
    println!(
        "event queues ({} ops, {} pending): calendar {:.1}M events/s vs heap {:.1}M events/s  ({:.2}x)",
        qb.ops,
        qb.pending,
        qb.calendar_events_per_sec / 1e6,
        qb.heap_events_per_sec / 1e6,
        qb.ratio
    );
    assert!(
        qb.ratio >= 1.1,
        "the calendar queue must clear 1.1x the heap's events/sec (got {:.2}x)",
        qb.ratio
    );

    // Suite probe: the six measured programs, serial vs pooled, at a
    // bench scale (outer iterations >= /10, AIRSHED <= 10 hours) so the
    // probe stays in seconds even at full paper --div.
    let div = c.div.max(10);
    let hours = c.hours.min(10);
    let seed = c.seed;
    let out_dir = c.exps.out_dir.clone();
    println!("suite: 6 programs at --div {div} / --hours {hours}, serial vs --jobs {jobs} ...");
    let (mut serial, t_serial) = timed(|| {
        let mut e = Experiments::new(div, hours, out_dir.clone()).with_seed(seed);
        e.prewarm(&Pool::serial(), &KernelKind::ALL, true);
        e
    });
    let (mut parallel, t_parallel) = timed(|| {
        let mut e = Experiments::new(div, hours, out_dir.clone()).with_seed(seed);
        e.prewarm(&c.pool, &KernelKind::ALL, true);
        e
    });
    // Both caches are in hand: assert the determinism contract on the
    // actual traces, not just wall clocks.
    for k in KernelKind::ALL {
        assert_eq!(
            serial.kernel(k).trace,
            parallel.kernel(k).trace,
            "{} diverged under the pool",
            k.name()
        );
    }
    assert_eq!(
        serial.airshed().trace,
        parallel.airshed().trace,
        "AIRSHED diverged under the pool"
    );
    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64();
    println!(
        "suite: serial {:.2}s, --jobs {jobs} {:.2}s  ({speedup:.2}x), traces byte-identical",
        t_serial.as_secs_f64(),
        t_parallel.as_secs_f64()
    );
    let enforce = jobs >= 4 && avail >= 4;
    if enforce {
        assert!(
            speedup >= 1.8,
            "suite speedup at --jobs {jobs} on {avail} CPUs must reach 1.8x (got {speedup:.2}x)"
        );
    } else {
        println!(
            "(speedup floor 1.8x enforced only with --jobs >= 4 on >= 4 CPUs; here jobs={jobs}, cpus={avail})"
        );
    }

    let report = Value::Object(vec![
        ("jobs".to_string(), Value::U64(jobs as u64)),
        (
            "available_parallelism".to_string(),
            Value::U64(avail as u64),
        ),
        (
            "scale".to_string(),
            Value::Object(vec![
                ("div".to_string(), Value::U64(div as u64)),
                ("airshed_hours".to_string(), Value::U64(hours as u64)),
            ]),
        ),
        (
            "suite".to_string(),
            Value::Object(vec![
                ("programs".to_string(), Value::U64(6)),
                (
                    "serial_wall_s".to_string(),
                    Value::F64(t_serial.as_secs_f64()),
                ),
                (
                    "parallel_wall_s".to_string(),
                    Value::F64(t_parallel.as_secs_f64()),
                ),
                ("speedup".to_string(), Value::F64(speedup)),
                ("speedup_floor".to_string(), Value::F64(1.8)),
                ("speedup_enforced".to_string(), Value::Bool(enforce)),
            ]),
        ),
        (
            "queue".to_string(),
            Value::Object(vec![
                ("ops".to_string(), Value::U64(qb.ops)),
                ("pending".to_string(), Value::U64(qb.pending as u64)),
                (
                    "heap_events_per_sec".to_string(),
                    Value::F64(qb.heap_events_per_sec),
                ),
                (
                    "calendar_events_per_sec".to_string(),
                    Value::F64(qb.calendar_events_per_sec),
                ),
                ("ratio".to_string(), Value::F64(qb.ratio)),
                ("ratio_floor".to_string(), Value::F64(1.1)),
            ]),
        ),
    ]);
    let path = c.exps.out_path("bench_repro.json");
    write_json_artifact(&path, &report).expect("write bench report");
    println!("wrote {}", path.display());
}
