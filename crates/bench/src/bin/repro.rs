//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p fxnet-bench --bin repro -- all --div 10
//! cargo run --release -p fxnet-bench --bin repro -- fig3 fig7 --jobs 4
//! cargo run --release -p fxnet-bench --bin repro -- --list
//! ```
//!
//! Every experiment lives in one declarative [`REGISTRY`] entry — a
//! stable id, a one-line description, which selection sets it belongs
//! to, the programs it reads from the shared run cache, and the runner
//! — so `--list`, `--help`, dispatch, and prewarming all derive from
//! the same table (DESIGN.md §4).
//!
//! `--div N` scales the kernels' outer iteration counts by 1/N (default
//! 1 = full paper scale); `--hours H` sets AIRSHED hours (default 100);
//! `--out DIR` sets the series/spectra output directory (default
//! `out/`); `--seed N` sets the simulation seed (default 1998) — the
//! same seed reproduces every trace and table byte for byte. `--jobs N`
//! fans the independent simulations (the cached programs, the ablation
//! and admission sweeps) across N workers; output stays byte-identical
//! to `--jobs 1` because results are collected in job order, never
//! completion order.
//!
//! Extras (run only when named): phases, summary, the ablations,
//! `all-extras` (all of those), the multi-tenant experiments `mix`
//! and `mix-admit`, the live-observability experiment `watch`
//! (streaming contract compliance; writes Prometheus-text metrics and a
//! JSONL event log, directed by `--metrics-out DIR`, default `--out`),
//! `fabric-sweep` (the six programs across the four canonical
//! topologies at 10/100/1000 Mb/s; fits burst period vs provided
//! bandwidth, checks `c` stability and single-segment byte-identity,
//! writes `out/fabric_sweep.json`), and `bench` (event-queue engines,
//! parallel suite speedup, the columnar-vs-AoS analysis race, and the
//! binary-vs-text trace-format race; writes `out/bench_repro.json` plus
//! the four `analysis_*.md` transcripts it asserts byte-identical), and
//! `analysis-scale` (out-of-core analytics: synthesizes a chunked
//! 10M-frame trace through the sharded trunk fabric — `--div N` scales
//! it down to a floor of 500k — then races the streamed one-pass chunk
//! scan against the materialize-then-analyze baseline, asserting
//! byte-identical transcripts, `--jobs 1` identity, and O(chunk) peak
//! memory; merges its section into `out/bench_repro.json`).
//!
//! Prewarmed traces are cached on disk under `out/cache` keyed by
//! program, scale, and seed — `--trace-format {binary,text}` picks the
//! artifact encoding (default binary `.fxb`). A later run at the same
//! scale serves store-only experiments from the cache instead of
//! resimulating; a format-version bump invalidates stale artifacts.

use fxnet::fx::Pattern;
use fxnet::qos::{negotiate, AppDescriptor, QosNetwork};
use fxnet::sim::SimRng;
use fxnet::spectral::generate::SynthConfig;
use fxnet::spectral::{
    hurst_aggregated_variance, onoff_vbr_trace, self_similar_trace, synthesize_trace, FourierModel,
};
use fxnet::telemetry::write_json_artifact;
use fxnet::trace::PhaseBreakdown;
use fxnet::trace::{
    binned_bandwidth, load_store, save_store, Periodogram, TraceFormat, TraceStore,
};
use fxnet::{KernelKind, SimTime};
use fxnet_bench::{
    analysis_suite_aos, analysis_suite_columnar, bandwidth_row_bw, queue_benchmark, stats_row,
    Experiments,
};
use fxnet_harness::{timed, Pool};
use serde::Value;
use std::io::Write;

const BIN: SimTime = SimTime(10_000_000); // the paper's 10 ms window

/// Everything an experiment runner gets: the shared run cache, the
/// worker pool, and the raw CLI knobs.
struct Ctx {
    exps: Experiments,
    pool: Pool,
    div: usize,
    hours: usize,
    seed: u64,
    /// DES shard count (`--shards`) for multi-segment topologies;
    /// 1 = the legacy sequential fabric, output byte-identical either way.
    shards: usize,
    metrics_out: Option<String>,
    /// Injected run date (`--date`) recorded in the bench history; kept
    /// out of every other artifact so output stays seed-deterministic.
    date: Option<String>,
}

/// One experiment: a stable id, what it is, which selection sets it
/// belongs to, what it reads from the shared run cache, and how to run
/// it. The whole CLI — `--list`, dispatch order, prewarming — derives
/// from this table.
struct Experiment {
    id: &'static str,
    desc: &'static str,
    /// Member of the default `all` set.
    in_all: bool,
    /// Member of `all-extras`.
    extra: bool,
    /// Kernels whose full [`fxnet::RunResult`] the runner reads (wall
    /// clock, Ethernet counters, telemetry) — always simulated.
    needs_kernels: &'static [KernelKind],
    /// Kernels the runner only analyzes through columnar stores — a
    /// valid trace-cache artifact satisfies these without a simulation.
    needs_stores: &'static [KernelKind],
    /// Whether the runner reads the shared AIRSHED run.
    needs_airshed: bool,
    /// Whether the runner reads the AIRSHED columnar store.
    needs_airshed_store: bool,
    run: fn(&mut Ctx),
}

/// Registry shorthand: no cached programs needed.
const NONE: Experiment = Experiment {
    id: "",
    desc: "",
    in_all: false,
    extra: false,
    needs_kernels: &[],
    needs_stores: &[],
    needs_airshed: false,
    needs_airshed_store: false,
    run: fig1,
};

/// The experiment registry, in execution order.
const REGISTRY: &[Experiment] = &[
    Experiment {
        id: "fig1",
        desc: "Fx communication patterns (P = 8)",
        in_all: true,
        run: fig1,
        ..NONE
    },
    Experiment {
        id: "fig3",
        desc: "packet size statistics for Fx kernels",
        in_all: true,
        needs_stores: &KernelKind::ALL,
        run: fig3,
        ..NONE
    },
    Experiment {
        id: "fig4",
        desc: "packet interarrival statistics for Fx kernels",
        in_all: true,
        needs_stores: &KernelKind::ALL,
        run: fig4,
        ..NONE
    },
    Experiment {
        id: "fig5",
        desc: "average bandwidth for Fx kernels",
        in_all: true,
        needs_stores: &KernelKind::ALL,
        run: fig5,
        ..NONE
    },
    Experiment {
        id: "fig6",
        desc: "instantaneous bandwidth of Fx kernels (series files)",
        in_all: true,
        needs_stores: &KernelKind::ALL,
        run: fig6,
        ..NONE
    },
    Experiment {
        id: "fig7",
        desc: "power spectra of kernel bandwidth (spectrum files)",
        in_all: true,
        needs_stores: &KernelKind::ALL,
        run: fig7,
        ..NONE
    },
    Experiment {
        id: "fig8",
        desc: "packet size statistics for AIRSHED",
        in_all: true,
        needs_airshed_store: true,
        run: fig8,
        ..NONE
    },
    Experiment {
        id: "fig9",
        desc: "packet interarrival statistics for AIRSHED",
        in_all: true,
        needs_airshed_store: true,
        run: fig9,
        ..NONE
    },
    Experiment {
        id: "airshed-avg",
        desc: "AIRSHED average bandwidth (§6.2)",
        in_all: true,
        needs_airshed_store: true,
        run: airshed_avg,
        ..NONE
    },
    Experiment {
        id: "fig10",
        desc: "instantaneous bandwidth of AIRSHED (series files)",
        in_all: true,
        needs_airshed: true,
        needs_airshed_store: true,
        run: fig10,
        ..NONE
    },
    Experiment {
        id: "fig11",
        desc: "power spectrum of AIRSHED bandwidth",
        in_all: true,
        needs_airshed_store: true,
        run: fig11,
        ..NONE
    },
    Experiment {
        id: "model",
        desc: "truncated Fourier-series models of kernel bandwidth (§7.2)",
        in_all: true,
        needs_stores: &[KernelKind::Fft2d, KernelKind::Hist, KernelKind::Seq],
        run: model,
        ..NONE
    },
    Experiment {
        id: "qos",
        desc: "QoS negotiation: t_bi vs P (§7.3)",
        in_all: true,
        run: qos,
        ..NONE
    },
    Experiment {
        id: "baseline",
        desc: "parallel-program vs media traffic (§1/§8)",
        in_all: true,
        needs_stores: &[KernelKind::Fft2d, KernelKind::Hist],
        run: baseline,
        ..NONE
    },
    Experiment {
        id: "phases",
        desc: "per-phase traffic attribution (span × trace join; needs telemetry)",
        extra: true,
        needs_kernels: &KernelKind::ALL,
        needs_airshed: true,
        run: phases,
        ..NONE
    },
    Experiment {
        id: "summary",
        desc: "one-page markdown summary of every measured program",
        extra: true,
        needs_stores: &KernelKind::ALL,
        needs_airshed_store: true,
        run: summary,
        ..NONE
    },
    Experiment {
        id: "ablate-switch",
        desc: "ablation: shared CSMA/CD bus vs store-and-forward switch",
        extra: true,
        run: ablate_switch,
        ..NONE
    },
    Experiment {
        id: "ablate-route",
        desc: "ablation: PVM direct TCP route vs daemon UDP relay",
        extra: true,
        run: ablate_route,
        ..NONE
    },
    Experiment {
        id: "ablate-p",
        desc: "ablation: processor-count sweep vs the §7.3 model",
        extra: true,
        run: ablate_p,
        ..NONE
    },
    Experiment {
        id: "mix",
        desc: "multi-tenant: SOR + 2DFFT + HIST sharing one wire",
        run: mix_kernels,
        ..NONE
    },
    Experiment {
        id: "mix-admit",
        desc: "multi-tenant: QoS admission under rising offered load",
        run: mix_admit,
        ..NONE
    },
    Experiment {
        id: "watch",
        desc: "live observability: streaming contract compliance",
        run: watch_live,
        ..NONE
    },
    Experiment {
        id: "blame",
        desc: "causal provenance: violation blame and collective critical paths",
        run: blame_attrib,
        ..NONE
    },
    Experiment {
        id: "fabric-sweep",
        desc: "fabric sweep: burst period vs provided bandwidth across topologies",
        run: fabric_sweep,
        ..NONE
    },
    Experiment {
        id: "fabric-health",
        desc: "fabric health: multi-resolution weather map + hotspot flagging on the hot trunk",
        run: fabric_health,
        ..NONE
    },
    Experiment {
        id: "bench",
        desc: "perf probes: queues, suite speedup, columnar analysis, trace IO",
        run: bench_repro,
        ..NONE
    },
    Experiment {
        id: "analysis-scale",
        desc: "out-of-core analytics: streamed chunk scan vs materialize-then-analyze",
        run: analysis_scale,
        ..NONE
    },
];

/// The uniform `--metrics-out` snapshot: one Prometheus-text file per
/// experiment, carrying the run parameters and, for every program the
/// experiment pulled through the shared run cache, its frame count and
/// finish time — plus, when `--telemetry` is on, the engine's counter
/// registry under a `prog` label. Deterministic: cache order is sorted
/// and jobs never enter the snapshot, so the bytes match at any
/// `--jobs`.
fn write_metrics_snapshot(ctx: &Ctx, id: &str, dir: &str) {
    use fxnet::telemetry::{labeled, write_prometheus, TelemetryRegistry};
    let mut reg = TelemetryRegistry::new();
    reg.set_gauge("repro_div", ctx.div as f64);
    reg.set_gauge("repro_hours", ctx.hours as f64);
    reg.set_gauge("repro_seed", ctx.seed as f64);
    for (name, run) in ctx.exps.cached_runs() {
        let l = [("prog", name)];
        reg.set_counter(
            labeled("repro_run_frames_total", &l),
            run.trace.len() as u64,
        );
        reg.set_gauge(
            labeled("repro_run_finished_seconds", &l),
            run.finished_at.as_secs_f64(),
        );
        if let Some(tel) = &run.telemetry {
            for (k, v) in tel.registry.counters() {
                reg.set_counter(labeled(k, &l), v);
            }
            for (k, v) in tel.registry.gauges() {
                reg.set_gauge(labeled(k, &l), v);
            }
        }
    }
    let path = std::path::Path::new(dir).join(format!("repro_{id}.prom"));
    write_prometheus(&path, &reg).expect("write metrics snapshot");
    println!("wrote {}", path.display());
}

fn list_experiments() {
    println!("experiments (run with `repro <id>...`):");
    for e in REGISTRY {
        let set = if e.in_all {
            "all"
        } else if e.extra {
            "extras"
        } else {
            "named"
        };
        println!("  {:<14} [{set:<6}] {}", e.id, e.desc);
    }
    println!("\nsets: `all` (the default), `all-extras`; everything else runs only when named");
}

fn main() {
    let mut div = 1usize;
    let mut hours = 100usize;
    let mut out = "out".to_string();
    let mut metrics_out: Option<String> = None;
    let mut date: Option<String> = None;
    let mut seed = 1998u64;
    let mut telemetry = false;
    let mut jobs = 1usize;
    let mut shards = 1usize;
    let mut trace_format = TraceFormat::Binary;
    let mut exps: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--div" => div = args.next().and_then(|s| s.parse().ok()).unwrap_or(1),
            "--hours" => hours = args.next().and_then(|s| s.parse().ok()).unwrap_or(100),
            "--out" => out = args.next().unwrap_or_else(|| "out".into()),
            "--metrics-out" => metrics_out = args.next(),
            "--date" => date = args.next(),
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(1998),
            "--jobs" => jobs = args.next().and_then(|s| s.parse().ok()).unwrap_or(1),
            "--shards" => shards = args.next().and_then(|s| s.parse().ok()).unwrap_or(1).max(1),
            "--trace-format" => {
                trace_format = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(TraceFormat::Binary);
            }
            "--telemetry" => telemetry = true,
            "--list" => {
                list_experiments();
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--div N] [--hours H] [--out DIR] [--metrics-out DIR] [--seed N] [--jobs N] [--shards N] [--trace-format F] [--telemetry] [--list] <exp>...\n\
                     `repro --list` prints every experiment id with its description\n\
                     sets: all (default) = every figure/table of the paper; all-extras = phases ablate-switch ablate-route ablate-p summary\n\
                     --seed N sets the simulation seed (default 1998); same seed, byte-identical output\n\
                     --jobs N fans independent runs across N workers (0 = all CPUs); output is byte-identical to --jobs 1\n\
                     --shards N partitions multi-segment topologies across N DES shards (default 1 = the legacy\n\
                     \u{20}                 sequential loop); output is byte-identical to --shards 1 at any count\n\
                     --trace-format F caches prewarmed traces under out/cache as `binary` (.fxb, default) or `text` (.trace)\n\
                     --metrics-out DIR directs the watch/blame/fabric-health artifacts (default: the --out dir)\n\
                     \u{20}                 and writes a Prometheus snapshot repro_<exp>.prom per selected experiment\n\
                     --date S stamps the bench history ledger (out/bench_history.jsonl) with S\n\
                     --telemetry collects spans/counters and writes out/telemetry_<exp>.json"
                );
                return;
            }
            other => exps.push(other.to_string()),
        }
    }
    if exps.is_empty() {
        exps.push("all".into());
    }
    let known = |id: &str| id == "all" || id == "all-extras" || REGISTRY.iter().any(|e| e.id == id);
    let unknown: Vec<&str> = exps
        .iter()
        .map(String::as_str)
        .filter(|e| !known(e))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id(s): {} — see `repro --list`",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
    let all = exps.iter().any(|e| e == "all");
    let extras = exps.iter().any(|e| e == "all-extras");
    // Selection preserves registry order, which is the execution order.
    let selected: Vec<&Experiment> = REGISTRY
        .iter()
        .filter(|e| (all && e.in_all) || (extras && e.extra) || exps.iter().any(|x| x == e.id))
        .collect();

    // The phases experiment is the span × trace join; it needs telemetry.
    if selected.iter().any(|e| e.id == "phases") && !telemetry {
        eprintln!("note: `phases` needs telemetry; enabling --telemetry\n");
        telemetry = true;
    }

    let mut ctx = Ctx {
        exps: Experiments::new(div, hours, &out)
            .with_seed(seed)
            .with_telemetry(telemetry)
            .with_shards(shards)
            .with_trace_cache(trace_format),
        pool: Pool::new(jobs),
        div,
        hours,
        seed,
        shards,
        metrics_out,
        date,
    };
    if div != 1 {
        println!(
            "note: kernel iteration counts scaled by 1/{div} (pass --div 1 for full paper scale)\n"
        );
    }

    // Prewarm the union of what the selected experiments read from the
    // shared cache, fanned across the pool. The cache is keyed by
    // program, so every analysis afterwards prints the same bytes at
    // any --jobs; only the [run]/[cache] progress lines on stderr
    // interleave. Experiments that only read the columnar store can be
    // satisfied by the on-disk trace cache; ones that read the full
    // RunResult (finished_at, telemetry) always simulate.
    let mut run_kernels: Vec<KernelKind> = Vec::new();
    let mut store_kernels: Vec<KernelKind> = Vec::new();
    for e in &selected {
        for k in e.needs_kernels {
            if !run_kernels.contains(k) {
                run_kernels.push(*k);
            }
        }
        for k in e.needs_stores {
            if !store_kernels.contains(k) {
                store_kernels.push(*k);
            }
        }
    }
    let airshed_run = selected.iter().any(|e| e.needs_airshed);
    let airshed_store = selected.iter().any(|e| e.needs_airshed_store);
    ctx.exps.prewarm_suite(
        &ctx.pool,
        &run_kernels,
        &store_kernels,
        airshed_run,
        airshed_store,
    );

    for e in &selected {
        (e.run)(&mut ctx);
        // The uniform `--metrics-out` contract: every experiment in the
        // registry leaves a Prometheus snapshot behind, not just the
        // watch/blame/fabric-health runners with bespoke artifacts.
        if let Some(dir) = ctx.metrics_out.clone() {
            write_metrics_snapshot(&ctx, e.id, &dir);
        }
    }

    // Telemetry artifacts: one deterministic JSON (spans + counter
    // registry of every cached run) per requested experiment id.
    // `phases` writes its own, richer artifact.
    if telemetry {
        for e in exps.iter().filter(|e| e.as_str() != "phases") {
            let path = ctx.exps.out_path(&format!("telemetry_{e}.json"));
            write_json_artifact(&path, &ctx.exps.telemetry_value())
                .expect("write telemetry artifact");
            println!("wrote {}", path.display());
        }
    }
}

// --------------------------------------------------------------------
// Per-phase traffic attribution: the span × trace join.

fn phases(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Per-phase traffic attribution (10 ms peak bins)");
    let ranks = fxnet::Testbed::paper().config().p;
    let mut entries: Vec<(String, Value)> = Vec::new();
    let mut programs: Vec<(String, PhaseBreakdown, Value)> = Vec::new();
    for k in KernelKind::ALL {
        let run = ctx.kernel(k);
        let tel = run.telemetry.as_ref().expect("phases runs with telemetry");
        let bd = PhaseBreakdown::compute(&run.trace, &tel.spans, ranks, BIN);
        programs.push((k.name().to_string(), bd, tel.to_value()));
    }
    {
        let run = ctx.airshed();
        let tel = run.telemetry.as_ref().expect("phases runs with telemetry");
        let bd = PhaseBreakdown::compute(&run.trace, &tel.spans, ranks, BIN);
        programs.push(("AIRSHED".to_string(), bd, tel.to_value()));
    }
    for (name, bd, tel_value) in programs {
        println!("\n{name}:");
        print!("{}", bd.table());
        entries.push((
            name,
            Value::Object(vec![
                ("phases".to_string(), serde::Serialize::to_value(&bd)),
                ("telemetry".to_string(), tel_value),
            ]),
        ));
    }
    let path = ctx.out_path("telemetry_phases.json");
    write_json_artifact(&path, &Value::Object(entries)).expect("write telemetry artifact");
    println!("\nwrote {}", path.display());
}

// --------------------------------------------------------------------
// One-page markdown summary of every measured program.

fn summary(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Summary: all measured programs (markdown)");
    use fxnet::trace::{markdown_table_views, ReportOptions};
    let opts = ReportOptions::default();
    // Materialize every store (simulated or served from the trace
    // cache), then borrow them all at once for the one-table render —
    // no cloned traces, just views.
    let mut names: Vec<&'static str> = Vec::new();
    for k in KernelKind::ALL {
        ctx.kernel_store(k);
        names.push(k.name());
    }
    ctx.airshed_store();
    names.push("AIRSHED");
    let rows: Vec<(&str, fxnet::trace::TraceView)> = names
        .iter()
        .map(|n| (*n, ctx.store_of(n).expect("materialized above").view()))
        .collect();
    println!("{}", markdown_table_views(rows, &opts));
}

// --------------------------------------------------------------------
// DESIGN.md §8 ablations.

fn kernel_row(label: &str, run: &fxnet::RunResult<u64>) -> String {
    let store = TraceStore::from_records(&run.trace);
    let v = store.view();
    let bw = v.average_bandwidth().unwrap_or(0.0) / 1000.0;
    let series = v.binned_bandwidth(BIN);
    let spec = Periodogram::compute(&series, BIN);
    format!(
        "{label:<22} {:>8.1}s {:>9.1} KB/s   {:>6.2} Hz   {:>6} collisions",
        run.finished_at.as_secs_f64(),
        bw,
        spec.dominant_frequency(0.15).unwrap_or(0.0),
        run.ether.collisions
    )
}

fn ablate_switch(c: &mut Ctx) {
    header("Ablation: shared CSMA/CD bus vs store-and-forward switch");
    use fxnet::TestbedBuilder;
    let (div, seed) = (c.div, c.seed);
    // Four independent (kernel, fabric) runs; the pool returns them in
    // input order, so the table reads the same at any --jobs.
    let runs = c.pool.map(
        [KernelKind::Fft2d, KernelKind::Hist]
            .into_iter()
            .flat_map(|k| [(k, false), (k, true)])
            .collect(),
        |(k, switched)| {
            let mut b = TestbedBuilder::paper().seed(seed);
            if switched {
                b = b.switched_fabric();
            }
            b.build().run_kernel(k, div.max(5)).unwrap()
        },
    );
    for (pair, k) in runs.chunks(2).zip([KernelKind::Fft2d, KernelKind::Hist]) {
        println!(
            "
{}:",
            k.name()
        );
        println!("{}", kernel_row("  shared bus", &pair[0]));
        println!("{}", kernel_row("  switched fabric", &pair[1]));
    }
    println!(
        "
(shape: the switch removes collisions and parallelizes disjoint transfers,"
    );
    println!(" raising bandwidth and the burst fundamental — but the quiet/burst alternation");
    println!(" persists: it is program structure, not MAC contention.)");
}

fn ablate_route(c: &mut Ctx) {
    header("Ablation: PVM direct TCP route vs daemon UDP relay");
    use fxnet::pvm::Route;
    use fxnet::TestbedBuilder;
    let (div, seed) = (c.div, c.seed);
    let runs = c.pool.map(
        [KernelKind::Fft2d, KernelKind::Hist]
            .into_iter()
            .flat_map(|k| [(k, Route::Direct), (k, Route::Daemon)])
            .collect(),
        |(k, route)| {
            TestbedBuilder::paper()
                .seed(seed)
                .route(route)
                .build()
                .run_kernel(k, div.max(5))
                .unwrap()
        },
    );
    for (pair, k) in runs.chunks(2).zip([KernelKind::Fft2d, KernelKind::Hist]) {
        println!(
            "
{}:",
            k.name()
        );
        println!("{}", kernel_row("  direct (TCP)", &pair[0]));
        println!("{}", kernel_row("  daemon (UDP relay)", &pair[1]));
    }
    println!(
        "
(the daemon route is scalable but \"somewhat slow\" (§4): stop-and-wait"
    );
    println!(" relaying stretches every communication phase.)");
}

fn ablate_p(c: &mut Ctx) {
    header("Ablation: processor-count sweep vs the §7.3 model");
    use fxnet::pvm::MessageBuilder;
    use fxnet::TestbedBuilder;
    let work = SimTime::from_secs(8);
    let n_bytes = 200_000usize;
    let seed = c.seed;
    println!(
        "shift pattern, W = {}s total work, N = {} KB bursts:",
        work.as_secs_f64(),
        n_bytes / 1000
    );
    println!("    P    model t_bi    measured t_bi");
    // A keyed sweep: rows come back sorted by P no matter which worker
    // finishes first.
    let mut sweep = c.pool.sweep::<u32, String>();
    for p in [2u32, 4, 8] {
        sweep = sweep.add(p, move || {
            let run = TestbedBuilder::quiet(p).seed(seed).build().run(move |ctx| {
                let me = ctx.rank();
                let np = ctx.nprocs();
                let per_rank = SimTime::from_nanos(work.as_nanos() / u64::from(np));
                for i in 0..8usize {
                    ctx.compute_time(per_rank);
                    let mut b = MessageBuilder::new(i as i32);
                    b.pack_bytes(&vec![0u8; n_bytes]);
                    ctx.send((me + 1) % np, b.finish());
                    let _ = ctx.recv((me + np - 1) % np);
                }
            });
            let profile = fxnet::trace::BurstProfile::of(&run.trace, SimTime::from_millis(300))
                .expect("bursts");
            let measured = profile.intervals.map_or(f64::NAN, |i| i.avg);
            let app =
                AppDescriptor::scalable(Pattern::Shift { k: 1 }, work.as_secs_f64(), move |_| {
                    n_bytes as u64
                });
            let net = QosNetwork::ethernet_10mbps();
            let bw = net.offer(app.concurrent_connections(p)).expect("offer");
            let model = app.timing(p, bw).t_interval;
            format!("   {p:>2}    {model:>9.2}s    {measured:>12.2}s")
        });
    }
    for (_, row) in sweep.run() {
        println!("{row}");
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

// --------------------------------------------------------------------
// Multi-tenant experiments: the mixed workload and the admission sweep.

fn mix_kernels(c: &mut Ctx) {
    header("Mixed workload: SOR + 2DFFT + HIST sharing one wire");
    use fxnet::mix::MixTenant;
    use fxnet::TestbedBuilder;
    let ctx = &c.exps;
    let div = ctx.div;
    // 2DFFT alone presents a ~1.4 MB/s mean load — more than the paper's
    // whole 10 Mb/s Ethernet — so the admission controller would
    // (correctly) refuse the three-way mix there; see `mix-admit` for
    // that regime. The co-scheduling experiment runs on a 100 Mb/s
    // fabric instead.
    println!("(fabric: 100 Mb/s shared; the 10 Mb/s saturation regime is `mix-admit`)");
    let out = TestbedBuilder::paper()
        .seed(ctx.seed())
        .bandwidth_bps(fxnet::sim::RATE_100M)
        .build()
        .mix()
        .network(QosNetwork::of_rate(fxnet::sim::RATE_100M))
        .tenant(MixTenant::kernel(
            "SOR",
            KernelKind::Sor,
            div,
            4,
            SimTime::ZERO,
        ))
        .tenant(MixTenant::kernel(
            "2DFFT",
            KernelKind::Fft2d,
            div,
            4,
            SimTime::from_millis(250),
        ))
        .tenant(MixTenant::kernel(
            "HIST",
            KernelKind::Hist,
            div,
            4,
            SimTime::from_millis(500),
        ))
        .run();
    let total = out.check_conservation();
    print!("{}", out.report());

    println!("\n-- demuxed packet sizes: mixed vs solo (bytes) --");
    println!("              min       max       avg        sd");
    for t in &out.tenants {
        println!("{}", stats_row(&t.name, t.sizes));
        println!("{}", stats_row("  solo", t.solo_sizes));
    }
    println!("\n-- average bandwidth: mixed vs solo (KB/s) --");
    for t in &out.tenants {
        println!(
            "{:<10} {:>10.1}   solo {:>10.1}",
            t.name,
            t.avg_bw.unwrap_or(0.0) / 1000.0,
            t.solo_avg_bw.unwrap_or(0.0) / 1000.0
        );
    }

    // The combined spectrum of the shared wire: three periodic programs
    // superpose; their fundamentals coexist in one periodogram.
    let series = TraceStore::from_records(&out.trace)
        .view()
        .binned_bandwidth(BIN);
    let spec = Periodogram::compute(&series, BIN);
    println!("\n-- combined spectrum of the shared wire --");
    println!(
        "dominant {:.2} Hz, flatness {:.4}",
        spec.dominant_frequency(0.15).unwrap_or(0.0),
        spec.flatness()
    );
    for s in spec.top_spikes(6, 0.25) {
        println!("    spike {:>6.2} Hz  power {:.2e}", s.freq, s.power);
    }
    println!(
        "\nconservation: {} + {} background = {} frames total (exact)",
        out.tenants
            .iter()
            .map(|t| t.frames.len().to_string())
            .collect::<Vec<_>>()
            .join(" + "),
        out.background.len(),
        total
    );
}

fn mix_admit(c: &mut Ctx) {
    header("QoS admission under rising offered load (shift tenants, P=4)");
    use fxnet::mix::MixTenant;
    use fxnet::TestbedBuilder;
    use std::fmt::Write as _;
    let seed = c.seed;
    println!("offered  admitted  rejected  residual KB/s");
    // Each offered-load level is an independent mix run; sweep them
    // across the pool keyed by the level so the report prints in order.
    let mut sweep = c.pool.sweep::<usize, (String, bool)>();
    for offered in 1..=4usize {
        sweep = sweep.add(offered, move || {
            // Identical §7.3 shift tenants: 2 s of work per cycle,
            // 400 KB bursts. Each admission commits its negotiated mean
            // load, so the residual shrinks until the burst-bandwidth
            // floor (50 KB/s) refuses the next.
            let tenant = |i: usize| MixTenant::shift(&format!("T{}", i + 1), 2.0, 400_000, 3, 4);
            let net = || QosNetwork::ethernet_10mbps().with_min_burst_bw(50_000.0);
            let mut b = TestbedBuilder::paper()
                .seed(seed)
                .heartbeats(false)
                .build()
                .mix()
                .network(net())
                .solo_baselines(offered == 2);
            for i in 0..offered {
                b = b.tenant(tenant(i));
            }
            let out = b.run();
            let committed: f64 = out.tenants.iter().map(|t| t.negotiation.mean_load).sum();
            let mut s = String::new();
            writeln!(
                s,
                "{offered:>7}  {:>8}  {:>8}  {:>13.1}",
                out.tenants.len(),
                out.rejected.len(),
                (net().capacity() - committed) / 1000.0
            )
            .expect("write row");
            for r in &out.rejected {
                writeln!(s, "         {r}").expect("write row");
            }
            if offered == 2 {
                writeln!(
                    s,
                    "         measured vs predicted slowdown at offered load 2:"
                )
                .expect("write row");
                for t in &out.tenants {
                    writeln!(
                        s,
                        "           {}: measured {:.3}  QoS-model predicted {:.3}",
                        t.name,
                        t.measured_slowdown.unwrap_or(f64::NAN),
                        t.predicted_slowdown
                    )
                    .expect("write row");
                }
            }
            (s, !out.rejected.is_empty())
        });
    }
    let mut any_rejected = false;
    for (_, (block, rejected)) in sweep.run() {
        print!("{block}");
        any_rejected |= rejected;
    }
    assert!(
        any_rejected,
        "the sweep must exhaust the residual bandwidth and reject"
    );
    println!("\n(the model splits burst bandwidth over every admitted tenant's concurrent");
    println!(" connections; the measured slowdown comes from actually sharing the wire.)");
}

// --------------------------------------------------------------------
// Live observability: the streaming watcher on the mixed workload.

fn watch_live(c: &mut Ctx) {
    header("Live watch: streaming contract compliance on the shared wire");
    use fxnet::mix::MixTenant;
    use fxnet::telemetry::write_prometheus;
    use fxnet::watch::WatchConfig;
    use fxnet::TestbedBuilder;
    let metrics_out = c.metrics_out.as_deref();
    let ctx = &c.exps;
    let div = ctx.div;
    // SOR honestly declares its compile-time descriptor; 2DFFT presents
    // only 1/8 of its true burst sizes at admission. Offline analysis
    // would catch that after the run — the streaming watcher catches it
    // while the frames are still going by, from the same frame tap that
    // feeds the trace (zero perturbation: the trace is byte-identical
    // with the watcher off).
    println!("(fabric: 100 Mb/s shared; 2DFFT claims 1/8 of its true burst sizes)");
    let out = TestbedBuilder::paper()
        .seed(ctx.seed())
        .bandwidth_bps(fxnet::sim::RATE_100M)
        .build()
        .mix()
        .network(QosNetwork::of_rate(fxnet::sim::RATE_100M))
        .solo_baselines(false)
        .tenant(MixTenant::kernel(
            "SOR",
            KernelKind::Sor,
            div,
            4,
            SimTime::ZERO,
        ))
        .tenant(
            MixTenant::kernel(
                "2DFFT",
                KernelKind::Fft2d,
                div,
                4,
                SimTime::from_millis(250),
            )
            .with_claim_scale(0.125),
        )
        .watch(WatchConfig::default())
        .run();
    for r in &out.rejected {
        println!("rejected: {r}");
    }
    let report = out.watch.as_ref().expect("watch was enabled");
    print!("{}", report.summary());

    let dir = metrics_out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| ctx.out_dir.clone());
    std::fs::create_dir_all(&dir).expect("create metrics dir");
    let prom = dir.join("watch.prom");
    write_prometheus(&prom, &report.registry).expect("write prometheus metrics");
    let jsonl = dir.join("watch_events.jsonl");
    std::fs::write(&jsonl, report.events_jsonl()).expect("write event log");
    println!("\nwrote {} and {}", prom.display(), jsonl.display());

    assert_eq!(
        report.violations_for("2DFFT"),
        1,
        "the over-driver must be caught (one latched violation)"
    );
    assert_eq!(
        report.violations_for("SOR"),
        0,
        "the honest tenant must stay clean"
    );
    println!("caught: 2DFFT latched 1 ContractViolation; SOR stayed clean");
}

// --------------------------------------------------------------------
// Causal provenance: blame the violation, extract the critical paths.

fn blame_attrib(c: &mut Ctx) {
    header("Causal provenance: who caused the violation, where the time went");
    use fxnet::causal::{
        blame_value, blame_violation, chrome_trace, collective_paths, dag_value, CauseDag,
    };
    use fxnet::mix::MixTenant;
    use fxnet::watch::WatchConfig;
    use fxnet::TestbedBuilder;
    let metrics_out = c.metrics_out.as_deref();
    let ctx = &c.exps;
    let div = ctx.div;
    // Same scenario as `watch` — SOR honest, 2DFFT claiming 1/8 of its
    // true burst sizes — but with every frame carrying a compact cause
    // tag through pvm, TCP segmentation/retransmission, and the MAC.
    // The tag rides a side-table, so the trace stays byte-identical.
    println!("(the `watch` scenario, with every frame tagged by its causing op)");
    let out = TestbedBuilder::paper()
        .seed(ctx.seed())
        .bandwidth_bps(fxnet::sim::RATE_100M)
        .build()
        .mix()
        .network(QosNetwork::of_rate(fxnet::sim::RATE_100M))
        .solo_baselines(false)
        .causal(true)
        .tenant(MixTenant::kernel(
            "SOR",
            KernelKind::Sor,
            div,
            4,
            SimTime::ZERO,
        ))
        .tenant(
            MixTenant::kernel(
                "2DFFT",
                KernelKind::Fft2d,
                div,
                4,
                SimTime::from_millis(250),
            )
            .with_claim_scale(0.125),
        )
        .watch(WatchConfig::default())
        .run();
    let report = out.watch.as_ref().expect("watch was enabled");
    let run = out.causal.as_ref().expect("causal capture was enabled");

    let dag = CauseDag::build(run);
    let conservation = dag
        .check_conservation()
        .unwrap_or_else(|e| panic!("byte conservation must hold: {e}"));
    assert_eq!(
        conservation.untagged_frames, 0,
        "every delivered frame must carry a cause"
    );
    println!(
        "cause DAG: {} ops -> {} frames ({} retransmitted, {} protocol); {} data bytes conserved",
        conservation.ops,
        run.events.len(),
        conservation.retransmitted_frames,
        conservation.protocol_frames,
        conservation.data_bytes,
    );

    let event = report
        .events
        .iter()
        .find(|e| e.tenant == "2DFFT")
        .expect("the over-driver latches a violation");
    let blame = blame_violation(event, run, &out.map);
    assert!(
        blame.matched,
        "the flight recorder must be located in the causal stream"
    );
    let top = blame.top().expect("violation has causing chains");
    assert_eq!(
        top.tenant, "2DFFT",
        "blame must land on the over-driving tenant"
    );
    println!(
        "violation `{}` at {:.3} ms, {}-frame window:",
        blame.check,
        blame.time.as_nanos() as f64 / 1e6,
        blame.window,
    );
    for chain in &blame.chains {
        println!(
            "  {} rank {}: {} ops -> {} frames, {} wire bytes",
            chain.tenant, chain.rank, chain.ops, chain.frames, chain.bytes
        );
    }
    println!(
        "blamed: {} (rank {}) with {} wire bytes",
        top.tenant, top.rank, top.bytes
    );

    let spans = &out
        .telemetry
        .as_ref()
        .expect("causal capture forces telemetry")
        .spans;
    let paths = collective_paths(run, spans, &out.map);
    assert!(!paths.is_empty(), "the kernels run collective spans");
    for p in &paths {
        assert_eq!(
            p.segments.total_ns(),
            p.elapsed_ns,
            "{}/{}#{}: segments must sum exactly to elapsed",
            p.tenant,
            p.name,
            p.instance
        );
    }
    let sor = paths
        .iter()
        .filter(|p| p.tenant == "SOR")
        .max_by_key(|p| p.elapsed_ns)
        .expect("SOR runs boundary exchanges");
    let sor_link = sor
        .blocking_link
        .as_ref()
        .expect("SOR's critical path names the contended link");
    println!(
        "SOR critical path: {}#{} straggler rank {}, contended link {}",
        sor.name, sor.instance, sor.straggler_rank, sor_link
    );
    let heavy = paths
        .iter()
        .max_by_key(|p| p.elapsed_ns)
        .expect("paths is non-empty");
    println!(
        "{} collective critical paths; heaviest: {}/{}#{} straggler rank {} ({:.3} ms{})",
        paths.len(),
        heavy.tenant,
        heavy.name,
        heavy.instance,
        heavy.straggler_rank,
        heavy.elapsed_ns as f64 / 1e6,
        heavy
            .blocking_link
            .as_ref()
            .map_or_else(String::new, |l| format!(", blocked on {l}")),
    );

    // The same attribution machinery on a multi-segment fabric: pin the
    // kernel's ranks alternately across two switches joined by an
    // oversubscribed trunk (fast edge ports, slow backbone), so every
    // neighbor exchange crosses the inter-switch link and the critical
    // paths name the contended trunk.
    println!("\n-- trunked topology: naming the contended trunk --");
    let spec = oversubscribed_trunk2(9);
    let trunked = TestbedBuilder::paper()
        .seed(ctx.seed())
        .topology(spec)
        .build()
        .mix()
        .solo_baselines(false)
        .causal(true)
        .tenant(MixTenant::kernel(
            "SOR",
            KernelKind::Sor,
            div,
            4,
            SimTime::ZERO,
        ))
        .run();
    let trun = trunked.causal.as_ref().expect("causal capture was enabled");
    let tspans = &trunked
        .telemetry
        .as_ref()
        .expect("causal capture forces telemetry")
        .spans;
    let tpaths = collective_paths(trun, tspans, &trunked.map);
    let trunk_paths: Vec<_> = tpaths
        .iter()
        .filter(|p| {
            p.blocking_link
                .as_deref()
                .is_some_and(|l| l.starts_with("trunk:"))
        })
        .collect();
    assert!(
        !trunk_paths.is_empty(),
        "cross-switch collectives must be blocked on the trunk"
    );
    let worst = trunk_paths
        .iter()
        .max_by_key(|p| p.elapsed_ns)
        .expect("non-empty");
    let trunk_link = worst.blocking_link.clone().expect("filtered on the link");
    println!(
        "contended trunk named: {trunk_link} ({} of {} collective paths blocked on it; worst {}#{} straggler rank {})",
        trunk_paths.len(),
        tpaths.len(),
        worst.name,
        worst.instance,
        worst.straggler_rank,
    );

    let dir = metrics_out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| ctx.out_dir.clone());
    std::fs::create_dir_all(&dir).expect("create artifacts dir");
    let blame_path = dir.join("blame.json");
    let combined = Value::Object(vec![
        ("blame".to_string(), blame_value(&blame)),
        (
            "critical_paths".to_string(),
            fxnet::causal::paths_value(&paths),
        ),
        ("dag".to_string(), dag_value(&dag, &out.map)),
        (
            "trunk".to_string(),
            Value::Object(vec![
                ("link".to_string(), Value::Str(trunk_link)),
                (
                    "paths_blocked".to_string(),
                    Value::U64(trunk_paths.len() as u64),
                ),
                ("paths_total".to_string(), Value::U64(tpaths.len() as u64)),
            ]),
        ),
    ]);
    write_json_artifact(&blame_path, &combined).expect("write blame report");
    let trace_path = dir.join("blame_trace.json");
    write_json_artifact(&trace_path, &chrome_trace(&paths, &out.map)).expect("write chrome trace");
    println!(
        "wrote {} and {} (load the trace at ui.perfetto.dev)",
        blame_path.display(),
        trace_path.display()
    );
}

// --------------------------------------------------------------------
// Figure 1: the communication patterns.

fn fig1(_c: &mut Ctx) {
    header("Figure 1: Fx communication patterns (P = 8)");
    for pat in [
        Pattern::Neighbor,
        Pattern::AllToAll,
        Pattern::Partition,
        Pattern::Broadcast { root: 0 },
        Pattern::TreeUp,
        Pattern::TreeDown,
    ] {
        let sched = pat.schedule(8);
        println!(
            "\n{} — {} connections, {} round(s):",
            pat.name(),
            pat.connection_count(8),
            sched.len()
        );
        for (i, round) in sched.iter().enumerate() {
            let pairs: Vec<String> = round.iter().map(|(s, d)| format!("{s}->{d}")).collect();
            println!("  round {i}: {}", pairs.join(" "));
        }
    }
}

// --------------------------------------------------------------------
// Figures 3–5: kernel tables.

fn fig3(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 3: packet size statistics for Fx kernels (bytes)");
    println!("-- aggregate --     min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = ctx.kernel_store(k).view().packet_sizes();
        println!("{}", stats_row(k.name(), s));
    }
    println!("-- connection --    min       max       avg        sd");
    for k in KernelKind::ALL {
        // A zero-copy connection view: an index lookup, not a filter.
        let s = Experiments::representative_pair(k)
            .and_then(|(a, b)| ctx.kernel_store(k).connection(a, b).packet_sizes());
        println!("{}", stats_row(k.name(), s));
    }
    println!("(paper aggregate: SOR 58/1518/473/568, 2DFFT 58/1518/969/678, T2DFFT 58/1518/912/663, SEQ 58/90/75/14, HIST 58/1518/499/575)");
}

fn fig4(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 4: packet interarrival time statistics for Fx kernels (ms)");
    println!("-- aggregate --     min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = ctx.kernel_store(k).view().interarrivals_ms();
        println!("{}", stats_row(k.name(), s));
    }
    println!("-- connection --    min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = Experiments::representative_pair(k)
            .and_then(|(a, b)| ctx.kernel_store(k).connection(a, b).interarrivals_ms());
        println!("{}", stats_row(k.name(), s));
    }
    println!("(paper aggregate avg: SOR 82.1, 2DFFT 1.3, T2DFFT 1.5, SEQ 1.3, HIST 16.5)");
}

fn fig5(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 5: average bandwidth for Fx kernels (KB/s)");
    println!("-- aggregate --      KB/s");
    for k in KernelKind::ALL {
        let bw = ctx.kernel_store(k).view().average_bandwidth();
        println!("{}", bandwidth_row_bw(k.name(), bw));
    }
    println!("-- connection --     KB/s");
    for k in KernelKind::ALL {
        match Experiments::representative_pair(k) {
            Some((a, b)) => {
                let bw = ctx.kernel_store(k).connection(a, b).average_bandwidth();
                println!("{}", bandwidth_row_bw(k.name(), bw));
            }
            None => println!("{:<10} {:>10}", k.name(), "-"),
        }
    }
    println!("(paper aggregate: SOR 5.6, 2DFFT 754.8, T2DFFT 607.1, SEQ 58.3, HIST 29.6)");
}

// --------------------------------------------------------------------
// Figures 6–7: instantaneous bandwidth + spectra.

fn dump_series(path: &std::path::Path, series: &[(SimTime, f64)], max_t: f64) {
    let mut f = std::fs::File::create(path).expect("create series file");
    for (t, v) in series {
        let ts = t.as_secs_f64();
        if ts > max_t {
            break;
        }
        writeln!(f, "{ts:.4} {:.2}", v / 1000.0).expect("write");
    }
}

fn dump_spectrum(path: &std::path::Path, spec: &Periodogram, max_hz: f64) {
    let mut f = std::fs::File::create(path).expect("create spectrum file");
    for i in 0..spec.power.len() {
        let hz = spec.freq(i);
        if hz > max_hz {
            break;
        }
        writeln!(f, "{hz:.5} {:.4e}", spec.power[i]).expect("write");
    }
}

fn fig6(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 6: instantaneous bandwidth of Fx kernels (10 ms window)");
    for k in KernelKind::ALL {
        let win = ctx.kernel_store(k).view().sliding_window_bandwidth(BIN);
        let path = ctx.out_path(&format!("{}.all.winbw", k.name()));
        dump_series(&path, &win, 10.0);
        println!(
            "wrote {} ({} points, 10 s span)",
            path.display(),
            win.len().min(10_000)
        );
        if let Some((a, b)) = Experiments::representative_pair(k) {
            let win = ctx
                .kernel_store(k)
                .connection(a, b)
                .sliding_window_bandwidth(BIN);
            let path = ctx.out_path(&format!("{}.conn.winbw", k.name()));
            dump_series(&path, &win, 10.0);
            println!("wrote {}", path.display());
        }
    }
}

fn fig7(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 7: power spectra of kernel bandwidth (10 ms bins)");
    let paper = [
        ("SOR", "conn ~5 Hz fundamental; aggregate less clean"),
        ("2DFFT", "aggregate 0.5 Hz fundamental, declining harmonics"),
        ("T2DFFT", "least clean spectra of all kernels"),
        ("SEQ", "4 Hz harmonic dominant"),
        ("HIST", "5 Hz fundamental, linearly declining harmonics"),
    ];
    for (k, (_, note)) in KernelKind::ALL.into_iter().zip(paper) {
        let series = ctx.kernel_store(k).view().binned_bandwidth(BIN);
        let spec = Periodogram::compute(&series, BIN);
        let path = ctx.out_path(&format!("{}.all.spectrum", k.name()));
        dump_spectrum(&path, &spec, 50.0);
        let dom = spec.dominant_frequency(0.15).unwrap_or(0.0);
        println!(
            "\n{}: aggregate dominant {:.2} Hz, flatness {:.4}  [paper: {note}]",
            k.name(),
            dom,
            spec.flatness()
        );
        for s in spec.top_spikes(4, 0.25) {
            println!("    spike {:>6.2} Hz  power {:.2e}", s.freq, s.power);
        }
        if let Some((a, b)) = Experiments::representative_pair(k) {
            let cs = ctx.kernel_store(k).connection(a, b).binned_bandwidth(BIN);
            let cspec = Periodogram::compute(&cs, BIN);
            let path = ctx.out_path(&format!("{}.conn.spectrum", k.name()));
            dump_spectrum(&path, &cspec, 50.0);
            println!(
                "    connection dominant {:.2} Hz, flatness {:.4}",
                cspec.dominant_frequency(0.15).unwrap_or(0.0),
                cspec.flatness()
            );
        }
    }
}

// --------------------------------------------------------------------
// Figures 8–11 + §6.2: AIRSHED.

fn fig8(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 8: packet size statistics for AIRSHED (bytes)");
    let store = ctx.airshed_store();
    println!("{}", stats_row("aggregate", store.view().packet_sizes()));
    let conn = store.connection(fxnet::HostId(0), fxnet::HostId(1));
    println!("{}", stats_row("connection", conn.packet_sizes()));
    println!("(paper: aggregate 58/1518/899/693; connection 58/1518/889/688)");
}

fn fig9(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 9: packet interarrival statistics for AIRSHED (ms)");
    let store = ctx.airshed_store();
    println!(
        "{}",
        stats_row("aggregate", store.view().interarrivals_ms())
    );
    let conn = store.connection(fxnet::HostId(0), fxnet::HostId(1));
    println!("{}", stats_row("connection", conn.interarrivals_ms()));
    println!("(paper: aggregate 0/23448.6/26.8/513.3; connection 0/37018.5/317.4/2353.6)");
}

fn airshed_avg(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("§6.2: AIRSHED average bandwidth");
    let store = ctx.airshed_store();
    let agg = store.view().average_bandwidth().unwrap_or(0.0) / 1000.0;
    let cbw = store
        .connection(fxnet::HostId(0), fxnet::HostId(1))
        .average_bandwidth()
        .unwrap_or(0.0)
        / 1000.0;
    println!("aggregate  {agg:>8.1} KB/s   (paper: 32.7)");
    println!("connection {cbw:>8.1} KB/s   (paper:  2.7)");
}

fn fig10(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 10: instantaneous bandwidth of AIRSHED (10 ms window)");
    let total = ctx.airshed().finished_at.as_secs_f64();
    let win = ctx.airshed_store().view().sliding_window_bandwidth(BIN);
    let p500 = ctx.out_path("AIRSHED.all.winbw.500s");
    dump_series(&p500, &win, 500.0f64.min(total));
    let p60 = ctx.out_path("AIRSHED.all.winbw.60s");
    dump_series(&p60, &win, 60.0f64.min(total));
    println!("wrote {} and {}", p500.display(), p60.display());
    let cw = ctx
        .airshed_store()
        .connection(fxnet::HostId(0), fxnet::HostId(1))
        .sliding_window_bandwidth(BIN);
    let pc = ctx.out_path("AIRSHED.conn.winbw.500s");
    dump_series(&pc, &cw, 500.0f64.min(total));
    println!("wrote {}", pc.display());
}

fn fig11(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("Figure 11: power spectrum of AIRSHED bandwidth");
    let series = ctx.airshed_store().view().binned_bandwidth(BIN);
    let spec = Periodogram::compute(&series, BIN);
    for (suffix, max_hz) in [("0.1hz", 0.1), ("1hz", 1.0), ("20hz", 20.0)] {
        let path = ctx.out_path(&format!("AIRSHED.spectrum.{suffix}"));
        dump_spectrum(&path, &spec, max_hz);
        println!("wrote {}", path.display());
    }
    println!("\nband peaks (paper: ≈0.015 Hz hour, ≈0.2 Hz chem step, ≈5 Hz transport):");
    for (label, lo, hi) in [
        ("hour  ", 0.005, 0.05),
        ("step  ", 0.08, 0.8),
        ("trans ", 1.0, 20.0),
    ] {
        let mut best = (0.0, 0.0);
        for i in 1..spec.power.len() {
            let f = spec.freq(i);
            if f >= lo && f < hi && spec.power[i] > best.1 {
                best = (f, spec.power[i]);
            }
        }
        println!(
            "  {label} {:.4} Hz (period {:>6.1} s)  power {:.2e}",
            best.0,
            1.0 / best.0.max(1e-9),
            best.1
        );
    }
}

// --------------------------------------------------------------------
// §7.2 model, §7.3 QoS, §1/§8 baseline comparison.

fn model(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("§7.2: truncated Fourier-series models of kernel bandwidth");
    for k in [KernelKind::Fft2d, KernelKind::Hist, KernelKind::Seq] {
        let series = ctx.kernel_store(k).view().binned_bandwidth(BIN);
        let spec = Periodogram::compute(&series, BIN);
        println!(
            "\n{}:  spikes  captured-power  reconstruction-RMS",
            k.name()
        );
        for n in [1usize, 2, 4, 8, 16, 32, 64] {
            let m = FourierModel::from_periodogram(&spec, n, 0.05);
            println!(
                "        {n:>5}  {:>13.1}%  {:>17.3}",
                m.captured_power_fraction(&spec) * 100.0,
                m.reconstruction_error(&series, BIN)
            );
        }
        // Regenerate synthetic traffic from the 16-spike model.
        let m = FourierModel::from_periodogram(&spec, 16, 0.05);
        let mut rng = SimRng::new(1998);
        let synth = synthesize_trace(
            &m,
            SimTime::from_secs_f64((series.len() as f64 * 0.01).min(120.0)),
            &SynthConfig::default(),
            &mut rng,
        );
        if !synth.is_empty() {
            let sp = Periodogram::compute(&binned_bandwidth(&synth, BIN), BIN);
            println!(
                "        regenerated: dominant {:.2} Hz vs measured {:.2} Hz",
                sp.dominant_frequency(0.15).unwrap_or(0.0),
                spec.dominant_frequency(0.15).unwrap_or(0.0)
            );
        }
    }
}

fn qos(_c: &mut Ctx) {
    header("§7.3: QoS negotiation (t_bi vs P; the network returns P)");
    let net = QosNetwork::ethernet_10mbps();
    let apps: Vec<(&str, AppDescriptor)> = vec![
        (
            "2DFFT-like (all-to-all)",
            AppDescriptor::scalable(Pattern::AllToAll, 24.0, |p| (512 / u64::from(p)).pow(2) * 8),
        ),
        (
            "SOR-like (neighbor)",
            AppDescriptor::scalable(Pattern::Neighbor, 60.0, |_| 4096),
        ),
        (
            "shift, 1 MB bursts",
            AppDescriptor::scalable(Pattern::Shift { k: 1 }, 8.0, |_| 1_000_000),
        ),
    ];
    for (label, app) in &apps {
        println!("\n{label}:");
        println!("    P   B/conn KB/s     t_b s    t_bi s");
        for p in [2u32, 4, 8, 16] {
            if let Some(bw) = net.offer(app.concurrent_connections(p)) {
                let t = app.timing(p, bw);
                println!(
                    "   {p:>2}   {:>11.1}  {:>8.3}  {:>8.3}",
                    bw / 1000.0,
                    t.t_burst,
                    t.t_interval
                );
            }
        }
        match negotiate(app, &net, 1..=16) {
            Some(n) => println!("   -> network returns P = {}", n.p),
            None => println!("   -> rejected"),
        }
    }
}

fn baseline(c: &mut Ctx) {
    let ctx = &mut c.exps;
    header("§1/§8: parallel-program vs media traffic");
    let mut rows: Vec<(String, f64, f64, Option<f64>)> = Vec::new();
    for k in [KernelKind::Fft2d, KernelKind::Hist] {
        let v = ctx.kernel_store(k).view();
        let series = v.binned_bandwidth(BIN);
        let spec = Periodogram::compute(&series, BIN);
        let conc = FourierModel::from_periodogram(&spec, 8, 0.1).captured_power_fraction(&spec);
        let coarse = v.binned_bandwidth(SimTime::from_millis(50));
        rows.push((
            k.name().to_string(),
            spec.flatness(),
            conc,
            hurst_aggregated_variance(&coarse),
        ));
    }
    let mut rng = SimRng::new(77);
    let dur = SimTime::from_secs(120);
    let vbr = onoff_vbr_trace(400_000.0, 0.4, 0.6, 1000, dur, &mut rng);
    let ss = self_similar_trace(16, 40_000.0, 1.5, 0.5, 800, dur, &mut rng);
    for (name, tr) in [("VBR on/off", vbr), ("self-similar", ss)] {
        let series = binned_bandwidth(&tr, BIN);
        let spec = Periodogram::compute(&series, BIN);
        let conc = FourierModel::from_periodogram(&spec, 8, 0.1).captured_power_fraction(&spec);
        let coarse = binned_bandwidth(&tr, SimTime::from_millis(50));
        rows.push((
            name.to_string(),
            spec.flatness(),
            conc,
            hurst_aggregated_variance(&coarse),
        ));
    }
    println!("source         flatness   8-spike-power   Hurst");
    for (name, flat, conc, h) in rows {
        let h = h.map_or("   -".to_string(), |v| format!("{v:.2}"));
        println!("{name:<14} {flat:>8.4}   {:>12.1}%   {h}", conc * 100.0);
    }
    println!("(expected shape: kernels = low flatness, high spike concentration; media = the reverse; self-similar H > 0.6)");
}

// --------------------------------------------------------------------
// The fabric bandwidth sweep: burst period vs provided bandwidth.

/// One of the six measured programs, parameterized by the fabric it
/// runs on.
#[derive(Clone, Copy)]
enum SweepProg {
    Kernel(KernelKind),
    /// The §7.3 shift pattern: 500 ms of local computation between
    /// 100 KB exchanges, so the burst period is dominated by `l(P)` plus
    /// a clearly bandwidth-dependent `N/B` term.
    Shift,
}

impl SweepProg {
    const ALL: [SweepProg; 6] = [
        SweepProg::Kernel(KernelKind::Sor),
        SweepProg::Kernel(KernelKind::Fft2d),
        SweepProg::Kernel(KernelKind::T2dfft),
        SweepProg::Kernel(KernelKind::Seq),
        SweepProg::Kernel(KernelKind::Hist),
        SweepProg::Shift,
    ];

    fn name(self) -> &'static str {
        match self {
            SweepProg::Kernel(k) => k.name(),
            SweepProg::Shift => "SHIFT",
        }
    }

    /// Host count of the program's testbed: the paper LAN for kernels,
    /// the quiet 4-host LAN for the shift pattern.
    fn hosts(self) -> u32 {
        match self {
            SweepProg::Kernel(_) => 9,
            SweepProg::Shift => 4,
        }
    }

    /// Run on the legacy shared bus (`None`) or a compiled topology
    /// partitioned across `shards` DES shards (byte-identical at any
    /// count; the bus ignores it). Kernel scale is floored so the
    /// 72-cell grid stays tractable at `--div 1` while still producing
    /// several bursts per run.
    fn run(
        self,
        seed: u64,
        div: usize,
        spec: Option<fxnet::TopologySpec>,
        shards: usize,
    ) -> fxnet::RunResult<u64> {
        use fxnet::TestbedBuilder;
        match self {
            SweepProg::Kernel(k) => {
                let d = if k == KernelKind::Seq {
                    div.max(5)
                } else {
                    div.max(20)
                };
                let mut b = TestbedBuilder::paper().seed(seed).shards(shards);
                if let Some(s) = spec {
                    b = b.topology(s);
                }
                b.build().run_kernel(k, d).expect("sweep kernel run")
            }
            SweepProg::Shift => {
                let mut b = TestbedBuilder::quiet(4).seed(seed).shards(shards);
                if let Some(s) = spec {
                    b = b.topology(s);
                }
                b.build().run(move |ctx| {
                    let payload = vec![1u8; 100_000];
                    for round in 0..6i32 {
                        ctx.compute_time(SimTime::from_millis(500));
                        let _ = fxnet::fx::shift(ctx, round, 1, &payload);
                    }
                    0u64
                })
            }
        }
    }

    /// The same program as a single mix tenant, at the same scale
    /// floors as [`SweepProg::run`] — for runs that need the mix
    /// plumbing (tenant map, causal capture, QoS contract terms).
    fn mix_tenant(self, div: usize) -> fxnet::mix::MixTenant {
        use fxnet::mix::MixTenant;
        match self {
            SweepProg::Kernel(k) => {
                let d = if k == KernelKind::Seq {
                    div.max(5)
                } else {
                    div.max(20)
                };
                MixTenant::kernel(k.name(), k, d, 4, SimTime::ZERO)
            }
            SweepProg::Shift => MixTenant::shift("SHIFT", 0.5, 100_000, 6, 4),
        }
    }
}

/// Everything a sweep worker reports back about one (program, topology,
/// rate) cell.
struct SweepCell {
    frames: usize,
    wire_bytes: u64,
    collisions: u64,
    bursts: usize,
    /// Measured burst period `t_bi` (mean start-to-start interval, s).
    period: Option<f64>,
    /// The communication pattern `c`: the sorted set of TCP host pairs.
    pairs: Vec<(u32, u32)>,
    /// Full trace, kept only for the single-segment 10 Mb/s cell (the
    /// byte-identity check against the legacy paper path).
    trace: Option<Vec<fxnet::FrameRecord>>,
}

/// Least-squares fit of `t_bi = l + N / B` over `(1/B, t_bi)` points:
/// returns `(l seconds, N bytes)`.
fn fit_burst_model(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mt = points.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - mt)).sum();
    let var: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let slope = if var > 0.0 { cov / var } else { 0.0 };
    (mt - slope * mx, slope)
}

fn fabric_sweep(c: &mut Ctx) {
    header("Fabric sweep: burst period vs provided bandwidth");
    use fxnet::sim::rates::{bytes_per_sec, rate_label, SWEEP_RATES};
    use fxnet::sim::{Proto, RATE_10M};
    use fxnet::trace::BurstProfile;
    use fxnet::TopologySpec;
    let seed = c.exps.seed();
    let div = c.div;
    let shards = c.shards;
    let topo_ids: Vec<String> = TopologySpec::sweep_set(4, RATE_10M)
        .into_iter()
        .map(|s| s.id)
        .collect();
    println!(
        "(grid: {} programs x {{{}}} x {{10, 100, 1000 Mb/s}})",
        SweepProg::ALL.len(),
        topo_ids.join(", "),
    );

    // The legacy shared-bus trace per program: the paper path the
    // single-segment 10 Mb/s cell must reproduce byte for byte.
    let baselines = c.pool.map(SweepProg::ALL.to_vec(), move |p| {
        p.run(seed, div, None, shards).trace
    });

    // The full grid in (program, topology, rate) order; the pool returns
    // results in input order, so every table and the artifact are
    // byte-identical at any --jobs.
    let mut grid = Vec::new();
    for &p in &SweepProg::ALL {
        for ti in 0..topo_ids.len() {
            for &rate in &SWEEP_RATES {
                grid.push((p, ti, rate));
            }
        }
    }
    let cells = c.pool.map(grid, |(p, ti, rate)| {
        let spec = TopologySpec::sweep_set(p.hosts(), rate).swap_remove(ti);
        let keep_trace = ti == 0 && rate == RATE_10M;
        let run = p.run(seed, div, Some(spec), shards);
        let profile = BurstProfile::of(&run.trace, SimTime::from_millis(120));
        let mut pairs: Vec<(u32, u32)> = run
            .trace
            .iter()
            .filter(|r| r.proto == Proto::Tcp)
            .map(|r| (r.src.0, r.dst.0))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        SweepCell {
            frames: run.trace.len(),
            wire_bytes: run.trace.iter().map(|r| u64::from(r.wire_len)).sum(),
            collisions: run.ether.collisions,
            bursts: profile.as_ref().map_or(0, |b| b.count),
            period: profile.as_ref().and_then(|b| b.intervals.map(|i| i.avg)),
            pairs,
            trace: keep_trace.then_some(run.trace),
        }
    });

    let fmt_period = |p: Option<f64>| p.map_or_else(|| "--".to_string(), |v| format!("{v:.4}"));
    let n_rates = SWEEP_RATES.len();
    let per_prog = topo_ids.len() * n_rates;
    let mut violations: Vec<String> = Vec::new();
    let mut programs_json: Vec<Value> = Vec::new();
    println!("\nfitted burst-period/bandwidth table (t_bi in seconds):");
    println!("program   topology    t_bi@10M   t_bi@100M     t_bi@1G   fit l(s)   fit N(KB)");
    for (pi, p) in SweepProg::ALL.iter().enumerate() {
        let prog = &cells[pi * per_prog..(pi + 1) * per_prog];
        // `c` stability: the communication pattern must not change with
        // the fabric or its bandwidth.
        let stable = prog.iter().all(|cell| cell.pairs == prog[0].pairs);
        assert!(stable, "{}: pattern c must be fabric-invariant", p.name());
        // Byte-identity: single-segment @ 10 Mb/s is the paper path.
        let identical = prog[0].trace.as_deref() == Some(&baselines[pi][..]);
        assert!(
            identical,
            "{}: single@10M must reproduce the legacy bus trace",
            p.name()
        );
        let mut topo_json: Vec<Value> = Vec::new();
        for (ti, id) in topo_ids.iter().enumerate() {
            let row = &prog[ti * n_rates..(ti + 1) * n_rates];
            let points: Vec<(f64, f64)> = row
                .iter()
                .zip(&SWEEP_RATES)
                .filter_map(|(cell, &r)| cell.period.map(|t| (1.0 / bytes_per_sec(r), t)))
                .collect();
            let (fit_l, fit_n) = fit_burst_model(&points);
            for (pair, rates) in row.windows(2).zip(SWEEP_RATES.windows(2)) {
                if let (Some(slow), Some(fast)) = (pair[0].period, pair[1].period) {
                    if fast > slow * (1.0 + 1e-9) {
                        violations.push(format!(
                            "{} on {id}: t_bi rose {slow:.6} -> {fast:.6} from {} to {}",
                            p.name(),
                            rate_label(rates[0]),
                            rate_label(rates[1]),
                        ));
                    }
                }
            }
            println!(
                "{:<8}  {:<8}  {:>10}  {:>10}  {:>10}  {:>9.4}  {:>10.1}",
                p.name(),
                id,
                fmt_period(row[0].period),
                fmt_period(row[1].period),
                fmt_period(row[2].period),
                fit_l,
                fit_n / 1000.0,
            );
            topo_json.push(Value::Object(vec![
                ("topology".to_string(), Value::Str(id.clone())),
                ("fit_local_s".to_string(), Value::F64(fit_l)),
                ("fit_burst_bytes".to_string(), Value::F64(fit_n)),
                (
                    "cells".to_string(),
                    Value::Array(
                        row.iter()
                            .zip(&SWEEP_RATES)
                            .map(|(cell, &r)| {
                                Value::Object(vec![
                                    ("rate".to_string(), Value::Str(rate_label(r))),
                                    ("rate_bps".to_string(), Value::U64(r)),
                                    ("frames".to_string(), Value::U64(cell.frames as u64)),
                                    ("wire_bytes".to_string(), Value::U64(cell.wire_bytes)),
                                    ("collisions".to_string(), Value::U64(cell.collisions)),
                                    ("bursts".to_string(), Value::U64(cell.bursts as u64)),
                                    (
                                        "burst_period_s".to_string(),
                                        cell.period.map_or(Value::Null, Value::F64),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]));
        }
        programs_json.push(Value::Object(vec![
            ("name".to_string(), Value::Str(p.name().to_string())),
            (
                "connections".to_string(),
                Value::U64(prog[0].pairs.len() as u64),
            ),
            ("pattern_stable".to_string(), Value::Bool(stable)),
            ("baseline_identical".to_string(), Value::Bool(identical)),
            ("topologies".to_string(), Value::Array(topo_json)),
        ]));
    }
    assert!(
        violations.is_empty(),
        "burst period must shrink with provided bandwidth:\n{}",
        violations.join("\n")
    );
    println!("\npattern c stable across every fabric and rate: yes");
    println!("single@10M reproduces the paper-path trace byte for byte: yes");
    println!("burst period shrinks monotonically with provided bandwidth: yes");

    let report = Value::Object(vec![
        (
            "rates_bps".to_string(),
            Value::Array(SWEEP_RATES.iter().map(|&r| Value::U64(r)).collect()),
        ),
        (
            "topologies".to_string(),
            Value::Array(topo_ids.iter().cloned().map(Value::Str).collect()),
        ),
        ("programs".to_string(), Value::Array(programs_json)),
    ]);
    let path = c.exps.out_path("fabric_sweep.json");
    write_json_artifact(&path, &report).expect("write fabric sweep artifact");
    println!("wrote {}", path.display());
}

// --------------------------------------------------------------------
// Perf probes: the event-queue engines and the parallel suite.

fn bench_repro(c: &mut Ctx) {
    header("bench: queues, suite speedup, columnar analysis, trace IO");
    let jobs = c.pool.jobs();
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Engine probe: the calendar queue against the reference heap on an
    // identical simulator-shaped schedule.
    let qb = queue_benchmark(300_000, 1024);
    println!(
        "event queues ({} ops, {} pending): calendar {:.1}M events/s vs heap {:.1}M events/s  ({:.2}x)",
        qb.ops,
        qb.pending,
        qb.calendar_events_per_sec / 1e6,
        qb.heap_events_per_sec / 1e6,
        qb.ratio
    );
    assert!(
        qb.ratio >= 1.1,
        "the calendar queue must clear 1.1x the heap's events/sec (got {:.2}x)",
        qb.ratio
    );

    // Suite probe: the six measured programs, serial vs pooled, at a
    // bench scale (outer iterations >= /10, AIRSHED <= 10 hours) so the
    // probe stays in seconds even at full paper --div.
    let div = c.div.max(10);
    let hours = c.hours.min(10);
    let seed = c.seed;
    let out_dir = c.exps.out_dir.clone();
    println!("suite: 6 programs at --div {div} / --hours {hours}, serial vs --jobs {jobs} ...");
    let (mut serial, t_serial) = timed(|| {
        let mut e = Experiments::new(div, hours, out_dir.clone()).with_seed(seed);
        e.prewarm(&Pool::serial(), &KernelKind::ALL, true);
        e
    });
    let (mut parallel, t_parallel) = timed(|| {
        let mut e = Experiments::new(div, hours, out_dir.clone()).with_seed(seed);
        e.prewarm(&c.pool, &KernelKind::ALL, true);
        e
    });
    // Both caches are in hand: assert the determinism contract on the
    // actual traces, not just wall clocks.
    for k in KernelKind::ALL {
        assert_eq!(
            serial.kernel(k).trace,
            parallel.kernel(k).trace,
            "{} diverged under the pool",
            k.name()
        );
    }
    assert_eq!(
        serial.airshed().trace,
        parallel.airshed().trace,
        "AIRSHED diverged under the pool"
    );
    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64();
    println!(
        "suite: serial {:.2}s, --jobs {jobs} {:.2}s  ({speedup:.2}x), traces byte-identical",
        t_serial.as_secs_f64(),
        t_parallel.as_secs_f64()
    );
    let enforce = jobs >= 4 && avail >= 4;
    if enforce {
        assert!(
            speedup >= 1.8,
            "suite speedup at --jobs {jobs} on {avail} CPUs must reach 1.8x (got {speedup:.2}x)"
        );
    } else {
        println!(
            "(speedup floor 1.8x enforced only with --jobs >= 4 on >= 4 CPUs; here jobs={jobs}, cpus={avail})"
        );
        println!("floor not enforced ({avail} cores)");
    }

    // Analysis leg: the full analysis suite (stats, interarrivals,
    // binned bandwidth, bursts, spectrum, per-connection tables, the
    // report row) over the six prewarmed programs — the columnar engine
    // against the AoS baseline, best wall clock of three passes each.
    // Each path analyzes its resident representation: the AoS baseline
    // its record vec, the columnar engine its store (the one-time
    // record→store conversion is timed separately below; trace-cache
    // artifacts deserialize straight into stores without it).
    let mut programs: Vec<(String, Vec<fxnet::FrameRecord>)> = Vec::new();
    for k in KernelKind::ALL {
        programs.push((k.name().to_string(), serial.kernel(k).trace.clone()));
    }
    programs.push(("AIRSHED".to_string(), serial.airshed().trace.clone()));
    let frames_total: u64 = programs.iter().map(|(_, t)| t.len() as u64).sum();
    println!(
        "analysis: {} programs / {frames_total} frames, AoS vs columnar (best of 3) ...",
        programs.len()
    );
    fn best_of3<T>(mut f: impl FnMut() -> T) -> (T, f64) {
        let (first, d) = timed(&mut f);
        let mut out = first;
        let mut best = d.as_secs_f64();
        for _ in 0..2 {
            let (again, d) = timed(&mut f);
            if d.as_secs_f64() < best {
                best = d.as_secs_f64();
                out = again;
            }
        }
        (out, best)
    }
    let idx: Vec<usize> = (0..programs.len()).collect();
    let (stores, t_build) = timed(|| {
        programs
            .iter()
            .map(|(_, t)| TraceStore::from_records(t))
            .collect::<Vec<TraceStore>>()
    });
    let t_build = t_build.as_secs_f64();
    let (aos_outputs, t_aos) = best_of3(|| {
        c.pool.map(idx.clone(), |i| {
            let (name, trace) = &programs[i];
            analysis_suite_aos(name, trace)
        })
    });
    let (col_outputs, t_col) = best_of3(|| {
        c.pool.map(idx.clone(), |i| {
            let (name, _) = &programs[i];
            analysis_suite_columnar(name, &stores[i])
        })
    });
    let aos_md = aos_outputs.join("\n");
    let col_md = col_outputs.join("\n");
    assert_eq!(
        aos_md, col_md,
        "the columnar suite must be byte-identical to the AoS baseline"
    );
    let col_speedup = t_aos / t_col;
    println!(
        "analysis: AoS {t_aos:.3}s, columnar {t_col:.3}s  ({col_speedup:.2}x, store build {t_build:.3}s), outputs byte-identical"
    );
    assert!(
        col_speedup >= 2.0,
        "the columnar suite must clear 2x the AoS baseline (got {col_speedup:.2}x)"
    );
    let aos_path = c.exps.out_path("analysis_aos.md");
    std::fs::write(&aos_path, &aos_md).expect("write analysis artifact");
    let col_path = c.exps.out_path("analysis_columnar.md");
    std::fs::write(&col_path, &col_md).expect("write analysis artifact");
    println!("wrote {} and {}", aos_path.display(), col_path.display());

    // IO leg: the same six traces on disk in both formats — file size,
    // serial reload wall clock (best of 3), lossless round trips, and
    // the suite rerun on each reload must reproduce the same bytes.
    let mut text_bytes = 0u64;
    let mut bin_bytes = 0u64;
    let mut text_paths: Vec<std::path::PathBuf> = Vec::new();
    let mut bin_paths: Vec<std::path::PathBuf> = Vec::new();
    for ((name, _), store) in programs.iter().zip(&stores) {
        let tp = c.exps.out_path(&format!("analysis.{name}.trace"));
        save_store(&tp, store).expect("write text trace");
        text_bytes += std::fs::metadata(&tp).expect("stat text trace").len();
        text_paths.push(tp);
        let bp = c.exps.out_path(&format!("analysis.{name}.fxb"));
        save_store(&bp, store).expect("write binary trace");
        bin_bytes += std::fs::metadata(&bp).expect("stat binary trace").len();
        bin_paths.push(bp);
    }
    let (text_stores, t_text) = best_of3(|| {
        text_paths
            .iter()
            .map(|p| load_store(p).expect("reload text trace"))
            .collect::<Vec<_>>()
    });
    let (bin_stores, t_bin) = best_of3(|| {
        bin_paths
            .iter()
            .map(|p| load_store(p).expect("reload binary trace"))
            .collect::<Vec<_>>()
    });
    for ((orig, text), bin) in stores.iter().zip(&text_stores).zip(&bin_stores) {
        assert_eq!(orig, text, "text round trip must be lossless");
        assert_eq!(orig, bin, "binary round trip must be lossless");
    }
    let suite_of = |reloaded: &[TraceStore]| {
        programs
            .iter()
            .zip(reloaded)
            .map(|((n, _), s)| analysis_suite_columnar(n, s))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let text_reload_md = suite_of(&text_stores);
    let bin_reload_md = suite_of(&bin_stores);
    assert_eq!(
        text_reload_md, col_md,
        "text reload must reanalyze identically"
    );
    assert_eq!(
        bin_reload_md, col_md,
        "binary reload must reanalyze identically"
    );
    let tr_path = c.exps.out_path("analysis_text_reload.md");
    std::fs::write(&tr_path, &text_reload_md).expect("write analysis artifact");
    let br_path = c.exps.out_path("analysis_binary_reload.md");
    std::fs::write(&br_path, &bin_reload_md).expect("write analysis artifact");
    println!("wrote {} and {}", tr_path.display(), br_path.display());
    let size_ratio = text_bytes as f64 / bin_bytes as f64;
    let io_speedup = t_text / t_bin;
    println!(
        "io: text {} KB vs binary {} KB ({size_ratio:.2}x smaller); reload text {t_text:.3}s vs binary {t_bin:.3}s ({io_speedup:.2}x faster)",
        text_bytes / 1000,
        bin_bytes / 1000
    );
    assert!(
        size_ratio >= 2.0,
        "the binary format must halve the text format on disk (got {size_ratio:.2}x)"
    );
    assert!(
        io_speedup >= 3.0,
        "binary load must clear 3x the text parser (got {io_speedup:.2}x)"
    );

    // Shard leg: the partitioned DES core in threaded drain mode on the
    // two multi-switch sweep fabrics, one worker per shard under the
    // null-message protocol. The offered load is mostly shard-local
    // (a trickle of trunk crossings keeps the cut channels honest) and
    // is fixed by the clamped partition up front, so the 1-shard and
    // n-shard runs drain the identical frame list — which also lets the
    // leg re-assert the headline invariant: merged deliveries identical.
    use fxnet::sim::{EtherConfig, Frame, FrameKind, HostId, NicId};
    let shard_hosts = 8u32;
    let shard_frames = 60_000u32;
    let requested_shards = 4usize;
    let shard_fabrics = [
        (
            "trunk2",
            fxnet::TopologySpec::two_switches_trunk(shard_hosts, fxnet::sim::RATE_10M),
        ),
        (
            "tree2",
            fxnet::TopologySpec::two_level_tree(shard_hosts, fxnet::sim::RATE_10M),
        ),
    ];
    println!(
        "shard drain: {shard_frames} frames x 2 fabrics, 1 shard vs {requested_shards} requested (best of 3) ..."
    );
    let shard_enforce = avail >= 4;
    let mut shard_min_speedup = f64::INFINITY;
    let mut shard_legs: Vec<(String, Value)> = Vec::new();
    for (fabric_name, spec) in &shard_fabrics {
        let ether = EtherConfig::default();
        let probe = fxnet::shard::ShardedFabric::new(spec.clone(), &ether, seed, requested_shards);
        let clamped = probe.shard_count();
        let shard_of = probe.partition().host_shard.clone();
        let mut load: Vec<(NicId, Frame, SimTime)> = Vec::new();
        for i in 0..shard_frames {
            let src = i % shard_hosts;
            let dst = if i % 16 == 0 {
                // Cross the cut: the far block's mirror host.
                let d = (src + shard_hosts / 2) % shard_hosts;
                if d == src {
                    (d + 1) % shard_hosts
                } else {
                    d
                }
            } else {
                // Nearest neighbor inside the same shard block.
                let mut d = (src + 1) % shard_hosts;
                while d == src || shard_of[d as usize] != shard_of[src as usize] {
                    d = (d + 1) % shard_hosts;
                }
                d
            };
            let f = Frame::tcp(
                HostId(src),
                HostId(dst),
                FrameKind::Data,
                200 + (i * 97) % 1200,
                u64::from(i) + 1,
            );
            let t = SimTime::from_micros(u64::from(i / shard_hosts) * 700);
            load.push((NicId(src), f, t));
        }
        let drain_run = |n: usize| {
            let mut fab = fxnet::shard::ShardedFabric::new(spec.clone(), &ether, seed, n);
            for (nic, f, t) in &load {
                fab.enqueue(*nic, *f, *t);
            }
            fab.drain_parallel()
        };
        let (base, t_base) = best_of3(|| drain_run(1));
        let (sharded, t_shard) = best_of3(|| drain_run(clamped));
        assert_eq!(
            sharded.violations, 0,
            "{fabric_name}: the lookahead must never admit a late frame"
        );
        assert_eq!(
            base.deliveries.len(),
            sharded.deliveries.len(),
            "{fabric_name}: drain modes must agree on delivery count"
        );
        for (a, b) in base.deliveries.iter().zip(&sharded.deliveries) {
            assert_eq!(a.time, b.time, "{fabric_name}: delivery order diverged");
            assert_eq!(a.frame, b.frame, "{fabric_name}: delivery order diverged");
        }
        let base_eps = base.events as f64 / t_base;
        let shard_eps = sharded.events as f64 / t_shard;
        let ratio = shard_eps / base_eps;
        shard_min_speedup = shard_min_speedup.min(ratio);
        println!(
            "shard drain {fabric_name}: 1 shard {:.2}M events/s, {clamped} shards {:.2}M events/s  ({ratio:.2}x), {} deliveries identical",
            base_eps / 1e6,
            shard_eps / 1e6,
            base.deliveries.len()
        );
        shard_legs.push((
            (*fabric_name).to_string(),
            Value::Object(vec![
                ("shards".to_string(), Value::U64(clamped as u64)),
                ("frames".to_string(), Value::U64(u64::from(shard_frames))),
                ("events".to_string(), Value::U64(sharded.events)),
                ("base_events_per_sec".to_string(), Value::F64(base_eps)),
                ("sharded_events_per_sec".to_string(), Value::F64(shard_eps)),
                ("speedup".to_string(), Value::F64(ratio)),
                ("violations".to_string(), Value::U64(sharded.violations)),
                ("null_rounds".to_string(), Value::U64(sharded.null_rounds)),
                ("deliveries_identical".to_string(), Value::Bool(true)),
            ]),
        ));
    }
    if shard_enforce {
        assert!(
            shard_min_speedup >= 1.3,
            "sharded drain must clear 1.3x the sequential loop on >= 4 CPUs (got {shard_min_speedup:.2}x)"
        );
    } else {
        println!(
            "(shard speedup floor 1.3x enforced only on >= 4 CPUs; here cpus={avail}, measured {shard_min_speedup:.2}x)"
        );
        println!("floor not enforced ({avail} cores)");
    }

    let report = Value::Object(vec![
        ("jobs".to_string(), Value::U64(jobs as u64)),
        (
            "available_parallelism".to_string(),
            Value::U64(avail as u64),
        ),
        (
            "scale".to_string(),
            Value::Object(vec![
                ("div".to_string(), Value::U64(div as u64)),
                ("airshed_hours".to_string(), Value::U64(hours as u64)),
            ]),
        ),
        (
            "suite".to_string(),
            Value::Object(vec![
                ("programs".to_string(), Value::U64(6)),
                (
                    "serial_wall_s".to_string(),
                    Value::F64(t_serial.as_secs_f64()),
                ),
                (
                    "parallel_wall_s".to_string(),
                    Value::F64(t_parallel.as_secs_f64()),
                ),
                ("speedup".to_string(), Value::F64(speedup)),
                ("speedup_floor".to_string(), Value::F64(1.8)),
                ("speedup_enforced".to_string(), Value::Bool(enforce)),
            ]),
        ),
        (
            "analysis".to_string(),
            Value::Object(vec![
                ("programs".to_string(), Value::U64(programs.len() as u64)),
                ("frames_total".to_string(), Value::U64(frames_total)),
                ("aos_wall_s".to_string(), Value::F64(t_aos)),
                ("columnar_wall_s".to_string(), Value::F64(t_col)),
                ("store_build_wall_s".to_string(), Value::F64(t_build)),
                ("speedup".to_string(), Value::F64(col_speedup)),
                ("speedup_floor".to_string(), Value::F64(2.0)),
                ("outputs_identical".to_string(), Value::Bool(true)),
                (
                    "io".to_string(),
                    Value::Object(vec![
                        ("text_bytes".to_string(), Value::U64(text_bytes)),
                        ("binary_bytes".to_string(), Value::U64(bin_bytes)),
                        ("size_ratio".to_string(), Value::F64(size_ratio)),
                        ("size_ratio_floor".to_string(), Value::F64(2.0)),
                        ("text_load_s".to_string(), Value::F64(t_text)),
                        ("binary_load_s".to_string(), Value::F64(t_bin)),
                        ("load_speedup".to_string(), Value::F64(io_speedup)),
                        ("load_speedup_floor".to_string(), Value::F64(3.0)),
                        ("reload_outputs_identical".to_string(), Value::Bool(true)),
                    ]),
                ),
                (
                    "trace_version".to_string(),
                    Value::U64(u64::from(fxnet::trace::io::TRACE_VERSION)),
                ),
            ]),
        ),
        (
            "shard_bench".to_string(),
            Value::Object(vec![
                (
                    "requested_shards".to_string(),
                    Value::U64(requested_shards as u64),
                ),
                ("speedup_floor".to_string(), Value::F64(1.3)),
                ("speedup_enforced".to_string(), Value::Bool(shard_enforce)),
                ("min_speedup".to_string(), Value::F64(shard_min_speedup)),
                ("fabrics".to_string(), Value::Object(shard_legs)),
            ]),
        ),
        (
            "queue".to_string(),
            Value::Object(vec![
                ("ops".to_string(), Value::U64(qb.ops)),
                ("pending".to_string(), Value::U64(qb.pending as u64)),
                (
                    "heap_events_per_sec".to_string(),
                    Value::F64(qb.heap_events_per_sec),
                ),
                (
                    "calendar_events_per_sec".to_string(),
                    Value::F64(qb.calendar_events_per_sec),
                ),
                ("ratio".to_string(), Value::F64(qb.ratio)),
                ("ratio_floor".to_string(), Value::F64(1.1)),
            ]),
        ),
    ]);
    let path = c.exps.out_path("bench_repro.json");
    write_json_artifact(&path, &report).expect("write bench report");
    println!("wrote {}", path.display());

    // Append this run to the bench history ledger — one JSON line per
    // run, never overwritten, so regressions show up as a time series.
    let line = Value::Object(vec![
        (
            "date".to_string(),
            Value::Str(c.date.clone().unwrap_or_else(|| "unknown".to_string())),
        ),
        ("git_rev".to_string(), Value::Str(git_rev())),
        // The fabric the probes ran on, so sweep perf stays attributable
        // once multi-segment topologies enter the history.
        (
            "fabric".to_string(),
            Value::Str(fxnet::TopologySpec::single_segment(9, fxnet::sim::RATE_10M).label()),
        ),
        ("jobs".to_string(), Value::U64(jobs as u64)),
        ("cores".to_string(), Value::U64(avail as u64)),
        ("shards".to_string(), Value::U64(c.shards as u64)),
        ("div".to_string(), Value::U64(div as u64)),
        (
            "calendar_events_per_sec".to_string(),
            Value::F64(qb.calendar_events_per_sec),
        ),
        ("suite_speedup".to_string(), Value::F64(speedup)),
        ("analysis_speedup".to_string(), Value::F64(col_speedup)),
        ("io_load_speedup".to_string(), Value::F64(io_speedup)),
        (
            "shard_drain_speedup".to_string(),
            Value::F64(shard_min_speedup),
        ),
    ]);
    let history = c.exps.out_path("bench_history.jsonl");
    let appended = fxnet_bench::append_history_line(&history, &serde::json::to_string(&line))
        .expect("append bench history");
    if appended.created {
        println!("seeded fresh history ledger {}", history.display());
    }
    if appended.dropped > 0 {
        eprintln!(
            "warning: dropped {} malformed line(s) from {} before appending",
            appended.dropped,
            history.display()
        );
    }
    println!("appended run summary to {}", history.display());
}

// --------------------------------------------------------------------
// Out-of-core analytics at scale: the streamed chunk scan raced
// against the materialize-then-analyze baseline on a 10M-frame trace.

/// Hosts on the analysis-scale synthesis fabric.
const SCALE_HOSTS: u32 = 16;
/// Rounds (one frame per host each) per synthesis wave: ~512k frames.
const SCALE_ROUNDS_PER_WAVE: u32 = 32_768;
/// Rounds per burst group; a quiet gap follows each group, so the
/// trace has a genuine burst fundamental for the harmonic probe.
const SCALE_ROUNDS_PER_GROUP: u32 = 256;
/// In-group round spacing, µs.
const SCALE_ROUND_US: u64 = 700;
/// Quiet gap closing each group, µs (> the 120 ms burst gap).
const SCALE_GAP_US: u64 = 300_000;

fn analysis_scale(c: &mut Ctx) {
    use fxnet::sim::{EtherConfig, Frame, FrameKind, HostId, NicId};
    use fxnet_bench::{materialized_scan, streamed_scan, ScanConfig, SCAN_CHUNK_FRAMES};

    header("analysis-scale: streamed chunk scan vs materialize-then-analyze");
    let jobs = c.pool.jobs();
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let frames_target = (10_000_000 / c.div.max(1)).max(500_000) as u64;

    // Synthesize the trace in waves through the sharded trunk fabric:
    // each wave drains grouped bursts (SCALE_ROUNDS_PER_GROUP rounds of
    // one frame per host, then a quiet gap) with every 16th frame
    // crossing the trunk. Deliveries come out merged in time order at
    // any shard count (the PR9 invariant), so the trace — and every
    // analysis below — is seed-deterministic.
    let spec = fxnet::TopologySpec::two_switches_trunk(SCALE_HOSTS, fxnet::sim::RATE_10M);
    let ether = EtherConfig::default();
    let requested_shards = c.shards.max(2);
    let probe = fxnet::shard::ShardedFabric::new(spec.clone(), &ether, c.seed, requested_shards);
    let shards = probe.shard_count();
    let shard_of = probe.partition().host_shard.clone();
    let group_period_us = u64::from(SCALE_ROUNDS_PER_GROUP) * SCALE_ROUND_US + SCALE_GAP_US;
    // The burst-group fundamental anchors the Goertzel harmonic probe.
    let base_hz = 1.0 / (group_period_us as f64 * 1e-6);
    let groups_per_wave = u64::from(SCALE_ROUNDS_PER_WAVE / SCALE_ROUNDS_PER_GROUP);
    // One spare group period of margin keeps waves disjoint in time.
    let wave_period_ns = (groups_per_wave + 1) * group_period_us * 1_000;
    let path = c.exps.out_path("analysis_scale.fxb");
    println!(
        "synthesizing >= {frames_target} frames through {} ({shards} shards) ...",
        spec.label()
    );
    let (dir, t_synth) = timed(|| {
        let mut w = fxnet::trace::ChunkedWriter::create(&path).expect("create chunked trace");
        let mut wave = 0u64;
        while w.frames() < frames_target {
            let offset_ns = wave * wave_period_ns;
            let mut fab =
                fxnet::shard::ShardedFabric::new(spec.clone(), &ether, c.seed, requested_shards);
            for i in 0..(SCALE_ROUNDS_PER_WAVE * SCALE_HOSTS) {
                let src = i % SCALE_HOSTS;
                let dst = if i % 16 == 0 {
                    // Cross the trunk: the far block's mirror host.
                    let d = (src + SCALE_HOSTS / 2) % SCALE_HOSTS;
                    if d == src {
                        (d + 1) % SCALE_HOSTS
                    } else {
                        d
                    }
                } else {
                    // Nearest neighbor inside the same shard block.
                    let mut d = (src + 1) % SCALE_HOSTS;
                    while d == src || shard_of[d as usize] != shard_of[src as usize] {
                        d = (d + 1) % SCALE_HOSTS;
                    }
                    d
                };
                let f = Frame::tcp(
                    HostId(src),
                    HostId(dst),
                    FrameKind::Data,
                    200 + (i * 97) % 1200,
                    u64::from(i) + 1,
                );
                let round = u64::from(i / SCALE_HOSTS);
                let t_us = (round / u64::from(SCALE_ROUNDS_PER_GROUP)) * group_period_us
                    + (round % u64::from(SCALE_ROUNDS_PER_GROUP)) * SCALE_ROUND_US;
                fab.enqueue(NicId(src), f, SimTime::from_micros(t_us));
            }
            let res = fab.drain_parallel();
            assert_eq!(res.violations, 0, "synthesis drain admitted a late frame");
            let records: Vec<fxnet::FrameRecord> = res
                .deliveries
                .iter()
                .map(|d| {
                    fxnet::FrameRecord::capture(
                        SimTime::from_nanos(d.time.as_nanos() + offset_ns),
                        &d.frame,
                    )
                })
                .collect();
            for batch in records.chunks(SCAN_CHUNK_FRAMES) {
                w.append_records(batch).expect("append chunk");
            }
            wave += 1;
        }
        w.finish().expect("finish chunked trace")
    });
    let frames = dir.frames();
    println!(
        "synthesized {frames} frames / {} chunks in {:.1}s -> {}",
        dir.len(),
        t_synth.as_secs_f64(),
        path.display()
    );

    // The race: identical analysis bundle, three ways — streamed at
    // --jobs, the materialized baseline, and streamed at --jobs 1.
    let cfg = ScanConfig::new("analysis-scale", base_hz);
    println!("streamed scan (--jobs {jobs}) vs materialized baseline ...");
    let (streamed, t_stream) =
        timed(|| streamed_scan(&path, &cfg, &c.pool).expect("streamed scan"));
    let (mat, t_mat) = timed(|| materialized_scan(&path, &cfg).expect("materialized scan"));
    let serial = streamed_scan(&path, &cfg, &Pool::serial()).expect("serial streamed scan");
    assert_eq!(streamed.frames, frames);
    assert_eq!(
        streamed.rendered, mat.rendered,
        "streamed scan must be byte-identical to the materialized baseline"
    );
    assert_eq!(
        streamed.rendered, serial.rendered,
        "streamed scan at --jobs {jobs} must be byte-identical to --jobs 1"
    );
    let streamed_path = c.exps.out_path("analysis_scale_streamed.md");
    std::fs::write(&streamed_path, &streamed.rendered).expect("write streamed transcript");
    let mat_path = c.exps.out_path("analysis_scale_materialized.md");
    std::fs::write(&mat_path, &mat.rendered).expect("write materialized transcript");
    println!(
        "wrote {} and {}",
        streamed_path.display(),
        mat_path.display()
    );

    let speedup = t_mat.as_secs_f64() / t_stream.as_secs_f64();
    let mem_ratio = mat.peak_resident_bytes as f64 / streamed.peak_resident_bytes.max(1) as f64;
    println!(
        "streamed {:.2}s vs materialized {:.2}s  ({speedup:.2}x); peak resident {:.1} MB vs {:.1} MB ({mem_ratio:.1}x), transcripts byte-identical (and at --jobs 1)",
        t_stream.as_secs_f64(),
        t_mat.as_secs_f64(),
        streamed.peak_resident_bytes as f64 / 1e6,
        mat.peak_resident_bytes as f64 / 1e6
    );
    // Structural O(chunk) bound, enforced at every scale: at most two
    // decode rounds of `jobs` chunks are ever resident at once.
    let chunk_bytes_bound = 2 * jobs.max(1) as u64 * dir.max_chunk_frames() * 21;
    assert!(
        streamed.peak_resident_bytes <= chunk_bytes_bound,
        "streamed scan held {} bytes resident, over the two-round bound {chunk_bytes_bound}",
        streamed.peak_resident_bytes
    );
    let enforce = jobs >= 2 && avail >= 4 && frames >= 2_000_000;
    if enforce {
        assert!(
            speedup >= 2.0,
            "streamed scan must clear 2x the materialized baseline (got {speedup:.2}x)"
        );
        assert!(
            mem_ratio >= 4.0,
            "streamed peak memory must be 4x under the materialized store (got {mem_ratio:.1}x)"
        );
    } else {
        println!(
            "(floors speedup 2.0x / memory 4.0x enforced only with --jobs >= 2 on >= 4 CPUs at >= 2M frames; here jobs={jobs}, cpus={avail}, frames={frames})"
        );
        println!("floor not enforced ({avail} cores)");
    }

    // Merge this leg into bench_repro.json (replacing any stale
    // `analysis_scale` section) rather than clobbering the `bench`
    // leg's report when both ran.
    let section = Value::Object(vec![
        ("frames".to_string(), Value::U64(frames)),
        ("chunks".to_string(), Value::U64(dir.len() as u64)),
        (
            "chunk_frames".to_string(),
            Value::U64(SCAN_CHUNK_FRAMES as u64),
        ),
        ("jobs".to_string(), Value::U64(jobs as u64)),
        ("cores".to_string(), Value::U64(avail as u64)),
        ("shards".to_string(), Value::U64(shards as u64)),
        ("base_hz".to_string(), Value::F64(base_hz)),
        (
            "synth_wall_s".to_string(),
            Value::F64(t_synth.as_secs_f64()),
        ),
        (
            "streamed_wall_s".to_string(),
            Value::F64(t_stream.as_secs_f64()),
        ),
        (
            "materialized_wall_s".to_string(),
            Value::F64(t_mat.as_secs_f64()),
        ),
        ("speedup".to_string(), Value::F64(speedup)),
        ("speedup_floor".to_string(), Value::F64(2.0)),
        (
            "streamed_peak_resident_bytes".to_string(),
            Value::U64(streamed.peak_resident_bytes),
        ),
        (
            "materialized_peak_resident_bytes".to_string(),
            Value::U64(mat.peak_resident_bytes),
        ),
        ("memory_ratio".to_string(), Value::F64(mem_ratio)),
        ("memory_ratio_floor".to_string(), Value::F64(4.0)),
        ("floors_enforced".to_string(), Value::Bool(enforce)),
        ("outputs_identical".to_string(), Value::Bool(true)),
        ("jobs1_identical".to_string(), Value::Bool(true)),
    ]);
    let report_path = c.exps.out_path("bench_repro.json");
    let mut root = std::fs::read_to_string(&report_path)
        .ok()
        .and_then(|s| serde::json::parse(&s).ok())
        .and_then(|v| match v {
            Value::Object(kvs) => Some(kvs),
            _ => None,
        })
        .unwrap_or_default();
    root.retain(|(k, _)| k != "analysis_scale");
    root.push(("analysis_scale".to_string(), section));
    write_json_artifact(&report_path, &Value::Object(root)).expect("write bench report");
    println!("merged analysis_scale into {}", report_path.display());

    let line = Value::Object(vec![
        (
            "date".to_string(),
            Value::Str(c.date.clone().unwrap_or_else(|| "unknown".to_string())),
        ),
        ("git_rev".to_string(), Value::Str(git_rev())),
        (
            "experiment".to_string(),
            Value::Str("analysis-scale".to_string()),
        ),
        ("fabric".to_string(), Value::Str(spec.label())),
        ("jobs".to_string(), Value::U64(jobs as u64)),
        ("cores".to_string(), Value::U64(avail as u64)),
        ("shards".to_string(), Value::U64(shards as u64)),
        ("div".to_string(), Value::U64(c.div as u64)),
        ("frames".to_string(), Value::U64(frames)),
        ("analysis_scale_speedup".to_string(), Value::F64(speedup)),
        (
            "analysis_scale_memory_ratio".to_string(),
            Value::F64(mem_ratio),
        ),
    ]);
    let history = c.exps.out_path("bench_history.jsonl");
    let appended = fxnet_bench::append_history_line(&history, &serde::json::to_string(&line))
        .expect("append bench history");
    if appended.created {
        println!("seeded fresh history ledger {}", history.display());
    }
    println!("appended run summary to {}", history.display());
}

// --------------------------------------------------------------------
// Fabric health: the weather map on the oversubscribed trunk.

/// The backbone link of [`oversubscribed_trunk2`], known-contended by
/// construction: fast edge ports funneling into a 10 Mb/s trunk.
const HOT_TRUNK: &str = "trunk:n0-n1";

/// The oversubscribed two-switch fabric the blame experiment
/// introduced: 100 Mb/s edge ports, the inter-switch trunk throttled
/// to 10 Mb/s, and ranks pinned alternately across the switches so
/// every exchange crosses the backbone.
fn oversubscribed_trunk2(hosts: u32) -> fxnet::TopologySpec {
    let mut spec = fxnet::TopologySpec::two_switches_trunk(hosts, fxnet::sim::RATE_100M);
    spec.trunks[0].rate_bps = fxnet::sim::RATE_10M;
    spec.attachments = (0..hosts as usize).map(|h| h % 2).collect();
    spec
}

/// Everything a fabric-health worker reports about one program.
struct HealthCell {
    prog: &'static str,
    frames: usize,
    report: fxnet::metrics::WeatherReport,
    /// Critical-path intervals blocked on the hot trunk.
    contended: Vec<(SimTime, SimTime)>,
    trunk_paths: usize,
    paths_total: usize,
    admitted_load: f64,
    measured_bw: f64,
    headroom: f64,
    /// Perfetto events: critical-path slices + weather counter tracks.
    trace_events: Vec<Value>,
}

/// Run one program alone on the oversubscribed trunk2 fabric, twice:
/// once bare (the purity baseline), once with the full weather map
/// attached (frame tap + per-link sampling + causal capture). Asserts
/// the traces byte-identical, then distills the instrumented run.
fn health_cell(prog: SweepProg, seed: u64, div: usize, shards: usize) -> HealthCell {
    use fxnet::causal::{chrome_trace, collective_paths, contended_intervals};
    use fxnet::metrics::{counter_events, FabricSampler, HotspotConfig, SamplerConfig};
    use fxnet::TestbedBuilder;
    let spec = oversubscribed_trunk2(prog.hosts());
    let build = |spec: &fxnet::TopologySpec| {
        let tb = match prog {
            SweepProg::Kernel(_) => TestbedBuilder::paper(),
            SweepProg::Shift => TestbedBuilder::quiet(4),
        }
        .seed(seed)
        .topology(spec.clone())
        .shards(shards)
        .build();
        let cost = tb.config().cost.clone();
        let mix = tb
            .mix()
            .network(QosNetwork::of_rate(fxnet::sim::RATE_100M))
            .solo_baselines(false)
            .causal(true)
            .tenant(prog.mix_tenant(div));
        (mix, cost)
    };

    // Reference run with the sampler detached.
    let (mix, _) = build(&spec);
    let plain = mix.run();

    // The instrumented run: every observation channel attached. The
    // hotspot latch requires 8 consecutive hot 10 ms windows: an edge
    // port saturates only for the tens of milliseconds one burst takes
    // to drain at 100 Mb/s, while the oversubscribed trunk stays pinned
    // for entire communication epochs — so 80 ms of sustained heat
    // separates the congested backbone from ordinary burst traffic.
    let sampler = FabricSampler::with_config(SamplerConfig {
        hotspot: HotspotConfig {
            k: 8,
            ..HotspotConfig::default()
        },
        ..SamplerConfig::default()
    });
    let (mix, cost) = build(&spec);
    let out = mix
        .tap(sampler.tap())
        .sample_links(Some(sampler.bin_ns()))
        .run();
    assert_eq!(
        plain.trace,
        out.trace,
        "{}: the weather map perturbed the trace",
        prog.name()
    );
    assert_eq!(plain.finished_at, out.finished_at);

    let mut sampler = sampler;
    sampler.ingest_links(out.link_stats.as_ref().expect("link sampling on"));
    let causal = out.causal.as_ref().expect("causal capture on");
    sampler.ingest_causal(&causal.events, Some(&spec));
    let report = sampler.finalize(Some(&spec));

    let spans = &out
        .telemetry
        .as_ref()
        .expect("causal capture forces telemetry")
        .spans;
    let paths = collective_paths(causal, spans, &out.map);
    let contended = contended_intervals(&paths, HOT_TRUNK);
    let trunk_paths = paths
        .iter()
        .filter(|p| p.blocking_link.as_deref() == Some(HOT_TRUNK))
        .count();

    // QoS cross-check: the tenant's admitted contract headroom next to
    // the link gauges, so over-driving and fabric congestion can be
    // told apart.
    let t = &out.tenants[0];
    let terms = prog
        .mix_tenant(div)
        .claimed_descriptor(&cost)
        .terms(&t.negotiation);
    let measured_bw = t.avg_bw.unwrap_or(0.0);
    let headroom = terms.headroom(measured_bw);

    let Value::Array(mut trace_events) = chrome_trace(&paths, &out.map) else {
        unreachable!("chrome_trace builds an event array");
    };
    trace_events.extend(counter_events(&report));

    HealthCell {
        prog: prog.name(),
        frames: out.trace.len(),
        report,
        contended,
        trunk_paths,
        paths_total: paths.len(),
        admitted_load: terms.mean_load,
        measured_bw,
        headroom,
        trace_events,
    }
}

/// Re-home a Chrome trace event onto process `pid` (the per-program
/// track in the merged fabric-health Perfetto file).
fn with_pid(e: Value, pid: u64) -> Value {
    let Value::Object(mut fields) = e else {
        return e;
    };
    for (k, v) in fields.iter_mut() {
        if k == "pid" {
            *v = Value::U64(pid);
        }
    }
    Value::Object(fields)
}

fn fabric_health(c: &mut Ctx) {
    header("Fabric health: the weather map on the oversubscribed trunk");
    use fxnet::causal::intervals_overlap;
    use fxnet::metrics::{fill_registry_labeled, report_jsonl, report_value};
    use fxnet::telemetry::{labeled, write_prometheus, TelemetryRegistry};
    let div = c.div;
    let seed = c.exps.seed();
    let shards = c.shards;
    println!(
        "(six programs, each alone on trunk2: 100 Mb/s edges, 10 Mb/s trunk, ranks split across the switches)"
    );

    let cells = c.pool.map(SweepProg::ALL.to_vec(), move |p| {
        health_cell(p, seed, div, shards)
    });

    // The weather map and the causal layer must agree: across all six
    // programs the oversubscribed trunk is the one and only flagged
    // hotspot, and its flagged windows overlap the critical paths'
    // contended-link intervals.
    let mut flagged: Vec<&str> = cells
        .iter()
        .flat_map(|cell| cell.report.rollup.hotspots.iter().map(|h| h.link.as_str()))
        .collect();
    flagged.sort_unstable();
    flagged.dedup();
    assert_eq!(
        flagged,
        vec![HOT_TRUNK],
        "the oversubscribed trunk must be the unique flagged hotspot"
    );

    println!(
        "{:<6} {:>7} {:>9} {:>10} {:>6} {:>12} {:>9} {:>12}",
        "prog", "frames", "hot wins", "peak util", "depth", "trunk paths", "headroom", "flagged at"
    );
    let mut overlaps = 0usize;
    for cell in &cells {
        let hot = cell.report.hotspot(HOT_TRUNK);
        println!(
            "{:<6} {:>7} {:>9} {:>10} {:>6} {:>12} {:>8.1}% {:>12}",
            cell.prog,
            cell.frames,
            hot.map_or(0, |h| h.windows.len()),
            hot.map_or_else(|| "-".to_string(), |h| format!("{:.3}", h.peak_utilization)),
            hot.map_or(0, |h| h.peak_depth),
            format!("{}/{}", cell.trunk_paths, cell.paths_total),
            cell.headroom * 100.0,
            hot.map_or_else(
                || "-".to_string(),
                |h| format!("{:.3} ms", h.flagged_at.as_nanos() as f64 / 1e6)
            ),
        );
        if let Some(h) = hot {
            if !cell.contended.is_empty() {
                assert!(
                    intervals_overlap(&h.intervals, &cell.contended),
                    "{}: hotspot windows must overlap the contended critical-path intervals",
                    cell.prog
                );
                overlaps += 1;
            }
        }
    }
    assert!(
        overlaps > 0,
        "at least one program must confirm the hotspot against its critical paths"
    );
    let hot_programs = cells
        .iter()
        .filter(|cell| cell.report.hotspot(HOT_TRUNK).is_some())
        .count();
    println!(
        "hotspot {HOT_TRUNK} latched by {hot_programs}/{} programs ({overlaps} cross-checked against critical paths); no other link ever flagged",
        cells.len()
    );

    let dir = c
        .metrics_out
        .as_deref()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| c.exps.out_dir.clone());
    std::fs::create_dir_all(&dir).expect("create artifacts dir");

    // fabric_health.json: the summary — per program the rollup (link /
    // node / fabric health + hotspots), the scaling relations, the
    // contended intervals, and the tenant's contract headroom. The
    // per-window ring stream goes to the JSONL instead.
    let programs: Vec<Value> = cells
        .iter()
        .map(|cell| {
            let rv = report_value(&cell.report);
            Value::Object(vec![
                ("prog".to_string(), Value::Str(cell.prog.to_string())),
                ("frames".to_string(), Value::U64(cell.frames as u64)),
                (
                    "trunk_paths".to_string(),
                    Value::U64(cell.trunk_paths as u64),
                ),
                (
                    "paths_total".to_string(),
                    Value::U64(cell.paths_total as u64),
                ),
                (
                    "contended_intervals_ns".to_string(),
                    Value::Array(
                        cell.contended
                            .iter()
                            .map(|&(b, e)| {
                                Value::Array(vec![
                                    Value::U64(b.as_nanos()),
                                    Value::U64(e.as_nanos()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "tenant".to_string(),
                    Value::Object(vec![
                        (
                            "admitted_mean_load".to_string(),
                            Value::F64(cell.admitted_load),
                        ),
                        ("measured_mean_bw".to_string(), Value::F64(cell.measured_bw)),
                        ("headroom".to_string(), Value::F64(cell.headroom)),
                    ]),
                ),
                (
                    "scaling".to_string(),
                    rv.get("traffic")
                        .and_then(|t| t.get("scaling"))
                        .cloned()
                        .unwrap_or(Value::Null),
                ),
                (
                    "rollup".to_string(),
                    rv.get("rollup").cloned().unwrap_or(Value::Null),
                ),
            ])
        })
        .collect();
    let json = Value::Object(vec![
        (
            "fabric".to_string(),
            Value::Str("trunk2:oversubscribed".to_string()),
        ),
        ("hotspot".to_string(), Value::Str(HOT_TRUNK.to_string())),
        ("programs".to_string(), Value::Array(programs)),
    ]);
    let json_path = dir.join("fabric_health.json");
    write_json_artifact(&json_path, &json).expect("write fabric health report");

    // fabric_health.jsonl: the full weather stream — meta header,
    // per-window link lines, scaling lines, hotspot lines — of the
    // program that heated the trunk the most.
    let hottest = cells
        .iter()
        .max_by_key(|cell| {
            cell.report
                .hotspot(HOT_TRUNK)
                .map_or(0, |h| h.windows.len())
        })
        .expect("six cells");
    let jsonl_path = dir.join("fabric_health.jsonl");
    std::fs::write(&jsonl_path, report_jsonl(&hottest.report)).expect("write weather stream");

    // fabric_health.prom: one registry, every program's weather
    // snapshot under a `prog` label, plus the per-tenant contract
    // headroom next to the link gauges (qos × metrics).
    let mut reg = TelemetryRegistry::new();
    for cell in &cells {
        fill_registry_labeled(&cell.report, &mut reg, &[("prog", cell.prog)]);
        let l = [("prog", cell.prog)];
        reg.set_gauge(labeled("fabric_tenant_headroom", &l), cell.headroom);
        reg.set_gauge(
            labeled("fabric_tenant_admitted_load_bytes_per_sec", &l),
            cell.admitted_load,
        );
        reg.set_gauge(
            labeled("fabric_tenant_measured_bw_bytes_per_sec", &l),
            cell.measured_bw,
        );
    }
    let prom_path = dir.join("fabric_health.prom");
    write_prometheus(&prom_path, &reg).expect("write prometheus snapshot");

    // fabric_health_trace.json: one Perfetto file, six processes — each
    // program's critical-path slices with the weather counter tracks
    // (util/depth per link) underneath them.
    let mut events: Vec<Value> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        events.extend(
            cell.trace_events
                .iter()
                .cloned()
                .map(|e| with_pid(e, i as u64)),
        );
    }
    let trace_path = dir.join("fabric_health_trace.json");
    write_json_artifact(&trace_path, &Value::Array(events)).expect("write perfetto trace");

    println!(
        "wrote {}, {}, {} and {} (load the trace at ui.perfetto.dev)",
        json_path.display(),
        jsonl_path.display(),
        prom_path.display(),
        trace_path.display()
    );
}

/// Current git revision, for the bench history ledger; "unknown" when
/// the binary runs outside a work tree.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}
