//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p fxnet-bench --bin repro -- all --div 10
//! cargo run --release -p fxnet-bench --bin repro -- fig3 fig7
//! ```
//!
//! Experiment ids (DESIGN.md §4): fig1 fig3 fig4 fig5 fig6 fig7 fig8
//! fig9 airshed-avg fig10 fig11 model qos baseline. `--div N` scales the
//! kernels' outer iteration counts by 1/N (default 1 = full paper
//! scale); `--hours H` sets AIRSHED hours (default 100); `--out DIR`
//! sets the series/spectra output directory (default `out/`); `--seed N`
//! sets the simulation seed (default 1998) — the same seed reproduces
//! every trace and table byte for byte.
//!
//! Extras (run only when named): phases, summary, the ablations,
//! `all-extras` (all of those), the multi-tenant experiments `mix`
//! and `mix-admit`, and the live-observability experiment `watch`
//! (streaming contract compliance; writes Prometheus-text metrics and a
//! JSONL event log, directed by `--metrics-out DIR`, default `--out`).

use fxnet::fx::Pattern;
use fxnet::qos::{negotiate, AppDescriptor, QosNetwork};
use fxnet::sim::SimRng;
use fxnet::spectral::generate::SynthConfig;
use fxnet::spectral::{
    hurst_aggregated_variance, onoff_vbr_trace, self_similar_trace, synthesize_trace, FourierModel,
};
use fxnet::telemetry::write_json_artifact;
use fxnet::trace::PhaseBreakdown;
use fxnet::trace::{
    average_bandwidth, binned_bandwidth, sliding_window_bandwidth, Periodogram, Stats,
};
use fxnet::{KernelKind, SimTime};
use fxnet_bench::{bandwidth_row, stats_row, Experiments};
use serde::Value;
use std::io::Write;

const BIN: SimTime = SimTime(10_000_000); // the paper's 10 ms window

fn main() {
    let mut div = 1usize;
    let mut hours = 100usize;
    let mut out = "out".to_string();
    let mut metrics_out: Option<String> = None;
    let mut seed = 1998u64;
    let mut telemetry = false;
    let mut exps: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--div" => div = args.next().and_then(|s| s.parse().ok()).unwrap_or(1),
            "--hours" => hours = args.next().and_then(|s| s.parse().ok()).unwrap_or(100),
            "--out" => out = args.next().unwrap_or_else(|| "out".into()),
            "--metrics-out" => metrics_out = args.next(),
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(1998),
            "--telemetry" => telemetry = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro [--div N] [--hours H] [--out DIR] [--metrics-out DIR] [--seed N] [--telemetry] <exp>...\n\
                     exps: fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 airshed-avg fig10 fig11 model qos baseline all\n\
                     extras (not in `all`): phases ablate-switch ablate-route ablate-p summary\n\
                     multi-tenant: mix (SOR+2DFFT+HIST sharing the wire) mix-admit (QoS admission sweep)\n\
                     live observability: watch (streaming contract compliance; writes watch.prom + watch_events.jsonl)\n\
                     all-extras = phases ablate-switch ablate-route ablate-p summary\n\
                     --seed N sets the simulation seed (default 1998); same seed, byte-identical output\n\
                     --metrics-out DIR directs the watch artifacts (default: the --out dir)\n\
                     --telemetry collects spans/counters and writes out/telemetry_<exp>.json"
                );
                return;
            }
            other => exps.push(other.to_string()),
        }
    }
    if exps.is_empty() {
        exps.push("all".into());
    }
    // `all-extras` expands to the named extras that `all` leaves out.
    if exps.iter().any(|e| e == "all-extras") {
        for id in [
            "phases",
            "ablate-switch",
            "ablate-route",
            "ablate-p",
            "summary",
        ] {
            if !exps.iter().any(|e| e == id) {
                exps.push(id.to_string());
            }
        }
        exps.retain(|e| e != "all-extras");
    }
    let all = exps.iter().any(|e| e == "all");
    let want = |name: &str| all || exps.iter().any(|e| e == name);

    // The phases experiment is the span × trace join; it needs telemetry.
    if exps.iter().any(|e| e == "phases") && !telemetry {
        eprintln!("note: `phases` needs telemetry; enabling --telemetry\n");
        telemetry = true;
    }

    let mut ctx = Experiments::new(div, hours, &out)
        .with_seed(seed)
        .with_telemetry(telemetry);
    if div != 1 {
        println!(
            "note: kernel iteration counts scaled by 1/{div} (pass --div 1 for full paper scale)\n"
        );
    }

    if want("fig1") {
        fig1();
    }
    if want("fig3") {
        fig3(&mut ctx);
    }
    if want("fig4") {
        fig4(&mut ctx);
    }
    if want("fig5") {
        fig5(&mut ctx);
    }
    if want("fig6") {
        fig6(&mut ctx);
    }
    if want("fig7") {
        fig7(&mut ctx);
    }
    if want("fig8") {
        fig8(&mut ctx);
    }
    if want("fig9") {
        fig9(&mut ctx);
    }
    if want("airshed-avg") {
        airshed_avg(&mut ctx);
    }
    if want("fig10") {
        fig10(&mut ctx);
    }
    if want("fig11") {
        fig11(&mut ctx);
    }
    if want("model") {
        model(&mut ctx);
    }
    if want("qos") {
        qos();
    }
    if want("baseline") {
        baseline(&mut ctx);
    }
    if exps.iter().any(|e| e == "phases") {
        phases(&mut ctx);
    }
    if exps.iter().any(|e| e == "summary") {
        summary(&mut ctx);
    }
    // Ablations run only when asked for explicitly.
    if exps.iter().any(|e| e == "ablate-switch") {
        ablate_switch(div, seed);
    }
    if exps.iter().any(|e| e == "ablate-route") {
        ablate_route(div, seed);
    }
    if exps.iter().any(|e| e == "ablate-p") {
        ablate_p(seed);
    }
    // Multi-tenant experiments run only when asked for explicitly.
    if exps.iter().any(|e| e == "mix") {
        mix_kernels(&ctx);
    }
    if exps.iter().any(|e| e == "mix-admit") {
        mix_admit(seed);
    }
    if exps.iter().any(|e| e == "watch") {
        watch_live(&ctx, metrics_out.as_deref());
    }

    // Telemetry artifacts: one deterministic JSON (spans + counter
    // registry of every cached run) per requested experiment id.
    // `phases` writes its own, richer artifact.
    if telemetry {
        for e in exps.iter().filter(|e| e.as_str() != "phases") {
            let path = ctx.out_path(&format!("telemetry_{e}.json"));
            write_json_artifact(&path, &ctx.telemetry_value()).expect("write telemetry artifact");
            println!("wrote {}", path.display());
        }
    }
}

// --------------------------------------------------------------------
// Per-phase traffic attribution: the span × trace join.

fn phases(ctx: &mut Experiments) {
    header("Per-phase traffic attribution (10 ms peak bins)");
    let ranks = fxnet::Testbed::paper().config().p;
    let mut entries: Vec<(String, Value)> = Vec::new();
    let mut programs: Vec<(String, PhaseBreakdown, Value)> = Vec::new();
    for k in KernelKind::ALL {
        let run = ctx.kernel(k);
        let tel = run.telemetry.as_ref().expect("phases runs with telemetry");
        let bd = PhaseBreakdown::compute(&run.trace, &tel.spans, ranks, BIN);
        programs.push((k.name().to_string(), bd, tel.to_value()));
    }
    {
        let run = ctx.airshed();
        let tel = run.telemetry.as_ref().expect("phases runs with telemetry");
        let bd = PhaseBreakdown::compute(&run.trace, &tel.spans, ranks, BIN);
        programs.push(("AIRSHED".to_string(), bd, tel.to_value()));
    }
    for (name, bd, tel_value) in programs {
        println!("\n{name}:");
        print!("{}", bd.table());
        entries.push((
            name,
            Value::Object(vec![
                ("phases".to_string(), serde::Serialize::to_value(&bd)),
                ("telemetry".to_string(), tel_value),
            ]),
        ));
    }
    let path = ctx.out_path("telemetry_phases.json");
    write_json_artifact(&path, &Value::Object(entries)).expect("write telemetry artifact");
    println!("\nwrote {}", path.display());
}

// --------------------------------------------------------------------
// One-page markdown summary of every measured program.

fn summary(ctx: &mut Experiments) {
    header("Summary: all measured programs (markdown)");
    use fxnet::trace::{markdown_table, ReportOptions};
    let opts = ReportOptions::default();
    let mut traces: Vec<(String, Vec<fxnet::FrameRecord>)> = Vec::new();
    for k in KernelKind::ALL {
        traces.push((k.name().to_string(), ctx.kernel(k).trace.clone()));
    }
    traces.push(("AIRSHED".to_string(), ctx.airshed().trace.clone()));
    let rows: Vec<(&str, &[fxnet::FrameRecord])> = traces
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_slice()))
        .collect();
    println!("{}", markdown_table(rows, &opts));
}

// --------------------------------------------------------------------
// DESIGN.md §8 ablations.

fn kernel_row(label: &str, run: &fxnet::RunResult<u64>) -> String {
    let bw = average_bandwidth(&run.trace).unwrap_or(0.0) / 1000.0;
    let series = binned_bandwidth(&run.trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    format!(
        "{label:<22} {:>8.1}s {:>9.1} KB/s   {:>6.2} Hz   {:>6} collisions",
        run.finished_at.as_secs_f64(),
        bw,
        spec.dominant_frequency(0.15).unwrap_or(0.0),
        run.ether.collisions
    )
}

fn ablate_switch(div: usize, seed: u64) {
    header("Ablation: shared CSMA/CD bus vs store-and-forward switch");
    use fxnet::Testbed;
    for k in [KernelKind::Fft2d, KernelKind::Hist] {
        let bus = Testbed::paper().with_seed(seed).run_kernel(k, div.max(5));
        let sw = Testbed::paper()
            .with_seed(seed)
            .with_switched_fabric()
            .run_kernel(k, div.max(5));
        println!(
            "
{}:",
            k.name()
        );
        println!("{}", kernel_row("  shared bus", &bus));
        println!("{}", kernel_row("  switched fabric", &sw));
    }
    println!(
        "
(shape: the switch removes collisions and parallelizes disjoint transfers,"
    );
    println!(" raising bandwidth and the burst fundamental — but the quiet/burst alternation");
    println!(" persists: it is program structure, not MAC contention.)");
}

fn ablate_route(div: usize, seed: u64) {
    header("Ablation: PVM direct TCP route vs daemon UDP relay");
    use fxnet::pvm::Route;
    use fxnet::Testbed;
    for k in [KernelKind::Fft2d, KernelKind::Hist] {
        let direct = Testbed::paper().with_seed(seed).run_kernel(k, div.max(5));
        let daemon = Testbed::paper()
            .with_seed(seed)
            .with_route(Route::Daemon)
            .run_kernel(k, div.max(5));
        println!(
            "
{}:",
            k.name()
        );
        println!("{}", kernel_row("  direct (TCP)", &direct));
        println!("{}", kernel_row("  daemon (UDP relay)", &daemon));
    }
    println!(
        "
(the daemon route is scalable but \"somewhat slow\" (§4): stop-and-wait"
    );
    println!(" relaying stretches every communication phase.)");
}

fn ablate_p(seed: u64) {
    header("Ablation: processor-count sweep vs the §7.3 model");
    use fxnet::pvm::MessageBuilder;
    use fxnet::Testbed;
    let work = SimTime::from_secs(8);
    let n_bytes = 200_000usize;
    println!(
        "shift pattern, W = {}s total work, N = {} KB bursts:",
        work.as_secs_f64(),
        n_bytes / 1000
    );
    println!("    P    model t_bi    measured t_bi");
    for p in [2u32, 4, 8] {
        let run = Testbed::quiet(p).with_seed(seed).run(move |ctx| {
            let me = ctx.rank();
            let np = ctx.nprocs();
            let per_rank = SimTime::from_nanos(work.as_nanos() / u64::from(np));
            for i in 0..8usize {
                ctx.compute_time(per_rank);
                let mut b = MessageBuilder::new(i as i32);
                b.pack_bytes(&vec![0u8; n_bytes]);
                ctx.send((me + 1) % np, b.finish());
                let _ = ctx.recv((me + np - 1) % np);
            }
        });
        let profile =
            fxnet::trace::BurstProfile::of(&run.trace, SimTime::from_millis(300)).expect("bursts");
        let measured = profile.intervals.map_or(f64::NAN, |i| i.avg);
        let app = AppDescriptor::scalable(Pattern::Shift { k: 1 }, work.as_secs_f64(), move |_| {
            n_bytes as u64
        });
        let net = QosNetwork::ethernet_10mbps();
        let bw = net.offer(app.concurrent_connections(p)).expect("offer");
        let model = app.timing(p, bw).t_interval;
        println!("   {p:>2}    {model:>9.2}s    {measured:>12.2}s");
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

// --------------------------------------------------------------------
// Multi-tenant experiments: the mixed workload and the admission sweep.

fn mix_kernels(ctx: &Experiments) {
    header("Mixed workload: SOR + 2DFFT + HIST sharing one wire");
    use fxnet::mix::MixTenant;
    use fxnet::Testbed;
    let div = ctx.div;
    // 2DFFT alone presents a ~1.4 MB/s mean load — more than the paper's
    // whole 10 Mb/s Ethernet — so the admission controller would
    // (correctly) refuse the three-way mix there; see `mix-admit` for
    // that regime. The co-scheduling experiment runs on a 100 Mb/s
    // fabric instead.
    println!("(fabric: 100 Mb/s shared; the 10 Mb/s saturation regime is `mix-admit`)");
    let out = Testbed::paper()
        .with_seed(ctx.seed())
        .with_bandwidth_bps(100_000_000)
        .mix()
        .network(QosNetwork::new(12_500_000.0))
        .tenant(MixTenant::kernel(
            "SOR",
            KernelKind::Sor,
            div,
            4,
            SimTime::ZERO,
        ))
        .tenant(MixTenant::kernel(
            "2DFFT",
            KernelKind::Fft2d,
            div,
            4,
            SimTime::from_millis(250),
        ))
        .tenant(MixTenant::kernel(
            "HIST",
            KernelKind::Hist,
            div,
            4,
            SimTime::from_millis(500),
        ))
        .run();
    let total = out.check_conservation();
    print!("{}", out.report());

    println!("\n-- demuxed packet sizes: mixed vs solo (bytes) --");
    println!("              min       max       avg        sd");
    for t in &out.tenants {
        println!("{}", stats_row(&t.name, t.sizes));
        println!("{}", stats_row("  solo", t.solo_sizes));
    }
    println!("\n-- average bandwidth: mixed vs solo (KB/s) --");
    for t in &out.tenants {
        println!(
            "{:<10} {:>10.1}   solo {:>10.1}",
            t.name,
            t.avg_bw.unwrap_or(0.0) / 1000.0,
            t.solo_avg_bw.unwrap_or(0.0) / 1000.0
        );
    }

    // The combined spectrum of the shared wire: three periodic programs
    // superpose; their fundamentals coexist in one periodogram.
    let series = binned_bandwidth(&out.trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    println!("\n-- combined spectrum of the shared wire --");
    println!(
        "dominant {:.2} Hz, flatness {:.4}",
        spec.dominant_frequency(0.15).unwrap_or(0.0),
        spec.flatness()
    );
    for s in spec.top_spikes(6, 0.25) {
        println!("    spike {:>6.2} Hz  power {:.2e}", s.freq, s.power);
    }
    println!(
        "\nconservation: {} + {} background = {} frames total (exact)",
        out.tenants
            .iter()
            .map(|t| t.frames.len().to_string())
            .collect::<Vec<_>>()
            .join(" + "),
        out.background.len(),
        total
    );
}

fn mix_admit(seed: u64) {
    header("QoS admission under rising offered load (shift tenants, P=4)");
    use fxnet::mix::MixTenant;
    use fxnet::Testbed;
    // Identical §7.3 shift tenants: 2 s of work per cycle, 400 KB bursts.
    // Each admission commits its negotiated mean load, so the residual
    // shrinks until the burst-bandwidth floor (50 KB/s) refuses the next.
    let tenant = |i: usize| MixTenant::shift(&format!("T{}", i + 1), 2.0, 400_000, 3, 4);
    let net = || QosNetwork::ethernet_10mbps().with_min_burst_bw(50_000.0);
    println!("offered  admitted  rejected  residual KB/s");
    let mut any_rejected = false;
    for offered in 1..=4usize {
        let mut b = Testbed::paper()
            .with_seed(seed)
            .without_heartbeats()
            .mix()
            .network(net())
            .solo_baselines(offered == 2);
        for i in 0..offered {
            b = b.tenant(tenant(i));
        }
        let out = b.run();
        any_rejected |= !out.rejected.is_empty();
        let committed: f64 = out.tenants.iter().map(|t| t.negotiation.mean_load).sum();
        println!(
            "{offered:>7}  {:>8}  {:>8}  {:>13.1}",
            out.tenants.len(),
            out.rejected.len(),
            (net().capacity() - committed) / 1000.0
        );
        for r in &out.rejected {
            println!("         {r}");
        }
        if offered == 2 {
            println!("         measured vs predicted slowdown at offered load 2:");
            for t in &out.tenants {
                println!(
                    "           {}: measured {:.3}  QoS-model predicted {:.3}",
                    t.name,
                    t.measured_slowdown.unwrap_or(f64::NAN),
                    t.predicted_slowdown
                );
            }
        }
    }
    assert!(
        any_rejected,
        "the sweep must exhaust the residual bandwidth and reject"
    );
    println!("\n(the model splits burst bandwidth over every admitted tenant's concurrent");
    println!(" connections; the measured slowdown comes from actually sharing the wire.)");
}

// --------------------------------------------------------------------
// Live observability: the streaming watcher on the mixed workload.

fn watch_live(ctx: &Experiments, metrics_out: Option<&str>) {
    header("Live watch: streaming contract compliance on the shared wire");
    use fxnet::mix::MixTenant;
    use fxnet::telemetry::write_prometheus;
    use fxnet::watch::WatchConfig;
    use fxnet::Testbed;
    let div = ctx.div;
    // SOR honestly declares its compile-time descriptor; 2DFFT presents
    // only 1/8 of its true burst sizes at admission. Offline analysis
    // would catch that after the run — the streaming watcher catches it
    // while the frames are still going by, from the same frame tap that
    // feeds the trace (zero perturbation: the trace is byte-identical
    // with the watcher off).
    println!("(fabric: 100 Mb/s shared; 2DFFT claims 1/8 of its true burst sizes)");
    let out = Testbed::paper()
        .with_seed(ctx.seed())
        .with_bandwidth_bps(100_000_000)
        .mix()
        .network(QosNetwork::new(12_500_000.0))
        .solo_baselines(false)
        .tenant(MixTenant::kernel(
            "SOR",
            KernelKind::Sor,
            div,
            4,
            SimTime::ZERO,
        ))
        .tenant(
            MixTenant::kernel(
                "2DFFT",
                KernelKind::Fft2d,
                div,
                4,
                SimTime::from_millis(250),
            )
            .with_claim_scale(0.125),
        )
        .watch(WatchConfig::default())
        .run();
    for r in &out.rejected {
        println!("rejected: {r}");
    }
    let report = out.watch.as_ref().expect("watch was enabled");
    print!("{}", report.summary());

    let dir = metrics_out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| ctx.out_dir.clone());
    std::fs::create_dir_all(&dir).expect("create metrics dir");
    let prom = dir.join("watch.prom");
    write_prometheus(&prom, &report.registry).expect("write prometheus metrics");
    let jsonl = dir.join("watch_events.jsonl");
    std::fs::write(&jsonl, report.events_jsonl()).expect("write event log");
    println!("\nwrote {} and {}", prom.display(), jsonl.display());

    assert_eq!(
        report.violations_for("2DFFT"),
        1,
        "the over-driver must be caught (one latched violation)"
    );
    assert_eq!(
        report.violations_for("SOR"),
        0,
        "the honest tenant must stay clean"
    );
    println!("caught: 2DFFT latched 1 ContractViolation; SOR stayed clean");
}

// --------------------------------------------------------------------
// Figure 1: the communication patterns.

fn fig1() {
    header("Figure 1: Fx communication patterns (P = 8)");
    for pat in [
        Pattern::Neighbor,
        Pattern::AllToAll,
        Pattern::Partition,
        Pattern::Broadcast { root: 0 },
        Pattern::TreeUp,
        Pattern::TreeDown,
    ] {
        let sched = pat.schedule(8);
        println!(
            "\n{} — {} connections, {} round(s):",
            pat.name(),
            pat.connection_count(8),
            sched.len()
        );
        for (i, round) in sched.iter().enumerate() {
            let pairs: Vec<String> = round.iter().map(|(s, d)| format!("{s}->{d}")).collect();
            println!("  round {i}: {}", pairs.join(" "));
        }
    }
}

// --------------------------------------------------------------------
// Figures 3–5: kernel tables.

fn fig3(ctx: &mut Experiments) {
    header("Figure 3: packet size statistics for Fx kernels (bytes)");
    println!("-- aggregate --     min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = Stats::packet_sizes(&ctx.kernel(k).trace);
        println!("{}", stats_row(k.name(), s));
    }
    println!("-- connection --    min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = ctx
            .representative_connection(k)
            .and_then(|c| Stats::packet_sizes(&c));
        println!("{}", stats_row(k.name(), s));
    }
    println!("(paper aggregate: SOR 58/1518/473/568, 2DFFT 58/1518/969/678, T2DFFT 58/1518/912/663, SEQ 58/90/75/14, HIST 58/1518/499/575)");
}

fn fig4(ctx: &mut Experiments) {
    header("Figure 4: packet interarrival time statistics for Fx kernels (ms)");
    println!("-- aggregate --     min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = Stats::interarrivals_ms(&ctx.kernel(k).trace);
        println!("{}", stats_row(k.name(), s));
    }
    println!("-- connection --    min       max       avg        sd");
    for k in KernelKind::ALL {
        let s = ctx
            .representative_connection(k)
            .and_then(|c| Stats::interarrivals_ms(&c));
        println!("{}", stats_row(k.name(), s));
    }
    println!("(paper aggregate avg: SOR 82.1, 2DFFT 1.3, T2DFFT 1.5, SEQ 1.3, HIST 16.5)");
}

fn fig5(ctx: &mut Experiments) {
    header("Figure 5: average bandwidth for Fx kernels (KB/s)");
    println!("-- aggregate --      KB/s");
    for k in KernelKind::ALL {
        let row = bandwidth_row(k.name(), &ctx.kernel(k).trace);
        println!("{row}");
    }
    println!("-- connection --     KB/s");
    for k in KernelKind::ALL {
        match ctx.representative_connection(k) {
            Some(c) => println!("{}", bandwidth_row(k.name(), &c)),
            None => println!("{:<10} {:>10}", k.name(), "-"),
        }
    }
    println!("(paper aggregate: SOR 5.6, 2DFFT 754.8, T2DFFT 607.1, SEQ 58.3, HIST 29.6)");
}

// --------------------------------------------------------------------
// Figures 6–7: instantaneous bandwidth + spectra.

fn dump_series(path: &std::path::Path, series: &[(SimTime, f64)], max_t: f64) {
    let mut f = std::fs::File::create(path).expect("create series file");
    for (t, v) in series {
        let ts = t.as_secs_f64();
        if ts > max_t {
            break;
        }
        writeln!(f, "{ts:.4} {:.2}", v / 1000.0).expect("write");
    }
}

fn dump_spectrum(path: &std::path::Path, spec: &Periodogram, max_hz: f64) {
    let mut f = std::fs::File::create(path).expect("create spectrum file");
    for i in 0..spec.power.len() {
        let hz = spec.freq(i);
        if hz > max_hz {
            break;
        }
        writeln!(f, "{hz:.5} {:.4e}", spec.power[i]).expect("write");
    }
}

fn fig6(ctx: &mut Experiments) {
    header("Figure 6: instantaneous bandwidth of Fx kernels (10 ms window)");
    for k in KernelKind::ALL {
        let win = sliding_window_bandwidth(&ctx.kernel(k).trace, BIN);
        let path = ctx.out_path(&format!("{}.all.winbw", k.name()));
        dump_series(&path, &win, 10.0);
        println!(
            "wrote {} ({} points, 10 s span)",
            path.display(),
            win.len().min(10_000)
        );
        if let Some(conn) = ctx.representative_connection(k) {
            let win = sliding_window_bandwidth(&conn, BIN);
            let path = ctx.out_path(&format!("{}.conn.winbw", k.name()));
            dump_series(&path, &win, 10.0);
            println!("wrote {}", path.display());
        }
    }
}

fn fig7(ctx: &mut Experiments) {
    header("Figure 7: power spectra of kernel bandwidth (10 ms bins)");
    let paper = [
        ("SOR", "conn ~5 Hz fundamental; aggregate less clean"),
        ("2DFFT", "aggregate 0.5 Hz fundamental, declining harmonics"),
        ("T2DFFT", "least clean spectra of all kernels"),
        ("SEQ", "4 Hz harmonic dominant"),
        ("HIST", "5 Hz fundamental, linearly declining harmonics"),
    ];
    for (k, (_, note)) in KernelKind::ALL.into_iter().zip(paper) {
        let series = binned_bandwidth(&ctx.kernel(k).trace, BIN);
        let spec = Periodogram::compute(&series, BIN);
        let path = ctx.out_path(&format!("{}.all.spectrum", k.name()));
        dump_spectrum(&path, &spec, 50.0);
        let dom = spec.dominant_frequency(0.15).unwrap_or(0.0);
        println!(
            "\n{}: aggregate dominant {:.2} Hz, flatness {:.4}  [paper: {note}]",
            k.name(),
            dom,
            spec.flatness()
        );
        for s in spec.top_spikes(4, 0.25) {
            println!("    spike {:>6.2} Hz  power {:.2e}", s.freq, s.power);
        }
        if let Some(conn) = ctx.representative_connection(k) {
            let cs = binned_bandwidth(&conn, BIN);
            let cspec = Periodogram::compute(&cs, BIN);
            let path = ctx.out_path(&format!("{}.conn.spectrum", k.name()));
            dump_spectrum(&path, &cspec, 50.0);
            println!(
                "    connection dominant {:.2} Hz, flatness {:.4}",
                cspec.dominant_frequency(0.15).unwrap_or(0.0),
                cspec.flatness()
            );
        }
    }
}

// --------------------------------------------------------------------
// Figures 8–11 + §6.2: AIRSHED.

fn fig8(ctx: &mut Experiments) {
    header("Figure 8: packet size statistics for AIRSHED (bytes)");
    println!(
        "{}",
        stats_row("aggregate", Stats::packet_sizes(&ctx.airshed().trace))
    );
    let conn = fxnet::trace::connection(&ctx.airshed().trace, fxnet::HostId(0), fxnet::HostId(1));
    println!("{}", stats_row("connection", Stats::packet_sizes(&conn)));
    println!("(paper: aggregate 58/1518/899/693; connection 58/1518/889/688)");
}

fn fig9(ctx: &mut Experiments) {
    header("Figure 9: packet interarrival statistics for AIRSHED (ms)");
    println!(
        "{}",
        stats_row("aggregate", Stats::interarrivals_ms(&ctx.airshed().trace))
    );
    let conn = fxnet::trace::connection(&ctx.airshed().trace, fxnet::HostId(0), fxnet::HostId(1));
    println!(
        "{}",
        stats_row("connection", Stats::interarrivals_ms(&conn))
    );
    println!("(paper: aggregate 0/23448.6/26.8/513.3; connection 0/37018.5/317.4/2353.6)");
}

fn airshed_avg(ctx: &mut Experiments) {
    header("§6.2: AIRSHED average bandwidth");
    let agg = average_bandwidth(&ctx.airshed().trace).unwrap_or(0.0) / 1000.0;
    let conn = fxnet::trace::connection(&ctx.airshed().trace, fxnet::HostId(0), fxnet::HostId(1));
    let cbw = average_bandwidth(&conn).unwrap_or(0.0) / 1000.0;
    println!("aggregate  {agg:>8.1} KB/s   (paper: 32.7)");
    println!("connection {cbw:>8.1} KB/s   (paper:  2.7)");
}

fn fig10(ctx: &mut Experiments) {
    header("Figure 10: instantaneous bandwidth of AIRSHED (10 ms window)");
    let total = ctx.airshed().finished_at.as_secs_f64();
    let win = sliding_window_bandwidth(&ctx.airshed().trace, BIN);
    let p500 = ctx.out_path("AIRSHED.all.winbw.500s");
    dump_series(&p500, &win, 500.0f64.min(total));
    let p60 = ctx.out_path("AIRSHED.all.winbw.60s");
    dump_series(&p60, &win, 60.0f64.min(total));
    println!("wrote {} and {}", p500.display(), p60.display());
    let conn = fxnet::trace::connection(&ctx.airshed().trace, fxnet::HostId(0), fxnet::HostId(1));
    let cw = sliding_window_bandwidth(&conn, BIN);
    let pc = ctx.out_path("AIRSHED.conn.winbw.500s");
    dump_series(&pc, &cw, 500.0f64.min(total));
    println!("wrote {}", pc.display());
}

fn fig11(ctx: &mut Experiments) {
    header("Figure 11: power spectrum of AIRSHED bandwidth");
    let series = binned_bandwidth(&ctx.airshed().trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    for (suffix, max_hz) in [("0.1hz", 0.1), ("1hz", 1.0), ("20hz", 20.0)] {
        let path = ctx.out_path(&format!("AIRSHED.spectrum.{suffix}"));
        dump_spectrum(&path, &spec, max_hz);
        println!("wrote {}", path.display());
    }
    println!("\nband peaks (paper: ≈0.015 Hz hour, ≈0.2 Hz chem step, ≈5 Hz transport):");
    for (label, lo, hi) in [
        ("hour  ", 0.005, 0.05),
        ("step  ", 0.08, 0.8),
        ("trans ", 1.0, 20.0),
    ] {
        let mut best = (0.0, 0.0);
        for i in 1..spec.power.len() {
            let f = spec.freq(i);
            if f >= lo && f < hi && spec.power[i] > best.1 {
                best = (f, spec.power[i]);
            }
        }
        println!(
            "  {label} {:.4} Hz (period {:>6.1} s)  power {:.2e}",
            best.0,
            1.0 / best.0.max(1e-9),
            best.1
        );
    }
}

// --------------------------------------------------------------------
// §7.2 model, §7.3 QoS, §1/§8 baseline comparison.

fn model(ctx: &mut Experiments) {
    header("§7.2: truncated Fourier-series models of kernel bandwidth");
    for k in [KernelKind::Fft2d, KernelKind::Hist, KernelKind::Seq] {
        let series = binned_bandwidth(&ctx.kernel(k).trace, BIN);
        let spec = Periodogram::compute(&series, BIN);
        println!(
            "\n{}:  spikes  captured-power  reconstruction-RMS",
            k.name()
        );
        for n in [1usize, 2, 4, 8, 16, 32, 64] {
            let m = FourierModel::from_periodogram(&spec, n, 0.05);
            println!(
                "        {n:>5}  {:>13.1}%  {:>17.3}",
                m.captured_power_fraction(&spec) * 100.0,
                m.reconstruction_error(&series, BIN)
            );
        }
        // Regenerate synthetic traffic from the 16-spike model.
        let m = FourierModel::from_periodogram(&spec, 16, 0.05);
        let mut rng = SimRng::new(1998);
        let synth = synthesize_trace(
            &m,
            SimTime::from_secs_f64((series.len() as f64 * 0.01).min(120.0)),
            &SynthConfig::default(),
            &mut rng,
        );
        if !synth.is_empty() {
            let sp = Periodogram::compute(&binned_bandwidth(&synth, BIN), BIN);
            println!(
                "        regenerated: dominant {:.2} Hz vs measured {:.2} Hz",
                sp.dominant_frequency(0.15).unwrap_or(0.0),
                spec.dominant_frequency(0.15).unwrap_or(0.0)
            );
        }
    }
}

fn qos() {
    header("§7.3: QoS negotiation (t_bi vs P; the network returns P)");
    let net = QosNetwork::ethernet_10mbps();
    let apps: Vec<(&str, AppDescriptor)> = vec![
        (
            "2DFFT-like (all-to-all)",
            AppDescriptor::scalable(Pattern::AllToAll, 24.0, |p| (512 / u64::from(p)).pow(2) * 8),
        ),
        (
            "SOR-like (neighbor)",
            AppDescriptor::scalable(Pattern::Neighbor, 60.0, |_| 4096),
        ),
        (
            "shift, 1 MB bursts",
            AppDescriptor::scalable(Pattern::Shift { k: 1 }, 8.0, |_| 1_000_000),
        ),
    ];
    for (label, app) in &apps {
        println!("\n{label}:");
        println!("    P   B/conn KB/s     t_b s    t_bi s");
        for p in [2u32, 4, 8, 16] {
            if let Some(bw) = net.offer(app.concurrent_connections(p)) {
                let t = app.timing(p, bw);
                println!(
                    "   {p:>2}   {:>11.1}  {:>8.3}  {:>8.3}",
                    bw / 1000.0,
                    t.t_burst,
                    t.t_interval
                );
            }
        }
        match negotiate(app, &net, 1..=16) {
            Some(n) => println!("   -> network returns P = {}", n.p),
            None => println!("   -> rejected"),
        }
    }
}

fn baseline(ctx: &mut Experiments) {
    header("§1/§8: parallel-program vs media traffic");
    let mut rows: Vec<(String, f64, f64, Option<f64>)> = Vec::new();
    for k in [KernelKind::Fft2d, KernelKind::Hist] {
        let series = binned_bandwidth(&ctx.kernel(k).trace, BIN);
        let spec = Periodogram::compute(&series, BIN);
        let conc = FourierModel::from_periodogram(&spec, 8, 0.1).captured_power_fraction(&spec);
        let coarse = binned_bandwidth(&ctx.kernel(k).trace, SimTime::from_millis(50));
        rows.push((
            k.name().to_string(),
            spec.flatness(),
            conc,
            hurst_aggregated_variance(&coarse),
        ));
    }
    let mut rng = SimRng::new(77);
    let dur = SimTime::from_secs(120);
    let vbr = onoff_vbr_trace(400_000.0, 0.4, 0.6, 1000, dur, &mut rng);
    let ss = self_similar_trace(16, 40_000.0, 1.5, 0.5, 800, dur, &mut rng);
    for (name, tr) in [("VBR on/off", vbr), ("self-similar", ss)] {
        let series = binned_bandwidth(&tr, BIN);
        let spec = Periodogram::compute(&series, BIN);
        let conc = FourierModel::from_periodogram(&spec, 8, 0.1).captured_power_fraction(&spec);
        let coarse = binned_bandwidth(&tr, SimTime::from_millis(50));
        rows.push((
            name.to_string(),
            spec.flatness(),
            conc,
            hurst_aggregated_variance(&coarse),
        ));
    }
    println!("source         flatness   8-spike-power   Hurst");
    for (name, flat, conc, h) in rows {
        let h = h.map_or("   -".to_string(), |v| format!("{v:.2}"));
        println!("{name:<14} {flat:>8.4}   {:>12.1}%   {h}", conc * 100.0);
    }
    println!("(expected shape: kernels = low flatness, high spike concentration; media = the reverse; self-similar H > 0.6)");
}
