//! The out-of-core analytics race: one streamed pass over a chunked
//! (FXTC v2) trace versus the materialize-then-analyze baseline.
//!
//! Both paths compute the identical analysis bundle — the fused
//! [`TraceReport`], the sliding-window bandwidth peak, Goertzel powers
//! at the contract harmonics, and the Kepner-style
//! [`ScalingRelation`] ladder over multi-temporal host-pair matrices —
//! and render it to one canonical transcript. The contract is that the
//! transcripts are **byte-identical**:
//!
//! * streamed vs materialized (the kernels are bitwise twins, proven
//!   by the `fxnet-trace` / `fxnet-metrics` property tests), and
//! * streamed at any `--jobs` vs `--jobs 1` (chunks are *decoded* in
//!   parallel but *folded* strictly in directory order — Welford and
//!   the burst merge are order-sensitive, so parallelism is confined
//!   to the side with no float arithmetic).
//!
//! Peak memory differs by design: the streamed scan holds at most two
//! decode rounds of chunks (O(jobs · chunk)), the baseline holds every
//! column of the trace at once.

use fxnet::metrics::{ScalingAccum, ScalingRelation};
use fxnet::spectral::harmonic_powers;
use fxnet::trace::{
    load_store, read_chunk, read_chunk_directory, sliding_window_bandwidth, ChunkBuf, ChunkMeta,
    ReportOptions, SlidingPeak, StreamingReport, TraceIoError, TraceReport,
};
use fxnet::SimTime;
use fxnet_harness::Pool;
use std::path::Path;

/// Frames per chunk the `analysis-scale` writer uses: ~1.4 MB of
/// decoded columns, big enough to amortize the varint decode, small
/// enough that a decode round stays cache-friendly.
pub const SCAN_CHUNK_FRAMES: usize = 65_536;

/// Base matrix window: 1 ms, the finest rung of the ladder.
pub const MATRIX_BASE_NS: u64 = 1_000_000;

/// The multi-temporal ladder, in base-window multiples:
/// 1 ms → 10 ms → 100 ms → 1 s.
pub const MATRIX_SCALES: [u64; 4] = [1, 10, 100, 1000];

/// Everything both scan paths need to agree on up front.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Report label (appears in the rendered transcript).
    pub label: String,
    /// Report options: bin width, burst gap, spectral floor.
    pub opts: ReportOptions,
    /// Sliding-bandwidth window for the peak gauge.
    pub window: SimTime,
    /// Fundamental the harmonic probe is anchored at, Hz.
    pub base_hz: f64,
    /// Harmonic multiples of `base_hz` to probe with Goertzel.
    pub harmonics: Vec<u32>,
    /// Finest matrix window, ns.
    pub matrix_base_ns: u64,
    /// Matrix ladder in base-window multiples (strictly increasing).
    pub matrix_scales: Vec<u64>,
}

impl ScanConfig {
    /// The `analysis-scale` defaults: the paper's 10 ms bin and
    /// window, the 1 ms → 1 s matrix ladder, and the first four
    /// harmonics of `base_hz`.
    pub fn new(label: impl Into<String>, base_hz: f64) -> ScanConfig {
        let opts = ReportOptions::default();
        ScanConfig {
            label: label.into(),
            window: opts.bin,
            opts,
            base_hz,
            harmonics: vec![1, 2, 3, 4],
            matrix_base_ns: MATRIX_BASE_NS,
            matrix_scales: MATRIX_SCALES.to_vec(),
        }
    }
}

/// One scan path's full result: the analysis bundle, its canonical
/// rendering, and the path's peak resident working set.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// Frames analyzed.
    pub frames: u64,
    /// Chunks in the trace directory (0 for the materialized path,
    /// which never consults the directory).
    pub chunks: usize,
    pub report: TraceReport,
    /// `(frequency_hz, power)` at each probed harmonic.
    pub harmonics: Vec<(f64, f64)>,
    /// Peak sliding-window bandwidth, `None` on an empty trace.
    pub sliding_peak: Option<f64>,
    /// The multi-temporal scaling ladder.
    pub relations: Vec<ScalingRelation>,
    /// Canonical transcript — the byte-identity artifact.
    pub rendered: String,
    /// Peak bytes of decoded frame columns held at once: in-flight
    /// decode rounds for the streamed path, the whole store for the
    /// materialized one.
    pub peak_resident_bytes: u64,
}

/// Render the analysis bundle to the canonical transcript. Floats are
/// printed with `{:?}` (shortest round-trip), so two transcripts match
/// byte-for-byte exactly when every number matches bit-for-bit.
fn render(
    cfg: &ScanConfig,
    frames: u64,
    report: &TraceReport,
    sliding_peak: Option<f64>,
    harmonics: &[(f64, f64)],
    relations: &[ScalingRelation],
) -> String {
    use std::fmt::Write as _;
    let mut out = format!("# analysis-scale scan — {} ({frames} frames)\n", cfg.label);
    out.push_str(&TraceReport::markdown_header());
    out.push('\n');
    out.push_str(&report.markdown_row());
    out.push('\n');
    writeln!(out, "report {report:?}").expect("write");
    writeln!(
        out,
        "sliding peak {sliding_peak:?} (window {:?})",
        cfg.window
    )
    .expect("write");
    for (h, (freq, power)) in cfg.harmonics.iter().zip(harmonics) {
        writeln!(
            out,
            "harmonic {h}x{:?} Hz -> {freq:?} Hz power {power:?}",
            cfg.base_hz
        )
        .expect("write");
    }
    for r in relations {
        writeln!(out, "scaling {r:?}").expect("write");
    }
    out
}

/// Sum of decoded column bytes across a decode round.
fn resident(bufs: &[ChunkBuf]) -> u64 {
    bufs.iter().map(ChunkBuf::resident_bytes).sum()
}

/// One streamed pass over a chunked trace: chunks are decoded in
/// rounds of `pool.jobs()` on the worker pool while the previous round
/// is folded — **in directory order, on one thread** — into the fused
/// streaming kernels. The fold order is fixed by the directory, never
/// by scheduling, so the outcome is byte-identical at any job count;
/// parallelism and double-buffering only move wall-clock time.
pub fn streamed_scan(
    path: &Path,
    cfg: &ScanConfig,
    pool: &Pool,
) -> Result<ScanOutcome, TraceIoError> {
    let dir = read_chunk_directory(path)?;
    let frames = dir.frames();
    let chunks = dir.chunks.len();
    let batch = pool.jobs().max(1);

    let mut report = StreamingReport::new(&cfg.label, &cfg.opts);
    let mut sliding = SlidingPeak::new(cfg.window);
    let mut matrices = ScalingAccum::new(cfg.matrix_base_ns, &cfg.matrix_scales);
    let mut peak_resident = 0u64;

    let decode = |round: &[ChunkMeta]| -> Vec<ChunkBuf> {
        pool.map(round.to_vec(), |meta| {
            let mut buf = ChunkBuf::default();
            read_chunk(path, &meta, &mut buf).expect("decode chunk");
            buf
        })
    };

    let mut rounds = dir.chunks.chunks(batch);
    let mut current: Option<Vec<ChunkBuf>> = rounds.next().map(decode);
    while let Some(bufs) = current {
        let next_metas = rounds.next();
        // Decode the next round on the pool while this thread folds the
        // current one; the scope joins before anything is reordered.
        let next = std::thread::scope(|s| {
            let prefetch = next_metas.map(|nm| s.spawn(|| decode(nm)));
            for buf in &bufs {
                report.push_chunk(&buf.time_ns, &buf.wire_len);
                for (&t, &len) in buf.time_ns.iter().zip(&buf.wire_len) {
                    sliding.push(SimTime::from_nanos(t), len);
                }
                matrices.record_columns(&buf.time_ns, &buf.src, &buf.dst);
            }
            prefetch.map(|h| h.join().expect("decode round"))
        });
        let in_flight = resident(&bufs) + next.as_deref().map_or(0, resident);
        peak_resident = peak_resident.max(in_flight);
        current = next;
    }

    let (trace_report, series) = report.finish_with_series();
    let harmonics = harmonic_powers(&series, cfg.opts.bin, cfg.base_hz, &cfg.harmonics);
    let sliding_peak = sliding.peak();
    let relations = matrices.finalize();
    let rendered = render(
        cfg,
        frames,
        &trace_report,
        sliding_peak,
        &harmonics,
        &relations,
    );
    Ok(ScanOutcome {
        frames,
        chunks,
        report: trace_report,
        harmonics,
        sliding_peak,
        relations,
        rendered,
        peak_resident_bytes: peak_resident,
    })
}

/// The baseline: materialize the whole trace, then run the classic
/// multi-pass analyses over it — `analyze_view` (fused pass + binned
/// pass), a third pass for the harmonic series, the full
/// `sliding_window_bandwidth` vector reduced to its peak, and a final
/// pass feeding the matrix ladder. Byte-identical transcript to
/// [`streamed_scan`], at O(trace) peak memory.
pub fn materialized_scan(path: &Path, cfg: &ScanConfig) -> Result<ScanOutcome, TraceIoError> {
    let store = load_store(path)?;
    let view = store.view();
    let trace_report = TraceReport::analyze_view(&cfg.label, view, &cfg.opts);
    let series = view.binned_bandwidth(cfg.opts.bin);
    let harmonics = harmonic_powers(&series, cfg.opts.bin, cfg.base_hz, &cfg.harmonics);

    // The legacy sliding probe materializes the whole per-packet vector
    // (an AoS copy first) and only then reduces it.
    let records = store.to_records();
    let sliding = sliding_window_bandwidth(&records, cfg.window);
    let sliding_peak = (!sliding.is_empty()).then(|| {
        sliding
            .iter()
            .fold(f64::NEG_INFINITY, |m, &(_, bw)| m.max(bw))
    });

    let mut matrices = ScalingAccum::new(cfg.matrix_base_ns, &cfg.matrix_scales);
    for r in store.iter() {
        matrices.record(r.time.as_nanos(), r.src.0, r.dst.0);
    }
    let relations = matrices.finalize();

    let frames = store.len() as u64;
    let rendered = render(
        cfg,
        frames,
        &trace_report,
        sliding_peak,
        &harmonics,
        &relations,
    );
    Ok(ScanOutcome {
        frames,
        chunks: 0,
        report: trace_report,
        harmonics,
        sliding_peak,
        relations,
        rendered,
        peak_resident_bytes: store.column_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet::trace::{save_store_chunked, TraceStore};
    use fxnet::FrameRecord;
    use fxnet::{sim::Frame, sim::FrameKind, HostId};

    fn bursty_store(n: usize) -> TraceStore {
        let recs: Vec<FrameRecord> = (0..n)
            .map(|i| {
                let group = i / 40;
                let t = SimTime::from_micros((group * 500_000 + (i % 40) * 700) as u64);
                let f = Frame::tcp(
                    HostId((i % 7) as u32),
                    // Offsets 1..=5 are never 0 mod 7, so src != dst.
                    HostId(((i % 7) + 1 + (i / 11) % 5) as u32 % 7),
                    FrameKind::Data,
                    (100 + (i * 37) % 1100) as u32,
                    i as u64 + 1,
                );
                FrameRecord::capture(t, &f)
            })
            .collect();
        TraceStore::from_records(&recs)
    }

    #[test]
    fn streamed_scan_matches_materialized_bytes() {
        let dir = std::env::temp_dir().join(format!("fxnet-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.fxb");
        let store = bursty_store(5_000);
        save_store_chunked(&path, &store, 257).unwrap();

        let cfg = ScanConfig::new("scan-test", 2.0);
        let streamed = streamed_scan(&path, &cfg, &Pool::new(4)).unwrap();
        let serial = streamed_scan(&path, &cfg, &Pool::serial()).unwrap();
        let mat = materialized_scan(&path, &cfg).unwrap();

        assert_eq!(streamed.frames, 5_000);
        assert!(streamed.chunks > 1);
        assert_eq!(
            streamed.rendered, serial.rendered,
            "parallel streamed scan must match --jobs 1 byte for byte"
        );
        assert_eq!(
            streamed.rendered, mat.rendered,
            "streamed scan must match the materialized baseline byte for byte"
        );
        // Spot-check the rendered transcript carries every section.
        assert!(streamed.rendered.contains("sliding peak Some"));
        assert!(streamed.rendered.contains("harmonic 1x"));
        assert!(streamed.rendered.contains("scaling ScalingRelation"));
        // The streamed working set is bounded by in-flight rounds, the
        // baseline holds all columns.
        assert_eq!(mat.peak_resident_bytes, store.column_bytes());
        assert!(streamed.peak_resident_bytes <= mat.peak_resident_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_chunked_trace_scans_cleanly() {
        let dir = std::env::temp_dir().join(format!("fxnet-scan-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.fxb");
        save_store_chunked(&path, &TraceStore::from_records(&[]), 64).unwrap();
        let cfg = ScanConfig::new("empty", 1.0);
        let streamed = streamed_scan(&path, &cfg, &Pool::new(2)).unwrap();
        let mat = materialized_scan(&path, &cfg).unwrap();
        assert_eq!(streamed.frames, 0);
        assert_eq!(streamed.sliding_peak, None);
        assert!(streamed.harmonics.is_empty());
        assert_eq!(streamed.rendered, mat.rendered);
        std::fs::remove_dir_all(&dir).ok();
    }
}
