//! Shared experiment-harness code for the `repro` binary and the
//! Criterion benches: cached kernel/AIRSHED runs and table formatting.
//!
//! The experiment index lives in DESIGN.md §4; `repro --help` lists the
//! experiment ids. Paper-vs-measured numbers are recorded in
//! EXPERIMENTS.md.

use fxnet::apps::airshed::AirshedParams;
use fxnet::trace::{average_bandwidth, connection, Stats};
use fxnet::{FrameRecord, HostId, KernelKind, RunResult, Testbed};
use fxnet_harness::Pool;
use std::collections::HashMap;

/// Lazily runs and caches the measured programs for one harness process.
pub struct Experiments {
    /// Outer-iteration divisor (1 = full paper scale).
    pub div: usize,
    /// AIRSHED hours (paper: 100).
    pub hours: usize,
    /// Output directory for series/spectrum files.
    pub out_dir: std::path::PathBuf,
    seed: u64,
    telemetry: bool,
    kernels: HashMap<&'static str, RunResult<u64>>,
    airshed: Option<RunResult<u64>>,
}

impl Experiments {
    /// A harness writing into `out_dir`, scaling iteration counts by
    /// `1/div` and AIRSHED to `hours`.
    pub fn new(div: usize, hours: usize, out_dir: impl Into<std::path::PathBuf>) -> Experiments {
        Experiments {
            div: div.max(1),
            hours: hours.max(1),
            out_dir: out_dir.into(),
            seed: 1998,
            telemetry: false,
            kernels: HashMap::new(),
            airshed: None,
        }
    }

    /// Collect telemetry (phase spans + counter registry) on every run.
    /// Must be set before the first run is cached; the packet traces are
    /// identical either way.
    pub fn with_telemetry(mut self, on: bool) -> Experiments {
        self.telemetry = on;
        self
    }

    /// Override the simulation seed (default 1998, the paper's year).
    /// Must be set before the first run is cached: same seed, same
    /// byte-identical traces and tables.
    pub fn with_seed(mut self, seed: u64) -> Experiments {
        self.seed = seed;
        self
    }

    /// The simulation seed runs are made with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fill the run cache for `kernels` (and AIRSHED if `airshed`) by
    /// fanning the missing simulations across `pool`.
    ///
    /// Each program is an independent run of a fixed `(seed, config)`,
    /// so warming them in parallel yields byte-identical caches to the
    /// lazy serial fills — the analyses that later read the cache print
    /// the same tables and write the same artifacts regardless of
    /// `pool.jobs()`. Only the `[run]` progress lines on stderr may
    /// interleave differently.
    pub fn prewarm(&mut self, pool: &Pool, kernels: &[KernelKind], airshed: bool) {
        enum Done {
            Kernel(&'static str, RunResult<u64>),
            Airshed(RunResult<u64>),
        }
        let mut jobs: Vec<Option<KernelKind>> = kernels
            .iter()
            .filter(|k| !self.kernels.contains_key(k.name()))
            .map(|k| Some(*k))
            .collect();
        if airshed && self.airshed.is_none() {
            jobs.push(None); // None = the AIRSHED run
        }
        if jobs.is_empty() {
            return;
        }
        // Longest-job-first keeps the pool's makespan near the longest
        // single run (AIRSHED, then the talkative kernels). Results are
        // keyed by program, so schedule order cannot affect them.
        let weight = |j: &Option<KernelKind>| match j {
            None => 0,
            Some(KernelKind::T2dfft) => 1,
            Some(KernelKind::Fft2d) => 2,
            Some(KernelKind::Seq) => 3,
            Some(KernelKind::Sor) => 4,
            Some(KernelKind::Hist) => 5,
        };
        jobs.sort_by_key(weight);
        let (div, hours, seed, telemetry) = (self.div, self.hours, self.seed, self.telemetry);
        let done = pool.map(jobs, |job| {
            let t0 = std::time::Instant::now();
            let tb = Testbed::paper().with_seed(seed).with_telemetry(telemetry);
            let (name, run) = match job {
                Some(k) => (
                    k.name(),
                    tb.run_kernel(k, div)
                        .unwrap_or_else(|e| panic!("{}: {e}", k.name())),
                ),
                None => {
                    let params = AirshedParams {
                        hours,
                        ..AirshedParams::paper()
                    };
                    (
                        "AIRSHED",
                        tb.run_airshed(params)
                            .unwrap_or_else(|e| panic!("AIRSHED: {e}")),
                    )
                }
            };
            eprintln!(
                "[run] {name}: {} frames, {:.1} s simulated, {:.1} s wall",
                run.trace.len(),
                run.finished_at.as_secs_f64(),
                t0.elapsed().as_secs_f64()
            );
            match job {
                Some(k) => Done::Kernel(k.name(), run),
                None => Done::Airshed(run),
            }
        });
        for d in done {
            match d {
                Done::Kernel(name, run) => {
                    self.kernels.insert(name, run);
                }
                Done::Airshed(run) => self.airshed = Some(run),
            }
        }
    }

    /// The measured trace of a kernel (cached).
    pub fn kernel(&mut self, k: KernelKind) -> &RunResult<u64> {
        let div = self.div;
        let seed = self.seed;
        let telemetry = self.telemetry;
        self.kernels.entry(k.name()).or_insert_with(|| {
            eprintln!("[run] {} (paper scale / {div}) ...", k.name());
            let t0 = std::time::Instant::now();
            let run = Testbed::paper()
                .with_seed(seed)
                .with_telemetry(telemetry)
                .run_kernel(k, div)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            eprintln!(
                "[run] {}: {} frames, {:.1} s simulated, {:.1} s wall",
                k.name(),
                run.trace.len(),
                run.finished_at.as_secs_f64(),
                t0.elapsed().as_secs_f64()
            );
            run
        })
    }

    /// The measured AIRSHED trace (cached).
    pub fn airshed(&mut self) -> &RunResult<u64> {
        if self.airshed.is_none() {
            let params = AirshedParams {
                hours: self.hours,
                ..AirshedParams::paper()
            };
            eprintln!("[run] AIRSHED ({} hours) ...", self.hours);
            let t0 = std::time::Instant::now();
            let run = Testbed::paper()
                .with_seed(self.seed)
                .with_telemetry(self.telemetry)
                .run_airshed(params)
                .unwrap_or_else(|e| panic!("AIRSHED: {e}"));
            eprintln!(
                "[run] AIRSHED: {} frames, {:.1} s simulated, {:.1} s wall",
                run.trace.len(),
                run.finished_at.as_secs_f64(),
                t0.elapsed().as_secs_f64()
            );
            self.airshed = Some(run);
        }
        self.airshed.as_ref().expect("just initialized")
    }

    /// The representative connection the paper analyzes for a kernel, if
    /// the pattern has one (§6.1): an arbitrary pair for the symmetric
    /// patterns, a cross-partition pair for T2DFFT, none for SEQ/HIST.
    pub fn representative_connection(&mut self, k: KernelKind) -> Option<Vec<FrameRecord>> {
        let (src, dst) = match k {
            KernelKind::Sor => (HostId(1), HostId(2)),
            KernelKind::Fft2d => (HostId(0), HostId(1)),
            KernelKind::T2dfft => (HostId(0), HostId(2)),
            KernelKind::Seq | KernelKind::Hist => return None,
        };
        Some(connection(&self.kernel(k).trace, src, dst))
    }

    /// Deterministic telemetry JSON (spans + counter registry) for every
    /// cached run, keyed by program name. Runs made without telemetry
    /// are omitted.
    pub fn telemetry_value(&self) -> serde::Value {
        let mut names: Vec<&&str> = self.kernels.keys().collect();
        names.sort();
        let mut entries: Vec<(String, serde::Value)> = names
            .into_iter()
            .filter_map(|name| {
                let tel = self.kernels[*name].telemetry.as_ref()?;
                Some((name.to_string(), tel.to_value()))
            })
            .collect();
        if let Some(tel) = self.airshed.as_ref().and_then(|r| r.telemetry.as_ref()) {
            entries.push(("AIRSHED".to_string(), tel.to_value()));
        }
        serde::Value::Object(entries)
    }

    /// Ensure the output directory exists and return a path inside it.
    pub fn out_path(&self, name: &str) -> std::path::PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create output dir");
        self.out_dir.join(name)
    }
}

/// Events/sec of the calendar `EventQueue` against the reference
/// `BinaryHeapQueue`, driven by one identical simulator-shaped schedule
/// (mostly MAC/segment-scale offsets inside the ring horizon, a few
/// RTO-scale timers in the overflow).
pub struct QueueBench {
    /// Pushes + pops performed per engine.
    pub ops: u64,
    /// Steady-state pending events (the hold pattern).
    pub pending: usize,
    pub heap_events_per_sec: f64,
    pub calendar_events_per_sec: f64,
    /// `calendar_events_per_sec / heap_events_per_sec`.
    pub ratio: f64,
}

/// Measure both event-queue implementations on the same deterministic
/// schedule: prefill `pending` events, then hold that population for
/// `ops` pop-push rounds, then drain. Best of three rounds per engine.
pub fn queue_benchmark(ops: usize, pending: usize) -> QueueBench {
    use fxnet::sim::{BinaryHeapQueue, EventQueue};
    use fxnet::SimTime;

    // One shared offset schedule (xorshift64*; fixed seed): ~70 %
    // sub-frame MAC/segment offsets, ~25 % spanning a few ring buckets,
    // ~5 % delayed-ACK/RTO-scale timers that land in the overflow.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let offsets: Vec<u64> = (0..ops + pending)
        .map(|_| {
            let r = next();
            match r % 100 {
                0..=69 => 100 + r % 57_600,        // bit .. min-frame time
                70..=94 => r % 1_200_000,          // up to one max frame
                _ => 200_000_000 + r % 50_000_000, // delayed-ACK / RTO scale
            }
        })
        .collect();

    fn drive<Q>(
        offsets: &[u64],
        pending: usize,
        push: impl Fn(&mut Q, SimTime, u64),
        pop: impl Fn(&mut Q) -> Option<(SimTime, u64)>,
        mut q: Q,
    ) -> (u64, u64, std::time::Duration) {
        let t0 = std::time::Instant::now();
        let mut ops_done = 0u64;
        let mut checksum = 0u64;
        let mut clock = 0u64;
        for (i, &off) in offsets.iter().enumerate() {
            if i >= pending {
                let (t, e) = pop(&mut q).expect("hold pattern keeps the queue non-empty");
                clock = clock.max(t.as_nanos());
                checksum = checksum.wrapping_add(t.as_nanos() ^ e);
                ops_done += 1;
            }
            push(&mut q, SimTime::from_nanos(clock + off), i as u64);
            ops_done += 1;
        }
        while let Some((t, e)) = pop(&mut q) {
            checksum = checksum.wrapping_add(t.as_nanos() ^ e);
            ops_done += 1;
        }
        (ops_done, checksum, t0.elapsed())
    }

    let mut heap_best = f64::INFINITY;
    let mut cal_best = f64::INFINITY;
    let mut total_ops = 0u64;
    let mut checks = (0u64, 0u64);
    for _ in 0..3 {
        let (n, ck, dt) = drive(
            &offsets,
            pending,
            |q: &mut BinaryHeapQueue<u64>, t, e| q.push(t, e),
            |q| q.pop(),
            BinaryHeapQueue::new(),
        );
        heap_best = heap_best.min(dt.as_secs_f64());
        total_ops = n;
        checks.0 = ck;
        let (_, ck, dt) = drive(
            &offsets,
            pending,
            |q: &mut EventQueue<u64>, t, e| q.push(t, e),
            |q| q.pop(),
            EventQueue::new(),
        );
        cal_best = cal_best.min(dt.as_secs_f64());
        checks.1 = ck;
    }
    assert_eq!(
        checks.0, checks.1,
        "both engines must pop the identical schedule"
    );
    let heap_eps = total_ops as f64 / heap_best;
    let cal_eps = total_ops as f64 / cal_best;
    QueueBench {
        ops: total_ops,
        pending,
        heap_events_per_sec: heap_eps,
        calendar_events_per_sec: cal_eps,
        ratio: cal_eps / heap_eps,
    }
}

/// Format one table row of size/interarrival statistics.
pub fn stats_row(label: &str, s: Option<Stats>) -> String {
    match s {
        Some(s) => format!(
            "{label:<10} {:>8.1} {:>9.1} {:>9.1} {:>9.1}",
            s.min, s.max, s.avg, s.sd
        ),
        None => format!("{label:<10} {:>8} {:>9} {:>9} {:>9}", "-", "-", "-", "-"),
    }
}

/// Format one average-bandwidth row (KB/s).
pub fn bandwidth_row(label: &str, trace: &[FrameRecord]) -> String {
    match average_bandwidth(trace) {
        Some(bw) => format!("{label:<10} {:>10.1}", bw / 1000.0),
        None => format!("{label:<10} {:>10}", "-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_caches_runs() {
        let mut e = Experiments::new(100, 1, std::env::temp_dir().join("fxnet-test-out"));
        let n1 = e.kernel(KernelKind::Hist).trace.len();
        let n2 = e.kernel(KernelKind::Hist).trace.len();
        assert_eq!(n1, n2);
        assert!(n1 > 0);
    }

    #[test]
    fn representative_connections_follow_the_paper() {
        let mut e = Experiments::new(100, 1, std::env::temp_dir().join("fxnet-test-out"));
        assert!(e.representative_connection(KernelKind::Seq).is_none());
        assert!(e.representative_connection(KernelKind::Hist).is_none());
        let sor = e.representative_connection(KernelKind::Sor).unwrap();
        assert!(sor.iter().all(|r| r.src == HostId(1) && r.dst == HostId(2)));
    }

    #[test]
    fn prewarm_matches_the_lazy_serial_fill() {
        let out = std::env::temp_dir().join("fxnet-test-out");
        let mut lazy = Experiments::new(100, 1, &out);
        let mut warm = Experiments::new(100, 1, &out);
        warm.prewarm(&Pool::new(3), &[KernelKind::Hist, KernelKind::Seq], false);
        for k in [KernelKind::Hist, KernelKind::Seq] {
            assert_eq!(
                lazy.kernel(k).trace,
                warm.kernel(k).trace,
                "{}: prewarmed cache must be byte-identical",
                k.name()
            );
        }
    }

    #[test]
    fn queue_benchmark_runs_identical_schedules() {
        let qb = queue_benchmark(5_000, 128);
        assert!(qb.ops > 10_000, "push+pop on both sides");
        assert!(qb.heap_events_per_sec > 0.0);
        assert!(qb.calendar_events_per_sec > 0.0);
        assert!(qb.ratio > 0.0);
    }

    #[test]
    fn row_formatting_handles_missing_stats() {
        let row = stats_row("X", None);
        assert!(row.contains('-'));
        let row = stats_row("Y", Stats::of([1.0, 2.0]));
        assert!(row.starts_with('Y'));
    }
}
