//! Shared experiment-harness code for the `repro` binary and the
//! Criterion benches: cached kernel/AIRSHED runs and table formatting.
//!
//! The experiment index lives in DESIGN.md §4; `repro --help` lists the
//! experiment ids. Paper-vs-measured numbers are recorded in
//! EXPERIMENTS.md.

pub mod scan;

pub use scan::{
    materialized_scan, streamed_scan, ScanConfig, ScanOutcome, MATRIX_BASE_NS, MATRIX_SCALES,
    SCAN_CHUNK_FRAMES,
};

use fxnet::apps::airshed::AirshedParams;
use fxnet::trace::{
    average_bandwidth, binned_bandwidth, connection, host_pairs, load_store, save_store,
    Periodogram, ReportOptions, Stats, TraceFormat, TraceReport, TraceStore,
};
use fxnet::{FrameRecord, HostId, KernelKind, RunResult, SimTime, TestbedBuilder};
use fxnet_harness::Pool;
use std::collections::HashMap;

/// Lazily runs and caches the measured programs for one harness process.
pub struct Experiments {
    /// Outer-iteration divisor (1 = full paper scale).
    pub div: usize,
    /// AIRSHED hours (paper: 100).
    pub hours: usize,
    /// Output directory for series/spectrum files.
    pub out_dir: std::path::PathBuf,
    seed: u64,
    telemetry: bool,
    shards: usize,
    cache: Option<TraceFormat>,
    kernels: HashMap<&'static str, RunResult<u64>>,
    airshed: Option<RunResult<u64>>,
    stores: HashMap<&'static str, TraceStore>,
    airshed_cols: Option<TraceStore>,
}

impl Experiments {
    /// A harness writing into `out_dir`, scaling iteration counts by
    /// `1/div` and AIRSHED to `hours`.
    pub fn new(div: usize, hours: usize, out_dir: impl Into<std::path::PathBuf>) -> Experiments {
        Experiments {
            div: div.max(1),
            hours: hours.max(1),
            out_dir: out_dir.into(),
            seed: 1998,
            telemetry: false,
            shards: 1,
            cache: None,
            kernels: HashMap::new(),
            airshed: None,
            stores: HashMap::new(),
            airshed_cols: None,
        }
    }

    /// Persist every simulated trace as a cache artifact under
    /// `out/cache/` in `format`, and serve later
    /// [`Experiments::kernel_store`] / [`Experiments::airshed_store`]
    /// calls from a valid artifact instead of re-simulating. File names
    /// key the program, scale, and seed; binary artifacts additionally
    /// carry the format version header, so bumping
    /// `fxnet_trace::io::TRACE_VERSION` invalidates every cached trace
    /// (the harness re-simulates and overwrites). Loading is skipped
    /// while telemetry is on: a cached trace cannot carry spans.
    pub fn with_trace_cache(mut self, format: TraceFormat) -> Experiments {
        self.cache = Some(format);
        self
    }

    /// Collect telemetry (phase spans + counter registry) on every run.
    /// Must be set before the first run is cached; the packet traces are
    /// identical either way.
    pub fn with_telemetry(mut self, on: bool) -> Experiments {
        self.telemetry = on;
        self
    }

    /// Override the simulation seed (default 1998, the paper's year).
    /// Must be set before the first run is cached: same seed, same
    /// byte-identical traces and tables.
    pub fn with_seed(mut self, seed: u64) -> Experiments {
        self.seed = seed;
        self
    }

    /// The simulation seed runs are made with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Set the DES shard count every run is made with (default 1, the
    /// legacy sequential loop). Only multi-segment topologies partition;
    /// the paper-path shared bus ignores it, and traces are
    /// byte-identical at any count. Must be set before the first run is
    /// cached.
    pub fn with_shards(mut self, shards: usize) -> Experiments {
        self.shards = shards.max(1);
        self
    }

    /// The DES shard count runs are made with.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Fill the run cache for `kernels` (and AIRSHED if `airshed`) by
    /// fanning the missing simulations across `pool`.
    ///
    /// Each program is an independent run of a fixed `(seed, config)`,
    /// so warming them in parallel yields byte-identical caches to the
    /// lazy serial fills — the analyses that later read the cache print
    /// the same tables and write the same artifacts regardless of
    /// `pool.jobs()`. Only the `[run]` progress lines on stderr may
    /// interleave differently.
    pub fn prewarm(&mut self, pool: &Pool, kernels: &[KernelKind], airshed: bool) {
        enum Done {
            Kernel(&'static str, RunResult<u64>),
            Airshed(RunResult<u64>),
        }
        let mut jobs: Vec<Option<KernelKind>> = kernels
            .iter()
            .filter(|k| !self.kernels.contains_key(k.name()))
            .map(|k| Some(*k))
            .collect();
        if airshed && self.airshed.is_none() {
            jobs.push(None); // None = the AIRSHED run
        }
        if jobs.is_empty() {
            return;
        }
        // Longest-job-first keeps the pool's makespan near the longest
        // single run (AIRSHED, then the talkative kernels). Results are
        // keyed by program, so schedule order cannot affect them.
        let weight = |j: &Option<KernelKind>| match j {
            None => 0,
            Some(KernelKind::T2dfft) => 1,
            Some(KernelKind::Fft2d) => 2,
            Some(KernelKind::Seq) => 3,
            Some(KernelKind::Sor) => 4,
            Some(KernelKind::Hist) => 5,
        };
        jobs.sort_by_key(weight);
        let (div, hours, seed, telemetry, shards) =
            (self.div, self.hours, self.seed, self.telemetry, self.shards);
        let done = pool.map(jobs, |job| {
            let t0 = std::time::Instant::now();
            let tb = TestbedBuilder::paper()
                .seed(seed)
                .telemetry_enabled(telemetry)
                .shards(shards)
                .build();
            let (name, run) = match job {
                Some(k) => (
                    k.name(),
                    tb.run_kernel(k, div)
                        .unwrap_or_else(|e| panic!("{}: {e}", k.name())),
                ),
                None => {
                    let params = AirshedParams {
                        hours,
                        ..AirshedParams::paper()
                    };
                    (
                        "AIRSHED",
                        tb.run_airshed(params)
                            .unwrap_or_else(|e| panic!("AIRSHED: {e}")),
                    )
                }
            };
            eprintln!(
                "[run] {name}: {} frames, {:.1} s simulated, {:.1} s wall",
                run.trace.len(),
                run.finished_at.as_secs_f64(),
                t0.elapsed().as_secs_f64()
            );
            match job {
                Some(k) => Done::Kernel(k.name(), run),
                None => Done::Airshed(run),
            }
        });
        for d in done {
            match d {
                Done::Kernel(name, run) => {
                    self.save_cached_trace(name, &run.trace);
                    self.kernels.insert(name, run);
                }
                Done::Airshed(run) => {
                    self.save_cached_trace("AIRSHED", &run.trace);
                    self.airshed = Some(run);
                }
            }
        }
    }

    /// Like [`Experiments::prewarm`], but splits the programs by what
    /// their experiments actually read: `runs`/`airshed_run` need the
    /// full [`RunResult`] (wall clock, Ethernet counters, telemetry) and
    /// always simulate; `stores`/`airshed_store` only analyze the trace,
    /// so a valid cache artifact satisfies them without a simulation.
    /// Cache misses (absent, corrupt, or version-invalidated files) fall
    /// back to simulating through the pool.
    pub fn prewarm_suite(
        &mut self,
        pool: &Pool,
        runs: &[KernelKind],
        stores: &[KernelKind],
        airshed_run: bool,
        airshed_store: bool,
    ) {
        let mut sim: Vec<KernelKind> = runs.to_vec();
        for k in stores {
            if sim.contains(k)
                || self.kernels.contains_key(k.name())
                || self.stores.contains_key(k.name())
            {
                continue;
            }
            match self.load_cached_store(k.name()) {
                Some(s) => {
                    self.stores.insert(k.name(), s);
                }
                None => sim.push(*k),
            }
        }
        let mut sim_airshed = airshed_run;
        if airshed_store && !sim_airshed && self.airshed.is_none() && self.airshed_cols.is_none() {
            match self.load_cached_store("AIRSHED") {
                Some(s) => self.airshed_cols = Some(s),
                None => sim_airshed = true,
            }
        }
        self.prewarm(pool, &sim, sim_airshed);
    }

    /// The measured trace of a kernel (cached).
    pub fn kernel(&mut self, k: KernelKind) -> &RunResult<u64> {
        if !self.kernels.contains_key(k.name()) {
            eprintln!("[run] {} (paper scale / {}) ...", k.name(), self.div);
            let t0 = std::time::Instant::now();
            let run = TestbedBuilder::paper()
                .seed(self.seed)
                .telemetry_enabled(self.telemetry)
                .shards(self.shards)
                .build()
                .run_kernel(k, self.div)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            eprintln!(
                "[run] {}: {} frames, {:.1} s simulated, {:.1} s wall",
                k.name(),
                run.trace.len(),
                run.finished_at.as_secs_f64(),
                t0.elapsed().as_secs_f64()
            );
            self.save_cached_trace(k.name(), &run.trace);
            self.kernels.insert(k.name(), run);
        }
        &self.kernels[k.name()]
    }

    /// The measured AIRSHED trace (cached).
    pub fn airshed(&mut self) -> &RunResult<u64> {
        if self.airshed.is_none() {
            let params = AirshedParams {
                hours: self.hours,
                ..AirshedParams::paper()
            };
            eprintln!("[run] AIRSHED ({} hours) ...", self.hours);
            let t0 = std::time::Instant::now();
            let run = TestbedBuilder::paper()
                .seed(self.seed)
                .telemetry_enabled(self.telemetry)
                .shards(self.shards)
                .build()
                .run_airshed(params)
                .unwrap_or_else(|e| panic!("AIRSHED: {e}"));
            eprintln!(
                "[run] AIRSHED: {} frames, {:.1} s simulated, {:.1} s wall",
                run.trace.len(),
                run.finished_at.as_secs_f64(),
                t0.elapsed().as_secs_f64()
            );
            self.save_cached_trace("AIRSHED", &run.trace);
            self.airshed = Some(run);
        }
        self.airshed.as_ref().expect("just initialized")
    }

    /// Columnar store of a kernel's trace (cached): built from the
    /// in-memory run if one exists, else loaded from a valid trace-cache
    /// artifact, else simulated fresh.
    pub fn kernel_store(&mut self, k: KernelKind) -> &TraceStore {
        if !self.stores.contains_key(k.name()) {
            let store = if let Some(run) = self.kernels.get(k.name()) {
                TraceStore::from_records(&run.trace)
            } else if let Some(s) = self.load_cached_store(k.name()) {
                s
            } else {
                TraceStore::from_records(&self.kernel(k).trace)
            };
            self.stores.insert(k.name(), store);
        }
        &self.stores[k.name()]
    }

    /// Columnar store of the AIRSHED trace (cached; same fallback chain
    /// as [`Experiments::kernel_store`]).
    pub fn airshed_store(&mut self) -> &TraceStore {
        if self.airshed_cols.is_none() {
            let store = if let Some(run) = self.airshed.as_ref() {
                TraceStore::from_records(&run.trace)
            } else if let Some(s) = self.load_cached_store("AIRSHED") {
                s
            } else {
                TraceStore::from_records(&self.airshed().trace)
            };
            self.airshed_cols = Some(store);
        }
        self.airshed_cols.as_ref().expect("just initialized")
    }

    /// A store already materialized by [`Experiments::kernel_store`],
    /// [`Experiments::airshed_store`], or
    /// [`Experiments::prewarm_suite`], by program name (`"AIRSHED"` for
    /// the AIRSHED run). Takes `&self`, so several programs' views can
    /// be alive at once.
    pub fn store_of(&self, name: &str) -> Option<&TraceStore> {
        if name == "AIRSHED" {
            self.airshed_cols.as_ref()
        } else {
            self.stores.get(name)
        }
    }

    /// The representative host pair the paper analyzes for a kernel, if
    /// the pattern has one (§6.1): an arbitrary pair for the symmetric
    /// patterns, a cross-partition pair for T2DFFT, none for SEQ/HIST.
    pub fn representative_pair(k: KernelKind) -> Option<(HostId, HostId)> {
        match k {
            KernelKind::Sor => Some((HostId(1), HostId(2))),
            KernelKind::Fft2d => Some((HostId(0), HostId(1))),
            KernelKind::T2dfft => Some((HostId(0), HostId(2))),
            KernelKind::Seq | KernelKind::Hist => None,
        }
    }

    /// The representative connection's frames, materialized (§6.1).
    /// Prefer [`Experiments::representative_pair`] plus
    /// [`TraceStore::connection`] for the zero-copy view.
    pub fn representative_connection(&mut self, k: KernelKind) -> Option<Vec<FrameRecord>> {
        let (src, dst) = Self::representative_pair(k)?;
        Some(self.kernel_store(k).connection(src, dst).to_records())
    }

    /// Cache-artifact path for a program: name, scale, and seed key the
    /// file; the extension selects the on-disk format.
    fn cache_path(&self, name: &str) -> Option<std::path::PathBuf> {
        let fmt = self.cache?;
        let scale = if name == "AIRSHED" {
            format!("h{}", self.hours)
        } else {
            format!("d{}", self.div)
        };
        Some(self.out_dir.join("cache").join(format!(
            "{name}.{scale}.s{}.{}",
            self.seed,
            fmt.extension()
        )))
    }

    /// Load a cached trace if the artifact exists and is valid. A bad
    /// magic, a corrupt payload, or — the deliberate invalidation path —
    /// a version header this build does not support all count as a miss,
    /// and the caller re-simulates.
    fn load_cached_store(&self, name: &str) -> Option<TraceStore> {
        if self.telemetry {
            return None;
        }
        let path = self.cache_path(name)?;
        match load_store(&path) {
            Ok(s) => {
                eprintln!("[cache] {name}: {} frames from {}", s.len(), path.display());
                Some(s)
            }
            Err(e) => {
                if path.exists() {
                    eprintln!(
                        "[cache] {name}: re-simulating, {} invalid: {e}",
                        path.display()
                    );
                }
                None
            }
        }
    }

    fn save_cached_trace(&self, name: &str, trace: &[FrameRecord]) {
        let Some(path) = self.cache_path(name) else {
            return;
        };
        std::fs::create_dir_all(path.parent().expect("cache dir")).expect("create cache dir");
        save_store(&path, &TraceStore::from_records(trace)).expect("write trace cache artifact");
        eprintln!("[cache] {name}: wrote {}", path.display());
    }

    /// Deterministic telemetry JSON (spans + counter registry) for every
    /// cached run, keyed by program name. Runs made without telemetry
    /// are omitted.
    pub fn telemetry_value(&self) -> serde::Value {
        let mut names: Vec<&&str> = self.kernels.keys().collect();
        names.sort();
        let mut entries: Vec<(String, serde::Value)> = names
            .into_iter()
            .filter_map(|name| {
                let tel = self.kernels[*name].telemetry.as_ref()?;
                Some((name.to_string(), tel.to_value()))
            })
            .collect();
        if let Some(tel) = self.airshed.as_ref().and_then(|r| r.telemetry.as_ref()) {
            entries.push(("AIRSHED".to_string(), tel.to_value()));
        }
        serde::Value::Object(entries)
    }

    /// Ensure the output directory exists and return a path inside it.
    pub fn out_path(&self, name: &str) -> std::path::PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create output dir");
        self.out_dir.join(name)
    }

    /// Every cached full run — kernels in sorted name order, then
    /// AIRSHED — for uniform metrics snapshots over whatever the
    /// selected experiments pulled through the cache.
    pub fn cached_runs(&self) -> Vec<(&str, &RunResult<u64>)> {
        let mut names: Vec<&&str> = self.kernels.keys().collect();
        names.sort();
        let mut out: Vec<(&str, &RunResult<u64>)> = names
            .into_iter()
            .map(|name| (*name, &self.kernels[*name]))
            .collect();
        if let Some(r) = &self.airshed {
            out.push(("AIRSHED", r));
        }
        out
    }
}

/// Outcome of an [`append_history_line`] call.
pub struct HistoryAppend {
    /// The ledger was absent or empty and got seeded with the header.
    pub created: bool,
    /// Malformed (non-comment, non-JSON) lines dropped from the
    /// existing file before appending.
    pub dropped: usize,
}

/// Header comment seeding a fresh bench-history ledger.
pub const HISTORY_HEADER: &str =
    "# fxnet bench history: one JSON object per run; `#` lines are comments";

/// Append one JSON line to the bench-history ledger at `path`.
///
/// An absent or empty ledger is seeded with [`HISTORY_HEADER`] first.
/// Malformed lines already in the file — e.g. a truncated tail left by
/// a killed run — are dropped (counted in [`HistoryAppend::dropped`])
/// rather than corrupting the append, so the new line always lands on
/// a ledger whose every non-comment line parses as JSON.
pub fn append_history_line(
    path: &std::path::Path,
    json_line: &str,
) -> std::io::Result<HistoryAppend> {
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let created = existing.trim().is_empty();
    let mut out = String::new();
    let mut dropped = 0usize;
    if created {
        out.push_str(HISTORY_HEADER);
        out.push('\n');
    } else {
        for line in existing.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') || serde::json::parse(t).is_ok() {
                out.push_str(line);
                out.push('\n');
            } else {
                dropped += 1;
            }
        }
    }
    out.push_str(json_line.trim_end());
    out.push('\n');
    std::fs::write(path, out)?;
    Ok(HistoryAppend { created, dropped })
}

/// Events/sec of the calendar `EventQueue` against the reference
/// `BinaryHeapQueue`, driven by one identical simulator-shaped schedule
/// (mostly MAC/segment-scale offsets inside the ring horizon, a few
/// RTO-scale timers in the overflow).
pub struct QueueBench {
    /// Pushes + pops performed per engine.
    pub ops: u64,
    /// Steady-state pending events (the hold pattern).
    pub pending: usize,
    pub heap_events_per_sec: f64,
    pub calendar_events_per_sec: f64,
    /// `calendar_events_per_sec / heap_events_per_sec`.
    pub ratio: f64,
}

/// Measure both event-queue implementations on the same deterministic
/// schedule: prefill `pending` events, then hold that population for
/// `ops` pop-push rounds, then drain. Best of three rounds per engine.
pub fn queue_benchmark(ops: usize, pending: usize) -> QueueBench {
    use fxnet::sim::{BinaryHeapQueue, EventQueue};
    use fxnet::SimTime;

    // One shared offset schedule (xorshift64*; fixed seed): ~70 %
    // sub-frame MAC/segment offsets, ~25 % spanning a few ring buckets,
    // ~5 % delayed-ACK/RTO-scale timers that land in the overflow.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let offsets: Vec<u64> = (0..ops + pending)
        .map(|_| {
            let r = next();
            match r % 100 {
                0..=69 => 100 + r % 57_600,        // bit .. min-frame time
                70..=94 => r % 1_200_000,          // up to one max frame
                _ => 200_000_000 + r % 50_000_000, // delayed-ACK / RTO scale
            }
        })
        .collect();

    fn drive<Q>(
        offsets: &[u64],
        pending: usize,
        push: impl Fn(&mut Q, SimTime, u64),
        pop: impl Fn(&mut Q) -> Option<(SimTime, u64)>,
        mut q: Q,
    ) -> (u64, u64, std::time::Duration) {
        let t0 = std::time::Instant::now();
        let mut ops_done = 0u64;
        let mut checksum = 0u64;
        let mut clock = 0u64;
        for (i, &off) in offsets.iter().enumerate() {
            if i >= pending {
                let (t, e) = pop(&mut q).expect("hold pattern keeps the queue non-empty");
                clock = clock.max(t.as_nanos());
                checksum = checksum.wrapping_add(t.as_nanos() ^ e);
                ops_done += 1;
            }
            push(&mut q, SimTime::from_nanos(clock + off), i as u64);
            ops_done += 1;
        }
        while let Some((t, e)) = pop(&mut q) {
            checksum = checksum.wrapping_add(t.as_nanos() ^ e);
            ops_done += 1;
        }
        (ops_done, checksum, t0.elapsed())
    }

    let mut heap_best = f64::INFINITY;
    let mut cal_best = f64::INFINITY;
    let mut total_ops = 0u64;
    let mut checks = (0u64, 0u64);
    for _ in 0..3 {
        let (n, ck, dt) = drive(
            &offsets,
            pending,
            |q: &mut BinaryHeapQueue<u64>, t, e| q.push(t, e),
            |q| q.pop(),
            BinaryHeapQueue::new(),
        );
        heap_best = heap_best.min(dt.as_secs_f64());
        total_ops = n;
        checks.0 = ck;
        let (_, ck, dt) = drive(
            &offsets,
            pending,
            |q: &mut EventQueue<u64>, t, e| q.push(t, e),
            |q| q.pop(),
            EventQueue::new(),
        );
        cal_best = cal_best.min(dt.as_secs_f64());
        checks.1 = ck;
    }
    assert_eq!(
        checks.0, checks.1,
        "both engines must pop the identical schedule"
    );
    let heap_eps = total_ops as f64 / heap_best;
    let cal_eps = total_ops as f64 / cal_best;
    QueueBench {
        ops: total_ops,
        pending,
        heap_events_per_sec: heap_eps,
        calendar_events_per_sec: cal_eps,
        ratio: cal_eps / heap_eps,
    }
}

/// Format one table row of size/interarrival statistics.
pub fn stats_row(label: &str, s: Option<Stats>) -> String {
    match s {
        Some(s) => format!(
            "{label:<10} {:>8.1} {:>9.1} {:>9.1} {:>9.1}",
            s.min, s.max, s.avg, s.sd
        ),
        None => format!("{label:<10} {:>8} {:>9} {:>9} {:>9}", "-", "-", "-", "-"),
    }
}

/// Format one average-bandwidth row (KB/s).
pub fn bandwidth_row(label: &str, trace: &[FrameRecord]) -> String {
    bandwidth_row_bw(label, average_bandwidth(trace))
}

/// Format one average-bandwidth row from an already-computed value.
pub fn bandwidth_row_bw(label: &str, bw: Option<f64>) -> String {
    match bw {
        Some(bw) => format!("{label:<10} {:>10.1}", bw / 1000.0),
        None => format!("{label:<10} {:>10}", "-"),
    }
}

// --------------------------------------------------------------------
// The analysis suite: one program's full offline analysis, rendered to
// one deterministic string. The AoS and columnar paths fill the same
// struct through the same render, so "byte-identical output" reduces to
// the bitwise-identical numbers the equivalence tests already assert.

/// Longest periodogram input the suite allows. The report and spike
/// analyses clamp their bin so the series stays under this length —
/// the FFT's cost is path-independent, and letting a 10-hour AIRSHED
/// trace expand to millions of bins would only drown the signal the
/// probe measures (trace passes and connection selection).
const SUITE_MAX_BINS: u64 = 1 << 12;

fn suite_opts(span: SimTime) -> ReportOptions {
    let mut opts = ReportOptions::default();
    let bins = span.as_nanos() / opts.bin.as_nanos().max(1);
    if bins > SUITE_MAX_BINS {
        opts.bin = SimTime::from_nanos(span.as_nanos().div_ceil(SUITE_MAX_BINS));
    }
    opts
}

struct SuiteConnRow {
    src: u32,
    dst: u32,
    frames: usize,
    sizes: Option<Stats>,
    avg_bw: Option<f64>,
}

struct Suite {
    name: String,
    frames: usize,
    bin_ns: u64,
    sizes: Option<Stats>,
    inter: Option<Stats>,
    avg_bw: Option<f64>,
    bursts: usize,
    flatness: Option<f64>,
    spikes: Vec<(f64, f64)>,
    report: String,
    conns: Vec<SuiteConnRow>,
}

impl Suite {
    fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("## {} — {} frames\n", self.name, self.frames);
        writeln!(out, "bin {} ns", self.bin_ns).expect("write");
        writeln!(out, "{}", stats_row("sizes B", self.sizes)).expect("write");
        writeln!(out, "{}", stats_row("inter ms", self.inter)).expect("write");
        writeln!(out, "{}", bandwidth_row_bw("avg KB/s", self.avg_bw)).expect("write");
        writeln!(out, "bursts {}", self.bursts).expect("write");
        match self.flatness {
            Some(f) => writeln!(out, "flatness {f:.6}").expect("write"),
            None => writeln!(out, "flatness -").expect("write"),
        }
        for (hz, power) in &self.spikes {
            writeln!(out, "spike {hz:.4} Hz power {power:.6e}").expect("write");
        }
        writeln!(out, "{}", self.report).expect("write");
        writeln!(out, "### connections").expect("write");
        for c in &self.conns {
            writeln!(
                out,
                "{:>2}->{:<2} {:>7}  {}  {}",
                c.src,
                c.dst,
                c.frames,
                stats_row("sz", c.sizes),
                bandwidth_row_bw("bw", c.avg_bw)
            )
            .expect("write");
        }
        out
    }
}

/// The suite on the legacy array-of-structs path: every kernel walks
/// the record slice, and each per-connection analysis first *copies*
/// its frames out with [`fxnet::trace::connection`] — the baseline the
/// columnar engine is measured against.
pub fn analysis_suite_aos(name: &str, trace: &[FrameRecord]) -> String {
    let span = trace
        .iter()
        .fold(None, |acc: Option<(SimTime, SimTime)>, r| {
            Some(match acc {
                None => (r.time, r.time),
                Some((lo, hi)) => (lo.min(r.time), hi.max(r.time)),
            })
        })
        .map_or(SimTime::ZERO, |(lo, hi)| hi.saturating_sub(lo));
    let opts = suite_opts(span);
    let binned = binned_bandwidth(trace, opts.bin);
    let spec = (!binned.is_empty()).then(|| Periodogram::compute(&binned, opts.bin));
    // One slice pass per derived quantity — the legacy API has nothing
    // to fuse them with — and a filtered copy per host pair.
    let report = TraceReport::analyze_with_spectrum(name, trace, &opts, spec.as_ref());
    let conns = host_pairs(trace)
        .into_iter()
        .map(|((s, d), n)| {
            let c = connection(trace, s, d); // the copy the index removes
            SuiteConnRow {
                src: s.0,
                dst: d.0,
                frames: n,
                sizes: Stats::packet_sizes(&c),
                avg_bw: average_bandwidth(&c),
            }
        })
        .collect();
    suite_from(name, trace.len(), &opts, &report, spec.as_ref(), conns).render()
}

/// The suite on the columnar path: fused single-pass view kernels over
/// the store's columns, zero-copy connection views from the index, and
/// the one-pass [`TraceReport::analyze_view`]. Output is byte-identical
/// to [`analysis_suite_aos`] on the same frames.
pub fn analysis_suite_columnar(name: &str, store: &TraceStore) -> String {
    let v = store.view();
    let span = v
        .time_bounds()
        .map_or(SimTime::ZERO, |(lo, hi)| hi.saturating_sub(lo));
    let opts = suite_opts(span);
    let binned = v.binned_bandwidth(opts.bin);
    let spec = (!binned.is_empty()).then(|| Periodogram::compute(&binned, opts.bin));
    // One fused column pass for every aggregate quantity, and an index
    // lookup (no copy, no scan) per host pair.
    let report = TraceReport::analyze_view_with_spectrum(name, v, &opts, spec.as_ref());
    let conns = store
        .host_pairs()
        .into_iter()
        .map(|((s, d), n)| {
            let cv = store.connection(s, d); // an index lookup, no copy
            SuiteConnRow {
                src: s.0,
                dst: d.0,
                frames: n,
                sizes: cv.packet_sizes(),
                avg_bw: cv.average_bandwidth(),
            }
        })
        .collect();
    suite_from(name, v.len(), &opts, &report, spec.as_ref(), conns).render()
}

/// Fill the [`Suite`] from a computed report + spectrum. Both suite
/// paths route through this, so byte-identical output reduces to the
/// bitwise-identical numbers the equivalence tests already prove.
fn suite_from(
    name: &str,
    frames: usize,
    opts: &ReportOptions,
    report: &TraceReport,
    spec: Option<&Periodogram>,
    conns: Vec<SuiteConnRow>,
) -> Suite {
    Suite {
        name: name.to_string(),
        frames,
        bin_ns: opts.bin.as_nanos(),
        sizes: report.sizes,
        inter: report.interarrivals_ms,
        avg_bw: report.avg_bandwidth,
        bursts: report.bursts.as_ref().map_or(0, |b| b.count),
        flatness: spec.map(Periodogram::flatness),
        spikes: spec
            .map(|p| {
                p.top_spikes(6, 0.25)
                    .into_iter()
                    .map(|s| (s.freq, s.power))
                    .collect()
            })
            .unwrap_or_default(),
        report: report.markdown_row(),
        conns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_caches_runs() {
        let mut e = Experiments::new(100, 1, std::env::temp_dir().join("fxnet-test-out"));
        let n1 = e.kernel(KernelKind::Hist).trace.len();
        let n2 = e.kernel(KernelKind::Hist).trace.len();
        assert_eq!(n1, n2);
        assert!(n1 > 0);
    }

    #[test]
    fn representative_connections_follow_the_paper() {
        let mut e = Experiments::new(100, 1, std::env::temp_dir().join("fxnet-test-out"));
        assert!(e.representative_connection(KernelKind::Seq).is_none());
        assert!(e.representative_connection(KernelKind::Hist).is_none());
        let sor = e.representative_connection(KernelKind::Sor).unwrap();
        assert!(sor.iter().all(|r| r.src == HostId(1) && r.dst == HostId(2)));
    }

    #[test]
    fn prewarm_matches_the_lazy_serial_fill() {
        let out = std::env::temp_dir().join("fxnet-test-out");
        let mut lazy = Experiments::new(100, 1, &out);
        let mut warm = Experiments::new(100, 1, &out);
        warm.prewarm(&Pool::new(3), &[KernelKind::Hist, KernelKind::Seq], false);
        for k in [KernelKind::Hist, KernelKind::Seq] {
            assert_eq!(
                lazy.kernel(k).trace,
                warm.kernel(k).trace,
                "{}: prewarmed cache must be byte-identical",
                k.name()
            );
        }
    }

    #[test]
    fn queue_benchmark_runs_identical_schedules() {
        let qb = queue_benchmark(5_000, 128);
        assert!(qb.ops > 10_000, "push+pop on both sides");
        assert!(qb.heap_events_per_sec > 0.0);
        assert!(qb.calendar_events_per_sec > 0.0);
        assert!(qb.ratio > 0.0);
    }

    #[test]
    fn row_formatting_handles_missing_stats() {
        let row = stats_row("X", None);
        assert!(row.contains('-'));
        let row = stats_row("Y", Stats::of([1.0, 2.0]));
        assert!(row.starts_with('Y'));
    }

    #[test]
    fn analysis_suites_are_byte_identical_and_survive_both_formats() {
        let dir = std::env::temp_dir().join(format!("fxnet-suite-{}", std::process::id()));
        let mut e = Experiments::new(100, 1, &dir);
        let trace = e.kernel(KernelKind::Hist).trace.clone();
        let store = TraceStore::from_records(&trace);
        let aos = analysis_suite_aos("HIST", &trace);
        let col = analysis_suite_columnar("HIST", &store);
        assert_eq!(aos, col, "AoS and columnar suites must render identically");
        assert!(aos.contains("### connections"));

        // Round trip through both on-disk formats; the reloaded suites
        // must also match byte for byte.
        std::fs::create_dir_all(&dir).expect("create dir");
        let txt = dir.join("suite.trace");
        let bin = dir.join("suite.fxb");
        save_store(&txt, &store).expect("save text");
        save_store(&bin, &store).expect("save binary");
        assert!(
            std::fs::metadata(&bin).expect("bin meta").len()
                < std::fs::metadata(&txt).expect("txt meta").len(),
            "binary trace must be smaller than text"
        );
        let from_txt = load_store(&txt).expect("load text");
        let from_bin = load_store(&bin).expect("load binary");
        assert_eq!(from_txt, store);
        assert_eq!(from_bin, store);
        assert_eq!(analysis_suite_columnar("HIST", &from_txt), aos);
        assert_eq!(analysis_suite_columnar("HIST", &from_bin), aos);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_cache_serves_stores_and_version_bump_invalidates() {
        let dir = std::env::temp_dir().join(format!("fxnet-cachetest-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut a = Experiments::new(100, 1, &dir).with_trace_cache(TraceFormat::Binary);
        let fresh = a.kernel_store(KernelKind::Hist).clone();
        let path = dir.join("cache").join("HIST.d100.s1998.fxb");
        assert!(path.exists(), "the run must leave a cache artifact");

        // Prove the cache is actually read: doctor the artifact to a
        // truncated trace and watch a fresh harness serve the doctored
        // frames without simulating.
        let doctored = TraceStore::from_records(&fresh.to_records()[..10]);
        save_store(&path, &doctored).expect("doctor cache");
        let mut b = Experiments::new(100, 1, &dir).with_trace_cache(TraceFormat::Binary);
        assert_eq!(*b.kernel_store(KernelKind::Hist), doctored);
        let mut warm = Experiments::new(100, 1, &dir).with_trace_cache(TraceFormat::Binary);
        warm.prewarm_suite(&Pool::serial(), &[], &[KernelKind::Hist], false, false);
        assert_eq!(*warm.store_of("HIST").expect("prewarmed"), doctored);

        // Bump the version header: the artifact must be rejected, the
        // harness re-simulates, and the rewritten artifact is valid.
        let mut bytes = std::fs::read(&path).expect("read cache");
        bytes[4] = bytes[4].wrapping_add(1);
        std::fs::write(&path, &bytes).expect("rewrite cache");
        let mut c = Experiments::new(100, 1, &dir).with_trace_cache(TraceFormat::Binary);
        assert_eq!(
            *c.kernel_store(KernelKind::Hist),
            fresh,
            "a version-invalidated artifact must fall back to the simulation"
        );
        assert_eq!(
            load_store(&path).expect("rewritten artifact"),
            fresh,
            "the re-simulation must overwrite the stale artifact"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn history_append_seeds_an_absent_or_empty_ledger() {
        let dir = std::env::temp_dir().join(format!("fxnet-hist-seed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_history.jsonl");
        std::fs::remove_file(&path).ok();
        let a = append_history_line(&path, "{\"run\":1}").unwrap();
        assert!(a.created);
        assert_eq!(a.dropped, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, format!("{HISTORY_HEADER}\n{{\"run\":1}}\n"));
        // An empty file seeds too.
        std::fs::write(&path, "").unwrap();
        assert!(append_history_line(&path, "{\"run\":2}").unwrap().created);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(HISTORY_HEADER));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn history_append_drops_malformed_tails_and_keeps_good_lines() {
        let dir = std::env::temp_dir().join(format!("fxnet-hist-mal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_history.jsonl");
        std::fs::write(
            &path,
            format!("{HISTORY_HEADER}\n{{\"run\":1}}\n{{\"run\":2}}\n{{\"trunc"),
        )
        .unwrap();
        let a = append_history_line(&path, "{\"run\":3}").unwrap();
        assert!(!a.created);
        assert_eq!(a.dropped, 1, "the truncated tail is dropped");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            format!("{HISTORY_HEADER}\n{{\"run\":1}}\n{{\"run\":2}}\n{{\"run\":3}}\n")
        );
        // Every non-comment line of the repaired ledger parses as JSON.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(serde::json::parse(line).is_ok(), "{line}");
        }
        // A second append is a pure append: nothing created or dropped.
        let b = append_history_line(&path, "{\"run\":4}").unwrap();
        assert!(!b.created);
        assert_eq!(b.dropped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn representative_pairs_match_the_materialized_connections() {
        let mut e = Experiments::new(100, 1, std::env::temp_dir().join("fxnet-test-out"));
        assert!(Experiments::representative_pair(KernelKind::Seq).is_none());
        let (src, dst) = Experiments::representative_pair(KernelKind::Sor).unwrap();
        let conn = e.representative_connection(KernelKind::Sor).unwrap();
        assert_eq!(
            e.kernel_store(KernelKind::Sor)
                .connection(src, dst)
                .to_records(),
            conn
        );
    }
}
