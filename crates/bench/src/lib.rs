//! Shared experiment-harness code for the `repro` binary and the
//! Criterion benches: cached kernel/AIRSHED runs and table formatting.
//!
//! The experiment index lives in DESIGN.md §4; `repro --help` lists the
//! experiment ids. Paper-vs-measured numbers are recorded in
//! EXPERIMENTS.md.

use fxnet::apps::airshed::AirshedParams;
use fxnet::trace::{average_bandwidth, connection, Stats};
use fxnet::{FrameRecord, HostId, KernelKind, RunResult, Testbed};
use std::collections::HashMap;

/// Lazily runs and caches the measured programs for one harness process.
pub struct Experiments {
    /// Outer-iteration divisor (1 = full paper scale).
    pub div: usize,
    /// AIRSHED hours (paper: 100).
    pub hours: usize,
    /// Output directory for series/spectrum files.
    pub out_dir: std::path::PathBuf,
    seed: u64,
    telemetry: bool,
    kernels: HashMap<&'static str, RunResult<u64>>,
    airshed: Option<RunResult<u64>>,
}

impl Experiments {
    /// A harness writing into `out_dir`, scaling iteration counts by
    /// `1/div` and AIRSHED to `hours`.
    pub fn new(div: usize, hours: usize, out_dir: impl Into<std::path::PathBuf>) -> Experiments {
        Experiments {
            div: div.max(1),
            hours: hours.max(1),
            out_dir: out_dir.into(),
            seed: 1998,
            telemetry: false,
            kernels: HashMap::new(),
            airshed: None,
        }
    }

    /// Collect telemetry (phase spans + counter registry) on every run.
    /// Must be set before the first run is cached; the packet traces are
    /// identical either way.
    pub fn with_telemetry(mut self, on: bool) -> Experiments {
        self.telemetry = on;
        self
    }

    /// Override the simulation seed (default 1998, the paper's year).
    /// Must be set before the first run is cached: same seed, same
    /// byte-identical traces and tables.
    pub fn with_seed(mut self, seed: u64) -> Experiments {
        self.seed = seed;
        self
    }

    /// The simulation seed runs are made with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The measured trace of a kernel (cached).
    pub fn kernel(&mut self, k: KernelKind) -> &RunResult<u64> {
        let div = self.div;
        let seed = self.seed;
        let telemetry = self.telemetry;
        self.kernels.entry(k.name()).or_insert_with(|| {
            eprintln!("[run] {} (paper scale / {div}) ...", k.name());
            let t0 = std::time::Instant::now();
            let run = Testbed::paper()
                .with_seed(seed)
                .with_telemetry(telemetry)
                .run_kernel(k, div);
            eprintln!(
                "[run] {}: {} frames, {:.1} s simulated, {:.1} s wall",
                k.name(),
                run.trace.len(),
                run.finished_at.as_secs_f64(),
                t0.elapsed().as_secs_f64()
            );
            run
        })
    }

    /// The measured AIRSHED trace (cached).
    pub fn airshed(&mut self) -> &RunResult<u64> {
        if self.airshed.is_none() {
            let params = AirshedParams {
                hours: self.hours,
                ..AirshedParams::paper()
            };
            eprintln!("[run] AIRSHED ({} hours) ...", self.hours);
            let t0 = std::time::Instant::now();
            let run = Testbed::paper()
                .with_seed(self.seed)
                .with_telemetry(self.telemetry)
                .run_airshed(params);
            eprintln!(
                "[run] AIRSHED: {} frames, {:.1} s simulated, {:.1} s wall",
                run.trace.len(),
                run.finished_at.as_secs_f64(),
                t0.elapsed().as_secs_f64()
            );
            self.airshed = Some(run);
        }
        self.airshed.as_ref().expect("just initialized")
    }

    /// The representative connection the paper analyzes for a kernel, if
    /// the pattern has one (§6.1): an arbitrary pair for the symmetric
    /// patterns, a cross-partition pair for T2DFFT, none for SEQ/HIST.
    pub fn representative_connection(&mut self, k: KernelKind) -> Option<Vec<FrameRecord>> {
        let (src, dst) = match k {
            KernelKind::Sor => (HostId(1), HostId(2)),
            KernelKind::Fft2d => (HostId(0), HostId(1)),
            KernelKind::T2dfft => (HostId(0), HostId(2)),
            KernelKind::Seq | KernelKind::Hist => return None,
        };
        Some(connection(&self.kernel(k).trace, src, dst))
    }

    /// Deterministic telemetry JSON (spans + counter registry) for every
    /// cached run, keyed by program name. Runs made without telemetry
    /// are omitted.
    pub fn telemetry_value(&self) -> serde::Value {
        let mut names: Vec<&&str> = self.kernels.keys().collect();
        names.sort();
        let mut entries: Vec<(String, serde::Value)> = names
            .into_iter()
            .filter_map(|name| {
                let tel = self.kernels[*name].telemetry.as_ref()?;
                Some((name.to_string(), tel.to_value()))
            })
            .collect();
        if let Some(tel) = self.airshed.as_ref().and_then(|r| r.telemetry.as_ref()) {
            entries.push(("AIRSHED".to_string(), tel.to_value()));
        }
        serde::Value::Object(entries)
    }

    /// Ensure the output directory exists and return a path inside it.
    pub fn out_path(&self, name: &str) -> std::path::PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create output dir");
        self.out_dir.join(name)
    }
}

/// Format one table row of size/interarrival statistics.
pub fn stats_row(label: &str, s: Option<Stats>) -> String {
    match s {
        Some(s) => format!(
            "{label:<10} {:>8.1} {:>9.1} {:>9.1} {:>9.1}",
            s.min, s.max, s.avg, s.sd
        ),
        None => format!("{label:<10} {:>8} {:>9} {:>9} {:>9}", "-", "-", "-", "-"),
    }
}

/// Format one average-bandwidth row (KB/s).
pub fn bandwidth_row(label: &str, trace: &[FrameRecord]) -> String {
    match average_bandwidth(trace) {
        Some(bw) => format!("{label:<10} {:>10.1}", bw / 1000.0),
        None => format!("{label:<10} {:>10}", "-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_caches_runs() {
        let mut e = Experiments::new(100, 1, std::env::temp_dir().join("fxnet-test-out"));
        let n1 = e.kernel(KernelKind::Hist).trace.len();
        let n2 = e.kernel(KernelKind::Hist).trace.len();
        assert_eq!(n1, n2);
        assert!(n1 > 0);
    }

    #[test]
    fn representative_connections_follow_the_paper() {
        let mut e = Experiments::new(100, 1, std::env::temp_dir().join("fxnet-test-out"));
        assert!(e.representative_connection(KernelKind::Seq).is_none());
        assert!(e.representative_connection(KernelKind::Hist).is_none());
        let sor = e.representative_connection(KernelKind::Sor).unwrap();
        assert!(sor.iter().all(|r| r.src == HostId(1) && r.dst == HostId(2)));
    }

    #[test]
    fn row_formatting_handles_missing_stats() {
        let row = stats_row("X", None);
        assert!(row.contains('-'));
        let row = stats_row("Y", Stats::of([1.0, 2.0]));
        assert!(row.starts_with('Y'));
    }
}
