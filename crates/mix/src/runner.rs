//! The mixer: admit tenants, co-execute the admitted set on one shared
//! network, demultiplex the promiscuous trace, and quantify interference
//! against per-tenant solo baselines.

use crate::admission::{AdmissionController, Rejection};
use crate::tenant::MixTenant;
use fxnet_fx::{run, run_single, CausalRun, GroupSpec, RunOptions, SpmdConfig};
use fxnet_pvm::TenantMap;
use fxnet_qos::{Negotiation, QosNetwork};
use fxnet_sim::{FrameRecord, FrameTap, HostId, SimTime};
use fxnet_telemetry::RunTelemetry;
use fxnet_trace::{
    burst_collisions, demux_store, slowdown, Burst, Periodogram, SpectralInterference, Stats,
    TraceStore,
};
use fxnet_watch::{StreamWatch, TenantContract, WatchConfig, WatchReport};
use std::sync::{Arc, Mutex};

/// Everything measured about one admitted tenant.
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Ranks it ran on.
    pub p: u32,
    /// Its staggered start time.
    pub start: SimTime,
    /// The accepted QoS operating point.
    pub negotiation: Negotiation,
    /// The tenant's demuxed share of the shared trace.
    pub frames: Vec<FrameRecord>,
    /// Per-rank return values.
    pub results: Vec<u64>,
    /// Wall-clock duration under the mix (start to its last rank done).
    pub mixed_secs: f64,
    /// Duration of the solo baseline run, when one was taken.
    pub solo_secs: Option<f64>,
    /// Measured slowdown: `mixed_secs / solo_secs`.
    pub measured_slowdown: Option<f64>,
    /// The QoS model's predicted slowdown (shared-capacity burst split).
    pub predicted_slowdown: f64,
    /// Packet-size statistics of the demuxed sub-trace.
    pub sizes: Option<Stats>,
    /// Lifetime average bandwidth of the sub-trace, bytes/s.
    pub avg_bw: Option<f64>,
    /// Packet-size statistics of the solo baseline trace.
    pub solo_sizes: Option<Stats>,
    /// Lifetime average bandwidth of the solo baseline, bytes/s.
    pub solo_avg_bw: Option<f64>,
    /// How many of this tenant's bursts overlapped other tenants' bursts.
    pub burst_collisions: usize,
    /// Bursts detected in the demuxed sub-trace.
    pub burst_count: usize,
    /// Spectral comparison against the solo baseline.
    pub spectral: Option<SpectralInterference>,
}

/// Outcome of a whole mixed run.
pub struct MixOutcome {
    /// Admitted tenants, in admission order, with their measurements.
    pub tenants: Vec<TenantOutcome>,
    /// Tenants refused at admission (they did not run).
    pub rejected: Vec<Rejection>,
    /// Host/task ownership of the admitted set.
    pub map: TenantMap,
    /// The full promiscuous trace of the shared network.
    pub trace: Vec<FrameRecord>,
    /// Frames belonging to no single tenant (cross-boundary daemon
    /// chatter, idle hosts).
    pub background: Vec<FrameRecord>,
    /// Simulated finish time of the last rank of any tenant.
    pub finished_at: SimTime,
    /// Telemetry of the mixed run, when enabled.
    pub telemetry: Option<RunTelemetry>,
    /// Streaming-watcher report, when a watcher was attached.
    pub watch: Option<WatchReport>,
    /// Causal capture of the mixed run (application ops and per-frame
    /// cause chains), when enabled.
    pub causal: Option<CausalRun>,
    /// Per-link sample series of the mixed run, when sampling was
    /// enabled via [`Mix::sample_links`].
    pub link_stats: Option<fxnet_sim::LinkStats>,
}

impl MixOutcome {
    /// Assert the demux conservation property — per-tenant frame counts
    /// plus background sum exactly to the aggregate — and return the
    /// total.
    pub fn check_conservation(&self) -> usize {
        let attributed: usize =
            self.tenants.iter().map(|t| t.frames.len()).sum::<usize>() + self.background.len();
        assert_eq!(
            attributed,
            self.trace.len(),
            "per-tenant frame counts must sum to the aggregate"
        );
        self.trace.len()
    }

    /// Human-readable report: admission log, per-tenant demuxed traffic
    /// statistics, and interference metrics with the QoS model's
    /// predicted slowdown next to the measured one.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        push(
            &mut out,
            format!(
                "mixed run: {} admitted, {} rejected, {} frames total ({} background), finished at {:.3} s",
                self.tenants.len(),
                self.rejected.len(),
                self.check_conservation(),
                self.background.len(),
                self.finished_at.as_secs_f64()
            ),
        );
        for r in &self.rejected {
            push(&mut out, format!("  admission: {r}"));
        }
        push(
            &mut out,
            "| tenant | P | start s | frames | avg BW B/s | pkt avg/sd B | bursts | collisions | slowdown meas | slowdown pred | peak solo→mix Hz | smearing |".to_string(),
        );
        push(
            &mut out,
            "|--------|---|---------|--------|------------|--------------|--------|------------|---------------|---------------|------------------|----------|".to_string(),
        );
        for t in &self.tenants {
            let (avg, sd) = t.sizes.as_ref().map_or((0.0, 0.0), |s| (s.avg, s.sd));
            let peaks = t.spectral.map_or("-".to_string(), |s| {
                format!("{:.2}→{:.2}", s.solo_peak_hz, s.mixed_peak_hz)
            });
            let smear = t
                .spectral
                .map_or("-".to_string(), |s| format!("{:+.3}", s.smearing));
            push(
                &mut out,
                format!(
                    "| {} | {} | {:.3} | {} | {:.0} | {:.0}/{:.0} | {} | {} | {} | {:.3} | {} | {} |",
                    t.name,
                    t.p,
                    t.start.as_secs_f64(),
                    t.frames.len(),
                    t.avg_bw.unwrap_or(0.0),
                    avg,
                    sd,
                    t.burst_count,
                    t.burst_collisions,
                    t.measured_slowdown
                        .map_or("-".to_string(), |s| format!("{s:.3}")),
                    t.predicted_slowdown,
                    peaks,
                    smear,
                ),
            );
        }
        out
    }
}

/// Builder for a mixed multi-tenant run.
pub struct Mix {
    cfg: SpmdConfig,
    net: QosNetwork,
    tenants: Vec<MixTenant>,
    solo_baselines: bool,
    burst_gap: SimTime,
    spectrum_bin: SimTime,
    watch: Option<WatchConfig>,
    causal: bool,
    sample_links: Option<u64>,
    tap: Option<FrameTap>,
}

impl Mix {
    /// A mixer over the testbed configuration `cfg` and the paper's
    /// 10 Mb/s shared Ethernet as the QoS network.
    pub fn new(cfg: SpmdConfig) -> Mix {
        Mix {
            cfg,
            net: QosNetwork::ethernet_10mbps(),
            tenants: Vec::new(),
            solo_baselines: true,
            burst_gap: SimTime::from_millis(10),
            spectrum_bin: SimTime::from_millis(10),
            watch: None,
            causal: false,
            sample_links: None,
            tap: None,
        }
    }

    /// Replace the QoS network the admission controller draws from.
    pub fn network(mut self, net: QosNetwork) -> Mix {
        self.net = net;
        self
    }

    /// Add a tenant to the offered load.
    pub fn tenant(mut self, t: MixTenant) -> Mix {
        self.tenants.push(t);
        self
    }

    /// Whether to run each admitted tenant alone afterwards to measure
    /// slowdown and spectral interference (default true; disable for
    /// speed when only the mixed trace matters).
    pub fn solo_baselines(mut self, on: bool) -> Mix {
        self.solo_baselines = on;
        self
    }

    /// Quiet gap separating bursts in the interference analysis.
    pub fn burst_gap(mut self, gap: SimTime) -> Mix {
        self.burst_gap = gap;
        self
    }

    /// Attach a streaming watcher (`fxnet-watch`) to the mixed run's
    /// frame tap. Each admitted tenant's *claimed* contract terms are
    /// handed to the watcher, which checks the live traffic against
    /// them and reports through [`MixOutcome::watch`].
    pub fn watch(mut self, cfg: WatchConfig) -> Mix {
        self.watch = Some(cfg);
        self
    }

    /// Capture causal provenance (`fxnet-causal`) during the mixed run:
    /// every frame is tagged with the application operation that caused
    /// it, via the token side-table, so the trace stays byte-identical.
    pub fn causal(mut self, on: bool) -> Mix {
        self.causal = on;
        self
    }

    /// Enable passive per-link sampling (`fxnet-metrics` feed) at the
    /// given base window during the mixed run. Observational only: the
    /// trace stays byte-identical.
    pub fn sample_links(mut self, bin_ns: Option<u64>) -> Mix {
        self.sample_links = bin_ns;
        self
    }

    /// Attach an external promiscuous frame tap (e.g. the
    /// `fxnet-metrics` weather-map sampler) to the mixed run. Composes
    /// with any [`Mix::watch`] watcher — the watcher observes first,
    /// then the external tap. Observational only: the trace stays
    /// byte-identical.
    pub fn tap(mut self, tap: FrameTap) -> Mix {
        self.tap = Some(tap);
        self
    }

    /// Admit, co-execute, demux, and analyze.
    pub fn run(self) -> MixOutcome {
        let Mix {
            cfg,
            net,
            tenants,
            solo_baselines,
            burst_gap,
            spectrum_bin,
            watch,
            causal,
            sample_links,
            tap: user_tap,
        } = self;

        // Admission, in arrival order: the residual shrinks as each
        // tenant commits its negotiated mean load.
        let mut order: Vec<usize> = (0..tenants.len()).collect();
        order.sort_by_key(|&i| tenants[i].start);
        let capacity = net.available();
        let mut ac = AdmissionController::new(net);
        let mut admitted: Vec<(usize, Negotiation)> = Vec::new();
        let mut rejected = Vec::new();
        for i in order {
            let t = &tenants[i];
            // Admission sees the descriptor the tenant *claims* — for
            // an honest tenant this is the program's true descriptor.
            let app = t.claimed_descriptor(&cfg.cost);
            match ac.admit(&t.name, &app, t.p) {
                Ok(n) => admitted.push((i, n)),
                Err(r) => rejected.push(r),
            }
        }
        admitted.sort_by_key(|&(i, _)| i);

        // Predicted slowdown from the QoS burst algebra: solo, a burst
        // gets capacity/concurrent_i; under the mix, every admitted
        // tenant's connections contend, so each gets
        // capacity/Σ concurrent_j.
        let total_concurrent: usize = admitted
            .iter()
            .map(|&(i, _)| {
                let t = &tenants[i];
                t.program.descriptor(&cfg.cost).concurrent_connections(t.p)
            })
            .sum();
        let predicted: Vec<f64> = admitted
            .iter()
            .map(|&(i, _)| {
                let t = &tenants[i];
                let app = t.program.descriptor(&cfg.cost);
                let conc = app.concurrent_connections(t.p).max(1);
                let solo = app.timing(t.p, capacity / conc as f64);
                let mixed = app.timing(t.p, capacity / total_concurrent.max(1) as f64);
                mixed.t_interval / solo.t_interval
            })
            .collect();

        // Co-execute the admitted set on one shared network.
        let groups: Vec<GroupSpec<u64>> = admitted
            .iter()
            .map(|&(i, _)| {
                let t = &tenants[i];
                GroupSpec {
                    name: t.name.clone(),
                    p: t.p,
                    start: t.start,
                    program: t.program.rank_program(),
                }
            })
            .collect();
        // Streaming watcher on the frame tap: each admitted tenant's
        // claimed contract, plus the host-ownership table the engine
        // will pack (TenantMap::pack is deterministic, so packing the
        // same groups here reproduces the engine's map exactly).
        let watcher: Option<Arc<Mutex<StreamWatch>>> = watch.map(|wcfg| {
            let map = TenantMap::pack(groups.iter().map(|g| (g.name.clone(), g.p)));
            let hosts = cfg.hosts.max(map.total_ranks());
            let host_owner: Vec<Option<usize>> =
                (0..hosts).map(|h| map.owner_of_host(HostId(h))).collect();
            let contracts = admitted
                .iter()
                .map(|&(i, n)| {
                    let t = &tenants[i];
                    TenantContract {
                        name: t.name.clone(),
                        terms: t.claimed_descriptor(&cfg.cost).terms(&n),
                    }
                })
                .collect();
            Arc::new(Mutex::new(StreamWatch::new(wcfg, contracts, host_owner)))
        });
        let tap: Option<FrameTap> = match (watcher.clone(), user_tap) {
            (Some(w), Some(mut u)) => Some(Box::new(move |r: &FrameRecord| {
                w.lock().expect("watch tap").observe(r);
                u(r);
            })),
            (Some(w), None) => Some(Box::new(move |r: &FrameRecord| {
                w.lock().expect("watch tap").observe(r)
            })),
            (None, u) => u,
        };

        let multi = run(
            cfg.clone(),
            groups,
            RunOptions {
                tap,
                causal,
                sample_links,
                ..RunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let watch_report = watcher.map(|w| {
            Arc::try_unwrap(w)
                .ok()
                .expect("engine dropped the tap with the run")
                .into_inner()
                .expect("watch tap")
                .finalize()
        });
        // One columnar store of the shared capture; tenants are zero-copy
        // row-index views over it rather than per-tenant frame copies.
        let store = TraceStore::from_records(&multi.trace);
        let demuxed = demux_store(&store, &multi.map);
        demuxed.check_conservation();

        // Solo baselines: each admitted tenant alone on its own hosts.
        let solos: Vec<Option<(f64, TraceStore)>> = admitted
            .iter()
            .map(|&(i, _)| {
                if !solo_baselines {
                    return None;
                }
                let t = &tenants[i];
                let mut solo_cfg = cfg.clone();
                solo_cfg.p = t.p;
                solo_cfg.hosts = t.p;
                solo_cfg.telemetry = false;
                let prog = t.program.rank_program();
                let r = run_single(solo_cfg, move |ctx| prog(ctx), RunOptions::default())
                    .unwrap_or_else(|e| panic!("{e}"));
                Some((
                    r.finished_at.as_secs_f64(),
                    TraceStore::from_records(&r.trace),
                ))
            })
            .collect();

        // Per-tenant bursts for the collision analysis, fused over the
        // tenant views.
        let bursts: Vec<Vec<Burst>> = (0..demuxed.tenants())
            .map(|i| demuxed.tenant(i).detect_bursts(burst_gap))
            .collect();

        let mut outcomes = Vec::new();
        for (gi, &(i, negotiation)) in admitted.iter().enumerate() {
            let t = &tenants[i];
            let g = &multi.groups[gi];
            let tenant_view = demuxed.tenant(gi);
            let mixed_secs = (g.finished_at.saturating_sub(g.start)).as_secs_f64();
            let (solo_secs, solo_store) = match &solos[gi] {
                Some((s, st)) => (Some(*s), Some(st)),
                None => (None, None),
            };

            // All other tenants' bursts, merged in start order.
            let mut others: Vec<Burst> = bursts
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != gi)
                .flat_map(|(_, b)| b.iter().copied())
                .collect();
            others.sort_by_key(|b| b.start);

            let spectral = solo_store.and_then(|st| {
                let solo_series = st.view().binned_bandwidth(spectrum_bin);
                let mixed_series = tenant_view.binned_bandwidth(spectrum_bin);
                if solo_series.len() < 2 || mixed_series.len() < 2 {
                    return None;
                }
                let solo = Periodogram::compute(&solo_series, spectrum_bin);
                let mixed = Periodogram::compute(&mixed_series, spectrum_bin);
                SpectralInterference::compare(&solo, &mixed, 0.5, 5)
            });

            outcomes.push(TenantOutcome {
                name: t.name.clone(),
                p: t.p,
                start: t.start,
                negotiation,
                mixed_secs,
                solo_secs,
                measured_slowdown: solo_secs.map(|s| slowdown(mixed_secs, s)),
                predicted_slowdown: predicted[gi],
                sizes: tenant_view.packet_sizes(),
                avg_bw: tenant_view.average_bandwidth(),
                solo_sizes: solo_store.and_then(|st| st.view().packet_sizes()),
                solo_avg_bw: solo_store.and_then(|st| st.view().average_bandwidth()),
                burst_collisions: burst_collisions(&bursts[gi], &others),
                burst_count: bursts[gi].len(),
                spectral,
                results: g.results.clone(),
                frames: tenant_view.to_records(),
            });
        }

        // Finished tenants release their commitments: the controller ends
        // the run with the full capacity available again.
        for t in &outcomes {
            ac.release(&t.name);
        }
        debug_assert!((ac.residual() - capacity).abs() < 1e-6);

        let background = demuxed.background_view().to_records();
        MixOutcome {
            tenants: outcomes,
            rejected,
            map: multi.map,
            trace: multi.trace,
            background,
            finished_at: multi.finished_at,
            telemetry: multi.telemetry,
            watch: watch_report,
            causal: multi.causal,
            link_stats: multi.link_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantProgram;

    fn base_cfg() -> SpmdConfig {
        let mut cfg = SpmdConfig::default();
        cfg.pvm.heartbeat = None;
        cfg.hosts = 1;
        cfg
    }

    fn shift_tenant(name: &str, start_ms: u64) -> MixTenant {
        MixTenant {
            name: name.to_string(),
            program: TenantProgram::Shift {
                work_s: 0.05,
                bytes: 20_000,
                rounds: 4,
            },
            p: 2,
            start: SimTime::from_millis(start_ms),
            claim_scale: 1.0,
        }
    }

    #[test]
    fn two_tenant_mix_demuxes_and_conserves() {
        let out = Mix::new(base_cfg())
            .tenant(shift_tenant("alpha", 0))
            .tenant(shift_tenant("beta", 30))
            .run();
        assert_eq!(out.tenants.len(), 2);
        assert!(out.rejected.is_empty());
        let total = out.check_conservation();
        assert!(total > 0);
        for t in &out.tenants {
            assert!(!t.frames.is_empty(), "{} demuxed no frames", t.name);
            assert!(t.measured_slowdown.unwrap() > 0.9);
            assert!(t.predicted_slowdown >= 1.0);
            assert_eq!(t.results.len(), 2);
        }
        let report = out.report();
        assert!(report.contains("alpha") && report.contains("beta"));
    }

    #[test]
    fn mix_is_deterministic() {
        let run = || {
            Mix::new(base_cfg())
                .tenant(shift_tenant("alpha", 0))
                .tenant(shift_tenant("beta", 30))
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn watcher_catches_the_overdriver_and_spares_the_honest_tenant() {
        let honest = shift_tenant("honest", 0);
        // Same program, but claims 1/10th of its real burst size at
        // admission — the watcher must catch it from the live stream.
        let liar = shift_tenant("liar", 30).with_claim_scale(0.1);
        let out = Mix::new(base_cfg())
            .solo_baselines(false)
            .watch(fxnet_watch::WatchConfig::default())
            .tenant(honest)
            .tenant(liar)
            .run();
        assert!(out.rejected.is_empty());
        let w = out.watch.as_ref().expect("watch report attached");
        assert_eq!(w.violations_for("liar"), 1, "one latched violation");
        assert_eq!(w.violations_for("honest"), 0, "honest tenant clean");
        let e = w
            .events
            .iter()
            .find(|e| e.tenant == "liar")
            .expect("liar event");
        assert!(e.measured > e.limit);
        assert!(!e.flight_recorder.is_empty(), "event carries frame dump");
        // The watcher saw the whole shared trace, no perturbation: the
        // trace is identical to an unwatched run.
        assert_eq!(w.frames as usize, out.trace.len());
        let unwatched = Mix::new(base_cfg())
            .solo_baselines(false)
            .tenant(shift_tenant("honest", 0))
            .tenant(shift_tenant("liar", 30).with_claim_scale(0.1))
            .run();
        assert_eq!(out.trace, unwatched.trace);
        assert!(unwatched.watch.is_none());
    }

    #[test]
    fn saturating_load_rejects_a_tenant() {
        let net = QosNetwork::ethernet_10mbps().with_min_burst_bw(50_000.0);
        let hungry = |name: &str| MixTenant {
            name: name.to_string(),
            program: TenantProgram::Shift {
                work_s: 0.02,
                bytes: 100_000,
                rounds: 3,
            },
            p: 4,
            start: SimTime::ZERO,
            claim_scale: 1.0,
        };
        let out = Mix::new(base_cfg())
            .network(net)
            .solo_baselines(false)
            .tenant(hungry("t1"))
            .tenant(hungry("t2"))
            .tenant(hungry("t3"))
            .run();
        assert!(
            !out.rejected.is_empty(),
            "offered load beyond capacity must reject"
        );
        assert!(out.tenants.len() < 3);
        out.check_conservation();
    }
}
