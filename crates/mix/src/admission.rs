//! Live QoS admission: the mixer's gatekeeper.
//!
//! Each arriving tenant presents its `[l(P), b(P), c]` descriptor
//! (§7.3); the controller negotiates it against a [`QosNetwork`] whose
//! residual capacity reflects everything already admitted. Admission
//! commits the tenant's long-run mean load; a finishing tenant releases
//! it, restoring residual bandwidth for later arrivals. Rejection means
//! the network could not commit even the minimum per-connection burst
//! bandwidth — the §7.3 "guarantee" would be meaningless.

use fxnet_qos::{negotiate, AppDescriptor, Negotiation, QosNetwork};

/// Why a tenant was refused.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Rejection {
    /// Tenant name.
    pub name: String,
    /// Processor count it demanded.
    pub p: u32,
    /// Residual capacity at the time of the attempt, bytes/s.
    pub residual: f64,
    /// The long-run load the tenant would have consumed if it had been
    /// offered the whole residual capacity — what it "asked for".
    pub wanted: f64,
    /// The per-connection burst bandwidth the residual could offer.
    pub offer: f64,
    /// The network's per-connection commitment floor.
    pub floor: f64,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.offer < self.floor {
            write!(
                f,
                "{} (P={}) rejected: residual {:.0} B/s offers only {:.0} B/s \
                 per connection, under the {:.0} B/s floor",
                self.name, self.p, self.residual, self.offer, self.floor
            )
        } else {
            write!(
                f,
                "{} (P={}) rejected: wanted ≈{:.0} B/s, residual {:.0} B/s",
                self.name, self.p, self.wanted, self.residual
            )
        }
    }
}

/// The live admission controller: a QoS network plus a ledger of the
/// commitments currently held by admitted tenants.
pub struct AdmissionController {
    net: QosNetwork,
    ledger: Vec<(String, f64)>,
}

impl AdmissionController {
    /// A controller over `net` with nothing admitted.
    pub fn new(net: QosNetwork) -> AdmissionController {
        AdmissionController {
            net,
            ledger: Vec::new(),
        }
    }

    /// Residual (uncommitted) capacity, bytes/s.
    pub fn residual(&self) -> f64 {
        self.net.available()
    }

    /// Names and committed mean loads of the currently admitted tenants.
    pub fn admitted(&self) -> &[(String, f64)] {
        &self.ledger
    }

    /// The underlying network (for offer probes).
    pub fn network(&self) -> &QosNetwork {
        &self.net
    }

    /// Try to admit `name` running `app` at exactly `p` processors.
    /// On success the negotiated mean load is committed against the
    /// residual capacity; on failure nothing changes.
    pub fn admit(
        &mut self,
        name: &str,
        app: &AppDescriptor,
        p: u32,
    ) -> Result<Negotiation, Rejection> {
        match negotiate(app, &self.net, [p]) {
            Some(n) => {
                self.net
                    .commit(n.mean_load)
                    .expect("negotiate admitted more than available");
                self.ledger.push((name.to_string(), n.mean_load));
                Ok(n)
            }
            None => {
                let concurrent = app.concurrent_connections(p).max(1);
                Err(Rejection {
                    name: name.to_string(),
                    p,
                    residual: self.residual(),
                    wanted: self.wanted(app, p),
                    offer: self.residual() / concurrent as f64,
                    floor: self.net.min_burst_bw(),
                })
            }
        }
    }

    /// The mean load `app` at `p` would consume if offered the entire
    /// residual capacity (ignoring the burst floor) — the "requested"
    /// figure printed on rejection.
    pub fn wanted(&self, app: &AppDescriptor, p: u32) -> f64 {
        let concurrent = app.concurrent_connections(p).max(1);
        let bw = (self.residual() / concurrent as f64).max(1.0);
        app.timing(p, bw).mean_bw() * app.connections(p) as f64
    }

    /// Release the commitment held by `name` (the tenant finished).
    /// Returns `false` if no such tenant is admitted.
    pub fn release(&mut self, name: &str) -> bool {
        match self.ledger.iter().position(|(n, _)| n == name) {
            Some(i) => {
                let (_, load) = self.ledger.remove(i);
                self.net.release(load);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_fx::Pattern;

    fn shift_app(work_s: f64, bytes: u64) -> AppDescriptor {
        AppDescriptor::scalable(Pattern::Shift { k: 1 }, work_s, move |_| bytes)
    }

    #[test]
    fn sequential_admissions_shrink_the_residual() {
        let mut ac =
            AdmissionController::new(QosNetwork::ethernet_10mbps().with_min_burst_bw(50_000.0));
        let full = ac.residual();
        let n1 = ac.admit("t1", &shift_app(2.0, 400_000), 4).unwrap();
        assert!(ac.residual() < full);
        assert!((full - ac.residual() - n1.mean_load).abs() < 1e-6);
        let n2 = ac.admit("t2", &shift_app(2.0, 400_000), 4).unwrap();
        // The second tenant negotiated against a poorer network.
        assert!(n2.burst_bw < n1.burst_bw);
        assert_eq!(ac.admitted().len(), 2);
    }

    #[test]
    fn exhausted_residual_rejects_and_release_recovers() {
        let mut ac =
            AdmissionController::new(QosNetwork::ethernet_10mbps().with_min_burst_bw(50_000.0));
        ac.admit("t1", &shift_app(2.0, 400_000), 4).unwrap();
        ac.admit("t2", &shift_app(2.0, 400_000), 4).unwrap();
        let rej = ac.admit("t3", &shift_app(2.0, 400_000), 4).unwrap_err();
        assert_eq!(rej.name, "t3");
        assert!(rej.residual < 400_000.0);
        assert!(rej.to_string().contains("rejected"));
        // A tenant finishing frees enough capacity to admit t3 after all.
        assert!(ac.release("t1"));
        assert!(!ac.release("t1"), "double release refused");
        assert!(ac.admit("t3", &shift_app(2.0, 400_000), 4).is_ok());
    }

    #[test]
    fn rejection_leaves_state_untouched() {
        let mut ac = AdmissionController::new(QosNetwork::new(1000.0).with_min_burst_bw(900.0));
        ac.admit("big", &shift_app(0.1, 10_000), 1).ok();
        let before = ac.residual();
        let _ = ac.admit("huge", &shift_app(0.001, 1_000_000), 8);
        assert_eq!(ac.residual(), before);
    }
}
