//! # fxnet-mix
//!
//! Multi-tenant workload mixing on the shared testbed network.
//!
//! The paper measures one compiler-parallelized program at a time on a
//! dedicated Ethernet, then asks (§7.3) what a network could do with the
//! compile-time knowledge of each program's traffic — the `[l(P), b(P),
//! c]` descriptor. This crate closes the loop by actually *running* the
//! scenario the QoS section reasons about: several SPMD programs share
//! one simulated Ethernet, each admitted (or refused) by a live
//! admission controller whose residual capacity reflects every earlier
//! commitment.
//!
//! The pipeline, end to end:
//!
//! 1. **Admission** ([`AdmissionController`]) — each [`MixTenant`]
//!    presents the descriptor of its program; `fxnet-qos::negotiate`
//!    either returns an operating point (whose mean load is committed
//!    against the shared capacity) or refuses, in which case the tenant
//!    never runs.
//! 2. **Co-execution** — the admitted set runs concurrently via
//!    `fxnet_fx::run`: each tenant gets a contiguous block of task
//!    ids/hosts ([`fxnet_pvm::TenantMap`]), its own barriers, and a
//!    staggered start, all over one shared Ethernet whose promiscuous
//!    trace is captured as usual.
//! 3. **Demux & interference** — the shared trace is split per tenant
//!    (`fxnet_trace::demux`, conservation checked), then each tenant's
//!    sub-trace is compared against a solo baseline run: measured
//!    slowdown next to the QoS model's predicted slowdown, burst
//!    collisions, and spectral peak shift/smearing.
//! 4. **Live observation** (optional) — a `fxnet-watch` streaming
//!    observer on the simulator's frame tap ([`Mix::watch`]) checks
//!    each tenant's traffic against the contract it *claimed* at
//!    admission while the run is still in flight, emitting latched
//!    `ContractViolation` events with flight-recorder dumps; results
//!    surface through [`MixOutcome::watch`].
//!
//! ```
//! use fxnet_fx::SpmdConfig;
//! use fxnet_mix::{Mix, MixTenant, TenantProgram};
//! use fxnet_sim::SimTime;
//!
//! let mut cfg = SpmdConfig::default();
//! cfg.pvm.heartbeat = None;
//! let out = Mix::new(cfg)
//!     .tenant(MixTenant::shift("alpha", 0.05, 20_000, 3, 2))
//!     .tenant(MixTenant {
//!         name: "beta".into(),
//!         program: TenantProgram::Shift { work_s: 0.05, bytes: 20_000, rounds: 3 },
//!         p: 2,
//!         start: SimTime::from_millis(20),
//!         claim_scale: 1.0,
//!     })
//!     .run();
//! assert_eq!(out.tenants.len(), 2);
//! out.check_conservation(); // no frame lost or double-attributed
//! ```

pub mod admission;
pub mod runner;
pub mod tenant;

pub use admission::{AdmissionController, Rejection};
pub use runner::{Mix, MixOutcome, TenantOutcome};
pub use tenant::{MixTenant, TenantProgram};
