//! Tenant descriptions: what each co-scheduled program runs, and the
//! `[l(P), b(P), c]` descriptor it hands the QoS admission controller.

use fxnet_apps::{checksum, fft2d, hist, seq, sor, t2dfft, KernelKind};
use fxnet_fx::{shift, CostModel, Pattern, RankCtx};
use fxnet_pvm::MessageBuilder;
use fxnet_qos::AppDescriptor;
use fxnet_sim::SimTime;
use std::sync::Arc;

/// The program a tenant runs on its slice of the machine.
#[derive(Debug, Clone)]
pub enum TenantProgram {
    /// One of the paper's measured kernels at paper scale, with the outer
    /// iteration count divided by `div` (1 = the full measured run).
    Kernel { kind: KernelKind, div: usize },
    /// The synthetic shift-pattern program of §7.3: `rounds` cycles of
    /// `work_s` seconds of total computation (divided over the ranks)
    /// followed by a `bytes`-sized shift exchange. Its descriptor is
    /// *exact*, which makes it the reference workload for checking the
    /// QoS model's slowdown predictions. Needs `p >= 2`.
    Shift {
        work_s: f64,
        bytes: u64,
        rounds: usize,
    },
}

impl TenantProgram {
    /// The traffic descriptor the tenant presents at admission. Kernel
    /// descriptors are coarse compile-time estimates (operation counts
    /// through the cost model, boundary/block sizes from the paper-scale
    /// parameters); the shift descriptor is exact by construction.
    pub fn descriptor(&self, cost: &CostModel) -> AppDescriptor {
        match *self {
            TenantProgram::Kernel { kind, div: _ } => match kind {
                KernelKind::Sor => {
                    let p = sor::SorParams::paper();
                    let sweep = cost.mem((p.n * p.n) as u64 * p.bytes_per_point);
                    let row = 8 * p.n as u64;
                    AppDescriptor::scalable(Pattern::Neighbor, sweep.as_secs_f64(), move |_| row)
                }
                KernelKind::Fft2d => {
                    let p = fft2d::FftParams::paper();
                    let n = p.n as u64;
                    // Two 1-D FFT passes over N rows of N points each.
                    let flops = 2 * n * 5 * n * n.ilog2() as u64;
                    let iter = cost.flops(flops);
                    AppDescriptor::scalable(Pattern::AllToAll, iter.as_secs_f64(), move |pp| {
                        8 * (n / u64::from(pp)).pow(2)
                    })
                }
                KernelKind::T2dfft => {
                    let p = t2dfft::T2dfftParams::paper();
                    let n = p.n as u64;
                    let flops = 2 * n * 5 * n * n.ilog2() as u64;
                    let iter = cost.flops(flops);
                    AppDescriptor::scalable(Pattern::Partition, iter.as_secs_f64(), move |pp| {
                        8 * n * n / u64::from(pp.max(2) / 2).max(1)
                    })
                }
                KernelKind::Seq => {
                    let p = seq::SeqParams::paper();
                    let row = 8 * p.n as u64;
                    let work = p.row_io.as_secs_f64() * p.n as f64;
                    AppDescriptor {
                        pattern: Pattern::Broadcast { root: 0 },
                        // Record I/O is serial on the root — it does not
                        // shrink with P.
                        local: Box::new(move |_| work),
                        burst: Box::new(move |_| row),
                    }
                }
                KernelKind::Hist => {
                    let p = hist::HistParams::paper();
                    let scan = cost.flops((p.n * p.n) as u64 * p.ops_per_point);
                    let vector = 4 * p.bins as u64;
                    AppDescriptor::scalable(Pattern::TreeUp, scan.as_secs_f64(), move |_| vector)
                }
            },
            TenantProgram::Shift {
                work_s,
                bytes,
                rounds: _,
            } => AppDescriptor::scalable(Pattern::Shift { k: 1 }, work_s, move |_| bytes),
        }
    }

    /// Build the SPMD rank program. All programs return a `u64` checksum
    /// so outcomes are comparable across tenants.
    pub fn rank_program(&self) -> Arc<dyn Fn(&mut RankCtx) -> u64 + Send + Sync> {
        match *self {
            TenantProgram::Kernel { kind, div } => {
                let d = div.max(1);
                match kind {
                    KernelKind::Sor => {
                        let mut p = sor::SorParams::paper();
                        p.steps = (p.steps / d).max(1);
                        Arc::new(move |ctx| sor::sor_rank(ctx, &p))
                    }
                    KernelKind::Fft2d => {
                        let mut p = fft2d::FftParams::paper();
                        p.iters = (p.iters / d).max(1);
                        Arc::new(move |ctx| fft2d::fft2d_rank(ctx, &p))
                    }
                    KernelKind::T2dfft => {
                        let mut p = t2dfft::T2dfftParams::paper();
                        p.iters = (p.iters / d).max(1);
                        Arc::new(move |ctx| t2dfft::t2dfft_rank(ctx, &p))
                    }
                    KernelKind::Seq => {
                        let mut p = seq::SeqParams::paper();
                        p.iters = (p.iters / d).max(1);
                        Arc::new(move |ctx| seq::seq_rank(ctx, &p))
                    }
                    KernelKind::Hist => {
                        let mut p = hist::HistParams::paper();
                        p.iters = (p.iters / d).max(1);
                        Arc::new(move |ctx| {
                            let h = hist::hist_rank(ctx, &p);
                            let as_f64: Vec<f64> = h.iter().map(|&v| f64::from(v)).collect();
                            checksum(&as_f64)
                        })
                    }
                }
            }
            TenantProgram::Shift {
                work_s,
                bytes,
                rounds,
            } => Arc::new(move |ctx| {
                assert!(ctx.nprocs() >= 2, "shift tenant needs p >= 2");
                let per_rank = SimTime::from_secs_f64(work_s / f64::from(ctx.nprocs()));
                let payload: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
                let mut acc = 0u64;
                for round in 0..rounds {
                    ctx.compute_time(per_rank);
                    let got = shift(ctx, round as i32, 1, &payload);
                    acc = acc
                        .wrapping_mul(0x100_0000_01b3)
                        .wrapping_add(got.len() as u64);
                }
                acc
            }),
        }
    }

    /// Display name of the program.
    pub fn label(&self) -> String {
        match self {
            TenantProgram::Kernel { kind, .. } => kind.name().to_string(),
            TenantProgram::Shift { .. } => "SHIFT".to_string(),
        }
    }
}

/// One tenant of the mix: a program, its processor demand, and when it
/// arrives.
#[derive(Clone)]
pub struct MixTenant {
    /// Display name ("SOR", "tenant-2", ...).
    pub name: String,
    /// What the tenant runs.
    pub program: TenantProgram,
    /// Processor (and host) count the tenant is compiled for. Admission
    /// is negotiated at exactly this P: the Fx binary is already
    /// compiled, so the mixer cannot rescale it.
    pub p: u32,
    /// Simulated arrival/start time.
    pub start: SimTime,
    /// Scale applied to the burst sizes of the descriptor this tenant
    /// *presents at admission* — what it runs is unchanged. 1.0 is an
    /// honest tenant; below 1.0 the tenant under-declares its traffic
    /// (over-drives its contract), which admission cannot see but the
    /// streaming watcher (`fxnet-watch`) catches online.
    pub claim_scale: f64,
}

impl MixTenant {
    /// A tenant running `kind` at paper scale divided by `div`.
    pub fn kernel(name: &str, kind: KernelKind, div: usize, p: u32, start: SimTime) -> MixTenant {
        MixTenant {
            name: name.to_string(),
            program: TenantProgram::Kernel { kind, div },
            p,
            start,
            claim_scale: 1.0,
        }
    }

    /// A synthetic shift-pattern tenant (§7.3 reference workload).
    pub fn shift(name: &str, work_s: f64, bytes: u64, rounds: usize, p: u32) -> MixTenant {
        MixTenant {
            name: name.to_string(),
            program: TenantProgram::Shift {
                work_s,
                bytes,
                rounds,
            },
            p,
            start: SimTime::ZERO,
            claim_scale: 1.0,
        }
    }

    /// Scale the burst sizes this tenant claims at admission (see
    /// [`MixTenant::claim_scale`]).
    pub fn with_claim_scale(mut self, scale: f64) -> MixTenant {
        assert!(scale > 0.0, "claim scale must be positive");
        self.claim_scale = scale;
        self
    }

    /// The descriptor this tenant *presents* to the admission
    /// controller: the program's true descriptor with burst sizes
    /// scaled by `claim_scale`. Identical to the true descriptor for an
    /// honest tenant.
    pub fn claimed_descriptor(&self, cost: &CostModel) -> AppDescriptor {
        let app = self.program.descriptor(cost);
        if (self.claim_scale - 1.0).abs() < f64::EPSILON {
            return app;
        }
        let scale = self.claim_scale;
        let burst = app.burst;
        AppDescriptor {
            pattern: app.pattern,
            local: app.local,
            burst: Box::new(move |p| ((burst(p) as f64 * scale).round() as u64).max(1)),
        }
    }
}

/// A trivially small two-rank ping program used by tests.
pub fn tiny_exchange(rounds: usize) -> Arc<dyn Fn(&mut RankCtx) -> u64 + Send + Sync> {
    Arc::new(move |ctx| {
        let me = ctx.rank();
        let mut acc = 0u64;
        for round in 0..rounds {
            if me == 0 {
                let mut b = MessageBuilder::new(round as i32);
                b.pack_u32(&[round as u32]);
                ctx.send(1, b.finish());
                acc += u64::from(ctx.recv(1).reader().u32s(1)[0]);
            } else {
                let got = ctx.recv(0).reader().u32s(1)[0];
                let mut b = MessageBuilder::new(round as i32);
                b.pack_u32(&[got + 1]);
                ctx.send(0, b.finish());
                acc += u64::from(got);
            }
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_descriptor_is_exact() {
        let prog = TenantProgram::Shift {
            work_s: 2.0,
            bytes: 400_000,
            rounds: 3,
        };
        let d = prog.descriptor(&CostModel::default());
        assert_eq!((d.burst)(4), 400_000);
        assert!(((d.local)(4) - 0.5).abs() < 1e-12);
        // Shift: P simplex connections, all concurrent.
        assert_eq!(d.concurrent_connections(4), 4);
    }

    #[test]
    fn kernel_descriptors_cover_all_kinds() {
        let cost = CostModel::default();
        for kind in KernelKind::ALL {
            let prog = TenantProgram::Kernel { kind, div: 50 };
            let d = prog.descriptor(&cost);
            assert!((d.local)(4) > 0.0, "{kind:?} local time");
            assert!((d.burst)(4) > 0, "{kind:?} burst bytes");
            assert!(d.concurrent_connections(4) > 0, "{kind:?} connections");
        }
    }

    #[test]
    fn claim_scale_shrinks_only_the_presented_descriptor() {
        let t = MixTenant::shift("u", 2.0, 400_000, 3, 4).with_claim_scale(0.125);
        let cost = CostModel::default();
        let claimed = t.claimed_descriptor(&cost);
        let truth = t.program.descriptor(&cost);
        assert_eq!((claimed.burst)(4), 50_000, "burst claim scaled by 1/8");
        assert_eq!((truth.burst)(4), 400_000, "the program itself is unchanged");
        assert_eq!(
            (claimed.local)(4),
            (truth.local)(4),
            "compute claim untouched"
        );
        let honest = MixTenant::shift("h", 2.0, 400_000, 3, 4);
        assert_eq!(honest.claim_scale, 1.0);
        assert_eq!((honest.claimed_descriptor(&cost).burst)(4), 400_000);
    }

    #[test]
    fn labels_match_kernel_names() {
        let prog = TenantProgram::Kernel {
            kind: KernelKind::Sor,
            div: 1,
        };
        assert_eq!(prog.label(), "SOR");
        let s = TenantProgram::Shift {
            work_s: 1.0,
            bytes: 1,
            rounds: 1,
        };
        assert_eq!(s.label(), "SHIFT");
    }
}
