//! The protocol engine: hosts, TCP connections, UDP, and timers over the
//! shared bus.

use crate::tcp::{ConnId, ConnState, Dir, TcpConn, WriteChunk};
use bytes::Bytes;
use fxnet_shard::ShardedFabric;
use fxnet_sim::{
    ethernet::Delivery, CausalEvent, CauseId, EtherBus, EtherConfig, EtherStats, EventQueue, Frame,
    FrameKind, FrameMeta, FrameRecord, FrameTap, HostId, LinkStats, NicId, ProtoCause, SimRng,
    SimTime, SwitchConfig, SwitchFabric,
};
use fxnet_topo::{CompositeFabric, TopologySpec};
/// Maximum TCP payload per segment (1500 B MTU − 40 B headers).
pub const MSS: u32 = 1460;
/// Maximum UDP payload per datagram (1500 B MTU − 28 B headers).
pub const MAX_UDP: usize = 1472;

/// Link-layer selection: the paper's shared bus, the switched-fabric
/// counterfactual (DESIGN.md §8 ablation), or a declarative
/// multi-segment topology (DESIGN.md §11).
#[derive(Debug, Clone)]
pub enum LinkKind {
    /// Single CSMA/CD collision domain (the measured environment).
    SharedBus,
    /// Store-and-forward switch with per-host full-duplex ports.
    Switched(SwitchConfig),
    /// A compiled multi-segment topology: segments, switches, routers,
    /// and trunks (`fxnet-topo`). A single-segment spec reproduces the
    /// `SharedBus` trace byte for byte.
    Topology(TopologySpec),
}

/// Stack configuration. Defaults model the paper's OSF/1-era environment.
#[derive(Debug, Clone)]
pub struct NetConfig {
    pub ether: EtherConfig,
    /// Which link layer carries the frames.
    pub link: LinkKind,
    /// TCP maximum segment size.
    pub mss: u32,
    /// Fixed send window in bytes (default socket buffer of the era).
    pub window: u32,
    /// Acknowledge immediately after this many unacknowledged segments.
    pub ack_every: u32,
    /// Delayed-ACK timeout for sub-threshold data.
    pub delack: SimTime,
    /// Retransmission timeout (go-back-N; lossy-bus extension only).
    pub rto: SimTime,
    /// Seed for the MAC backoff RNG.
    pub seed: u64,
    /// Number of DES shards for multi-segment topologies. `1` runs the
    /// legacy sequential fabric; `> 1` partitions the topology across
    /// scoped shards (`fxnet-shard`) with byte-identical output. Ignored
    /// for the shared bus and the switch counterfactual, which have no
    /// partitionable structure.
    pub shards: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            ether: EtherConfig::default(),
            link: LinkKind::SharedBus,
            mss: MSS,
            window: 32 * 1024,
            ack_every: 2,
            delack: SimTime::from_millis(200),
            rto: SimTime::from_millis(1000),
            seed: 0x5EED,
            shards: 1,
        }
    }
}

/// Events surfaced to the layer above (PVM).
#[derive(Debug, Clone)]
pub enum AppEvent {
    /// In-order TCP payload bytes arrived.
    TcpData {
        time: SimTime,
        conn: ConnId,
        dir: Dir,
        data: Bytes,
    },
    /// Three-way handshake completed.
    TcpEstablished { time: SimTime, conn: ConnId },
    /// A UDP datagram arrived.
    Udp {
        time: SimTime,
        src: HostId,
        dst: HostId,
        data: Bytes,
    },
}

#[derive(Debug)]
enum TokenInfo {
    Data {
        conn: ConnId,
        dir: Dir,
        seq: u64,
        bytes: Bytes,
        /// Cause of the application write this segment was cut from. A
        /// retransmission keeps the original cause.
        cause: CauseId,
        /// Whether this frame is a go-back-N retransmission.
        retx: bool,
    },
    Ack {
        conn: ConnId,
        /// Direction of the *data* being acknowledged.
        dir: Dir,
        upto: u64,
    },
    Syn {
        conn: ConnId,
        stage: u8,
    },
    Udp {
        src: HostId,
        dst: HostId,
        bytes: Bytes,
        /// Cause of the datagram (app op, heartbeat, or daemon ACK).
        cause: CauseId,
    },
}

/// Slab of in-flight frame payloads keyed by [`Frame::token`].
///
/// Token 0 means "no token"; a live token encodes its slot index plus
/// one, so lookup is a bounds-checked `Vec` index rather than a hash.
/// Slots freed on delivery (or bus reaping) are recycled through a free
/// list, so the table stays as small as the peak number of frames
/// simultaneously on the wire instead of growing with every frame ever
/// sent. Recycling is safe because a token is only looked up while its
/// frame is in flight, and in-flight tokens are unique.
#[derive(Debug, Default)]
struct TokenTable {
    slots: Vec<Option<TokenInfo>>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl TokenTable {
    fn insert(&mut self, info: TokenInfo) -> u64 {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(info);
                s as usize
            }
            None => {
                self.slots.push(Some(info));
                self.slots.len() - 1
            }
        };
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        slot as u64 + 1
    }

    fn remove(&mut self, token: u64) -> Option<TokenInfo> {
        let idx = usize::try_from(token.checked_sub(1)?).ok()?;
        let info = self.slots.get_mut(idx)?.take()?;
        self.free.push(idx as u32);
        self.live -= 1;
        Some(info)
    }
}

#[derive(Debug, Clone, Copy)]
enum Timer {
    DelAck {
        conn: ConnId,
        dir: Dir,
    },
    Rto {
        conn: ConnId,
        dir: Dir,
        epoch: u64,
    },
    /// Handshake retransmission: stage 0 retries the SYN while the
    /// connection is still `SynSent`; stage 1 retries the SYN-ACK while
    /// still `SynAckSent`.
    SynRetry {
        conn: ConnId,
        stage: u8,
    },
}

/// The frame-carrying fabric beneath the stack. (The bus variant is much
/// larger than the switch; exactly one Fabric exists per Network, so the
/// size difference is irrelevant.)
#[allow(clippy::large_enum_variant)]
enum Fabric {
    Bus(EtherBus),
    Switch(SwitchFabric),
    Topo(Box<CompositeFabric>),
    /// A partitioned topology: the same compiled spec split across DES
    /// shards, byte-identical to `Topo` at every shard count.
    Sharded(Box<ShardedFabric>),
}

impl Fabric {
    fn enqueue(&mut self, nic: NicId, frame: Frame, now: SimTime) {
        match self {
            Fabric::Bus(b) => b.enqueue(nic, frame, now),
            Fabric::Switch(s) => s.enqueue(frame, now),
            Fabric::Topo(t) => t.enqueue(nic, frame, now),
            Fabric::Sharded(t) => t.enqueue(nic, frame, now),
        }
    }

    fn next_event_time(&self) -> Option<SimTime> {
        match self {
            Fabric::Bus(b) => b.next_event_time(),
            Fabric::Switch(s) => s.next_event_time(),
            Fabric::Topo(t) => t.next_event_time(),
            Fabric::Sharded(t) => t.next_event_time(),
        }
    }

    fn advance(&mut self, out: &mut Vec<Delivery>) -> Option<SimTime> {
        match self {
            Fabric::Bus(b) => b.advance(out),
            Fabric::Switch(s) => s.advance(out),
            Fabric::Topo(t) => t.advance(out),
            Fabric::Sharded(t) => t.advance(out),
        }
    }

    fn idle(&self) -> bool {
        match self {
            Fabric::Bus(b) => b.idle(),
            Fabric::Switch(s) => s.idle(),
            Fabric::Topo(t) => t.idle(),
            Fabric::Sharded(t) => t.idle(),
        }
    }

    fn set_promiscuous(&mut self, on: bool) {
        match self {
            Fabric::Bus(b) => b.set_promiscuous(on),
            Fabric::Switch(s) => s.set_promiscuous(on),
            Fabric::Topo(t) => t.set_promiscuous(on),
            Fabric::Sharded(t) => t.set_promiscuous(on),
        }
    }

    fn set_tap(&mut self, tap: Option<FrameTap>) {
        match self {
            Fabric::Bus(b) => b.set_tap(tap),
            Fabric::Switch(s) => s.set_tap(tap),
            Fabric::Topo(t) => t.set_tap(tap),
            Fabric::Sharded(t) => t.set_tap(tap),
        }
    }

    fn trace(&self) -> &[FrameRecord] {
        match self {
            Fabric::Bus(b) => b.trace(),
            Fabric::Switch(s) => s.trace(),
            Fabric::Topo(t) => t.trace(),
            Fabric::Sharded(t) => t.trace(),
        }
    }

    fn take_trace(&mut self) -> Vec<FrameRecord> {
        match self {
            Fabric::Bus(b) => b.take_trace(),
            Fabric::Switch(s) => s.take_trace(),
            Fabric::Topo(t) => t.take_trace(),
            Fabric::Sharded(t) => t.take_trace(),
        }
    }

    fn stats(&self) -> EtherStats {
        match self {
            Fabric::Bus(b) => b.stats(),
            Fabric::Switch(s) => {
                let (frames, bytes) = s.stats();
                EtherStats {
                    frames_delivered: frames,
                    bytes_delivered: bytes,
                    ..EtherStats::default()
                }
            }
            Fabric::Topo(t) => t.stats(),
            Fabric::Sharded(t) => t.stats(),
        }
    }

    fn host_count(&self) -> usize {
        match self {
            Fabric::Bus(b) => b.nic_count(),
            Fabric::Switch(s) => s.port_count(),
            Fabric::Topo(t) => t.host_count(),
            Fabric::Sharded(t) => t.host_count(),
        }
    }

    /// Errors surfaced for frames the fabric destroyed. The switched
    /// fabric never destroys frames.
    fn errors(&self) -> &[(SimTime, Frame, fxnet_sim::TxError)] {
        match self {
            Fabric::Bus(b) => b.errors(),
            Fabric::Switch(_) => &[],
            Fabric::Topo(t) => t.errors(),
            Fabric::Sharded(t) => t.errors(),
        }
    }

    /// Enable/disable passive per-link sampling (no-op on the legacy
    /// switch counterfactual, which has no link-level queues to observe).
    fn set_link_sampling(&mut self, bin_ns: Option<u64>) {
        match self {
            Fabric::Bus(b) => b.set_link_sampling(bin_ns),
            Fabric::Switch(_) => {}
            Fabric::Topo(t) => t.set_link_sampling(bin_ns),
            Fabric::Sharded(t) => t.set_link_sampling(bin_ns),
        }
    }

    /// Take the accumulated per-link sample series, if sampling is on.
    fn take_link_stats(&mut self) -> Option<LinkStats> {
        match self {
            Fabric::Bus(b) => {
                let series = b.take_link_series()?;
                Some(LinkStats {
                    bin_ns: b.link_sampling_bin_ns().unwrap_or(1),
                    links: vec![("seg:bus".to_string(), series)],
                })
            }
            Fabric::Switch(_) => None,
            Fabric::Topo(t) => t.take_link_stats(),
            Fabric::Sharded(t) => t.take_link_stats(),
        }
    }
}

/// Aggregate TCP-layer counters, snapshot via [`Network::tcp_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TcpStats {
    /// Data segments handed to the MAC layer (first transmissions only).
    pub data_segments: u64,
    /// Pure cumulative ACK frames sent.
    pub acks_sent: u64,
    /// Delayed-ACK timers that fired while still armed (the 200 ms clock
    /// the paper blames for half-window stalls).
    pub delayed_ack_fires: u64,
    /// SYN frames sent, including handshake retries.
    pub syn_frames: u64,
    /// Go-back-N retransmission bursts across all connections.
    pub retransmits: u64,
}

/// The protocol stack: every host's TCP/UDP endpoints over one fabric.
pub struct Network {
    cfg: NetConfig,
    bus: Fabric,
    conns: Vec<TcpConn>,
    timers: EventQueue<Timer>,
    tokens: TokenTable,
    errors_seen: usize,
    scratch: Vec<Delivery>,
    tcp_stats: TcpStats,
    /// Tagged delivery log, `Some` while causal capture is enabled. One
    /// event per delivered frame, in exactly delivery (= trace) order.
    causal: Option<Vec<CausalEvent>>,
}

impl Network {
    /// Build a stack with `hosts` stations attached to a fresh bus.
    pub fn new(cfg: NetConfig, hosts: usize) -> Network {
        let bus = match &cfg.link {
            LinkKind::SharedBus => {
                let mut b = EtherBus::new(cfg.ether.clone(), SimRng::new(cfg.seed));
                for _ in 0..hosts {
                    b.attach();
                }
                Fabric::Bus(b)
            }
            LinkKind::Switched(sc) => Fabric::Switch(SwitchFabric::new(sc.clone(), hosts)),
            LinkKind::Topology(spec) => {
                assert!(
                    spec.host_count() >= hosts,
                    "topology '{}' attaches {} hosts but the stack needs {hosts}",
                    spec.id,
                    spec.host_count(),
                );
                if cfg.shards > 1 {
                    Fabric::Sharded(Box::new(ShardedFabric::new(
                        spec.clone(),
                        &cfg.ether,
                        cfg.seed,
                        cfg.shards,
                    )))
                } else {
                    Fabric::Topo(Box::new(CompositeFabric::new(
                        spec.clone(),
                        &cfg.ether,
                        cfg.seed,
                    )))
                }
            }
        };
        Network {
            cfg,
            bus,
            conns: Vec::new(),
            timers: EventQueue::new(),
            tokens: TokenTable::default(),
            errors_seen: 0,
            scratch: Vec::new(),
            tcp_stats: TcpStats::default(),
            causal: None,
        }
    }

    /// Enable or disable causal capture. Tagging rides the token
    /// side-table only, so the schedule, the RNG, and the promiscuous
    /// trace are byte-identical either way.
    pub fn set_causal(&mut self, on: bool) {
        self.causal = if on { Some(Vec::new()) } else { None };
    }

    /// Take ownership of the causal event log (if capture was enabled).
    pub fn take_causal(&mut self) -> Option<Vec<CausalEvent>> {
        let taken = self.causal.take();
        if taken.is_some() {
            self.causal = Some(Vec::new());
        }
        taken
    }

    /// Number of hosts on the LAN.
    pub fn host_count(&self) -> usize {
        self.bus.host_count()
    }

    /// Enable the promiscuous trace tap (the tcpdump workstation).
    pub fn set_promiscuous(&mut self, on: bool) {
        self.bus.set_promiscuous(on);
    }

    /// Install a live frame tap at the promiscuous capture point (see
    /// [`fxnet_sim::FrameTap`]); `None` removes it.
    pub fn set_tap(&mut self, tap: Option<FrameTap>) {
        self.bus.set_tap(tap);
    }

    /// The promiscuous trace so far.
    pub fn trace(&self) -> &[FrameRecord] {
        self.bus.trace()
    }

    /// Take ownership of the promiscuous trace.
    pub fn take_trace(&mut self) -> Vec<FrameRecord> {
        self.bus.take_trace()
    }

    /// MAC statistics.
    pub fn ether_stats(&self) -> EtherStats {
        self.bus.stats()
    }

    /// Enable (`Some(bin_ns)`) or disable (`None`) passive per-link
    /// sampling — the fabric weather-map feed. Strictly observational:
    /// the schedule, RNG, and promiscuous trace are byte-identical
    /// either way.
    pub fn set_link_sampling(&mut self, bin_ns: Option<u64>) {
        self.bus.set_link_sampling(bin_ns);
    }

    /// Take the accumulated per-link sample series, if sampling is on.
    pub fn take_link_stats(&mut self) -> Option<LinkStats> {
        self.bus.take_link_stats()
    }

    /// Bytes host `h` has committed to TCP but not yet had acknowledged:
    /// unsent write-queue bytes plus in-flight segments, summed over its
    /// connections. This models the sender-side socket buffer occupancy a
    /// blocking `write` checks against.
    pub fn host_tcp_backlog(&self, h: HostId) -> u64 {
        let half_backlog = |half: &crate::tcp::Half| -> u64 {
            let unsent: usize = half.sndq.iter().map(|c| c.data.len() - c.sent).sum();
            unsent as u64 + half.inflight()
        };
        self.conns
            .iter()
            .map(|c| {
                let mut b = 0;
                if c.a == h {
                    b += half_backlog(&c.ab);
                }
                if c.b == h {
                    b += half_backlog(&c.ba);
                }
                b
            })
            .sum()
    }

    /// Total retransmitted bursts across all connections (lossy extension).
    pub fn total_retransmits(&self) -> u64 {
        self.conns
            .iter()
            .map(|c| c.ab.retransmits + c.ba.retransmits)
            .sum()
    }

    /// Snapshot of the TCP-layer counters.
    pub fn tcp_stats(&self) -> TcpStats {
        TcpStats {
            retransmits: self.total_retransmits(),
            ..self.tcp_stats
        }
    }

    /// Largest number of protocol timers ever pending at once.
    pub fn timer_high_water(&self) -> usize {
        self.timers.high_water()
    }

    fn token(&mut self, info: TokenInfo) -> u64 {
        self.tokens.insert(info)
    }

    /// Largest number of frame tokens (frames in flight) ever live at
    /// once — a direct read of the slab's high-water mark.
    pub fn token_high_water(&self) -> usize {
        self.tokens.high_water
    }

    fn nic(h: HostId) -> NicId {
        NicId(h.0)
    }

    /// Initiate a TCP connection from `a` to `b` (SYN at time `now`).
    pub fn connect(&mut self, a: HostId, b: HostId, now: SimTime) -> ConnId {
        assert_ne!(a, b, "loopback connections never reach the wire");
        let id = ConnId(self.conns.len() as u32);
        self.conns.push(TcpConn::new(a, b, now));
        let tok = self.token(TokenInfo::Syn { conn: id, stage: 0 });
        self.tcp_stats.syn_frames += 1;
        self.bus
            .enqueue(Self::nic(a), Frame::tcp(a, b, FrameKind::Syn, 0, tok), now);
        self.timers
            .push(now + self.cfg.rto, Timer::SynRetry { conn: id, stage: 0 });
        id
    }

    /// Queue application bytes on `conn` from host `from` at time `now`.
    ///
    /// Each call is one socket write: it is segmented independently
    /// (`TCP_NODELAY`), never coalesced with neighbouring writes.
    pub fn tcp_write(&mut self, conn: ConnId, from: HostId, data: Bytes, now: SimTime) {
        self.tcp_write_caused(conn, from, data, now, CauseId::NONE);
    }

    /// [`Network::tcp_write`] with a causal tag: every segment cut from
    /// this write (including retransmissions) carries `cause`.
    pub fn tcp_write_caused(
        &mut self,
        conn: ConnId,
        from: HostId,
        data: Bytes,
        now: SimTime,
        cause: CauseId,
    ) {
        if data.is_empty() {
            return;
        }
        let dir = self.conns[conn.0 as usize].dir_from(from);
        self.conns[conn.0 as usize]
            .half_mut(dir)
            .sndq
            .push_back(WriteChunk {
                data,
                sent: 0,
                cause,
            });
        self.try_emit(conn, dir, now);
    }

    /// Send a UDP datagram. Payload must fit one MTU; the PVM daemon layer
    /// fragments above this.
    pub fn udp_send(&mut self, src: HostId, dst: HostId, data: Bytes, now: SimTime) {
        self.udp_send_caused(src, dst, data, now, CauseId::NONE);
    }

    /// [`Network::udp_send`] with a causal tag.
    pub fn udp_send_caused(
        &mut self,
        src: HostId,
        dst: HostId,
        data: Bytes,
        now: SimTime,
        cause: CauseId,
    ) {
        assert!(data.len() <= MAX_UDP, "datagram exceeds MTU");
        assert_ne!(src, dst);
        let len = data.len() as u32;
        let tok = self.token(TokenInfo::Udp {
            src,
            dst,
            bytes: data,
            cause,
        });
        self.bus
            .enqueue(Self::nic(src), Frame::udp(src, dst, len, tok), now);
    }

    /// Emit as many segments as the window allows for `conn`/`dir`.
    fn try_emit(&mut self, conn: ConnId, dir: Dir, now: SimTime) {
        let (window, mss) = (u64::from(self.cfg.window), self.cfg.mss as usize);
        loop {
            let c = &mut self.conns[conn.0 as usize];
            if c.state != ConnState::Established {
                return;
            }
            let (src, dst) = (c.src(dir), c.dst(dir));
            let h = c.half_mut(dir);
            if h.inflight() >= window || !h.has_pending() {
                break;
            }
            let Some(chunk) = h.sndq.front_mut() else {
                break;
            };
            let n = mss.min(chunk.data.len() - chunk.sent);
            let payload = chunk.data.slice(chunk.sent..chunk.sent + n);
            let cause = chunk.cause;
            chunk.sent += n;
            let done = chunk.sent == chunk.data.len();
            if done {
                h.sndq.pop_front();
            }
            let seq = {
                let h = self.conns[conn.0 as usize].half_mut(dir);
                let seq = h.snd_next;
                h.snd_next += n as u64;
                h.unacked.push_back((seq, payload.clone(), cause));
                seq
            };
            let tok = self.token(TokenInfo::Data {
                conn,
                dir,
                seq,
                bytes: payload,
                cause,
                retx: false,
            });
            self.tcp_stats.data_segments += 1;
            self.bus.enqueue(
                Self::nic(src),
                Frame::tcp(src, dst, FrameKind::Data, n as u32, tok),
                now,
            );
            self.arm_rto_if_needed(conn, dir, now);
        }
    }

    fn arm_rto_if_needed(&mut self, conn: ConnId, dir: Dir, now: SimTime) {
        let rto = self.cfg.rto;
        let h = self.conns[conn.0 as usize].half_mut(dir);
        if !h.rto_armed && h.inflight() > 0 {
            h.rto_armed = true;
            h.rto_epoch += 1;
            let epoch = h.rto_epoch;
            self.timers.push(now + rto, Timer::Rto { conn, dir, epoch });
        }
    }

    /// Send a pure cumulative ACK for data flowing in `dir` on `conn`.
    fn send_ack(&mut self, conn: ConnId, dir: Dir, now: SimTime) {
        let c = &mut self.conns[conn.0 as usize];
        // The ACK travels opposite to the data.
        let (from, to) = (c.dst(dir), c.src(dir));
        let upto = {
            let h = c.half_mut(dir);
            h.segs_since_ack = 0;
            h.delack_armed = false;
            h.rcv_next
        };
        let tok = self.token(TokenInfo::Ack { conn, dir, upto });
        self.tcp_stats.acks_sent += 1;
        self.bus.enqueue(
            Self::nic(from),
            Frame::tcp(from, to, FrameKind::Ack, 0, tok),
            now,
        );
    }

    /// Time of the next protocol or MAC event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        match (self.bus.next_event_time(), self.timers.peek_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Whether nothing is pending anywhere in the stack.
    pub fn idle(&self) -> bool {
        self.bus.idle() && self.timers.is_empty()
    }

    /// Process exactly one event, appending application events to `out`.
    /// Returns the event time, or `None` if the stack is idle.
    pub fn advance(&mut self, out: &mut Vec<AppEvent>) -> Option<SimTime> {
        let t_bus = self.bus.next_event_time();
        let t_tmr = self.timers.peek_time();
        let bus_first = match (t_bus, t_tmr) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(tb), Some(tt)) => tb <= tt,
        };
        if bus_first {
            self.scratch.clear();
            let mut deliveries = std::mem::take(&mut self.scratch);
            let t = self.bus.advance(&mut deliveries);
            self.reap_bus_errors();
            for d in &deliveries {
                self.handle_frame(d.time, d.frame, d.meta, out);
            }
            self.scratch = deliveries;
            t
        } else {
            let (t, timer) = self.timers.pop()?;
            self.handle_timer(t, timer);
            Some(t)
        }
    }

    /// Drain every pending event up to quiescence, collecting app events.
    pub fn run_to_idle(&mut self) -> Vec<AppEvent> {
        let mut out = Vec::new();
        while self.advance(&mut out).is_some() {}
        out
    }

    /// Drop token-table entries for frames the fabric destroyed
    /// (collision overflow or corruption) so the table does not leak.
    /// Works across fabrics: the composite topology surfaces segment
    /// losses with original tokens restored.
    fn reap_bus_errors(&mut self) {
        let errs = self.bus.errors();
        while self.errors_seen < errs.len() {
            let (_, frame, _) = errs[self.errors_seen];
            self.tokens.remove(frame.token);
            self.errors_seen += 1;
        }
    }

    fn handle_timer(&mut self, now: SimTime, timer: Timer) {
        match timer {
            Timer::DelAck { conn, dir } => {
                if self.conns[conn.0 as usize].half(dir).delack_armed {
                    self.tcp_stats.delayed_ack_fires += 1;
                    self.send_ack(conn, dir, now);
                }
            }
            Timer::SynRetry { conn, stage } => {
                let rto = self.cfg.rto;
                let (a, b, state) = {
                    let c = &self.conns[conn.0 as usize];
                    (c.a, c.b, c.state)
                };
                let retry = match (stage, state) {
                    (0, ConnState::SynSent) => Some((a, b)),
                    (1, ConnState::SynAckSent) => Some((b, a)),
                    _ => None, // handshake progressed; stop retrying
                };
                if let Some((from, to)) = retry {
                    let tok = self.token(TokenInfo::Syn { conn, stage });
                    self.tcp_stats.syn_frames += 1;
                    self.bus.enqueue(
                        Self::nic(from),
                        Frame::tcp(from, to, FrameKind::Syn, 0, tok),
                        now,
                    );
                    self.timers.push(now + rto, Timer::SynRetry { conn, stage });
                }
            }
            Timer::Rto { conn, dir, epoch } => {
                let rto = self.cfg.rto;
                let c = &mut self.conns[conn.0 as usize];
                let (src, dst) = (c.src(dir), c.dst(dir));
                let h = c.half_mut(dir);
                if !h.rto_armed || h.rto_epoch != epoch {
                    return; // stale
                }
                if h.inflight() == 0 {
                    h.rto_armed = false;
                    return;
                }
                // Go-back-N: retransmit everything outstanding. Each
                // resent segment keeps its original cause, flagged as a
                // retransmission (the causal `Retransmit` edge).
                h.retransmits += 1;
                let resend: Vec<(u64, Bytes, CauseId)> = h.unacked.iter().cloned().collect();
                h.rto_epoch += 1;
                let epoch = h.rto_epoch;
                for (seq, bytes, cause) in resend {
                    let n = bytes.len() as u32;
                    let tok = self.token(TokenInfo::Data {
                        conn,
                        dir,
                        seq,
                        bytes,
                        cause,
                        retx: true,
                    });
                    self.bus.enqueue(
                        Self::nic(src),
                        Frame::tcp(src, dst, FrameKind::Data, n, tok),
                        now,
                    );
                }
                self.timers.push(now + rto, Timer::Rto { conn, dir, epoch });
            }
        }
    }

    fn dir_code(dir: Dir) -> u8 {
        match dir {
            Dir::AtoB => 0,
            Dir::BtoA => 1,
        }
    }

    /// Append one causal event for a delivered frame. Only called when
    /// capture is on; pure logging, so timing is untouched.
    fn log_causal(&mut self, now: SimTime, frame: &Frame, info: &TokenInfo, meta: FrameMeta) {
        let Some(log) = &mut self.causal else { return };
        let record = FrameRecord::capture(now, frame);
        let ev = match *info {
            TokenInfo::Data {
                conn,
                dir,
                seq,
                cause,
                retx,
                ..
            } => CausalEvent {
                record,
                cause,
                retx,
                conn: conn.0,
                dir: Self::dir_code(dir),
                seq,
                meta,
            },
            TokenInfo::Ack {
                conn, dir, upto, ..
            } => CausalEvent {
                record,
                cause: CauseId::protocol(ProtoCause::Ack),
                retx: false,
                conn: conn.0,
                dir: Self::dir_code(dir),
                seq: upto,
                meta,
            },
            TokenInfo::Syn { conn, stage } => CausalEvent {
                record,
                cause: CauseId::protocol(ProtoCause::Syn),
                retx: false,
                conn: conn.0,
                dir: 0,
                seq: u64::from(stage),
                meta,
            },
            TokenInfo::Udp { cause, .. } => CausalEvent {
                record,
                cause,
                retx: false,
                conn: 0,
                dir: 0,
                seq: 0,
                meta,
            },
        };
        log.push(ev);
    }

    fn handle_frame(
        &mut self,
        now: SimTime,
        frame: Frame,
        meta: FrameMeta,
        out: &mut Vec<AppEvent>,
    ) {
        let info = match self.tokens.remove(frame.token) {
            Some(i) => i,
            None => return, // reaped or stale
        };
        self.log_causal(now, &frame, &info, meta);
        match info {
            TokenInfo::Udp {
                src, dst, bytes, ..
            } => {
                out.push(AppEvent::Udp {
                    time: now,
                    src,
                    dst,
                    data: bytes,
                });
            }
            TokenInfo::Syn { conn, stage } => self.handle_syn(now, conn, stage, out),
            TokenInfo::Ack { conn, dir, upto } => self.handle_ack(now, conn, dir, upto),
            TokenInfo::Data {
                conn,
                dir,
                seq,
                bytes,
                ..
            } => self.handle_data(now, conn, dir, seq, bytes, out),
        }
    }

    fn handle_syn(&mut self, now: SimTime, conn: ConnId, stage: u8, out: &mut Vec<AppEvent>) {
        let (a, b, state) = {
            let c = &self.conns[conn.0 as usize];
            (c.a, c.b, c.state)
        };
        match stage {
            0 => {
                // SYN arrived at the acceptor; reply SYN-ACK (duplicates
                // from retries re-trigger the SYN-ACK, which is harmless).
                if state == ConnState::SynSent {
                    self.conns[conn.0 as usize].state = ConnState::SynAckSent;
                    self.timers
                        .push(now + self.cfg.rto, Timer::SynRetry { conn, stage: 1 });
                }
                let tok = self.token(TokenInfo::Syn { conn, stage: 1 });
                self.bus
                    .enqueue(Self::nic(b), Frame::tcp(b, a, FrameKind::Syn, 0, tok), now);
            }
            1 => {
                // SYN-ACK back at the initiator: established; send final ACK
                // and flush any writes queued during the handshake.
                if state != ConnState::Established {
                    self.conns[conn.0 as usize].state = ConnState::Established;
                    out.push(AppEvent::TcpEstablished { time: now, conn });
                }
                let tok = self.token(TokenInfo::Syn { conn, stage: 2 });
                self.bus
                    .enqueue(Self::nic(a), Frame::tcp(a, b, FrameKind::Ack, 0, tok), now);
                self.try_emit(conn, Dir::AtoB, now);
                self.try_emit(conn, Dir::BtoA, now);
            }
            _ => {
                // Final handshake ACK at the acceptor: the connection is
                // fully open on both ends (data arriving earlier would
                // also have promoted it).
                if state == ConnState::SynAckSent {
                    self.conns[conn.0 as usize].state = ConnState::Established;
                    self.try_emit(conn, Dir::BtoA, now);
                }
            }
        }
    }

    fn handle_ack(&mut self, now: SimTime, conn: ConnId, dir: Dir, upto: u64) {
        let advanced = {
            let h = self.conns[conn.0 as usize].half_mut(dir);
            if upto <= h.snd_acked {
                false
            } else {
                h.snd_acked = upto;
                while let Some(&(seq, ref b, _)) = h.unacked.front() {
                    if seq + b.len() as u64 <= upto {
                        h.unacked.pop_front();
                    } else {
                        break;
                    }
                }
                // Re-arm or disarm the retransmission clock.
                h.rto_epoch += 1;
                h.rto_armed = false;
                true
            }
        };
        if advanced {
            self.arm_rto_if_needed(conn, dir, now);
            self.try_emit(conn, dir, now);
        }
    }

    fn handle_data(
        &mut self,
        now: SimTime,
        conn: ConnId,
        dir: Dir,
        seq: u64,
        bytes: Bytes,
        out: &mut Vec<AppEvent>,
    ) {
        let ack_every = self.cfg.ack_every;
        let delack = self.cfg.delack;
        enum AckAction {
            Now,
            Delay,
            None,
        }
        // Data implies the peer saw our SYN-ACK even if the final ACK was
        // lost: promote to Established.
        if self.conns[conn.0 as usize].state == ConnState::SynAckSent {
            self.conns[conn.0 as usize].state = ConnState::Established;
            self.try_emit(conn, Dir::BtoA, now);
        }
        let action = {
            let h = self.conns[conn.0 as usize].half_mut(dir);
            if seq == h.rcv_next {
                h.rcv_next += bytes.len() as u64;
                out.push(AppEvent::TcpData {
                    time: now,
                    conn,
                    dir,
                    data: bytes,
                });
                h.segs_since_ack += 1;
                if h.segs_since_ack >= ack_every {
                    AckAction::Now
                } else if !h.delack_armed {
                    h.delack_armed = true;
                    AckAction::Delay
                } else {
                    AckAction::None
                }
            } else {
                // Duplicate (retransmission overlap) or gap (loss ahead):
                // re-assert the cumulative ACK immediately.
                AckAction::Now
            }
        };
        match action {
            AckAction::Now => self.send_ack(conn, dir, now),
            AckAction::Delay => self.timers.push(now + delack, Timer::DelAck { conn, dir }),
            AckAction::None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::Proto;

    fn net(hosts: usize) -> Network {
        Network::new(NetConfig::default(), hosts)
    }

    fn collect_tcp_data(events: &[AppEvent]) -> Vec<u8> {
        let mut v = Vec::new();
        for e in events {
            if let AppEvent::TcpData { data, .. } = e {
                v.extend_from_slice(data);
            }
        }
        v
    }

    #[test]
    fn handshake_is_three_58_byte_frames() {
        let mut n = net(2);
        n.set_promiscuous(true);
        n.connect(HostId(0), HostId(1), SimTime::ZERO);
        let ev = n.run_to_idle();
        assert!(matches!(ev[0], AppEvent::TcpEstablished { .. }));
        let tr = n.trace();
        assert_eq!(tr.len(), 3);
        assert!(tr.iter().all(|r| r.wire_len == 58 && r.proto == Proto::Tcp));
        assert_eq!(tr[0].src, HostId(0));
        assert_eq!(tr[1].src, HostId(1));
        assert_eq!(tr[2].src, HostId(0));
    }

    #[test]
    fn single_write_segments_trimodally() {
        let mut n = net(2);
        n.set_promiscuous(true);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        n.tcp_write(c, HostId(0), Bytes::from(vec![7u8; 4000]), SimTime::ZERO);
        let ev = n.run_to_idle();
        assert_eq!(collect_tcp_data(&ev), vec![7u8; 4000]);
        let sizes: Vec<u32> = n
            .trace()
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .map(|r| r.wire_len)
            .collect();
        // 4000 = 1460 + 1460 + 1080 → 1518, 1518, 1138.
        assert_eq!(sizes, vec![1518, 1518, 1138]);
        // ACKs: one immediate (after 2 segments) + one delayed for the tail.
        let acks = n
            .trace()
            .iter()
            .filter(|r| r.kind == FrameKind::Ack && r.src == HostId(1))
            .count();
        assert_eq!(acks, 2);
    }

    #[test]
    fn separate_writes_are_not_coalesced() {
        let mut n = net(2);
        n.set_promiscuous(true);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        n.tcp_write(c, HostId(0), Bytes::from(vec![1u8; 100]), SimTime::ZERO);
        n.tcp_write(c, HostId(0), Bytes::from(vec![2u8; 200]), SimTime::ZERO);
        let ev = n.run_to_idle();
        assert_eq!(collect_tcp_data(&ev).len(), 300);
        let sizes: Vec<u32> = n
            .trace()
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .map(|r| r.wire_len)
            .collect();
        assert_eq!(sizes, vec![158, 258]);
    }

    #[test]
    fn delayed_ack_fires_at_200ms() {
        let mut n = net(2);
        n.set_promiscuous(true);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        n.tcp_write(c, HostId(0), Bytes::from(vec![0u8; 10]), SimTime::ZERO);
        n.run_to_idle();
        let data_t = n
            .trace()
            .iter()
            .find(|r| r.kind == FrameKind::Data)
            .unwrap()
            .time;
        let ack = n
            .trace()
            .iter()
            .find(|r| r.kind == FrameKind::Ack && r.src == HostId(1))
            .unwrap();
        let lag = ack.time - data_t;
        assert!(
            lag >= SimTime::from_millis(200) && lag < SimTime::from_millis(201),
            "delack lag {lag}"
        );
    }

    #[test]
    fn window_limits_inflight_but_all_delivered() {
        let cfg = NetConfig {
            window: 2 * MSS, // two segments
            ..NetConfig::default()
        };
        let mut n = Network::new(cfg, 2);
        n.set_promiscuous(true);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        let payload: Vec<u8> = (0..20_000u32).map(|i| i as u8).collect();
        n.tcp_write(c, HostId(0), Bytes::from(payload.clone()), SimTime::ZERO);
        let ev = n.run_to_idle();
        assert_eq!(collect_tcp_data(&ev), payload);
    }

    #[test]
    fn writes_before_establishment_flush_after() {
        let mut n = net(2);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        // Queue data immediately; handshake has not completed yet.
        n.tcp_write(c, HostId(0), Bytes::from(vec![9u8; 500]), SimTime::ZERO);
        let ev = n.run_to_idle();
        assert_eq!(collect_tcp_data(&ev), vec![9u8; 500]);
    }

    #[test]
    fn duplex_data_flows_both_ways() {
        let mut n = net(2);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        n.tcp_write(c, HostId(0), Bytes::from_static(b"ping"), SimTime::ZERO);
        n.tcp_write(c, HostId(1), Bytes::from_static(b"pong"), SimTime::ZERO);
        let ev = n.run_to_idle();
        let ab: Vec<u8> = ev
            .iter()
            .filter_map(|e| match e {
                AppEvent::TcpData {
                    dir: Dir::AtoB,
                    data,
                    ..
                } => Some(data.to_vec()),
                _ => None,
            })
            .flatten()
            .collect();
        let ba: Vec<u8> = ev
            .iter()
            .filter_map(|e| match e {
                AppEvent::TcpData {
                    dir: Dir::BtoA,
                    data,
                    ..
                } => Some(data.to_vec()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(ab, b"ping");
        assert_eq!(ba, b"pong");
    }

    #[test]
    fn udp_datagram_delivered() {
        let mut n = net(3);
        n.set_promiscuous(true);
        n.udp_send(
            HostId(0),
            HostId(2),
            Bytes::from(vec![5u8; 64]),
            SimTime::ZERO,
        );
        let ev = n.run_to_idle();
        assert_eq!(ev.len(), 1);
        match &ev[0] {
            AppEvent::Udp { src, dst, data, .. } => {
                assert_eq!(*src, HostId(0));
                assert_eq!(*dst, HostId(2));
                assert_eq!(data.len(), 64);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(n.trace()[0].wire_len, 18 + 20 + 8 + 64);
        assert_eq!(n.trace()[0].proto, Proto::Udp);
    }

    #[test]
    fn lossy_bus_recovers_via_retransmission() {
        let cfg = NetConfig {
            ether: EtherConfig {
                drop_prob: 0.2,
                ..EtherConfig::default()
            },
            rto: SimTime::from_millis(300),
            ..NetConfig::default()
        };
        let mut n = Network::new(cfg, 2);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i * 7) as u8).collect();
        n.tcp_write(c, HostId(0), Bytes::from(payload.clone()), SimTime::ZERO);
        let ev = n.run_to_idle();
        assert_eq!(collect_tcp_data(&ev), payload, "stream must survive loss");
        assert!(n.total_retransmits() > 0, "loss must have triggered GBN");
    }

    #[test]
    fn deterministic_trace_for_same_seed() {
        let run = || {
            let mut n = net(4);
            n.set_promiscuous(true);
            let c1 = n.connect(HostId(0), HostId(1), SimTime::ZERO);
            let c2 = n.connect(HostId(2), HostId(3), SimTime::ZERO);
            for i in 0..10u64 {
                let t = SimTime::from_micros(i * 500);
                n.tcp_write(c1, HostId(0), Bytes::from(vec![1u8; 3000]), t);
                n.tcp_write(c2, HostId(2), Bytes::from(vec![2u8; 1000]), t);
            }
            n.run_to_idle();
            n.take_trace()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ack_only_population_is_58_bytes() {
        let mut n = net(2);
        n.set_promiscuous(true);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        n.tcp_write(c, HostId(0), Bytes::from(vec![0u8; 30_000]), SimTime::ZERO);
        n.run_to_idle();
        let acks: Vec<u32> = n
            .trace()
            .iter()
            .filter(|r| r.kind == FrameKind::Ack)
            .map(|r| r.wire_len)
            .collect();
        assert!(!acks.is_empty());
        assert!(acks.iter().all(|&s| s == 58));
    }

    #[test]
    fn switched_fabric_carries_tcp() {
        let cfg = NetConfig {
            link: LinkKind::Switched(fxnet_sim::SwitchConfig::default()),
            ..NetConfig::default()
        };
        let mut n = Network::new(cfg, 4);
        n.set_promiscuous(true);
        let c1 = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        let c2 = n.connect(HostId(2), HostId(3), SimTime::ZERO);
        let payload: Vec<u8> = (0..30_000u32).map(|i| i as u8).collect();
        n.tcp_write(c1, HostId(0), Bytes::from(payload.clone()), SimTime::ZERO);
        n.tcp_write(c2, HostId(2), Bytes::from(payload.clone()), SimTime::ZERO);
        let ev = n.run_to_idle();
        let mut got1 = Vec::new();
        let mut got2 = Vec::new();
        for e in &ev {
            if let AppEvent::TcpData { conn, data, .. } = e {
                if *conn == c1 {
                    got1.extend_from_slice(data);
                } else {
                    got2.extend_from_slice(data);
                }
            }
        }
        assert_eq!(got1, payload);
        assert_eq!(got2, payload);
        // No collisions on a switch.
        assert_eq!(n.ether_stats().collisions, 0);
    }

    #[test]
    fn single_segment_topology_matches_shared_bus_byte_for_byte() {
        let run = |link: LinkKind| {
            let cfg = NetConfig {
                link,
                ..NetConfig::default()
            };
            let mut n = Network::new(cfg, 4);
            n.set_promiscuous(true);
            let c1 = n.connect(HostId(0), HostId(1), SimTime::ZERO);
            let c2 = n.connect(HostId(2), HostId(3), SimTime::ZERO);
            for i in 0..8u64 {
                let t = SimTime::from_micros(i * 300);
                n.tcp_write(c1, HostId(0), Bytes::from(vec![1u8; 4000]), t);
                n.tcp_write(c2, HostId(2), Bytes::from(vec![2u8; 2500]), t);
            }
            n.run_to_idle();
            (n.take_trace(), n.ether_stats())
        };
        let rate = EtherConfig::default().bandwidth_bps;
        let (bus_trace, bus_stats) = run(LinkKind::SharedBus);
        let (topo_trace, topo_stats) =
            run(LinkKind::Topology(TopologySpec::single_segment(4, rate)));
        assert_eq!(bus_trace, topo_trace);
        assert_eq!(bus_stats, topo_stats);
    }

    #[test]
    fn topology_fabric_carries_tcp_across_a_trunk() {
        let cfg = NetConfig {
            link: LinkKind::Topology(fxnet_topo::TopologySpec::two_switches_trunk(
                4,
                fxnet_sim::RATE_10M,
            )),
            ..NetConfig::default()
        };
        let mut n = Network::new(cfg, 4);
        n.set_promiscuous(true);
        // Host 0 (sw0) to host 3 (sw1): every frame crosses the trunk.
        let c = n.connect(HostId(0), HostId(3), SimTime::ZERO);
        let payload: Vec<u8> = (0..40_000u32).map(|i| i as u8).collect();
        n.tcp_write(c, HostId(0), Bytes::from(payload.clone()), SimTime::ZERO);
        let ev = n.run_to_idle();
        assert_eq!(collect_tcp_data(&ev), payload);
        // Switched segments: no collisions anywhere.
        assert_eq!(n.ether_stats().collisions, 0);
    }

    #[test]
    fn ack_every_one_acks_each_segment() {
        let cfg = NetConfig {
            ack_every: 1,
            ..NetConfig::default()
        };
        let mut n = Network::new(cfg, 2);
        n.set_promiscuous(true);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        n.tcp_write(
            c,
            HostId(0),
            Bytes::from(vec![0u8; 5 * 1460]),
            SimTime::ZERO,
        );
        n.run_to_idle();
        let data = n
            .trace()
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .count();
        let acks = n
            .trace()
            .iter()
            .filter(|r| r.kind == FrameKind::Ack && r.src == HostId(1))
            .count();
        assert_eq!(data, 5);
        assert_eq!(acks, 5, "every segment must be acknowledged immediately");
    }

    #[test]
    fn backlog_accounting_tracks_writes_and_drains() {
        let mut n = net(2);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        assert_eq!(n.host_tcp_backlog(HostId(0)), 0);
        n.tcp_write(c, HostId(0), Bytes::from(vec![0u8; 10_000]), SimTime::ZERO);
        assert_eq!(n.host_tcp_backlog(HostId(0)), 10_000);
        n.run_to_idle();
        assert_eq!(n.host_tcp_backlog(HostId(0)), 0);
        assert_eq!(n.host_tcp_backlog(HostId(1)), 0);
    }

    #[test]
    #[should_panic(expected = "datagram exceeds MTU")]
    fn oversized_datagram_rejected() {
        let mut n = net(2);
        n.udp_send(
            HostId(0),
            HostId(1),
            Bytes::from(vec![0u8; 2000]),
            SimTime::ZERO,
        );
    }

    #[test]
    fn empty_write_is_a_no_op() {
        let mut n = net(2);
        n.set_promiscuous(true);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        n.tcp_write(c, HostId(0), Bytes::new(), SimTime::ZERO);
        n.run_to_idle();
        // Handshake only, no data frames.
        assert!(n.trace().iter().all(|r| r.kind != FrameKind::Data));
    }

    #[test]
    fn syn_loss_is_recovered_by_retry() {
        // Guarantee the very first frame is corrupted: drop_prob 1.0 would
        // kill everything, so use a high rate and verify establishment
        // still happens via SYN retries.
        let cfg = NetConfig {
            ether: EtherConfig {
                drop_prob: 0.4,
                ..EtherConfig::default()
            },
            rto: SimTime::from_millis(100),
            ..NetConfig::default()
        };
        let mut n = Network::new(cfg, 2);
        let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
        n.tcp_write(c, HostId(0), Bytes::from(vec![7u8; 5000]), SimTime::ZERO);
        let ev = n.run_to_idle();
        assert_eq!(collect_tcp_data(&ev), vec![7u8; 5000]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn tcp_delivers_exact_bytes_in_order(
                writes in prop::collection::vec(1usize..5000, 1..12),
                seed in 0u64..1000,
            ) {
                let cfg = NetConfig { seed, ..NetConfig::default() };
                let mut n = Network::new(cfg, 2);
                let c = n.connect(HostId(0), HostId(1), SimTime::ZERO);
                let mut expect = Vec::new();
                for (i, &w) in writes.iter().enumerate() {
                    let chunk: Vec<u8> = (0..w).map(|j| (i * 31 + j) as u8).collect();
                    expect.extend_from_slice(&chunk);
                    n.tcp_write(c, HostId(0), Bytes::from(chunk), SimTime::from_micros(i as u64));
                }
                let ev = n.run_to_idle();
                prop_assert_eq!(collect_tcp_data(&ev), expect);
            }

            #[test]
            fn trace_times_are_nondecreasing(
                writes in prop::collection::vec(1usize..3000, 1..8),
            ) {
                let mut n = net(3);
                n.set_promiscuous(true);
                let c1 = n.connect(HostId(0), HostId(2), SimTime::ZERO);
                let c2 = n.connect(HostId(1), HostId(2), SimTime::ZERO);
                for (i, &w) in writes.iter().enumerate() {
                    let conn = if i % 2 == 0 { c1 } else { c2 };
                    let from = if i % 2 == 0 { HostId(0) } else { HostId(1) };
                    n.tcp_write(conn, from, Bytes::from(vec![i as u8; w]), SimTime::ZERO);
                }
                n.run_to_idle();
                let tr = n.trace();
                prop_assert!(tr.windows(2).all(|w| w[0].time <= w[1].time));
            }
        }
    }
}
