//! TCP connection state.

use bytes::Bytes;
use fxnet_sim::{CauseId, HostId, SimTime};
use std::collections::VecDeque;

/// Identifier of an established (or establishing) TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u32);

/// Direction of data flow within a duplex connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// From the connecting host (`a`) to the accepting host (`b`).
    AtoB,
    /// From `b` to `a`.
    BtoA,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::AtoB => Dir::BtoA,
            Dir::BtoA => Dir::AtoB,
        }
    }
}

/// Connection establishment state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN-ACK sent by the acceptor, awaiting the final ACK.
    SynAckSent,
    /// Three-way handshake complete; data may flow.
    Established,
}

/// One application write, segmented independently (`TCP_NODELAY` model).
#[derive(Debug)]
pub(crate) struct WriteChunk {
    pub data: Bytes,
    /// Bytes of this chunk already emitted as segments.
    pub sent: usize,
    /// Cause of the write; inherited by every segment cut from it.
    pub cause: CauseId,
}

/// Send/receive state for one direction of a connection.
#[derive(Debug)]
pub(crate) struct Half {
    /// Pending application writes not yet fully segmented.
    pub sndq: VecDeque<WriteChunk>,
    /// Next sequence number to assign (bytes since connection start).
    pub snd_next: u64,
    /// Highest cumulative ACK received.
    pub snd_acked: u64,
    /// Segments emitted but not yet cumulatively acknowledged, kept for
    /// go-back-N retransmission: `(seq, payload, cause)`. A retransmitted
    /// segment keeps the *original* cause.
    pub unacked: VecDeque<(u64, Bytes, CauseId)>,
    /// Receiver: next expected sequence number.
    pub rcv_next: u64,
    /// Receiver: full segments received since the last ACK was sent.
    pub segs_since_ack: u32,
    /// Receiver: whether a delayed-ACK timer is armed.
    pub delack_armed: bool,
    /// Sender: whether a retransmission timer is armed.
    pub rto_armed: bool,
    /// Sender: epoch counter, bumped whenever the RTO is re-armed so stale
    /// timer events can be ignored.
    pub rto_epoch: u64,
    /// Last time the retransmit fired, for tests/statistics.
    pub retransmits: u64,
}

impl Half {
    pub(crate) fn new() -> Half {
        Half {
            sndq: VecDeque::new(),
            snd_next: 0,
            snd_acked: 0,
            unacked: VecDeque::new(),
            rcv_next: 0,
            segs_since_ack: 0,
            delack_armed: false,
            rto_armed: false,
            rto_epoch: 0,
            retransmits: 0,
        }
    }

    /// Bytes in flight (sent and not yet acknowledged).
    pub(crate) fn inflight(&self) -> u64 {
        self.snd_next - self.snd_acked
    }

    /// Whether the sender has queued data not yet emitted.
    pub(crate) fn has_pending(&self) -> bool {
        self.sndq.front().is_some_and(|c| c.sent < c.data.len())
    }
}

/// A duplex TCP connection between two hosts.
#[derive(Debug)]
pub(crate) struct TcpConn {
    pub a: HostId,
    pub b: HostId,
    pub state: ConnState,
    pub ab: Half,
    pub ba: Half,
    /// Time the connection was initiated, for diagnostics.
    #[allow(dead_code)]
    pub opened: SimTime,
}

impl TcpConn {
    pub(crate) fn new(a: HostId, b: HostId, opened: SimTime) -> TcpConn {
        TcpConn {
            a,
            b,
            state: ConnState::SynSent,
            ab: Half::new(),
            ba: Half::new(),
            opened,
        }
    }

    /// The half carrying data in direction `dir`.
    pub(crate) fn half(&self, dir: Dir) -> &Half {
        match dir {
            Dir::AtoB => &self.ab,
            Dir::BtoA => &self.ba,
        }
    }

    pub(crate) fn half_mut(&mut self, dir: Dir) -> &mut Half {
        match dir {
            Dir::AtoB => &mut self.ab,
            Dir::BtoA => &mut self.ba,
        }
    }

    /// Source host for data flowing in `dir`.
    pub(crate) fn src(&self, dir: Dir) -> HostId {
        match dir {
            Dir::AtoB => self.a,
            Dir::BtoA => self.b,
        }
    }

    /// Destination host for data flowing in `dir`.
    pub(crate) fn dst(&self, dir: Dir) -> HostId {
        match dir {
            Dir::AtoB => self.b,
            Dir::BtoA => self.a,
        }
    }

    /// Direction of data sent *from* `h` on this connection.
    pub(crate) fn dir_from(&self, h: HostId) -> Dir {
        if h == self.a {
            Dir::AtoB
        } else {
            debug_assert_eq!(h, self.b);
            Dir::BtoA
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::AtoB.flip(), Dir::BtoA);
        assert_eq!(Dir::BtoA.flip(), Dir::AtoB);
    }

    #[test]
    fn half_inflight_accounting() {
        let mut h = Half::new();
        assert_eq!(h.inflight(), 0);
        h.snd_next = 100;
        h.snd_acked = 40;
        assert_eq!(h.inflight(), 60);
        assert!(!h.has_pending());
        h.sndq.push_back(WriteChunk {
            data: Bytes::from_static(b"xyz"),
            sent: 0,
            cause: CauseId::NONE,
        });
        assert!(h.has_pending());
        h.sndq.front_mut().unwrap().sent = 3;
        assert!(!h.has_pending());
    }

    #[test]
    fn conn_direction_mapping() {
        let c = TcpConn::new(HostId(3), HostId(7), SimTime::ZERO);
        assert_eq!(c.src(Dir::AtoB), HostId(3));
        assert_eq!(c.dst(Dir::AtoB), HostId(7));
        assert_eq!(c.src(Dir::BtoA), HostId(7));
        assert_eq!(c.dir_from(HostId(3)), Dir::AtoB);
        assert_eq!(c.dir_from(HostId(7)), Dir::BtoA);
    }
}
