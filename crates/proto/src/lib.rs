//! # fxnet-proto
//!
//! A reduced TCP/UDP stack over the simulated shared Ethernet of
//! [`fxnet_sim`], reproducing the wire behaviour that shapes the packet
//! populations in the paper (Figures 3, 4, 8, 9):
//!
//! * **TCP** — each application write (a PVM fragment) is segmented
//!   independently into MSS-sized (1460 B) segments plus a remainder, as a
//!   `TCP_NODELAY` socket would; this is what makes single-fragment PVM
//!   messages *trimodal* (1518 B full segments, one remainder packet, and
//!   58 B pure ACKs) while T2DFFT's multi-fragment messages produce a broad
//!   size mix. Receivers acknowledge every second segment immediately and
//!   otherwise arm a 200 ms delayed-ACK timer (4.3BSD-derived stacks such
//!   as OSF/1). Connections are established with a SYN / SYN-ACK / ACK
//!   handshake. A fixed send window models the era's default socket
//!   buffers; congestion control is deliberately absent — the paper's LAN
//!   is a single uncongested collision domain where the MAC layer, not
//!   TCP, arbitrates (documented substitution, DESIGN.md §2).
//! * **Go-back-N retransmission** — only exercised in the lossy-bus
//!   extension; the measured environment is lossless.
//! * **UDP** — datagram service used by the PVM daemons.
//!
//! The stack is pull-driven like the bus beneath it: the owner interleaves
//! [`Network::advance`] with its own logic, injecting writes at simulated
//! times of its choosing and consuming in-order byte deliveries.
//!
//! ```
//! use fxnet_proto::{AppEvent, NetConfig, Network};
//! use fxnet_sim::{HostId, SimTime};
//!
//! let mut net = Network::new(NetConfig::default(), 2);
//! let conn = net.connect(HostId(0), HostId(1), SimTime::ZERO);
//! net.tcp_write(conn, HostId(0), bytes::Bytes::from(vec![7u8; 4000]), SimTime::ZERO);
//! let delivered: usize = net
//!     .run_to_idle()
//!     .iter()
//!     .filter_map(|e| match e {
//!         AppEvent::TcpData { data, .. } => Some(data.len()),
//!         _ => None,
//!     })
//!     .sum();
//! assert_eq!(delivered, 4000);
//! ```

pub mod network;
pub mod tcp;

pub use network::{AppEvent, LinkKind, NetConfig, Network, TcpStats};
pub use tcp::{ConnId, Dir};
