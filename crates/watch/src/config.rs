//! Watcher configuration: window geometry, compliance thresholds, and
//! event-capture bounds.

use fxnet_sim::SimTime;

/// Tuning knobs of the streaming watcher. Every threshold is expressed
/// against the *admitted contract* ([`crate::TenantContract`]), so the
/// same configuration works across programs of very different scales:
/// tolerances are multiples of what the tenant claimed, not absolute
/// byte counts.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Sliding bandwidth window (the paper's 10 ms measurement window).
    pub window: SimTime,
    /// Bandwidth bin width for the online spectral/compliance signal.
    pub bin: SimTime,
    /// Sliding-DFT window length in bins; must be a power of two.
    pub dft_window: usize,
    /// Harmonics of each tenant's contract fundamental `1/t_bi` tracked
    /// live by the sliding DFT (the "top-K admitted peaks").
    pub harmonics: usize,
    /// Flight-recorder capacity: frames preceding each event that are
    /// dumped alongside it. Zero disables the recorder.
    pub flight_recorder: usize,
    /// Closed bins ignored per tenant before compliance checks begin
    /// (startup chatter: PVM enrollment, first-touch traffic).
    pub warmup_bins: usize,
    /// Length of the rolling-mean window, in closed bins, that the
    /// sustained-bandwidth check smooths over. Must span at least one
    /// full burst cycle or bursty-but-compliant tenants false-positive.
    pub mean_window_bins: usize,
    /// Consecutive over-threshold rolling-mean evaluations required
    /// before a sustained-bandwidth violation fires.
    pub breach_bins: usize,
    /// Sustained violation threshold: rolling mean bandwidth above
    /// `mean_tolerance × contract mean_load`.
    pub mean_tolerance: f64,
    /// Burst-volume violation threshold: one detected burst carrying
    /// more than `burst_tolerance × claimed cycle volume` bytes.
    pub burst_tolerance: f64,
    /// Quiet gap that separates bursts, for both the tenant-aggregate
    /// `[l, b, c]` estimator and per-connection burst detection.
    pub burst_gap: SimTime,
    /// Cap on recorded `BurstAnomaly` events per tenant (violations are
    /// latched to one per tenant; anomalies are merely capped).
    pub max_anomalies: usize,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            window: SimTime::from_millis(10),
            bin: SimTime::from_millis(10),
            dft_window: 256,
            harmonics: 3,
            flight_recorder: 32,
            warmup_bins: 20,
            mean_window_bins: 100,
            breach_bins: 50,
            mean_tolerance: 2.0,
            burst_tolerance: 2.0,
            burst_gap: SimTime::from_millis(10),
            max_anomalies: 4,
        }
    }
}

impl WatchConfig {
    /// Validate the geometry (panics on nonsense values, mirroring the
    /// assert style of the sim crates).
    pub fn validated(self) -> Self {
        assert!(self.window > SimTime::ZERO, "window must be positive");
        assert!(self.bin > SimTime::ZERO, "bin must be positive");
        assert!(
            self.dft_window.is_power_of_two(),
            "dft_window must be a power of two"
        );
        assert!(self.mean_tolerance > 0.0 && self.burst_tolerance > 0.0);
        self
    }
}
