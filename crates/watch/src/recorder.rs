//! The flight recorder: a bounded ring of the most recent frames,
//! snapshotted into each emitted event so offline debugging sees the
//! traffic that led up to a violation without retaining the whole trace.

use fxnet_sim::FrameRecord;
use std::collections::VecDeque;

/// Fixed-capacity frame ring. `push` is O(1); `snapshot` copies the
/// current contents oldest-first.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<FrameRecord>,
}

impl FlightRecorder {
    /// A recorder holding the last `cap` frames (zero disables it).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap,
            ring: VecDeque::with_capacity(cap),
        }
    }

    /// Record one frame, evicting the oldest when full.
    pub fn push(&mut self, r: FrameRecord) {
        if self.cap == 0 {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(r);
    }

    /// The retained frames, oldest first.
    pub fn snapshot(&self) -> Vec<FrameRecord> {
        self.ring.iter().copied().collect()
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, HostId, SimTime};

    fn rec(i: u64) -> FrameRecord {
        let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, 100, i);
        FrameRecord::capture(SimTime::from_micros(i), &f)
    }

    #[test]
    fn wraps_keeping_exactly_the_last_n() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..10 {
            fr.push(rec(i));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 4);
        let times: Vec<_> = snap.iter().map(|r| r.time).collect();
        assert_eq!(
            times,
            (6..10).map(SimTime::from_micros).collect::<Vec<_>>(),
            "ring must hold the last four frames, oldest first"
        );
    }

    #[test]
    fn partial_fill_returns_everything_in_order() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..3 {
            fr.push(rec(i));
        }
        assert_eq!(fr.len(), 3);
        assert!(fr.snapshot().windows(2).all(|w| w[0].time < w[1].time));
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut fr = FlightRecorder::new(0);
        fr.push(rec(1));
        assert!(fr.is_empty());
        assert_eq!(fr.snapshot(), Vec::new());
    }
}
