//! The streaming watcher: frames in, structured events and metrics out.
//!
//! [`StreamWatch`] hangs off the simulator's frame tap
//! (`fxnet_sim::FrameTap`) and folds every delivered frame into O(1)
//! amortized state: a sliding 10 ms bandwidth window, a static binner
//! feeding a sliding DFT at the admitted tenants' contract frequencies,
//! a per-tenant `[l, b, c]` estimator, per-connection burst detection,
//! and the compliance checks that compare all of it against what each
//! tenant *claimed* at admission. The watcher never touches the
//! simulation — it only reads the records the tracer already captures —
//! so the trace is byte-identical with and without it, and its state is
//! a pure function of the frame stream (deterministic under `--seed`).

use crate::config::WatchConfig;
use crate::estimator::{BurstEstimator, ClosedBurst, LiveEstimate};
use crate::event::{to_jsonl, EventKind, WatchEvent};
use crate::recorder::FlightRecorder;
use fxnet_qos::ContractTerms;
use fxnet_sim::{FrameRecord, SimTime};
use fxnet_spectral::{goertzel_power, padded_bin, SlidingDft};
use fxnet_telemetry::TelemetryRegistry;
use fxnet_trace::{SlidingBandwidth, StreakLatch, StreamBinner};
use std::collections::BTreeMap;

/// What one tenant promised the admission controller, in plain numbers.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantContract {
    /// Tenant display name.
    pub name: String,
    /// The admitted descriptor evaluated at the negotiated operating
    /// point (the *claimed* terms — an over-driving tenant's actual
    /// traffic will exceed them).
    pub terms: ContractTerms,
}

/// One tracked spectral peak: a harmonic of a tenant's contract
/// fundamental `1/t_bi`, with its live sliding-DFT power and the batch
/// (Goertzel-over-the-whole-series) power computed at finalize.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpectralPeak {
    pub tenant: String,
    /// Harmonic number (1 = fundamental).
    pub harmonic: u32,
    /// Tracked frequency, Hz.
    pub freq_hz: f64,
    /// Sliding-DFT bin index inside the watcher's window.
    pub dft_bin: usize,
    /// `|X_k|²` of the last sliding window (0 if the run ended before
    /// the window filled).
    pub live_power: f64,
    /// `|X_k|²` of the full aggregate binned series, batch definition.
    pub batch_power: f64,
}

/// Everything the watcher measured about one tenant.
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub name: String,
    /// The claimed contract.
    pub terms: ContractTerms,
    /// Live `[l, b, c]` estimate, when at least two bursts completed.
    pub estimate: Option<LiveEstimate>,
    pub frames: u64,
    pub bytes: u64,
    /// Peak of the sliding 10 ms window, bytes/s.
    pub peak_bw: f64,
    /// Lifetime mean bandwidth over the tenant's active span, bytes/s.
    pub mean_bw: f64,
    /// Tenant-aggregate bursts completed.
    pub bursts: u64,
    /// Distinct (src, dst) connections observed.
    pub connections: usize,
    /// `ContractViolation` events emitted (latched: 0 or 1).
    pub violations: u64,
    /// `BurstAnomaly` events recorded (capped by the config).
    pub anomalies: u64,
    /// Anomalous bursts observed, including beyond the recording cap.
    pub anomalies_total: u64,
}

/// Final output of a watched run.
#[derive(Debug, Clone)]
pub struct WatchReport {
    /// Emitted events in order, each with its flight-recorder dump.
    pub events: Vec<WatchEvent>,
    /// Per-tenant measurements, in contract order.
    pub tenants: Vec<TenantReport>,
    /// Tracked spectral peaks with live and batch powers.
    pub peaks: Vec<SpectralPeak>,
    /// All frames observed (tenant + background).
    pub frames: u64,
    /// Frames attributable to no single tenant.
    pub background_frames: u64,
    /// Peak aggregate sliding-window bandwidth, bytes/s.
    pub peak_bw: f64,
    /// The watcher's own counters/gauges, ready for Prometheus export.
    pub registry: TelemetryRegistry,
}

impl WatchReport {
    /// Events rendered as JSON Lines.
    pub fn events_jsonl(&self) -> String {
        to_jsonl(&self.events)
    }

    /// `ContractViolation` events for `tenant`.
    pub fn violations_for(&self, tenant: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::ContractViolation && e.tenant == tenant)
            .count()
    }

    /// Human-readable compliance table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "watch: {} frames ({} background), peak {:.0} B/s, {} events\n",
            self.frames,
            self.background_frames,
            self.peak_bw,
            self.events.len()
        ));
        out.push_str(
            "| tenant | claimed mean B/s | live mean B/s | claimed b(P) B | live b(P) B | bursts | viol | anom |\n",
        );
        out.push_str(
            "|--------|------------------|---------------|----------------|-------------|--------|------|------|\n",
        );
        for t in &self.tenants {
            let (live_mean, live_b) = t
                .estimate
                .map_or((0.0, 0.0), |e| (e.mean_bw, e.burst_bytes));
            out.push_str(&format!(
                "| {} | {:.0} | {:.0} | {} | {:.0} | {} | {} | {} |\n",
                t.name,
                t.terms.mean_load,
                live_mean,
                t.terms.burst_bytes,
                live_b,
                t.bursts,
                t.violations,
                t.anomalies_total,
            ));
        }
        for e in &self.events {
            out.push_str(&format!(
                "  {} {} {}: {} (measured {:.0}, limit {:.0}) at {:.3} s, {} frames recorded\n",
                e.kind,
                e.tenant,
                e.check,
                e.detail,
                e.measured,
                e.limit,
                e.time.as_secs_f64(),
                e.flight_recorder.len(),
            ));
        }
        out
    }
}

/// Per-connection streaming burst state.
#[derive(Debug, Clone)]
struct ConnState {
    est: BurstEstimator,
    prev_end: Option<SimTime>,
    sum_gap_s: f64,
    gaps: u64,
}

/// Everything the watcher tracks per tenant.
struct TenantState {
    contract: TenantContract,
    bw: SlidingBandwidth,
    binner: StreamBinner,
    binned_count: u64,
    rolling: std::collections::VecDeque<f64>,
    rolling_sum: f64,
    /// Shared latched-breach rule (`fxnet_trace::StreakLatch`): one
    /// violation per tenant, fired after `breach_bins` consecutive
    /// over-threshold bins or an over-limit burst.
    latch: StreakLatch,
    violations: u64,
    anomalies: u64,
    anomalies_total: u64,
    estimator: BurstEstimator,
    conns: BTreeMap<(u32, u32), ConnState>,
    bytes: u64,
    frames: u64,
    peak_bw: f64,
    first_time: Option<SimTime>,
    last_time: SimTime,
}

/// A compliance decision made while a tenant's state was borrowed; the
/// caller turns it into a [`WatchEvent`] once the borrow ends.
struct Pending {
    kind: EventKind,
    check: &'static str,
    measured: f64,
    limit: f64,
    detail: String,
}

/// The streaming observer. Feed it every captured frame (in time order,
/// as the tap delivers them) via [`StreamWatch::observe`], then call
/// [`StreamWatch::finalize`].
pub struct StreamWatch {
    cfg: WatchConfig,
    /// `host_owner[h]` = index into `tenants` owning host `h`.
    host_owner: Vec<Option<usize>>,
    tenants: Vec<TenantState>,
    recorder: FlightRecorder,
    events: Vec<WatchEvent>,
    agg_bw: SlidingBandwidth,
    agg_binner: StreamBinner,
    agg_binned: Vec<f64>,
    dft: SlidingDft,
    /// (tenant, harmonic, freq_hz, index into the DFT's bin list).
    tracked: Vec<(usize, u32, f64, usize)>,
    agg_peak_bw: f64,
    frames: u64,
    background_frames: u64,
    last_time: SimTime,
}

impl StreamWatch {
    /// A watcher for `contracts`, attributing frames through
    /// `host_owner` (host id → tenant index, the ownership map the
    /// engine packs). Harmonics of each contract's `1/t_bi` that fit
    /// under the DFT window's Nyquist are tracked live.
    pub fn new(
        cfg: WatchConfig,
        contracts: Vec<TenantContract>,
        host_owner: Vec<Option<usize>>,
    ) -> StreamWatch {
        let cfg = cfg.validated();
        let bin_s = cfg.bin.as_secs_f64();
        let m = cfg.dft_window;
        // Contract fundamentals and harmonics → deduplicated DFT bins.
        let mut bins: Vec<usize> = Vec::new();
        let mut tracked = Vec::new();
        for (ti, c) in contracts.iter().enumerate() {
            if c.terms.t_interval <= 0.0 {
                continue;
            }
            let f0 = 1.0 / c.terms.t_interval;
            for h in 1..=cfg.harmonics {
                let freq = f0 * h as f64;
                let k = (freq * m as f64 * bin_s).round() as usize;
                if k == 0 || k > m / 2 {
                    continue;
                }
                let pos = bins.iter().position(|&b| b == k).unwrap_or_else(|| {
                    bins.push(k);
                    bins.len() - 1
                });
                tracked.push((ti, h as u32, freq, pos));
            }
        }
        let tenants = contracts
            .into_iter()
            .map(|contract| TenantState {
                contract,
                bw: SlidingBandwidth::new(cfg.window),
                binner: StreamBinner::new(cfg.bin),
                binned_count: 0,
                rolling: std::collections::VecDeque::new(),
                rolling_sum: 0.0,
                latch: StreakLatch::new(cfg.breach_bins),
                violations: 0,
                anomalies: 0,
                anomalies_total: 0,
                estimator: BurstEstimator::new(cfg.burst_gap),
                conns: BTreeMap::new(),
                bytes: 0,
                frames: 0,
                peak_bw: 0.0,
                first_time: None,
                last_time: SimTime::ZERO,
            })
            .collect();
        StreamWatch {
            recorder: FlightRecorder::new(cfg.flight_recorder),
            agg_bw: SlidingBandwidth::new(cfg.window),
            agg_binner: StreamBinner::new(cfg.bin),
            agg_binned: Vec::new(),
            dft: SlidingDft::new(m, &bins),
            tracked,
            cfg,
            host_owner,
            tenants,
            events: Vec::new(),
            agg_peak_bw: 0.0,
            frames: 0,
            background_frames: 0,
            last_time: SimTime::ZERO,
        }
    }

    /// Tenant index owning both endpoints of `r`, if any — the same
    /// attribution rule as the offline `fxnet_trace::demux`.
    fn owner_of(&self, r: &FrameRecord) -> Option<usize> {
        let of = |h: u32| self.host_owner.get(h as usize).copied().flatten();
        match (of(r.src.0), of(r.dst.0)) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// Fold one captured frame into the watcher. O(1) amortized.
    pub fn observe(&mut self, r: &FrameRecord) {
        self.frames += 1;
        self.last_time = r.time;
        self.recorder.push(*r);

        // Aggregate signal: sliding window, binner, sliding DFT.
        let v = self.agg_bw.push(r.time, r.wire_len);
        self.agg_peak_bw = self.agg_peak_bw.max(v);
        self.agg_binner.push(r.time, r.wire_len);
        while let Some(b) = self.agg_binner.pop_closed() {
            self.agg_binned.push(b);
            self.dft.push(b);
        }

        let Some(ti) = self.owner_of(r) else {
            self.background_frames += 1;
            return;
        };
        let mut pending: Vec<Pending> = Vec::new();
        {
            let cfg = &self.cfg;
            let t = &mut self.tenants[ti];
            t.frames += 1;
            t.bytes += u64::from(r.wire_len);
            t.first_time.get_or_insert(r.time);
            t.last_time = r.time;
            let bw = t.bw.push(r.time, r.wire_len);
            t.peak_bw = t.peak_bw.max(bw);

            t.binner.push(r.time, r.wire_len);
            while let Some(bin) = t.binner.pop_closed() {
                tenant_bin(cfg, t, bin, &mut pending);
            }
            if let Some(burst) = t.estimator.push(r.time, r.wire_len) {
                tenant_burst(cfg, t, &burst, &mut pending);
            }

            let key = (r.src.0, r.dst.0);
            let closed = {
                let c = t.conns.entry(key).or_insert_with(|| ConnState {
                    est: BurstEstimator::new(cfg.burst_gap),
                    prev_end: None,
                    sum_gap_s: 0.0,
                    gaps: 0,
                });
                let cb = c.est.push(r.time, r.wire_len);
                if let Some(b) = cb {
                    if let Some(pe) = c.prev_end {
                        c.sum_gap_s += (b.start.saturating_sub(pe)).as_secs_f64();
                        c.gaps += 1;
                    }
                    c.prev_end = Some(b.end);
                }
                cb
            };
            if let Some(b) = closed {
                conn_burst(cfg, t, &b, &mut pending);
            }
        }
        self.flush(ti, r.time, pending);
    }

    /// Turn pending decisions into recorded events.
    fn flush(&mut self, ti: usize, time: SimTime, pending: Vec<Pending>) {
        for p in pending {
            self.events.push(WatchEvent {
                kind: p.kind,
                tenant: self.tenants[ti].contract.name.clone(),
                time,
                check: p.check.to_string(),
                measured: p.measured,
                limit: p.limit,
                detail: p.detail,
                flight_recorder: self.recorder.snapshot(),
            });
        }
    }

    /// Events emitted so far.
    pub fn events(&self) -> &[WatchEvent] {
        &self.events
    }

    /// Frames observed so far.
    pub fn frames_seen(&self) -> u64 {
        self.frames
    }

    /// Close every open structure, reconcile the tracked spectral peaks
    /// against the batch definition, and produce the report.
    pub fn finalize(mut self) -> WatchReport {
        // Flush the aggregate binner through the DFT.
        let binner = std::mem::replace(&mut self.agg_binner, StreamBinner::new(self.cfg.bin));
        for b in binner.finish() {
            self.agg_binned.push(b);
            self.dft.push(b);
        }
        // Flush tenants: trailing bins, trailing aggregate burst,
        // trailing per-connection bursts.
        let end = self.last_time;
        for ti in 0..self.tenants.len() {
            let mut pending = Vec::new();
            {
                let cfg = &self.cfg;
                let t = &mut self.tenants[ti];
                let binner = std::mem::replace(&mut t.binner, StreamBinner::new(cfg.bin));
                for bin in binner.finish() {
                    tenant_bin(cfg, t, bin, &mut pending);
                }
                if let Some(b) = t.estimator.finish() {
                    tenant_burst(cfg, t, &b, &mut pending);
                }
                let closed: Vec<ClosedBurst> = t
                    .conns
                    .values_mut()
                    .filter_map(|c| {
                        let cb = c.est.finish();
                        if let Some(b) = cb {
                            if let Some(pe) = c.prev_end {
                                c.sum_gap_s += (b.start.saturating_sub(pe)).as_secs_f64();
                                c.gaps += 1;
                            }
                        }
                        cb
                    })
                    .collect();
                for b in closed {
                    conn_burst(cfg, t, &b, &mut pending);
                }
            }
            self.flush(ti, end, pending);
        }

        // Spectral reconciliation: live sliding-DFT power next to the
        // batch (whole-series Goertzel) power at each tracked peak.
        let peaks: Vec<SpectralPeak> = self
            .tracked
            .iter()
            .map(|&(ti, harmonic, freq_hz, pos)| SpectralPeak {
                tenant: self.tenants[ti].contract.name.clone(),
                harmonic,
                freq_hz,
                dft_bin: self.dft.bins()[pos],
                live_power: if self.dft.warm() {
                    self.dft.power(pos)
                } else {
                    0.0
                },
                batch_power: if self.agg_binned.is_empty() {
                    0.0
                } else {
                    let bin = padded_bin(freq_hz, self.agg_binned.len(), self.cfg.bin);
                    goertzel_power(&self.agg_binned, bin)
                },
            })
            .collect();

        let mut registry = TelemetryRegistry::new();
        registry.set_counter("watch.frames", self.frames);
        registry.set_counter("watch.frames.background", self.background_frames);
        registry.set_counter("watch.bins", self.agg_binned.len() as u64);
        registry.set_gauge("watch.bw.peak", self.agg_peak_bw);
        let violations: u64 = self.tenants.iter().map(|t| t.violations).sum();
        let anomalies: u64 = self.tenants.iter().map(|t| t.anomalies).sum();
        registry.set_counter("watch.events.contract_violation", violations);
        registry.set_counter("watch.events.burst_anomaly", anomalies);

        let tenants: Vec<TenantReport> = self
            .tenants
            .iter()
            .map(|t| {
                let span = t
                    .first_time
                    .map_or(0.0, |f| (t.last_time.saturating_sub(f)).as_secs_f64());
                let estimate = t.estimator.estimate(t.contract.terms.connections);
                let name = &t.contract.name;
                registry.set_counter(format!("watch.tenant.{name}.frames"), t.frames);
                registry.set_counter(format!("watch.tenant.{name}.bytes"), t.bytes);
                registry.set_counter(format!("watch.tenant.{name}.bursts"), t.estimator.bursts());
                registry.set_counter(format!("watch.tenant.{name}.violations"), t.violations);
                registry.set_counter(format!("watch.tenant.{name}.anomalies"), t.anomalies_total);
                registry.set_gauge(format!("watch.tenant.{name}.bw.peak"), t.peak_bw);
                registry.set_gauge(
                    format!("watch.tenant.{name}.contract.mean_load"),
                    t.contract.terms.mean_load,
                );
                if let Some(e) = &estimate {
                    registry.set_gauge(format!("watch.tenant.{name}.live.mean_bw"), e.mean_bw);
                    registry.set_gauge(
                        format!("watch.tenant.{name}.live.burst_bytes"),
                        e.burst_bytes,
                    );
                    registry
                        .set_gauge(format!("watch.tenant.{name}.live.t_interval"), e.t_interval);
                }
                TenantReport {
                    name: name.clone(),
                    terms: t.contract.terms,
                    estimate,
                    frames: t.frames,
                    bytes: t.bytes,
                    peak_bw: t.peak_bw,
                    mean_bw: if span > 0.0 {
                        t.bytes as f64 / span
                    } else {
                        0.0
                    },
                    bursts: t.estimator.bursts(),
                    connections: t.conns.len(),
                    violations: t.violations,
                    anomalies: t.anomalies,
                    anomalies_total: t.anomalies_total,
                }
            })
            .collect();

        WatchReport {
            events: self.events,
            tenants,
            peaks,
            frames: self.frames,
            background_frames: self.background_frames,
            peak_bw: self.agg_peak_bw,
            registry,
        }
    }
}

/// Sustained-bandwidth compliance on one closed tenant bin.
fn tenant_bin(cfg: &WatchConfig, t: &mut TenantState, bin: f64, pending: &mut Vec<Pending>) {
    t.binned_count += 1;
    t.rolling.push_back(bin);
    t.rolling_sum += bin;
    if t.rolling.len() > cfg.mean_window_bins {
        t.rolling_sum -= t.rolling.pop_front().expect("nonempty rolling window");
    }
    if t.binned_count as usize <= cfg.warmup_bins || t.rolling.len() < cfg.mean_window_bins {
        return;
    }
    let mean = t.rolling_sum / t.rolling.len() as f64;
    let limit = cfg.mean_tolerance * t.contract.terms.mean_load;
    if t.latch.update(mean > limit) {
        t.violations += 1;
        pending.push(Pending {
            kind: EventKind::ContractViolation,
            check: "mean-bandwidth",
            measured: mean,
            limit,
            detail: format!(
                "rolling mean {:.0} B/s exceeded {:.1}x the admitted mean load {:.0} B/s for {} consecutive bins",
                mean, cfg.mean_tolerance, t.contract.terms.mean_load, t.latch.streak()
            ),
        });
    }
}

/// Claimed cycles a burst of duration `d` seconds can span: contention
/// on the shared medium stretches a compliant tenant's exchanges until
/// consecutive cycles merge into one detected burst, so the volume
/// allowance must grow with the burst's span measured in claimed
/// intervals — otherwise honest-but-slowed tenants false-positive.
fn cycles_spanned(d: f64, t_interval: f64) -> f64 {
    if t_interval > 0.0 {
        (d / t_interval).ceil().max(1.0)
    } else {
        1.0
    }
}

/// Cycle-volume compliance on one closed tenant-aggregate burst.
fn tenant_burst(
    cfg: &WatchConfig,
    t: &mut TenantState,
    b: &ClosedBurst,
    pending: &mut Vec<Pending>,
) {
    // The first burst carries enrollment/startup chatter; skip it.
    if b.index == 0 {
        return;
    }
    let claimed_cycle =
        t.contract.terms.burst_bytes as f64 * f64::from(t.contract.terms.connections);
    let cycles = cycles_spanned(b.duration_s(), t.contract.terms.t_interval);
    let limit = cfg.burst_tolerance * claimed_cycle * cycles;
    if b.bytes as f64 > limit && t.latch.latch_now() {
        t.violations += 1;
        pending.push(Pending {
            kind: EventKind::ContractViolation,
            check: "burst-volume",
            measured: b.bytes as f64,
            limit,
            detail: format!(
                "burst {} carried {} B over {:.0} claimed cycle(s) of {:.0} B ({} conns x {} B, tolerance {:.1}x)",
                b.index,
                b.bytes,
                cycles,
                claimed_cycle,
                t.contract.terms.connections,
                t.contract.terms.burst_bytes,
                cfg.burst_tolerance
            ),
        });
    }
}

/// Per-connection burst anomaly check on one closed connection burst.
fn conn_burst(cfg: &WatchConfig, t: &mut TenantState, b: &ClosedBurst, pending: &mut Vec<Pending>) {
    if b.index == 0 {
        return;
    }
    let cycles = cycles_spanned(b.duration_s(), t.contract.terms.t_interval);
    let limit = cfg.burst_tolerance * t.contract.terms.burst_bytes as f64 * cycles;
    if b.bytes as f64 > limit {
        t.anomalies_total += 1;
        if (t.anomalies as usize) < cfg.max_anomalies {
            t.anomalies += 1;
            pending.push(Pending {
                kind: EventKind::BurstAnomaly,
                check: "connection-burst",
                measured: b.bytes as f64,
                limit,
                detail: format!(
                    "connection burst {} of {} B exceeds {:.1}x the claimed b(P) = {} B",
                    b.index, b.bytes, cfg.burst_tolerance, t.contract.terms.burst_bytes
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, HostId};

    fn contract(name: &str, mean_load: f64, burst_bytes: u64, conns: u32) -> TenantContract {
        TenantContract {
            name: name.to_string(),
            terms: ContractTerms {
                p: 2,
                connections: conns,
                concurrent_connections: conns,
                burst_bytes,
                local_s: 0.1,
                burst_bw: 500_000.0,
                t_burst: burst_bytes as f64 / 500_000.0,
                t_interval: 0.1 + burst_bytes as f64 / 500_000.0,
                mean_load,
            },
        }
    }

    fn rec(t_us: u64, src: u32, dst: u32, payload: u32) -> FrameRecord {
        let f = Frame::tcp(HostId(src), HostId(dst), FrameKind::Data, payload, t_us);
        FrameRecord::capture(SimTime::from_micros(t_us), &f)
    }

    /// Hosts 0,1 → tenant 0; hosts 2,3 → tenant 1.
    fn owner2() -> Vec<Option<usize>> {
        vec![Some(0), Some(0), Some(1), Some(1)]
    }

    #[test]
    fn attribution_follows_the_demux_rule() {
        let cfg = WatchConfig::default();
        let mut w = StreamWatch::new(
            cfg,
            vec![
                contract("a", 1e6, 100_000, 2),
                contract("b", 1e6, 100_000, 2),
            ],
            owner2(),
        );
        w.observe(&rec(0, 0, 1, 1000)); // tenant a
        w.observe(&rec(10, 2, 3, 1000)); // tenant b
        w.observe(&rec(20, 1, 2, 1000)); // cross-tenant → background
        w.observe(&rec(30, 9, 0, 1000)); // unknown host → background
        let r = w.finalize();
        assert_eq!(r.frames, 4);
        assert_eq!(r.background_frames, 2);
        assert_eq!(r.tenants[0].frames, 1);
        assert_eq!(r.tenants[1].frames, 1);
    }

    #[test]
    fn overdriving_burst_volume_latches_one_violation() {
        let cfg = WatchConfig {
            burst_gap: SimTime::from_millis(5),
            ..WatchConfig::default()
        };
        // Claimed: 10 KB per connection per cycle over 2 connections.
        let mut w = StreamWatch::new(cfg, vec![contract("hog", 50_000.0, 10_000, 2)], owner2());
        // Five bursts of ~300 KB each (15x the 20 KB claimed cycle),
        // 50 ms apart: burst 0 is skipped as warmup, burst 1 violates,
        // later bursts are silenced by the latch.
        for cycle in 0..5u64 {
            for j in 0..200u64 {
                w.observe(&rec(cycle * 50_000 + j * 10, 0, 1, 1460));
            }
        }
        let r = w.finalize();
        assert_eq!(r.violations_for("hog"), 1, "latched to exactly one");
        assert_eq!(r.tenants[0].violations, 1);
        let e = r
            .events
            .iter()
            .find(|e| e.kind == EventKind::ContractViolation)
            .unwrap();
        assert_eq!(e.check, "burst-volume");
        assert!(e.measured > e.limit);
        assert!(!e.flight_recorder.is_empty());
    }

    #[test]
    fn compliant_tenant_stays_clean() {
        let cfg = WatchConfig::default();
        // Claimed 40 KB cycles; actual 30 KB cycles — within tolerance.
        let mut w = StreamWatch::new(cfg, vec![contract("ok", 400_000.0, 20_000, 2)], owner2());
        for cycle in 0..30u64 {
            for j in 0..20u64 {
                w.observe(&rec(cycle * 100_000 + j * 100, 0, 1, 1460));
            }
        }
        let r = w.finalize();
        assert_eq!(r.events.len(), 0);
        assert_eq!(r.tenants[0].violations, 0);
        assert!(r.tenants[0].estimate.is_some());
    }

    #[test]
    fn sustained_mean_bandwidth_breach_fires() {
        let cfg = WatchConfig {
            warmup_bins: 2,
            mean_window_bins: 10,
            breach_bins: 5,
            burst_tolerance: 1e12, // silence the volume checks
            ..WatchConfig::default()
        };
        // Claimed 10 KB/s mean; actual a steady ~1.5 MB/s stream.
        let mut w = StreamWatch::new(cfg, vec![contract("steady", 10_000.0, 1, 1)], owner2());
        for i in 0..3000u64 {
            w.observe(&rec(i * 1_000, 0, 1, 1460));
        }
        let r = w.finalize();
        assert_eq!(r.violations_for("steady"), 1);
        assert_eq!(r.events[0].check, "mean-bandwidth");
    }

    #[test]
    fn flight_recorder_dump_holds_the_frames_preceding_the_event() {
        let cfg = WatchConfig {
            flight_recorder: 8,
            burst_gap: SimTime::from_millis(5),
            ..WatchConfig::default()
        };
        let mut w = StreamWatch::new(cfg, vec![contract("hog", 50_000.0, 1_000, 1)], owner2());
        let mut all = Vec::new();
        for cycle in 0..3u64 {
            for j in 0..50u64 {
                let r = rec(cycle * 50_000 + j * 10, 0, 1, 1460);
                all.push(r);
                w.observe(&r);
            }
        }
        let r = w.finalize();
        let e = &r.events[0];
        assert_eq!(e.flight_recorder.len(), 8);
        // The dump is exactly the 8 frames up to and including the
        // trigger, in order.
        let trigger = all.iter().position(|f| f.time == e.time).unwrap();
        assert_eq!(e.flight_recorder, all[trigger - 7..=trigger].to_vec());
    }

    #[test]
    fn watcher_is_a_pure_function_of_the_stream() {
        let run = || {
            let mut w = StreamWatch::new(
                WatchConfig::default(),
                vec![contract("hog", 50_000.0, 1_000, 1)],
                owner2(),
            );
            for cycle in 0..4u64 {
                for j in 0..100u64 {
                    w.observe(&rec(cycle * 60_000 + j * 20, 0, 1, 1200));
                }
            }
            w.finalize()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.events, b.events);
        assert_eq!(a.events_jsonl(), b.events_jsonl());
        assert_eq!(
            fxnet_telemetry::prometheus_text(&a.registry),
            fxnet_telemetry::prometheus_text(&b.registry)
        );
    }
}
