//! Structured watcher events and their JSONL rendering.

use fxnet_sim::{FrameRecord, SimTime};

/// What kind of misbehavior an event reports.
///
/// `ContractViolation` is *latched*: the watcher emits at most one per
/// tenant, so a log can be checked for "exactly one violation" when
/// exactly one tenant over-drives its contract. `BurstAnomaly` is a
/// weaker, per-burst observation and may repeat (bounded by
/// [`crate::WatchConfig::max_anomalies`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    ContractViolation,
    BurstAnomaly,
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::ContractViolation => write!(f, "ContractViolation"),
            EventKind::BurstAnomaly => write!(f, "BurstAnomaly"),
        }
    }
}

/// One structured event, with the flight-recorder contents at the
/// moment it fired (the last N frames the watcher saw, oldest first).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WatchEvent {
    /// Event class; see [`EventKind`].
    pub kind: EventKind,
    /// Offending tenant's display name.
    pub tenant: String,
    /// Simulated time at which the check fired.
    pub time: SimTime,
    /// Which check fired: `mean-bandwidth`, `burst-volume`, or
    /// `connection-burst`.
    pub check: String,
    /// The measured quantity (bytes/s for bandwidth checks, bytes for
    /// volume checks).
    pub measured: f64,
    /// The contract-derived limit the measurement exceeded.
    pub limit: f64,
    /// Human-readable one-line summary.
    pub detail: String,
    /// Flight-recorder dump: the frames immediately preceding (and
    /// including) the triggering frame.
    pub flight_recorder: Vec<FrameRecord>,
}

/// Render events as JSON Lines: one compact JSON object per line, in
/// emission order. Deterministic because the serde shim preserves field
/// order and the watcher's state is a pure function of the frame stream.
pub fn to_jsonl(events: &[WatchEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde::json::to_string(e));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: EventKind) -> WatchEvent {
        WatchEvent {
            kind,
            tenant: "SOR".to_string(),
            time: SimTime::from_millis(120),
            check: "burst-volume".to_string(),
            measured: 2e6,
            limit: 1e6,
            detail: "burst of 2000000 B exceeds 2x claimed cycle volume".to_string(),
            flight_recorder: Vec::new(),
        }
    }

    #[test]
    fn kind_serializes_as_its_grep_able_name() {
        let line = serde::json::to_string(&event(EventKind::ContractViolation));
        assert!(line.contains("ContractViolation"));
        assert!(!line.contains('\n'));
        let other = serde::json::to_string(&event(EventKind::BurstAnomaly));
        assert!(other.contains("BurstAnomaly") && !other.contains("ContractViolation"));
    }

    #[test]
    fn jsonl_is_one_line_per_event_and_round_trips() {
        let events = vec![
            event(EventKind::ContractViolation),
            event(EventKind::BurstAnomaly),
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        for (line, orig) in text.lines().zip(&events) {
            let back: WatchEvent = serde::json::from_str(line).unwrap();
            assert_eq!(&back, orig);
        }
    }
}
