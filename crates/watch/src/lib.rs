//! # fxnet-watch
//!
//! Streaming trace analysis and online QoS-contract compliance.
//!
//! The paper's methodology is strictly offline: capture a promiscuous
//! trace, then analyze it (bandwidth series, periodogram, burst
//! structure, the `[l, b, c]` descriptor). This crate is the *online*
//! counterpart: an observer attached to the simulator's frame tap
//! ([`fxnet_sim::FrameTap`]) that maintains, incrementally and in O(1)
//! amortized work per frame:
//!
//! * the sliding 10 ms-window bandwidth of §6.1 ([`fxnet_trace::SlidingBandwidth`]),
//! * an online periodogram at the admitted tenants' contract
//!   frequencies (a sliding DFT; [`fxnet_spectral::SlidingDft`]),
//! * per-connection burst structure (start / length / gap), and
//! * a live estimate of each tenant's effective `[l, b, c]`
//!   ([`LiveEstimate`]), checked continuously against the descriptor
//!   the tenant presented to `fxnet-mix`'s admission controller.
//!
//! When a tenant's measured traffic exceeds its *claimed* contract the
//! watcher emits a structured event — a latched [`EventKind::ContractViolation`]
//! or a bounded-count [`EventKind::BurstAnomaly`] — carrying a
//! flight-recorder dump of the frames that led up to it. Results export
//! three ways: a Prometheus text snapshot (via
//! [`fxnet_telemetry::prometheus_text`]), a JSONL event log
//! ([`WatchReport::events_jsonl`]), and the in-memory [`WatchReport`].
//!
//! The tap observes records the tracer captures anyway, so the watcher
//! cannot perturb the simulation: the trace is byte-identical with and
//! without it, and — because its state is a pure function of the frame
//! stream — everything it emits is deterministic under a fixed seed.

pub mod config;
pub mod estimator;
pub mod event;
pub mod recorder;
pub mod watch;

pub use config::WatchConfig;
pub use estimator::{BurstEstimator, ClosedBurst, LiveEstimate};
pub use event::{to_jsonl, EventKind, WatchEvent};
pub use recorder::FlightRecorder;
pub use watch::{SpectralPeak, StreamWatch, TenantContract, TenantReport, WatchReport};
