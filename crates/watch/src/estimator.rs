//! Streaming burst detection and live `[l, b, c]` estimation.
//!
//! The batch path (`fxnet_trace::detect_bursts` followed by
//! `fxnet_qos::estimate::estimate_traffic`) needs the whole trace in
//! memory. The watcher instead folds each frame into running sums as it
//! arrives: a burst is open while consecutive frames are closer than the
//! configured quiet gap, and closes — updating the running estimate —
//! when the gap is exceeded or the stream ends. Same burst boundary rule
//! as the batch detector, O(1) state per stream.

use fxnet_sim::SimTime;

/// A completed burst, reported as it closes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedBurst {
    /// First frame's timestamp.
    pub start: SimTime,
    /// Last frame's timestamp.
    pub end: SimTime,
    /// Wire bytes carried.
    pub bytes: u64,
    /// Frames carried.
    pub frames: u64,
    /// Index of this burst in its stream (0-based).
    pub index: u64,
}

impl ClosedBurst {
    /// Burst length in seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end.saturating_sub(self.start)).as_secs_f64()
    }
}

/// The live traffic estimate, in the vocabulary of the QoS descriptor:
/// the tenant *behaves as if* it had handed the network this `[l, b, c]`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LiveEstimate {
    /// Completed bursts observed.
    pub bursts: u64,
    /// Mean burst length, seconds (`t_b`).
    pub t_burst: f64,
    /// Mean start-to-start burst interval, seconds (`t_bi`).
    pub t_interval: f64,
    /// Implied local computation per cycle: `t_bi − t_b`, clamped ≥ 0.
    pub local_s: f64,
    /// Mean bytes per burst per connection (the effective `b(P)`).
    pub burst_bytes: f64,
    /// Effective long-run load: mean cycle volume over mean interval,
    /// bytes/s.
    pub mean_bw: f64,
}

/// O(1)-state streaming burst detector with running `[l, b, c]` sums.
#[derive(Debug, Clone)]
pub struct BurstEstimator {
    gap: SimTime,
    cur: Option<(SimTime, SimTime, u64, u64)>, // (start, last, bytes, frames)
    prev_start: Option<SimTime>,
    closed: u64,
    sum_burst_s: f64,
    sum_interval_s: f64,
    intervals: u64,
    sum_bytes: f64,
}

impl BurstEstimator {
    /// A detector splitting bursts at quiet gaps of at least `gap`.
    pub fn new(gap: SimTime) -> BurstEstimator {
        assert!(gap > SimTime::ZERO, "burst gap must be positive");
        BurstEstimator {
            gap,
            cur: None,
            prev_start: None,
            closed: 0,
            sum_burst_s: 0.0,
            sum_interval_s: 0.0,
            intervals: 0,
            sum_bytes: 0.0,
        }
    }

    /// Fold one frame in; returns the burst this frame closed, if any.
    pub fn push(&mut self, time: SimTime, wire_len: u32) -> Option<ClosedBurst> {
        if let Some((_, last, bytes, frames)) = &mut self.cur {
            if time.saturating_sub(*last) <= self.gap {
                *last = time;
                *bytes += u64::from(wire_len);
                *frames += 1;
                return None;
            }
        }
        let closed = self
            .cur
            .take()
            .map(|(start, last, bytes, frames)| self.close(start, last, bytes, frames));
        self.cur = Some((time, time, u64::from(wire_len), 1));
        closed
    }

    /// Close the trailing burst at end of stream, if one is open.
    pub fn finish(&mut self) -> Option<ClosedBurst> {
        let (start, last, bytes, frames) = self.cur.take()?;
        Some(self.close(start, last, bytes, frames))
    }

    fn close(&mut self, start: SimTime, end: SimTime, bytes: u64, frames: u64) -> ClosedBurst {
        let b = ClosedBurst {
            start,
            end,
            bytes,
            frames,
            index: self.closed,
        };
        self.closed += 1;
        self.sum_burst_s += b.duration_s();
        self.sum_bytes += bytes as f64;
        if let Some(prev) = self.prev_start {
            self.sum_interval_s += (start.saturating_sub(prev)).as_secs_f64();
            self.intervals += 1;
        }
        self.prev_start = Some(start);
        b
    }

    /// Completed bursts so far.
    pub fn bursts(&self) -> u64 {
        self.closed
    }

    /// Current estimate, spreading each burst over `connections`
    /// simplex connections. Needs at least two completed bursts (one
    /// interval), like the batch estimator.
    pub fn estimate(&self, connections: u32) -> Option<LiveEstimate> {
        if self.closed < 2 || self.intervals == 0 {
            return None;
        }
        let t_burst = self.sum_burst_s / self.closed as f64;
        let t_interval = self.sum_interval_s / self.intervals as f64;
        let cycle_bytes = self.sum_bytes / self.closed as f64;
        Some(LiveEstimate {
            bursts: self.closed,
            t_burst,
            t_interval,
            local_s: (t_interval - t_burst).max(0.0),
            burst_bytes: cycle_bytes / f64::from(connections.max(1)),
            mean_bw: if t_interval > 0.0 {
                cycle_bytes / t_interval
            } else {
                0.0
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn splits_bursts_at_the_quiet_gap() {
        let mut e = BurstEstimator::new(ms(10));
        // Two frames 1 ms apart, then a 50 ms gap, then one more.
        assert!(e.push(ms(0), 1000).is_none());
        assert!(e.push(ms(1), 1000).is_none());
        let b = e.push(ms(51), 500).expect("gap closes the first burst");
        assert_eq!(b.bytes, 2000);
        assert_eq!(b.frames, 2);
        assert_eq!(b.index, 0);
        assert_eq!((b.start, b.end), (ms(0), ms(1)));
        let tail = e.finish().expect("trailing burst");
        assert_eq!(tail.bytes, 500);
        assert_eq!(tail.index, 1);
        assert!(e.finish().is_none());
    }

    #[test]
    fn estimate_matches_the_periodic_construction() {
        // Perfectly periodic: 3 frames over 2 ms every 100 ms.
        let mut e = BurstEstimator::new(ms(10));
        for cycle in 0..5u64 {
            for j in 0..3u64 {
                e.push(ms(cycle * 100 + j), 1000);
            }
        }
        e.finish();
        let est = e.estimate(2).expect("five bursts seen");
        assert_eq!(est.bursts, 5);
        assert!((est.t_interval - 0.1).abs() < 1e-12);
        assert!((est.t_burst - 0.002).abs() < 1e-12);
        assert!((est.local_s - 0.098).abs() < 1e-12);
        assert!((est.burst_bytes - 1500.0).abs() < 1e-9); // 3000 B over 2 conns
        assert!((est.mean_bw - 30_000.0).abs() < 1e-6);
    }

    #[test]
    fn fewer_than_two_bursts_yields_no_estimate() {
        let mut e = BurstEstimator::new(ms(10));
        e.push(ms(0), 100);
        e.push(ms(1), 100);
        e.finish();
        assert!(e.estimate(1).is_none());
    }

    #[test]
    fn boundary_matches_batch_detector_rule() {
        // detect_bursts merges frames whose spacing is <= gap; the
        // first strictly-larger spacing starts a new burst.
        let mut e = BurstEstimator::new(ms(10));
        e.push(ms(0), 100);
        assert!(e.push(ms(10), 100).is_none(), "exact-gap spacing merges");
        let closed = e.push(SimTime::from_micros(20_001), 100);
        assert!(closed.is_some(), "spacing beyond the gap must split");
    }

    #[test]
    fn streaming_bursts_equal_batch_bursts() {
        use fxnet_sim::{Frame, FrameKind, HostId};
        // An irregular but deterministic spacing pattern.
        let mut t = 0u64;
        let mut trace = Vec::new();
        for i in 0..200u64 {
            t += 137 * ((i * i) % 97) + 1; // µs steps, some beyond the gap
            let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, (i % 1400) as u32, i);
            trace.push(fxnet_sim::FrameRecord::capture(SimTime::from_micros(t), &f));
        }
        let gap = ms(2);
        let batch = fxnet_trace::detect_bursts(&trace, gap);
        // The columnar view runs the same merge rule over the time and
        // size columns — all three detectors must agree exactly.
        let store = fxnet_trace::TraceStore::from_records(&trace);
        assert_eq!(store.view().detect_bursts(gap), batch);
        let mut e = BurstEstimator::new(gap);
        let mut stream: Vec<ClosedBurst> = trace
            .iter()
            .filter_map(|r| e.push(r.time, r.wire_len))
            .collect();
        stream.extend(e.finish());
        assert_eq!(stream.len(), batch.len());
        for (s, b) in stream.iter().zip(&batch) {
            assert_eq!((s.start, s.end, s.bytes), (b.start, b.end, b.bytes));
            assert_eq!(s.frames as usize, b.packets);
        }
    }
}
