//! Markdown report generation for a measured trace.
//!
//! Produces the paper's per-program row set (packet sizes, interarrivals,
//! average bandwidth, burst profile, spectral summary) as a markdown
//! fragment, so harnesses and downstream tools can emit EXPERIMENTS-style
//! tables without reimplementing the formatting.

use crate::bandwidth::{average_bandwidth, binned_bandwidth};
use crate::bursts::{Burst, BurstProfile};
use crate::spectrum::Periodogram;
use crate::stats::{Stats, Welford};
use crate::store::TraceView;
use fxnet_sim::{FrameRecord, SimTime};
use std::fmt::Write;

/// Options controlling the report.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Bandwidth bin / window (the paper's 10 ms).
    pub bin: SimTime,
    /// Quiet gap separating bursts.
    pub burst_gap: SimTime,
    /// Ignore spectral content below this frequency when reporting the
    /// dominant component.
    pub min_hz: f64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            bin: SimTime::from_millis(10),
            burst_gap: SimTime::from_millis(120),
            min_hz: 0.1,
        }
    }
}

/// All derived quantities for one trace, computed in one pass.
#[derive(Debug, Clone)]
pub struct TraceReport {
    pub label: String,
    pub frames: usize,
    pub span_s: f64,
    pub sizes: Option<Stats>,
    pub interarrivals_ms: Option<Stats>,
    pub avg_bandwidth: Option<f64>,
    pub bursts: Option<BurstProfile>,
    pub dominant_hz: Option<f64>,
    pub flatness: Option<f64>,
}

impl TraceReport {
    /// Analyze `trace` under `opts`.
    pub fn analyze(
        label: impl Into<String>,
        trace: &[FrameRecord],
        opts: &ReportOptions,
    ) -> TraceReport {
        let spec = (!trace.is_empty())
            .then(|| Periodogram::compute(&binned_bandwidth(trace, opts.bin), opts.bin));
        Self::analyze_with_spectrum(label, trace, opts, spec.as_ref())
    }

    /// [`TraceReport::analyze`] with a caller-supplied spectrum of the
    /// trace's `opts.bin`-binned bandwidth (or `None` for an empty
    /// trace), for callers that already computed it and don't want the
    /// binned series walked twice.
    pub fn analyze_with_spectrum(
        label: impl Into<String>,
        trace: &[FrameRecord],
        opts: &ReportOptions,
        spec: Option<&Periodogram>,
    ) -> TraceReport {
        let span_s = match (trace.first(), trace.last()) {
            (Some(a), Some(b)) => (b.time - a.time).as_secs_f64(),
            _ => 0.0,
        };
        let (dominant_hz, flatness) = match spec {
            None => (None, None),
            Some(spec) => (spec.dominant_frequency(opts.min_hz), Some(spec.flatness())),
        };
        TraceReport {
            label: label.into(),
            frames: trace.len(),
            span_s,
            sizes: Stats::packet_sizes(trace),
            interarrivals_ms: Stats::interarrivals_ms(trace),
            avg_bandwidth: average_bandwidth(trace),
            bursts: BurstProfile::of(trace, opts.burst_gap),
            dominant_hz,
            flatness,
        }
    }

    /// Analyze a columnar [`TraceView`] under `opts`.
    ///
    /// Where [`TraceReport::analyze`] walks the record slice once per
    /// derived quantity, this computes sizes, interarrivals, span, byte
    /// total, lifetime bandwidth, and the burst segmentation in **one**
    /// fused pass over the columns, then makes a second pass for the
    /// binned series feeding the periodogram. The arithmetic matches the
    /// legacy path operation for operation, so the resulting report is
    /// bitwise-identical to `analyze` on the same frames.
    pub fn analyze_view(
        label: impl Into<String>,
        view: TraceView<'_>,
        opts: &ReportOptions,
    ) -> TraceReport {
        let spec = (!view.is_empty())
            .then(|| Periodogram::compute(&view.binned_bandwidth(opts.bin), opts.bin));
        Self::analyze_view_with_spectrum(label, view, opts, spec.as_ref())
    }

    /// [`TraceReport::analyze_view`] with a caller-supplied spectrum —
    /// the columnar twin of [`TraceReport::analyze_with_spectrum`].
    pub fn analyze_view_with_spectrum(
        label: impl Into<String>,
        view: TraceView<'_>,
        opts: &ReportOptions,
        spec: Option<&Periodogram>,
    ) -> TraceReport {
        let n = view.len();
        let mut sizes = Welford::new();
        let mut inter = Welford::new();
        let mut bursts: Vec<Burst> = Vec::new();
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        let mut bytes = 0u64;
        let mut first = 0u64;
        let mut last = 0u64;
        let mut prev: Option<u64> = None;
        for (pos, r) in view.iter().enumerate() {
            let t = r.time.as_nanos();
            if pos == 0 {
                first = t;
            }
            last = t;
            t_min = t_min.min(t);
            t_max = t_max.max(t);
            bytes += u64::from(r.wire_len);
            sizes.push(f64::from(r.wire_len));
            if let Some(p) = prev {
                inter.push((r.time - SimTime::from_nanos(p)).as_millis_f64());
            }
            prev = Some(t);
            match bursts.last_mut() {
                Some(b) if r.time.saturating_sub(b.end) <= opts.burst_gap => {
                    b.end = r.time;
                    b.bytes += u64::from(r.wire_len);
                    b.packets += 1;
                }
                _ => bursts.push(Burst {
                    start: r.time,
                    end: r.time,
                    bytes: u64::from(r.wire_len),
                    packets: 1,
                }),
            }
        }
        let span_s = if n == 0 {
            0.0
        } else {
            (SimTime::from_nanos(last) - SimTime::from_nanos(first)).as_secs_f64()
        };
        let avg_bandwidth = if n == 0 {
            None
        } else {
            let span = (SimTime::from_nanos(t_max) - SimTime::from_nanos(t_min)).as_secs_f64();
            if span <= 0.0 {
                None
            } else {
                Some(bytes as f64 / span)
            }
        };
        let (dominant_hz, flatness) = match spec {
            None => (None, None),
            Some(spec) => (spec.dominant_frequency(opts.min_hz), Some(spec.flatness())),
        };
        TraceReport {
            label: label.into(),
            frames: n,
            span_s,
            sizes: sizes.finish(),
            interarrivals_ms: if n < 2 { None } else { inter.finish() },
            avg_bandwidth,
            bursts: BurstProfile::of_bursts(bursts),
            dominant_hz,
            flatness,
        }
    }

    /// One markdown table row:
    /// `| label | frames | span | sizes | interarrival | bw | bursts | f0 |`.
    pub fn markdown_row(&self) -> String {
        let stats4 = |s: &Option<Stats>| match s {
            Some(s) => format!("{:.0}/{:.0}/{:.0}/{:.0}", s.min, s.max, s.avg, s.sd),
            None => "-".to_string(),
        };
        let bw = self
            .avg_bandwidth
            .map_or("-".to_string(), |b| format!("{:.1}", b / 1000.0));
        let bursts = self.bursts.as_ref().map_or("-".to_string(), |b| {
            format!(
                "{}×{:.0}KB (cv {:.2})",
                b.count,
                b.sizes.avg / 1000.0,
                b.size_cv()
            )
        });
        let f0 = self
            .dominant_hz
            .map_or("-".to_string(), |f| format!("{f:.2}"));
        format!(
            "| {} | {} | {:.1} | {} | {} | {} | {} | {} |",
            self.label,
            self.frames,
            self.span_s,
            stats4(&self.sizes),
            stats4(&self.interarrivals_ms),
            bw,
            bursts,
            f0
        )
    }

    /// The header matching [`TraceReport::markdown_row`].
    pub fn markdown_header() -> String {
        "| trace | frames | span s | sizes B (min/max/avg/sd) | interarrival ms | bw KB/s | bursts | dominant Hz |\n|---|---|---|---|---|---|---|---|".to_string()
    }
}

/// Render a full markdown table for several labelled traces.
pub fn markdown_table<'a>(
    rows: impl IntoIterator<Item = (&'a str, &'a [FrameRecord])>,
    opts: &ReportOptions,
) -> String {
    let mut out = TraceReport::markdown_header();
    for (label, trace) in rows {
        let r = TraceReport::analyze(label, trace, opts);
        write!(out, "\n{}", r.markdown_row()).expect("string write");
    }
    out
}

/// Render a full markdown table for several labelled columnar views —
/// byte-identical to [`markdown_table`] over the same frames.
pub fn markdown_table_views<'a>(
    rows: impl IntoIterator<Item = (&'a str, TraceView<'a>)>,
    opts: &ReportOptions,
) -> String {
    let mut out = TraceReport::markdown_header();
    for (label, view) in rows {
        let r = TraceReport::analyze_view(label, view, opts);
        write!(out, "\n{}", r.markdown_row()).expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, HostId};

    /// 2 Hz burst train: 20-frame bursts spanning 190 ms every 500 ms
    /// (wide bursts so the fundamental dominates the harmonics).
    fn burst_trace() -> Vec<FrameRecord> {
        let mut tr = Vec::new();
        for b in 0..10u64 {
            for i in 0..20u64 {
                let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, 1460, i);
                tr.push(FrameRecord::capture(
                    SimTime::from_millis(b * 500 + i * 10),
                    &f,
                ));
            }
        }
        tr
    }

    #[test]
    fn analyze_fills_every_field() {
        let tr = burst_trace();
        let r = TraceReport::analyze("demo", &tr, &ReportOptions::default());
        assert_eq!(r.frames, 200);
        assert!(r.span_s > 4.0);
        assert_eq!(r.sizes.unwrap().max, 1518.0);
        // Longest quiet gap: 500 ms period − 190 ms burst span.
        assert!(r.interarrivals_ms.unwrap().max >= 300.0);
        assert!(r.avg_bandwidth.unwrap() > 0.0);
        let b = r.bursts.unwrap();
        assert_eq!(b.count, 10);
        assert!(b.size_cv() < 1e-9);
        let f0 = r.dominant_hz.unwrap();
        assert!((f0 - 2.0).abs() < 0.2, "dominant {f0}");
        assert!(r.flatness.unwrap() < 0.5);
    }

    #[test]
    fn empty_trace_renders_dashes() {
        let r = TraceReport::analyze("empty", &[], &ReportOptions::default());
        let row = r.markdown_row();
        assert!(
            row.contains("| empty | 0 | 0.0 | - | - | - | - | - |"),
            "{row}"
        );
    }

    #[test]
    fn analyze_view_is_bitwise_identical_to_analyze() {
        let tr = burst_trace();
        let store = crate::TraceStore::from_records(&tr);
        let opts = ReportOptions::default();
        let a = TraceReport::analyze("demo", &tr, &opts);
        let v = TraceReport::analyze_view("demo", store.view(), &opts);
        assert_eq!(a.frames, v.frames);
        assert_eq!(a.span_s.to_bits(), v.span_s.to_bits());
        assert_eq!(a.sizes, v.sizes);
        assert_eq!(a.interarrivals_ms, v.interarrivals_ms);
        assert_eq!(
            a.avg_bandwidth.map(f64::to_bits),
            v.avg_bandwidth.map(f64::to_bits)
        );
        assert_eq!(
            a.dominant_hz.map(f64::to_bits),
            v.dominant_hz.map(f64::to_bits)
        );
        assert_eq!(a.flatness.map(f64::to_bits), v.flatness.map(f64::to_bits));
        assert_eq!(a.markdown_row(), v.markdown_row());
        // And the table renderers agree end to end.
        assert_eq!(
            markdown_table([("t", tr.as_slice())], &opts),
            markdown_table_views([("t", store.view())], &opts)
        );
        // Empty traces agree too.
        let empty = crate::TraceStore::from_records(&[]);
        assert_eq!(
            TraceReport::analyze("e", &[], &opts).markdown_row(),
            TraceReport::analyze_view("e", empty.view(), &opts).markdown_row()
        );
    }

    #[test]
    fn markdown_table_has_header_and_rows() {
        let tr = burst_trace();
        let table = markdown_table(
            [("a", tr.as_slice()), ("b", tr.as_slice())],
            &ReportOptions::default(),
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4); // header + separator + 2 rows
        assert!(lines[0].starts_with("| trace |"));
        assert!(lines[2].starts_with("| a |"));
        assert!(lines[3].starts_with("| b |"));
        // Every row has the same column count.
        let cols = lines[0].matches('|').count();
        assert!(lines.iter().all(|l| l.matches('|').count() == cols));
    }
}
