//! Markdown report generation for a measured trace.
//!
//! Produces the paper's per-program row set (packet sizes, interarrivals,
//! average bandwidth, burst profile, spectral summary) as a markdown
//! fragment, so harnesses and downstream tools can emit EXPERIMENTS-style
//! tables without reimplementing the formatting.

use crate::bandwidth::{average_bandwidth, binned_bandwidth};
use crate::bursts::BurstProfile;
use crate::spectrum::Periodogram;
use crate::stats::Stats;
use fxnet_sim::{FrameRecord, SimTime};
use std::fmt::Write;

/// Options controlling the report.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Bandwidth bin / window (the paper's 10 ms).
    pub bin: SimTime,
    /// Quiet gap separating bursts.
    pub burst_gap: SimTime,
    /// Ignore spectral content below this frequency when reporting the
    /// dominant component.
    pub min_hz: f64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            bin: SimTime::from_millis(10),
            burst_gap: SimTime::from_millis(120),
            min_hz: 0.1,
        }
    }
}

/// All derived quantities for one trace, computed in one pass.
#[derive(Debug, Clone)]
pub struct TraceReport {
    pub label: String,
    pub frames: usize,
    pub span_s: f64,
    pub sizes: Option<Stats>,
    pub interarrivals_ms: Option<Stats>,
    pub avg_bandwidth: Option<f64>,
    pub bursts: Option<BurstProfile>,
    pub dominant_hz: Option<f64>,
    pub flatness: Option<f64>,
}

impl TraceReport {
    /// Analyze `trace` under `opts`.
    pub fn analyze(
        label: impl Into<String>,
        trace: &[FrameRecord],
        opts: &ReportOptions,
    ) -> TraceReport {
        let span_s = match (trace.first(), trace.last()) {
            (Some(a), Some(b)) => (b.time - a.time).as_secs_f64(),
            _ => 0.0,
        };
        let (dominant_hz, flatness) = if trace.is_empty() {
            (None, None)
        } else {
            let spec = Periodogram::compute(&binned_bandwidth(trace, opts.bin), opts.bin);
            (spec.dominant_frequency(opts.min_hz), Some(spec.flatness()))
        };
        TraceReport {
            label: label.into(),
            frames: trace.len(),
            span_s,
            sizes: Stats::packet_sizes(trace),
            interarrivals_ms: Stats::interarrivals_ms(trace),
            avg_bandwidth: average_bandwidth(trace),
            bursts: BurstProfile::of(trace, opts.burst_gap),
            dominant_hz,
            flatness,
        }
    }

    /// One markdown table row:
    /// `| label | frames | span | sizes | interarrival | bw | bursts | f0 |`.
    pub fn markdown_row(&self) -> String {
        let stats4 = |s: &Option<Stats>| match s {
            Some(s) => format!("{:.0}/{:.0}/{:.0}/{:.0}", s.min, s.max, s.avg, s.sd),
            None => "-".to_string(),
        };
        let bw = self
            .avg_bandwidth
            .map_or("-".to_string(), |b| format!("{:.1}", b / 1000.0));
        let bursts = self.bursts.as_ref().map_or("-".to_string(), |b| {
            format!(
                "{}×{:.0}KB (cv {:.2})",
                b.count,
                b.sizes.avg / 1000.0,
                b.size_cv()
            )
        });
        let f0 = self
            .dominant_hz
            .map_or("-".to_string(), |f| format!("{f:.2}"));
        format!(
            "| {} | {} | {:.1} | {} | {} | {} | {} | {} |",
            self.label,
            self.frames,
            self.span_s,
            stats4(&self.sizes),
            stats4(&self.interarrivals_ms),
            bw,
            bursts,
            f0
        )
    }

    /// The header matching [`TraceReport::markdown_row`].
    pub fn markdown_header() -> String {
        "| trace | frames | span s | sizes B (min/max/avg/sd) | interarrival ms | bw KB/s | bursts | dominant Hz |\n|---|---|---|---|---|---|---|---|".to_string()
    }
}

/// Render a full markdown table for several labelled traces.
pub fn markdown_table<'a>(
    rows: impl IntoIterator<Item = (&'a str, &'a [FrameRecord])>,
    opts: &ReportOptions,
) -> String {
    let mut out = TraceReport::markdown_header();
    for (label, trace) in rows {
        let r = TraceReport::analyze(label, trace, opts);
        write!(out, "\n{}", r.markdown_row()).expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, HostId};

    /// 2 Hz burst train: 20-frame bursts spanning 190 ms every 500 ms
    /// (wide bursts so the fundamental dominates the harmonics).
    fn burst_trace() -> Vec<FrameRecord> {
        let mut tr = Vec::new();
        for b in 0..10u64 {
            for i in 0..20u64 {
                let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, 1460, i);
                tr.push(FrameRecord::capture(
                    SimTime::from_millis(b * 500 + i * 10),
                    &f,
                ));
            }
        }
        tr
    }

    #[test]
    fn analyze_fills_every_field() {
        let tr = burst_trace();
        let r = TraceReport::analyze("demo", &tr, &ReportOptions::default());
        assert_eq!(r.frames, 200);
        assert!(r.span_s > 4.0);
        assert_eq!(r.sizes.unwrap().max, 1518.0);
        // Longest quiet gap: 500 ms period − 190 ms burst span.
        assert!(r.interarrivals_ms.unwrap().max >= 300.0);
        assert!(r.avg_bandwidth.unwrap() > 0.0);
        let b = r.bursts.unwrap();
        assert_eq!(b.count, 10);
        assert!(b.size_cv() < 1e-9);
        let f0 = r.dominant_hz.unwrap();
        assert!((f0 - 2.0).abs() < 0.2, "dominant {f0}");
        assert!(r.flatness.unwrap() < 0.5);
    }

    #[test]
    fn empty_trace_renders_dashes() {
        let r = TraceReport::analyze("empty", &[], &ReportOptions::default());
        let row = r.markdown_row();
        assert!(
            row.contains("| empty | 0 | 0.0 | - | - | - | - | - |"),
            "{row}"
        );
    }

    #[test]
    fn markdown_table_has_header_and_rows() {
        let tr = burst_trace();
        let table = markdown_table(
            [("a", tr.as_slice()), ("b", tr.as_slice())],
            &ReportOptions::default(),
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4); // header + separator + 2 rows
        assert!(lines[0].starts_with("| trace |"));
        assert!(lines[2].starts_with("| a |"));
        assert!(lines[3].starts_with("| b |"));
        // Every row has the same column count.
        let cols = lines[0].matches('|').count();
        assert!(lines.iter().all(|l| l.matches('|').count() == cols));
    }
}
