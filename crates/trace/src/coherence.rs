//! Cross-connection correlation (§7.1).
//!
//! "The synchronized communication phases of an Fx program imply that its
//! connections act in phase" — the traffic along the active connections
//! is *correlated*, and any traffic model must capture this. This module
//! measures it: Pearson correlation between the binned bandwidth series
//! of different connections, and the mean pairwise correlation over all
//! busy connections of a trace.

use crate::bandwidth::binned_bandwidth;
use crate::select::host_pairs;
use fxnet_sim::{FrameRecord, SimTime};

/// Pearson correlation of two equal-sampled series, compared over their
/// common prefix. `None` if either side is constant or too short.
pub fn correlation(a: &[f64], b: &[f64]) -> Option<f64> {
    let n = a.len().min(b.len());
    if n < 2 {
        return None;
    }
    let (a, b) = (&a[..n], &b[..n]);
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

/// Mean pairwise correlation of the binned bandwidth of every connection
/// carrying at least `min_frames` frames. All per-connection series are
/// binned on the same absolute time base so "in phase" is meaningful.
/// `None` if fewer than two connections qualify.
pub fn mean_connection_correlation(
    trace: &[FrameRecord],
    bin: SimTime,
    min_frames: usize,
) -> Option<f64> {
    if trace.is_empty() {
        return None;
    }
    let t0 = trace[0].time;
    let span_bins =
        ((trace.last().expect("nonempty").time - t0).as_nanos() / bin.as_nanos() + 1) as usize;
    let mut series: Vec<Vec<f64>> = Vec::new();
    for ((src, dst), count) in host_pairs(trace) {
        if count < min_frames {
            continue;
        }
        let conn: Vec<FrameRecord> = trace
            .iter()
            .filter(|r| r.src == src && r.dst == dst)
            .copied()
            .collect();
        // Rebase onto the shared time origin: prepend the offset.
        let offset_bins = ((conn[0].time - t0).as_nanos() / bin.as_nanos()) as usize;
        let mut s = vec![0.0; offset_bins];
        s.extend(binned_bandwidth(&conn, bin));
        s.resize(span_bins, 0.0);
        series.push(s);
    }
    if series.len() < 2 {
        return None;
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..series.len() {
        for j in 0..i {
            if let Some(c) = correlation(&series[i], &series[j]) {
                sum += c;
                pairs += 1;
            }
        }
    }
    (pairs > 0).then(|| sum / pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, HostId};

    fn rec(src: u32, dst: u32, t_ms: u64, size: u32) -> FrameRecord {
        let f = Frame::tcp(HostId(src), HostId(dst), FrameKind::Data, size - 58, 0);
        FrameRecord::capture(SimTime::from_millis(t_ms), &f)
    }

    #[test]
    fn correlation_of_identical_series_is_one() {
        let a = vec![1.0, 5.0, 2.0, 8.0, 3.0];
        assert!((correlation(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_negated_series_is_minus_one() {
        let a = vec![1.0, 5.0, 2.0, 8.0];
        let b: Vec<f64> = a.iter().map(|v| -v).collect();
        assert!((correlation(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_no_correlation() {
        assert!(correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(correlation(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn in_phase_connections_correlate() {
        // Two connections bursting in the same 100 ms windows.
        let mut tr = Vec::new();
        for burst in 0..10u64 {
            for i in 0..5u64 {
                tr.push(rec(0, 1, burst * 100 + i, 1518));
                tr.push(rec(2, 3, burst * 100 + i, 1518));
            }
        }
        tr.sort_by_key(|r| r.time);
        let c = mean_connection_correlation(&tr, SimTime::from_millis(10), 5).unwrap();
        assert!(c > 0.8, "in-phase correlation {c}");
    }

    #[test]
    fn anti_phase_connections_anticorrelate() {
        let mut tr = Vec::new();
        for burst in 0..10u64 {
            for i in 0..5u64 {
                tr.push(rec(0, 1, burst * 100 + i, 1518));
                tr.push(rec(2, 3, burst * 100 + 50 + i, 1518));
            }
        }
        tr.sort_by_key(|r| r.time);
        let c = mean_connection_correlation(&tr, SimTime::from_millis(10), 5).unwrap();
        assert!(c < 0.1, "anti-phase correlation {c}");
    }

    #[test]
    fn min_frames_filters_quiet_pairs() {
        let mut tr = Vec::new();
        for i in 0..20u64 {
            tr.push(rec(0, 1, i * 10, 1000));
        }
        tr.push(rec(2, 3, 55, 1000)); // one stray frame
        tr.sort_by_key(|r| r.time);
        // Only one connection qualifies → no pairwise correlation.
        assert!(mean_connection_correlation(&tr, SimTime::from_millis(10), 5).is_none());
    }

    #[test]
    fn empty_trace_is_none() {
        assert!(mean_connection_correlation(&[], SimTime::from_millis(10), 1).is_none());
    }
}
