//! Power spectra (periodograms) of the binned bandwidth, and spike
//! extraction.
//!
//! "These spectra directly correspond to the Fourier series coefficients
//! needed to reconstruct the instantaneous average bandwidth at any point
//! in time. Interestingly, these spectra are rather sparse and 'spiky',
//! which means the Fourier expansion can be limited to important spikes"
//! (abstract, §7.2). The full complex coefficients are retained so that
//! `fxnet-spectral` can build those truncated analytic models.

use fxnet_numerics::{fft, Complex};
use fxnet_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One spectral spike: a dominant frequency component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spike {
    /// Frequency in Hz.
    pub freq: f64,
    /// Periodogram power at that bin.
    pub power: f64,
    /// The complex Fourier coefficient (for signal reconstruction).
    pub coeff_re: f64,
    pub coeff_im: f64,
}

/// The periodogram of an evenly sampled bandwidth series.
#[derive(Debug, Clone)]
pub struct Periodogram {
    /// Frequency resolution (Hz per bin).
    pub df: f64,
    /// `|X(f)|²` for DC through Nyquist.
    pub power: Vec<f64>,
    /// Complex spectrum (same indexing), normalized by the sample count
    /// so coefficients are Fourier-series amplitudes.
    coeffs: Vec<Complex>,
    /// Mean of the input signal (the DC term, removed before the FFT).
    pub mean: f64,
    /// Number of (unpadded) input samples.
    pub n_samples: usize,
}

impl Periodogram {
    /// Compute the periodogram of `series` sampled every `dt`. The mean
    /// is removed first (the paper's interesting structure is the
    /// periodicity, not the DC offset); it is kept in [`Periodogram::mean`]
    /// for reconstruction. The series is zero-padded to a power of two.
    pub fn compute(series: &[f64], dt: SimTime) -> Periodogram {
        assert!(!series.is_empty(), "empty series");
        let dt_s = dt.as_secs_f64();
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let n = series.len().next_power_of_two();
        let mut buf = vec![Complex::ZERO; n];
        for (b, &s) in buf.iter_mut().zip(series) {
            *b = Complex::real(s - mean);
        }
        fft(&mut buf);
        let half = n / 2 + 1;
        let scale = 1.0 / series.len() as f64;
        let coeffs: Vec<Complex> = buf[..half].iter().map(|z| z.scale(scale)).collect();
        let power = buf[..half].iter().map(|z| z.norm_sq()).collect();
        Periodogram {
            df: 1.0 / (n as f64 * dt_s),
            power,
            coeffs,
            mean,
            n_samples: series.len(),
        }
    }

    /// Frequency of bin `i` in Hz.
    pub fn freq(&self, i: usize) -> f64 {
        i as f64 * self.df
    }

    /// The Nyquist frequency.
    pub fn nyquist(&self) -> f64 {
        self.freq(self.power.len() - 1)
    }

    /// The complex Fourier coefficient at bin `i`.
    pub fn coeff(&self, i: usize) -> Complex {
        self.coeffs[i]
    }

    /// Total spectral energy (excluding DC, which was removed).
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum()
    }

    /// Extract up to `k` dominant spikes: local maxima ranked by power,
    /// separated by at least `min_sep_hz`. This is the "important spikes"
    /// selection of §7.2.
    pub fn top_spikes(&self, k: usize, min_sep_hz: f64) -> Vec<Spike> {
        let mut candidates: Vec<usize> = (1..self.power.len().saturating_sub(1))
            .filter(|&i| self.power[i] >= self.power[i - 1] && self.power[i] >= self.power[i + 1])
            .collect();
        candidates.sort_by(|&a, &b| {
            self.power[b]
                .partial_cmp(&self.power[a])
                .expect("power is finite")
        });
        let mut picked: Vec<usize> = Vec::new();
        for i in candidates {
            if picked.len() >= k {
                break;
            }
            if picked
                .iter()
                .all(|&j| (self.freq(i) - self.freq(j)).abs() >= min_sep_hz)
            {
                picked.push(i);
            }
        }
        picked
            .into_iter()
            .map(|i| Spike {
                freq: self.freq(i),
                power: self.power[i],
                coeff_re: self.coeffs[i].re,
                coeff_im: self.coeffs[i].im,
            })
            .collect()
    }

    /// The strongest spike's frequency (the fundamental or dominant
    /// harmonic), ignoring bins below `min_hz`.
    pub fn dominant_frequency(&self, min_hz: f64) -> Option<f64> {
        let start = (min_hz / self.df).ceil() as usize;
        let (best, _) = self
            .power
            .iter()
            .enumerate()
            .skip(start.max(1))
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))?;
        Some(self.freq(best))
    }

    /// Spectral flatness (geometric mean / arithmetic mean of power),
    /// excluding DC: near 1 for noise-like media traffic, near 0 for the
    /// sparse spiky spectra of parallel programs.
    pub fn flatness(&self) -> f64 {
        let p: Vec<f64> = self.power[1..].iter().map(|&v| v.max(1e-30)).collect();
        if p.is_empty() {
            return 1.0;
        }
        let log_mean = p.iter().map(|v| v.ln()).sum::<f64>() / p.len() as f64;
        let mean = p.iter().sum::<f64>() / p.len() as f64;
        (log_mean.exp() / mean).min(1.0)
    }
}

/// Normalized autocorrelation of `series` (mean removed) for lags
/// `0..=max_lag`, computed via FFT. `acf[0] = 1`; a strong peak at lag L
/// means the signal repeats every `L` samples — the direct time-domain
/// statement of the paper's periodicity claims.
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(!series.is_empty());
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    // Zero-pad to at least 2n to make the circular correlation linear.
    let n = (series.len() * 2).next_power_of_two();
    let mut buf = vec![Complex::ZERO; n];
    for (b, &s) in buf.iter_mut().zip(series) {
        *b = Complex::real(s - mean);
    }
    fft(&mut buf);
    for z in buf.iter_mut() {
        *z = Complex::real(z.norm_sq());
    }
    fxnet_numerics::ifft(&mut buf);
    let denom = buf[0].re.max(1e-30);
    (0..=max_lag.min(series.len() - 1))
        .map(|l| buf[l].re / denom)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, dt: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f * i as f64 * dt).cos())
            .collect()
    }

    #[test]
    fn pure_tone_peak_at_right_frequency() {
        let dt = SimTime::from_millis(10);
        // 5 Hz tone sampled at 100 Hz for 1024 samples.
        let s = tone(5.0, 0.01, 1024, 3.0);
        let p = Periodogram::compute(&s, dt);
        let f = p.dominant_frequency(0.0).unwrap();
        assert!((f - 5.0).abs() < p.df, "dominant {f} Hz");
    }

    #[test]
    fn two_tones_give_two_spikes() {
        let dt = SimTime::from_millis(10);
        let mut s = tone(5.0, 0.01, 2048, 3.0);
        for (x, y) in s.iter_mut().zip(tone(12.0, 0.01, 2048, 1.5)) {
            *x += y;
        }
        let p = Periodogram::compute(&s, dt);
        let spikes = p.top_spikes(2, 1.0);
        assert_eq!(spikes.len(), 2);
        let mut freqs: Vec<f64> = spikes.iter().map(|s| s.freq).collect();
        freqs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((freqs[0] - 5.0).abs() < 2.0 * p.df);
        assert!((freqs[1] - 12.0).abs() < 2.0 * p.df);
        // Stronger tone first by power.
        assert!(spikes[0].power > spikes[1].power);
    }

    #[test]
    fn dc_is_removed() {
        let dt = SimTime::from_millis(10);
        let s = vec![42.0; 512];
        let p = Periodogram::compute(&s, dt);
        assert_eq!(p.mean, 42.0);
        assert!(p.total_power() < 1e-12, "constant signal has no AC power");
    }

    #[test]
    fn frequency_resolution() {
        let dt = SimTime::from_millis(10); // 100 Hz sampling
        let p = Periodogram::compute(&vec![0.0; 1000], dt);
        // Padded to 1024 bins → df = 100/1024 Hz, Nyquist 50 Hz.
        assert!((p.df - 100.0 / 1024.0).abs() < 1e-9);
        assert!((p.nyquist() - 50.0).abs() < 0.1);
    }

    #[test]
    fn periodic_bursts_have_harmonics() {
        // A 2 Hz rectangular burst train (20% duty) sampled at 100 Hz:
        // spikes at 2, 4, 6 ... Hz.
        let dt = SimTime::from_millis(10);
        let n = 4096;
        let s: Vec<f64> = (0..n)
            .map(|i| {
                let phase = (i as f64 * 0.01 * 2.0) % 1.0;
                if phase < 0.2 {
                    1000.0
                } else {
                    0.0
                }
            })
            .collect();
        let p = Periodogram::compute(&s, dt);
        let spikes = p.top_spikes(3, 0.5);
        let mut freqs: Vec<f64> = spikes.iter().map(|s| s.freq).collect();
        freqs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in freqs.iter().zip([2.0, 4.0, 6.0]) {
            assert!((got - want).abs() < 0.1, "harmonic {got} vs {want}");
        }
    }

    #[test]
    fn flatness_separates_noise_from_tones() {
        let dt = SimTime::from_millis(10);
        // Deterministic pseudo-noise (splitmix-style scramble).
        let noise: Vec<f64> = (0..2048u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) % 1000) as f64
            })
            .collect();
        let spiky = tone(5.0, 0.01, 2048, 100.0);
        let f_noise = Periodogram::compute(&noise, dt).flatness();
        let f_spiky = Periodogram::compute(&spiky, dt).flatness();
        assert!(f_noise > 5.0 * f_spiky, "noise {f_noise} vs tone {f_spiky}");
    }

    #[test]
    fn min_separation_respected() {
        let dt = SimTime::from_millis(10);
        let s = tone(5.0, 0.01, 2048, 3.0);
        let p = Periodogram::compute(&s, dt);
        let spikes = p.top_spikes(5, 2.0);
        for i in 0..spikes.len() {
            for j in 0..i {
                assert!((spikes[i].freq - spikes[j].freq).abs() >= 2.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn empty_series_rejected() {
        let _ = Periodogram::compute(&[], SimTime::from_millis(10));
    }

    #[test]
    fn autocorrelation_of_periodic_signal_peaks_at_period() {
        // Period-50 burst train.
        let s: Vec<f64> = (0..2000)
            .map(|i| if i % 50 < 10 { 100.0 } else { 0.0 })
            .collect();
        let acf = autocorrelation(&s, 120);
        assert!((acf[0] - 1.0).abs() < 1e-9);
        assert!(acf[50] > 0.9, "acf[50] = {}", acf[50]);
        assert!(acf[100] > 0.8, "acf[100] = {}", acf[100]);
        assert!(acf[25] < 0.3, "acf[25] = {}", acf[25]);
    }

    #[test]
    fn autocorrelation_of_noise_decays_immediately() {
        let s: Vec<f64> = (0..4096u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((z ^ (z >> 27)) % 1000) as f64
            })
            .collect();
        let acf = autocorrelation(&s, 50);
        for (l, v) in acf.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.1, "acf[{l}] = {v}");
        }
    }

    #[test]
    fn autocorrelation_lag_capped_by_length() {
        let s = vec![1.0, 2.0, 3.0];
        let acf = autocorrelation(&s, 100);
        assert_eq!(acf.len(), 3);
    }
}
