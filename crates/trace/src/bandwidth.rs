//! Bandwidth series: lifetime average, sliding-window instantaneous
//! bandwidth, and the statically binned series used for spectra.

use fxnet_sim::{FrameRecord, SimTime};

/// One fused pass over `(time_ns, wire_len)` samples: min time, max
/// time, and byte total folded together. Shared by the legacy slice
/// kernel and the columnar [`crate::TraceView`] so both produce
/// bitwise-identical results.
pub(crate) fn average_from(samples: impl Iterator<Item = (u64, u32)>) -> Option<f64> {
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    let mut bytes = 0u64;
    let mut n = 0usize;
    for (t, len) in samples {
        n += 1;
        t_min = t_min.min(t);
        t_max = t_max.max(t);
        bytes += u64::from(len);
    }
    if n == 0 {
        return None;
    }
    let span = (SimTime::from_nanos(t_max) - SimTime::from_nanos(t_min)).as_secs_f64();
    if span <= 0.0 {
        return None;
    }
    Some(bytes as f64 / span)
}

/// Average bandwidth in bytes/second over the lifetime of the trace
/// (Figure 5's quantity). `None` for traces spanning zero time.
///
/// The span comes from the *observed* min/max times — not the first and
/// last records — folded into the same pass as the byte sum, so unsorted
/// traces yield the true lifetime rather than a wrong (or negative)
/// span.
pub fn average_bandwidth(trace: &[FrameRecord]) -> Option<f64> {
    average_from(trace.iter().map(|r| (r.time.as_nanos(), r.wire_len)))
}

/// Instantaneous average bandwidth over a `window` sliding one packet at
/// a time (Figures 6 and 10): for each packet arrival `t`, the bytes
/// received in `(t − window, t]` divided by the window length. Returns
/// `(time, bytes_per_second)` points.
///
/// Delegates to the streaming [`crate::stream::SlidingBandwidth`] ring,
/// so the batch and live-observer paths share one window semantics: a
/// window reaching before the first packet (or a whole trace shorter
/// than one window) holds fewer bytes but is still divided by the full
/// window length.
pub fn sliding_window_bandwidth(trace: &[FrameRecord], window: SimTime) -> Vec<(SimTime, f64)> {
    let mut ring = crate::stream::SlidingBandwidth::new(window);
    trace
        .iter()
        .map(|r| (r.time, ring.push(r.time, r.wire_len)))
        .collect()
}

/// One-pass static binning over `(time_ns, wire_len)` samples, shared by
/// the legacy slice kernel and the columnar [`crate::TraceView`].
///
/// The bin grid is anchored at the minimum observed time. For
/// time-ordered input (the capture invariant — every simulator trace) the
/// first sample *is* the minimum, so the whole computation — min, max,
/// and bin fill — happens in a single pass, growing the bin vector as
/// later samples land. Out-of-order input is detected on the fly (a
/// sample earlier than the provisional anchor) and triggers one
/// corrective fill pass against the true minimum; `make` must therefore
/// yield the same samples each time it is called.
pub(crate) fn binned_from<I>(mut make: impl FnMut() -> I, bin: SimTime) -> Vec<f64>
where
    I: Iterator<Item = (u64, u32)>,
{
    let bin_ns = bin.as_nanos();
    assert!(bin_ns > 0);
    let mut it = make();
    let Some((anchor, first_len)) = it.next() else {
        return Vec::new();
    };
    let mut t_min = anchor;
    let mut t_max = anchor;
    let mut bytes: Vec<u64> = vec![u64::from(first_len)];
    let mut anchored = true;
    for (t, len) in it {
        t_min = t_min.min(t);
        t_max = t_max.max(t);
        if t < anchor {
            anchored = false;
        }
        if anchored {
            let idx = ((t - anchor) / bin_ns) as usize;
            if idx >= bytes.len() {
                bytes.resize(idx + 1, 0);
            }
            bytes[idx] += u64::from(len);
        }
    }
    let nbins = ((t_max - t_min) / bin_ns + 1) as usize;
    if anchored {
        bytes.resize(nbins, 0);
    } else {
        // Rare out-of-order path: the provisional anchor was not the
        // minimum, so the grid phase was wrong — refill once.
        bytes = vec![0u64; nbins];
        for (t, len) in make() {
            bytes[((t - t_min) / bin_ns) as usize] += u64::from(len);
        }
    }
    let bin_s = bin.as_secs_f64();
    bytes.into_iter().map(|b| b as f64 / bin_s).collect()
}

/// Bandwidth binned on static `bin`-long intervals starting at the first
/// packet (bytes/second per bin). "Because a power spectrum computation
/// requires evenly spaced input data, the input bandwidth was computed
/// along static 10 ms intervals by including all packets that arrived
/// during the interval" (§6.1).
pub fn binned_bandwidth(trace: &[FrameRecord], bin: SimTime) -> Vec<f64> {
    binned_from(
        || trace.iter().map(|r| (r.time.as_nanos(), r.wire_len)),
        bin,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, HostId};
    use proptest::prelude::*;

    fn rec(t: SimTime, size: u32) -> FrameRecord {
        let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, size - 58, 0);
        FrameRecord::capture(t, &f)
    }

    #[test]
    fn average_over_span() {
        let tr = vec![
            rec(SimTime::ZERO, 1000),
            rec(SimTime::from_secs(1), 1000),
            rec(SimTime::from_secs(2), 1000),
        ];
        // 3000 bytes over 2 seconds.
        assert_eq!(average_bandwidth(&tr), Some(1500.0));
    }

    #[test]
    fn average_degenerate_cases() {
        assert_eq!(average_bandwidth(&[]), None);
        assert_eq!(average_bandwidth(&[rec(SimTime::ZERO, 100)]), None);
    }

    #[test]
    fn sliding_window_counts_recent_bytes() {
        let w = SimTime::from_millis(10);
        let tr = vec![
            rec(SimTime::from_millis(0), 500),
            rec(SimTime::from_millis(5), 500),
            rec(SimTime::from_millis(20), 500),
        ];
        let bw = sliding_window_bandwidth(&tr, w);
        assert_eq!(bw.len(), 3);
        // First point: 500 B in 10 ms.
        assert_eq!(bw[0].1, 50_000.0);
        // Second: both packets inside the window.
        assert_eq!(bw[1].1, 100_000.0);
        // Third: the early packets fell out of the window.
        assert_eq!(bw[2].1, 50_000.0);
    }

    #[test]
    fn binned_distributes_packets() {
        let bin = SimTime::from_millis(10);
        let tr = vec![
            rec(SimTime::from_millis(0), 100),
            rec(SimTime::from_millis(3), 100),
            rec(SimTime::from_millis(25), 100),
        ];
        let b = binned_bandwidth(&tr, bin);
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], 20_000.0); // 200 B / 10 ms
        assert_eq!(b[1], 0.0);
        assert_eq!(b[2], 10_000.0);
    }

    #[test]
    fn binned_empty() {
        assert!(binned_bandwidth(&[], SimTime::from_millis(10)).is_empty());
    }

    #[test]
    fn average_handles_unsorted_traces() {
        // Same three frames as `average_over_span`, delivered out of
        // order: the span must still be the true 2-second lifetime.
        let tr = vec![
            rec(SimTime::from_secs(2), 1000),
            rec(SimTime::ZERO, 1000),
            rec(SimTime::from_secs(1), 1000),
        ];
        assert_eq!(average_bandwidth(&tr), Some(1500.0));
    }

    #[test]
    fn binned_handles_unsorted_traces() {
        let bin = SimTime::from_millis(10);
        let sorted = vec![
            rec(SimTime::from_millis(0), 100),
            rec(SimTime::from_millis(3), 100),
            rec(SimTime::from_millis(25), 100),
        ];
        let mut shuffled = sorted.clone();
        shuffled.swap(0, 2);
        assert_eq!(
            binned_bandwidth(&shuffled, bin),
            binned_bandwidth(&sorted, bin)
        );
    }

    proptest! {
        #[test]
        fn binned_conserves_total_bytes(
            times in prop::collection::vec(0u64..1_000_000u64, 1..200),
            sizes in prop::collection::vec(58u32..1518, 1..200),
        ) {
            let mut ts: Vec<u64> = times;
            ts.sort_unstable();
            let tr: Vec<FrameRecord> = ts
                .iter()
                .zip(sizes.iter().cycle())
                .map(|(&t, &s)| rec(SimTime::from_micros(t), s))
                .collect();
            let bin = SimTime::from_millis(10);
            let b = binned_bandwidth(&tr, bin);
            let total_from_bins: f64 = b.iter().sum::<f64>() * bin.as_secs_f64();
            let total: u64 = tr.iter().map(|r| u64::from(r.wire_len)).sum();
            prop_assert!((total_from_bins - total as f64).abs() < 1e-6 * total as f64 + 1e-6);
        }

        #[test]
        fn binned_and_average_are_order_independent(
            times in prop::collection::vec(0u64..1_000_000u64, 1..200),
            sizes in prop::collection::vec(58u32..1518, 1..200),
        ) {
            let tr: Vec<FrameRecord> = times
                .iter()
                .zip(sizes.iter().cycle())
                .map(|(&t, &s)| rec(SimTime::from_micros(t), s))
                .collect();
            let mut sorted = tr.clone();
            sorted.sort_by_key(|r| r.time);
            let bin = SimTime::from_millis(10);
            prop_assert_eq!(binned_bandwidth(&tr, bin), binned_bandwidth(&sorted, bin));
            prop_assert_eq!(average_bandwidth(&tr), average_bandwidth(&sorted));
        }

        #[test]
        fn sliding_window_is_nonnegative_and_bounded(
            times in prop::collection::vec(0u64..100_000u64, 2..100),
        ) {
            let mut ts = times;
            ts.sort_unstable();
            let tr: Vec<FrameRecord> = ts
                .iter()
                .map(|&t| rec(SimTime::from_micros(t), 1518))
                .collect();
            let w = SimTime::from_millis(10);
            let bw = sliding_window_bandwidth(&tr, w);
            prop_assert_eq!(bw.len(), tr.len());
            for (_, v) in bw {
                prop_assert!(v >= 0.0);
                // Cannot exceed all bytes in one window.
                prop_assert!(v <= tr.len() as f64 * 1518.0 / w.as_secs_f64());
            }
        }
    }
}
