//! # fxnet-trace
//!
//! Analysis of promiscuous-mode packet traces, following the paper's
//! methodology (§5.3, §6) record for record:
//!
//! * **Statistics** — min/max/average/standard deviation of packet sizes
//!   and interarrival times (Figures 3, 4, 8, 9), for the aggregate trace
//!   and for single *connections*. A connection is "a kernel-specific
//!   simplex channel between a source machine and a destination machine":
//!   all frames from one host to another, which captures message-passing
//!   TCP data, PVM-daemon UDP traffic, and the TCP ACKs of the symmetric
//!   reverse channel.
//! * **Bandwidth** — the lifetime average (Figure 5), the instantaneous
//!   bandwidth over a 10 ms window sliding one packet at a time
//!   (Figures 6, 10), and the 10 ms statically binned series the spectra
//!   are computed from.
//! * **Power spectra** — the periodogram `|FFT|²` of the binned
//!   bandwidth (Figures 7, 11), with spike extraction: the sparse,
//!   "spiky" spectra are what §7.2 truncates into analytic traffic
//!   models.
//! * **Size populations** — exact packet-size histograms, used to verify
//!   the trimodal distributions the paper describes for SOR/2DFFT/HIST.
//!
//! Analyses run over either representation: the legacy array-of-structs
//! `Vec<FrameRecord>` slice kernels, or the columnar [`TraceStore`] —
//! structure-of-arrays columns with a one-pass connection index, whose
//! [`TraceView`]s make `connection()`, `demux()`, and per-connection
//! statistics zero-copy and whose kernels are single fused passes. The
//! two paths share their arithmetic cores and produce bitwise-identical
//! results; the columnar one is what the bench harness runs at scale.
//! Traces persist as diffable text or as the compact binary columnar
//! container in [`io`], selected by file extension.

//! ```
//! use fxnet_sim::{Frame, FrameKind, FrameRecord, HostId, SimTime};
//! use fxnet_trace::{binned_bandwidth, Periodogram, Stats};
//!
//! // A 2 Hz burst train of full frames: 20-packet bursts spanning
//! // 200 ms, repeating every 500 ms.
//! let trace: Vec<FrameRecord> = (0..2000)
//!     .map(|i| {
//!         let t = SimTime::from_millis((i / 20) * 500 + (i % 20) * 10);
//!         let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, 1460, i as u64);
//!         FrameRecord::capture(t, &f)
//!     })
//!     .collect();
//! let sizes = Stats::packet_sizes(&trace).unwrap();
//! assert_eq!(sizes.max, 1518.0);
//! let spectrum = Periodogram::compute(
//!     &binned_bandwidth(&trace, SimTime::from_millis(10)),
//!     SimTime::from_millis(10),
//! );
//! let f0 = spectrum.dominant_frequency(0.5).unwrap();
//! assert!((f0 - 2.0).abs() < 0.1);
//! ```

pub mod bandwidth;
pub mod bursts;
pub mod coherence;
pub mod demux;
pub mod interference;
pub mod io;
pub mod phases;
pub mod report;
pub mod select;
pub mod spectrum;
pub mod stats;
pub mod store;
pub mod stream;
pub mod streaming;

pub use bandwidth::{average_bandwidth, binned_bandwidth, sliding_window_bandwidth};
pub use bursts::{detect_bursts, Burst, BurstProfile};
pub use coherence::{correlation, mean_connection_correlation};
pub use demux::{demux, demux_store, DemuxedStore, DemuxedTrace};
pub use interference::{burst_collisions, slowdown, spectral_concentration, SpectralInterference};
pub use io::{
    load_store, load_trace, read_chunk, read_chunk_directory, save_store, save_store_chunked,
    save_trace, ChunkBuf, ChunkCursor, ChunkDirectory, ChunkMeta, ChunkedWriter, TraceFormat,
    TraceIoError,
};
pub use phases::{PhaseBreakdown, PhaseRow};
pub use report::{markdown_table, markdown_table_views, ReportOptions, TraceReport};
pub use select::{connection, dominant_modes, host_pairs, size_population};
pub use spectrum::{autocorrelation, Periodogram, Spike};
pub use stats::Stats;
pub use store::{TraceStore, TraceView};
pub use stream::{SlidingBandwidth, StreakLatch, StreamBinner};
pub use streaming::{SlidingPeak, StreamingReport};
