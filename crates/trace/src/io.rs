//! Trace persistence: a line-oriented text format equivalent to the
//! paper's tcpdump output, so traces can be saved, diffed, and re-analyzed
//! without re-running the simulation.
//!
//! One frame per line: `time_ns wire_len proto kind src dst`, e.g.
//! `1234567 1518 tcp data 0 1`.

use fxnet_sim::{FrameKind, FrameRecord, HostId, Proto, SimTime};
use std::io::{BufRead, Write};

/// Error from parsing a saved trace.
#[derive(Debug)]
pub enum TraceIoError {
    Io(std::io::Error),
    /// Malformed line, with its (1-based) line number.
    Parse(usize, String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O: {e}"),
            TraceIoError::Parse(line, text) => {
                write!(f, "trace parse error at line {line}: {text}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<TraceIoError> for fxnet_sim::FxnetError {
    fn from(e: TraceIoError) -> Self {
        fxnet_sim::FxnetError::Io(e.to_string())
    }
}

fn proto_str(p: Proto) -> &'static str {
    match p {
        Proto::Tcp => "tcp",
        Proto::Udp => "udp",
    }
}

fn kind_str(k: FrameKind) -> &'static str {
    match k {
        FrameKind::Data => "data",
        FrameKind::Ack => "ack",
        FrameKind::Syn => "syn",
        FrameKind::Datagram => "dgram",
    }
}

/// Write a trace to `w`, one record per line.
pub fn write_trace(w: &mut impl Write, trace: &[FrameRecord]) -> std::io::Result<()> {
    let mut buf = std::io::BufWriter::new(w);
    for r in trace {
        writeln!(
            buf,
            "{} {} {} {} {} {}",
            r.time.as_nanos(),
            r.wire_len,
            proto_str(r.proto),
            kind_str(r.kind),
            r.src.0,
            r.dst.0
        )?;
    }
    buf.flush()
}

/// Read a trace written by [`write_trace`].
pub fn read_trace(r: &mut impl BufRead) -> Result<Vec<FrameRecord>, TraceIoError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_ascii_whitespace();
        let bad = || TraceIoError::Parse(i + 1, line.to_string());
        let time = f
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(bad)?;
        let wire_len = f
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(bad)?;
        let proto = match f.next().ok_or_else(bad)? {
            "tcp" => Proto::Tcp,
            "udp" => Proto::Udp,
            _ => return Err(bad()),
        };
        let kind = match f.next().ok_or_else(bad)? {
            "data" => FrameKind::Data,
            "ack" => FrameKind::Ack,
            "syn" => FrameKind::Syn,
            "dgram" => FrameKind::Datagram,
            _ => return Err(bad()),
        };
        let src = f
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(bad)?;
        let dst = f
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(bad)?;
        if f.next().is_some() {
            return Err(bad());
        }
        out.push(FrameRecord {
            time: SimTime::from_nanos(time),
            wire_len,
            proto,
            kind,
            src: HostId(src),
            dst: HostId(dst),
        });
    }
    Ok(out)
}

/// Save a trace to a file path.
pub fn save_trace(path: impl AsRef<std::path::Path>, trace: &[FrameRecord]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write_trace(&mut f, trace)
}

/// Load a trace from a file path.
pub fn load_trace(path: impl AsRef<std::path::Path>) -> Result<Vec<FrameRecord>, TraceIoError> {
    let f = std::fs::File::open(path).map_err(TraceIoError::Io)?;
    read_trace(&mut std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::Frame;
    use proptest::prelude::*;

    fn sample() -> Vec<FrameRecord> {
        vec![
            FrameRecord::capture(
                SimTime::from_micros(5),
                &Frame::tcp(HostId(0), HostId(1), FrameKind::Data, 1460, 0),
            ),
            FrameRecord::capture(
                SimTime::from_micros(9),
                &Frame::tcp(HostId(1), HostId(0), FrameKind::Ack, 0, 0),
            ),
            FrameRecord::capture(
                SimTime::from_micros(12),
                &Frame::udp(HostId(3), HostId(0), 32, 0),
            ),
        ]
    }

    #[test]
    fn round_trip() {
        let tr = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &tr).unwrap();
        let back = read_trace(&mut &buf[..]).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n5000 1518 tcp data 0 1\n";
        let tr = read_trace(&mut text.as_bytes()).unwrap();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].wire_len, 1518);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let text = "5000 1518 tcp data 0 1\nnot a frame\n";
        match read_trace(&mut text.as_bytes()) {
            Err(TraceIoError::Parse(2, _)) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
        let trailing = "5000 1518 tcp data 0 1 junk\n";
        assert!(read_trace(&mut trailing.as_bytes()).is_err());
        let bad_proto = "5000 1518 icmp data 0 1\n";
        assert!(read_trace(&mut bad_proto.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("fxnet-trace-io-test.txt");
        let tr = sample();
        save_trace(&path, &tr).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back, tr);
        let _ = std::fs::remove_file(&path);
    }

    proptest! {
        #[test]
        fn arbitrary_records_round_trip(
            times in prop::collection::vec(0u64..u64::MAX / 2, 1..50),
            sizes in prop::collection::vec(58u32..1519, 1..50),
            hosts in prop::collection::vec((0u32..16, 0u32..16), 1..50),
        ) {
            let tr: Vec<FrameRecord> = times
                .iter()
                .zip(sizes.iter().cycle())
                .zip(hosts.iter().cycle())
                .map(|((&t, &sz), &(a, b))| FrameRecord {
                    time: SimTime::from_nanos(t),
                    wire_len: sz,
                    proto: if t % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                    kind: match t % 4 {
                        0 => FrameKind::Data,
                        1 => FrameKind::Ack,
                        2 => FrameKind::Syn,
                        _ => FrameKind::Datagram,
                    },
                    src: HostId(a),
                    dst: HostId(b),
                })
                .collect();
            let mut buf = Vec::new();
            write_trace(&mut buf, &tr).unwrap();
            let back = read_trace(&mut &buf[..]).unwrap();
            prop_assert_eq!(back, tr);
        }
    }
}
