//! Trace persistence in two formats, selected by file extension:
//!
//! * **Text** — one frame per line, `time_ns wire_len proto kind src
//!   dst` (e.g. `1234567 1518 tcp data 0 1`): equivalent to the paper's
//!   tcpdump output, diffable, greppable.
//! * **Binary** (`.fxb` / `.bin`) — a compact columnar container for the
//!   cache-scale traces the mixes produce. Layout:
//!
//!   ```text
//!   magic "FXTC" | version u16 LE | flags u16 LE (0) | count u64 LE
//!   then one block per column, in fixed order:
//!       id u8 | payload length u64 LE | payload
//!   id 1  time   zigzag LEB128 varints of consecutive wrapping deltas
//!   id 2  size   LEB128 varints of wire_len
//!   id 3  tag    raw bytes, proto/kind packed as in the TraceStore
//!   id 4  src    LEB128 varints of host ids
//!   id 5  dst    LEB128 varints of host ids
//!   ```
//!
//!   Time deltas are the *wrapping* `u64` difference of consecutive
//!   timestamps, zigzag-mapped so small forward **and** backward steps
//!   both encode short — a bijection on `u64`, so even unsorted traces
//!   round-trip losslessly. The version field is the cache-invalidation
//!   handle: a reader seeing a newer version returns
//!   [`TraceIoError::Version`] and the caller regenerates the artifact.

use crate::store::{unpack_tag, TraceStore};
use fxnet_sim::{FrameKind, FrameRecord, HostId, Proto, SimTime};
use std::io::{BufRead, Read, Write};
use std::path::Path;

/// Magic bytes opening a binary trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"FXTC";
/// Current binary trace format version.
pub const TRACE_VERSION: u16 = 1;

/// On-disk trace encoding, selected by file extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Line-oriented `time_ns wire_len proto kind src dst`.
    Text,
    /// Columnar container with varint-delta times (`.fxb`).
    Binary,
}

impl TraceFormat {
    /// Format implied by `path`'s extension: `.fxb` and `.bin` are
    /// binary, everything else is text.
    pub fn for_path(path: impl AsRef<Path>) -> TraceFormat {
        match path.as_ref().extension().and_then(|e| e.to_str()) {
            Some("fxb") | Some("bin") => TraceFormat::Binary,
            _ => TraceFormat::Text,
        }
    }

    /// Canonical file extension for this format.
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::Text => "trace",
            TraceFormat::Binary => "fxb",
        }
    }
}

impl std::str::FromStr for TraceFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<TraceFormat, String> {
        match s {
            "text" => Ok(TraceFormat::Text),
            "binary" => Ok(TraceFormat::Binary),
            other => Err(format!("unknown trace format {other:?} (text|binary)")),
        }
    }
}

/// Error from parsing a saved trace.
#[derive(Debug)]
pub enum TraceIoError {
    Io(std::io::Error),
    /// Malformed line, with its (1-based) line number.
    Parse(usize, String),
    /// The file is not a binary trace (bad magic).
    Magic,
    /// Binary header carries an unsupported version — the signal cached
    /// artifacts use to invalidate themselves across format revisions.
    Version {
        found: u16,
        supported: u16,
    },
    /// Structurally invalid binary payload.
    Corrupt(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O: {e}"),
            TraceIoError::Parse(line, text) => {
                write!(f, "trace parse error at line {line}: {text}")
            }
            TraceIoError::Magic => write!(f, "not a binary trace (bad magic)"),
            TraceIoError::Version { found, supported } => write!(
                f,
                "binary trace version {found} unsupported (this build reads <= {supported})"
            ),
            TraceIoError::Corrupt(what) => write!(f, "corrupt binary trace: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<TraceIoError> for fxnet_sim::FxnetError {
    fn from(e: TraceIoError) -> Self {
        fxnet_sim::FxnetError::Io(e.to_string())
    }
}

fn proto_str(p: Proto) -> &'static str {
    match p {
        Proto::Tcp => "tcp",
        Proto::Udp => "udp",
    }
}

fn kind_str(k: FrameKind) -> &'static str {
    match k {
        FrameKind::Data => "data",
        FrameKind::Ack => "ack",
        FrameKind::Syn => "syn",
        FrameKind::Datagram => "dgram",
    }
}

/// Write a trace to `w`, one record per line.
pub fn write_trace(w: &mut impl Write, trace: &[FrameRecord]) -> std::io::Result<()> {
    let mut buf = std::io::BufWriter::new(w);
    for r in trace {
        writeln!(
            buf,
            "{} {} {} {} {} {}",
            r.time.as_nanos(),
            r.wire_len,
            proto_str(r.proto),
            kind_str(r.kind),
            r.src.0,
            r.dst.0
        )?;
    }
    buf.flush()
}

/// Read a trace written by [`write_trace`].
pub fn read_trace(r: &mut impl BufRead) -> Result<Vec<FrameRecord>, TraceIoError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_ascii_whitespace();
        let bad = || TraceIoError::Parse(i + 1, line.to_string());
        let time = f
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(bad)?;
        let wire_len = f
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(bad)?;
        let proto = match f.next().ok_or_else(bad)? {
            "tcp" => Proto::Tcp,
            "udp" => Proto::Udp,
            _ => return Err(bad()),
        };
        let kind = match f.next().ok_or_else(bad)? {
            "data" => FrameKind::Data,
            "ack" => FrameKind::Ack,
            "syn" => FrameKind::Syn,
            "dgram" => FrameKind::Datagram,
            _ => return Err(bad()),
        };
        let src = f
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(bad)?;
        let dst = f
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(bad)?;
        if f.next().is_some() {
            return Err(bad());
        }
        out.push(FrameRecord {
            time: SimTime::from_nanos(time),
            wire_len,
            proto,
            kind,
            src: HostId(src),
            dst: HostId(dst),
        });
    }
    Ok(out)
}

// ---- binary format -------------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceIoError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or_else(|| TraceIoError::Corrupt("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceIoError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_block(out: &mut Vec<u8>, id: u8, payload: &[u8]) {
    out.push(id);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serialize a store into the binary container (see the module docs for
/// the layout).
pub fn write_store_binary(w: &mut impl Write, store: &TraceStore) -> std::io::Result<()> {
    let n = store.len();
    let mut out = Vec::with_capacity(16 + n * 4);
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());

    let mut payload = Vec::with_capacity(n * 2);
    let mut prev = 0u64;
    for &t in &store.time_ns {
        put_varint(&mut payload, zigzag(t.wrapping_sub(prev) as i64));
        prev = t;
    }
    put_block(&mut out, 1, &payload);

    payload.clear();
    for &len in &store.wire_len {
        put_varint(&mut payload, u64::from(len));
    }
    put_block(&mut out, 2, &payload);

    put_block(&mut out, 3, &store.tag);

    payload.clear();
    for &s in &store.src {
        put_varint(&mut payload, u64::from(s));
    }
    put_block(&mut out, 4, &payload);

    payload.clear();
    for &d in &store.dst {
        put_varint(&mut payload, u64::from(d));
    }
    put_block(&mut out, 5, &payload);

    w.write_all(&out)
}

fn get_block<'a>(buf: &'a [u8], pos: &mut usize, want_id: u8) -> Result<&'a [u8], TraceIoError> {
    let &id = buf
        .get(*pos)
        .ok_or_else(|| TraceIoError::Corrupt("missing column block".into()))?;
    if id != want_id {
        return Err(TraceIoError::Corrupt(format!(
            "expected column block {want_id}, found {id}"
        )));
    }
    *pos += 1;
    let len_bytes = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| TraceIoError::Corrupt("truncated block header".into()))?;
    *pos += 8;
    let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes")) as usize;
    let payload = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| TraceIoError::Corrupt("truncated block payload".into()))?;
    *pos += len;
    Ok(payload)
}

fn varint_column<T>(
    payload: &[u8],
    count: usize,
    name: &str,
    convert: impl Fn(u64) -> Option<T>,
) -> Result<Vec<T>, TraceIoError> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let v = get_varint(payload, &mut pos)?;
        out.push(convert(v).ok_or_else(|| TraceIoError::Corrupt(format!("{name} out of range")))?);
    }
    if pos != payload.len() {
        return Err(TraceIoError::Corrupt(format!(
            "{name} block has trailing bytes"
        )));
    }
    Ok(out)
}

/// Deserialize a binary trace container into a store.
pub fn read_store_binary(r: &mut impl Read) -> Result<TraceStore, TraceIoError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    if buf.len() < 16 {
        return Err(TraceIoError::Corrupt("header too short".into()));
    }
    if buf[0..4] != TRACE_MAGIC {
        return Err(TraceIoError::Magic);
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes"));
    if version > TRACE_VERSION {
        return Err(TraceIoError::Version {
            found: version,
            supported: TRACE_VERSION,
        });
    }
    let count = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")) as usize;
    if count > buf.len() {
        // Every frame costs at least one byte per column, so a count
        // beyond the file size is corruption, not a big trace.
        return Err(TraceIoError::Corrupt(
            "frame count exceeds file size".into(),
        ));
    }
    let mut pos = 16usize;

    let time_block = get_block(&buf, &mut pos, 1)?;
    let mut tpos = 0usize;
    let mut time_ns = Vec::with_capacity(count);
    let mut prev = 0u64;
    for _ in 0..count {
        let delta = unzigzag(get_varint(time_block, &mut tpos)?);
        prev = prev.wrapping_add(delta as u64);
        time_ns.push(prev);
    }
    if tpos != time_block.len() {
        return Err(TraceIoError::Corrupt(
            "time block has trailing bytes".into(),
        ));
    }

    let wire_len = varint_column(get_block(&buf, &mut pos, 2)?, count, "wire_len", |v| {
        u32::try_from(v).ok()
    })?;

    let tag_block = get_block(&buf, &mut pos, 3)?;
    if tag_block.len() != count {
        return Err(TraceIoError::Corrupt("tag block length mismatch".into()));
    }
    if let Some(&bad) = tag_block.iter().find(|&&t| unpack_tag(t).is_none()) {
        return Err(TraceIoError::Corrupt(format!("invalid tag byte {bad:#x}")));
    }

    let src = varint_column(get_block(&buf, &mut pos, 4)?, count, "src", |v| {
        u32::try_from(v).ok()
    })?;
    let dst = varint_column(get_block(&buf, &mut pos, 5)?, count, "dst", |v| {
        u32::try_from(v).ok()
    })?;
    if pos != buf.len() {
        return Err(TraceIoError::Corrupt("trailing bytes after columns".into()));
    }
    Ok(TraceStore::from_columns(
        time_ns,
        wire_len,
        tag_block.to_vec(),
        src,
        dst,
    ))
}

// ---- path-level API ------------------------------------------------------

/// Save a store to `path` in the format implied by its extension.
pub fn save_store(path: impl AsRef<Path>, store: &TraceStore) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path.as_ref())?;
    match TraceFormat::for_path(path.as_ref()) {
        TraceFormat::Binary => write_store_binary(&mut f, store),
        TraceFormat::Text => {
            let mut buf = std::io::BufWriter::new(f);
            for r in store.iter() {
                writeln!(
                    buf,
                    "{} {} {} {} {} {}",
                    r.time.as_nanos(),
                    r.wire_len,
                    proto_str(r.proto),
                    kind_str(r.kind),
                    r.src.0,
                    r.dst.0
                )?;
            }
            buf.flush()
        }
    }
}

/// Load a store from `path` in the format implied by its extension.
pub fn load_store(path: impl AsRef<Path>) -> Result<TraceStore, TraceIoError> {
    let f = std::fs::File::open(path.as_ref()).map_err(TraceIoError::Io)?;
    match TraceFormat::for_path(path.as_ref()) {
        TraceFormat::Binary => read_store_binary(&mut std::io::BufReader::new(f)),
        TraceFormat::Text => Ok(TraceStore::from_records(&read_trace(
            &mut std::io::BufReader::new(f),
        )?)),
    }
}

/// Save a trace to a file path, text or binary by extension.
pub fn save_trace(path: impl AsRef<Path>, trace: &[FrameRecord]) -> std::io::Result<()> {
    match TraceFormat::for_path(path.as_ref()) {
        TraceFormat::Binary => save_store(path, &TraceStore::from_records(trace)),
        TraceFormat::Text => {
            let mut f = std::fs::File::create(path)?;
            write_trace(&mut f, trace)
        }
    }
}

/// Load a trace from a file path, text or binary by extension.
pub fn load_trace(path: impl AsRef<Path>) -> Result<Vec<FrameRecord>, TraceIoError> {
    match TraceFormat::for_path(path.as_ref()) {
        TraceFormat::Binary => Ok(load_store(path)?.to_records()),
        TraceFormat::Text => {
            let f = std::fs::File::open(path).map_err(TraceIoError::Io)?;
            read_trace(&mut std::io::BufReader::new(f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::Frame;
    use proptest::prelude::*;

    fn sample() -> Vec<FrameRecord> {
        vec![
            FrameRecord::capture(
                SimTime::from_micros(5),
                &Frame::tcp(HostId(0), HostId(1), FrameKind::Data, 1460, 0),
            ),
            FrameRecord::capture(
                SimTime::from_micros(9),
                &Frame::tcp(HostId(1), HostId(0), FrameKind::Ack, 0, 0),
            ),
            FrameRecord::capture(
                SimTime::from_micros(12),
                &Frame::udp(HostId(3), HostId(0), 32, 0),
            ),
        ]
    }

    #[test]
    fn round_trip() {
        let tr = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &tr).unwrap();
        let back = read_trace(&mut &buf[..]).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n5000 1518 tcp data 0 1\n";
        let tr = read_trace(&mut text.as_bytes()).unwrap();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].wire_len, 1518);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let text = "5000 1518 tcp data 0 1\nnot a frame\n";
        match read_trace(&mut text.as_bytes()) {
            Err(TraceIoError::Parse(2, _)) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
        let trailing = "5000 1518 tcp data 0 1 junk\n";
        assert!(read_trace(&mut trailing.as_bytes()).is_err());
        let bad_proto = "5000 1518 icmp data 0 1\n";
        assert!(read_trace(&mut bad_proto.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("fxnet-trace-io-test.txt");
        let tr = sample();
        save_trace(&path, &tr).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back, tr);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_round_trip() {
        let tr = sample();
        let store = TraceStore::from_records(&tr);
        let mut buf = Vec::new();
        write_store_binary(&mut buf, &store).unwrap();
        assert_eq!(&buf[0..4], &TRACE_MAGIC);
        let back = read_store_binary(&mut &buf[..]).unwrap();
        assert_eq!(back, store);
        assert_eq!(back.to_records(), tr);
    }

    #[test]
    fn format_selected_by_extension() {
        assert_eq!(
            TraceFormat::for_path("out/cache/SOR.fxb"),
            TraceFormat::Binary
        );
        assert_eq!(
            TraceFormat::for_path("out/cache/SOR.bin"),
            TraceFormat::Binary
        );
        assert_eq!(
            TraceFormat::for_path("out/cache/SOR.trace"),
            TraceFormat::Text
        );
        assert_eq!(TraceFormat::for_path("SOR"), TraceFormat::Text);
        assert_eq!(TraceFormat::Binary.extension(), "fxb");
        assert_eq!("binary".parse::<TraceFormat>(), Ok(TraceFormat::Binary));
        assert_eq!("text".parse::<TraceFormat>(), Ok(TraceFormat::Text));
        assert!("pcap".parse::<TraceFormat>().is_err());
    }

    #[test]
    fn binary_file_round_trip_via_extension() {
        let dir = std::env::temp_dir();
        let tr = sample();
        for name in ["fxnet-trace-io-test.fxb", "fxnet-trace-io-test.trace"] {
            let path = dir.join(name);
            save_trace(&path, &tr).unwrap();
            assert_eq!(load_trace(&path).unwrap(), tr, "{name}");
            assert_eq!(load_store(&path).unwrap().to_records(), tr, "{name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn newer_version_is_rejected_for_cache_invalidation() {
        let store = TraceStore::from_records(&sample());
        let mut buf = Vec::new();
        write_store_binary(&mut buf, &store).unwrap();
        buf[4..6].copy_from_slice(&(TRACE_VERSION + 1).to_le_bytes());
        match read_store_binary(&mut &buf[..]) {
            Err(TraceIoError::Version { found, supported }) => {
                assert_eq!(found, TRACE_VERSION + 1);
                assert_eq!(supported, TRACE_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_binary_is_rejected() {
        let store = TraceStore::from_records(&sample());
        let mut buf = Vec::new();
        write_store_binary(&mut buf, &store).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_store_binary(&mut &bad[..]),
            Err(TraceIoError::Magic)
        ));
        // Truncation anywhere in the payload.
        for cut in [8usize, 17, buf.len() - 1] {
            assert!(
                read_store_binary(&mut &buf[..cut]).is_err(),
                "truncated at {cut}"
            );
        }
        // Trailing garbage.
        let mut long = buf.clone();
        long.push(0);
        assert!(read_store_binary(&mut &long[..]).is_err());
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    proptest! {
        #[test]
        fn binary_and_text_round_trips_agree(
            times in prop::collection::vec(0u64..u64::MAX / 2, 1..50),
            sizes in prop::collection::vec(58u32..1519, 1..50),
            hosts in prop::collection::vec((0u32..16, 0u32..16), 1..50),
        ) {
            let tr: Vec<FrameRecord> = times
                .iter()
                .zip(sizes.iter().cycle())
                .zip(hosts.iter().cycle())
                .map(|((&t, &sz), &(a, b))| FrameRecord {
                    time: SimTime::from_nanos(t),
                    wire_len: sz,
                    proto: if t % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                    kind: match t % 4 {
                        0 => FrameKind::Data,
                        1 => FrameKind::Ack,
                        2 => FrameKind::Syn,
                        _ => FrameKind::Datagram,
                    },
                    src: HostId(a),
                    dst: HostId(b),
                })
                .collect();
            let store = TraceStore::from_records(&tr);
            // Binary: store -> bytes -> store, lossless.
            let mut bin = Vec::new();
            write_store_binary(&mut bin, &store).unwrap();
            let from_bin = read_store_binary(&mut &bin[..]).unwrap();
            prop_assert_eq!(&from_bin, &store);
            // Text: records -> lines -> records, and through the store.
            let mut txt = Vec::new();
            write_trace(&mut txt, &tr).unwrap();
            let from_txt = read_trace(&mut &txt[..]).unwrap();
            prop_assert_eq!(&from_txt, &tr);
            // Both paths land on the same frames.
            prop_assert_eq!(from_bin.to_records(), from_txt);
        }

        #[test]
        fn arbitrary_records_round_trip(
            times in prop::collection::vec(0u64..u64::MAX / 2, 1..50),
            sizes in prop::collection::vec(58u32..1519, 1..50),
            hosts in prop::collection::vec((0u32..16, 0u32..16), 1..50),
        ) {
            let tr: Vec<FrameRecord> = times
                .iter()
                .zip(sizes.iter().cycle())
                .zip(hosts.iter().cycle())
                .map(|((&t, &sz), &(a, b))| FrameRecord {
                    time: SimTime::from_nanos(t),
                    wire_len: sz,
                    proto: if t % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                    kind: match t % 4 {
                        0 => FrameKind::Data,
                        1 => FrameKind::Ack,
                        2 => FrameKind::Syn,
                        _ => FrameKind::Datagram,
                    },
                    src: HostId(a),
                    dst: HostId(b),
                })
                .collect();
            let mut buf = Vec::new();
            write_trace(&mut buf, &tr).unwrap();
            let back = read_trace(&mut &buf[..]).unwrap();
            prop_assert_eq!(back, tr);
        }
    }
}
