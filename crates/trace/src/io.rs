//! Trace persistence in two formats, selected by file extension:
//!
//! * **Text** — one frame per line, `time_ns wire_len proto kind src
//!   dst` (e.g. `1234567 1518 tcp data 0 1`): equivalent to the paper's
//!   tcpdump output, diffable, greppable.
//! * **Binary** (`.fxb` / `.bin`) — a compact columnar container for the
//!   cache-scale traces the mixes produce. Layout:
//!
//!   ```text
//!   magic "FXTC" | version u16 LE | flags u16 LE (0) | count u64 LE
//!   then one block per column, in fixed order:
//!       id u8 | payload length u64 LE | payload
//!   id 1  time   zigzag LEB128 varints of consecutive wrapping deltas
//!   id 2  size   LEB128 varints of wire_len
//!   id 3  tag    raw bytes, proto/kind packed as in the TraceStore
//!   id 4  src    LEB128 varints of host ids
//!   id 5  dst    LEB128 varints of host ids
//!   ```
//!
//!   Time deltas are the *wrapping* `u64` difference of consecutive
//!   timestamps, zigzag-mapped so small forward **and** backward steps
//!   both encode short — a bijection on `u64`, so even unsorted traces
//!   round-trip losslessly. The version field is the cache-invalidation
//!   handle: a reader seeing a newer version returns
//!   [`TraceIoError::Version`] and the caller regenerates the artifact.
//!
//! * **Chunked binary (FXTC v2)** — the out-of-core container for
//!   traces too large to materialize. Same 16-byte header (version 2;
//!   the count field is patched when the writer finishes), then the
//!   chunk payloads back to back, each encoded exactly like a v1 block
//!   section with its time-delta predecessor reset to zero — so every
//!   chunk decodes independently. A fixed-size directory sits at the
//!   tail so appenders never rewrite data they already flushed:
//!
//!   ```text
//!   per chunk, 40 bytes LE:
//!       frames u64 | t_min_ns u64 | t_max_ns u64 | offset u64 | len u64
//!   trailer, 20 bytes:
//!       dir_offset u64 | nchunks u64 | magic "FXTD"
//!   ```
//!
//!   [`ChunkedWriter`] appends chunks as the simulator drains shards;
//!   [`ChunkCursor`] streams them back one at a time with O(chunk)
//!   peak memory; [`read_chunk`] decodes a single directory entry so a
//!   worker pool can fan the scan out. [`read_store_binary`] accepts
//!   both versions, so `load_store` on a v2 file still yields a fully
//!   materialized [`TraceStore`] — that is the baseline the streamed
//!   path races against.

use crate::store::{pack_tag, unpack_tag, TraceStore};
use fxnet_sim::{FrameKind, FrameRecord, HostId, Proto, SimTime};
use std::io::{BufRead, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes opening a binary trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"FXTC";
/// Highest binary trace format version this build reads.
pub const TRACE_VERSION: u16 = 2;
/// The single-shot columnar layout (whole trace, one block section).
const TRACE_VERSION_V1: u16 = 1;
/// The chunked layout with a tail directory.
const TRACE_VERSION_CHUNKED: u16 = 2;
/// Magic bytes closing a chunked trace's tail directory.
pub const CHUNK_DIR_MAGIC: [u8; 4] = *b"FXTD";
/// Bytes per directory entry: frames, t_min_ns, t_max_ns, offset, len.
const CHUNK_META_BYTES: usize = 40;
/// Bytes in the trailer: dir_offset, nchunks, magic.
const CHUNK_TRAILER_BYTES: usize = 20;
/// Bytes in the file header shared by both versions.
const HEADER_BYTES: usize = 16;

/// On-disk trace encoding, selected by file extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Line-oriented `time_ns wire_len proto kind src dst`.
    Text,
    /// Columnar container with varint-delta times (`.fxb`).
    Binary,
}

impl TraceFormat {
    /// Format implied by `path`'s extension: `.fxb` and `.bin` are
    /// binary, everything else is text.
    pub fn for_path(path: impl AsRef<Path>) -> TraceFormat {
        match path.as_ref().extension().and_then(|e| e.to_str()) {
            Some("fxb") | Some("bin") => TraceFormat::Binary,
            _ => TraceFormat::Text,
        }
    }

    /// Canonical file extension for this format.
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::Text => "trace",
            TraceFormat::Binary => "fxb",
        }
    }
}

impl std::str::FromStr for TraceFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<TraceFormat, String> {
        match s {
            "text" => Ok(TraceFormat::Text),
            "binary" => Ok(TraceFormat::Binary),
            other => Err(format!("unknown trace format {other:?} (text|binary)")),
        }
    }
}

/// Error from parsing a saved trace.
#[derive(Debug)]
pub enum TraceIoError {
    Io(std::io::Error),
    /// Malformed line, with its (1-based) line number.
    Parse(usize, String),
    /// The file is not a binary trace (bad magic).
    Magic,
    /// Binary header carries an unsupported version — the signal cached
    /// artifacts use to invalidate themselves across format revisions.
    Version {
        found: u16,
        supported: u16,
    },
    /// Structurally invalid binary payload.
    Corrupt(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O: {e}"),
            TraceIoError::Parse(line, text) => {
                write!(f, "trace parse error at line {line}: {text}")
            }
            TraceIoError::Magic => write!(f, "not a binary trace (bad magic)"),
            TraceIoError::Version { found, supported } => write!(
                f,
                "binary trace version {found} unsupported (this build reads <= {supported})"
            ),
            TraceIoError::Corrupt(what) => write!(f, "corrupt binary trace: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<TraceIoError> for fxnet_sim::FxnetError {
    fn from(e: TraceIoError) -> Self {
        fxnet_sim::FxnetError::Io(e.to_string())
    }
}

fn proto_str(p: Proto) -> &'static str {
    match p {
        Proto::Tcp => "tcp",
        Proto::Udp => "udp",
    }
}

fn kind_str(k: FrameKind) -> &'static str {
    match k {
        FrameKind::Data => "data",
        FrameKind::Ack => "ack",
        FrameKind::Syn => "syn",
        FrameKind::Datagram => "dgram",
    }
}

/// Write a trace to `w`, one record per line.
pub fn write_trace(w: &mut impl Write, trace: &[FrameRecord]) -> std::io::Result<()> {
    let mut buf = std::io::BufWriter::new(w);
    for r in trace {
        writeln!(
            buf,
            "{} {} {} {} {} {}",
            r.time.as_nanos(),
            r.wire_len,
            proto_str(r.proto),
            kind_str(r.kind),
            r.src.0,
            r.dst.0
        )?;
    }
    buf.flush()
}

/// Read a trace written by [`write_trace`].
pub fn read_trace(r: &mut impl BufRead) -> Result<Vec<FrameRecord>, TraceIoError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_ascii_whitespace();
        let bad = || TraceIoError::Parse(i + 1, line.to_string());
        let time = f
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(bad)?;
        let wire_len = f
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(bad)?;
        let proto = match f.next().ok_or_else(bad)? {
            "tcp" => Proto::Tcp,
            "udp" => Proto::Udp,
            _ => return Err(bad()),
        };
        let kind = match f.next().ok_or_else(bad)? {
            "data" => FrameKind::Data,
            "ack" => FrameKind::Ack,
            "syn" => FrameKind::Syn,
            "dgram" => FrameKind::Datagram,
            _ => return Err(bad()),
        };
        let src = f
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(bad)?;
        let dst = f
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(bad)?;
        if f.next().is_some() {
            return Err(bad());
        }
        out.push(FrameRecord {
            time: SimTime::from_nanos(time),
            wire_len,
            proto,
            kind,
            src: HostId(src),
            dst: HostId(dst),
        });
    }
    Ok(out)
}

// ---- binary format -------------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceIoError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or_else(|| TraceIoError::Corrupt("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceIoError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_block(out: &mut Vec<u8>, id: u8, payload: &[u8]) {
    out.push(id);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

fn header_bytes(version: u16, count: u64) -> [u8; HEADER_BYTES] {
    let mut h = [0u8; HEADER_BYTES];
    h[0..4].copy_from_slice(&TRACE_MAGIC);
    h[4..6].copy_from_slice(&version.to_le_bytes());
    h[6..8].copy_from_slice(&0u16.to_le_bytes());
    h[8..16].copy_from_slice(&count.to_le_bytes());
    h
}

/// Encode one block section (the five v1 column blocks) into `out`.
/// The time-delta predecessor starts at zero, so a section is
/// self-contained: v1 files hold exactly one, v2 files one per chunk.
fn encode_columns(
    out: &mut Vec<u8>,
    time_ns: &[u64],
    wire_len: &[u32],
    tag: &[u8],
    src: &[u32],
    dst: &[u32],
) {
    let n = time_ns.len();
    let mut payload = Vec::with_capacity(n * 2);
    let mut prev = 0u64;
    for &t in time_ns {
        put_varint(&mut payload, zigzag(t.wrapping_sub(prev) as i64));
        prev = t;
    }
    put_block(out, 1, &payload);

    payload.clear();
    for &len in wire_len {
        put_varint(&mut payload, u64::from(len));
    }
    put_block(out, 2, &payload);

    put_block(out, 3, tag);

    payload.clear();
    for &s in src {
        put_varint(&mut payload, u64::from(s));
    }
    put_block(out, 4, &payload);

    payload.clear();
    for &d in dst {
        put_varint(&mut payload, u64::from(d));
    }
    put_block(out, 5, &payload);
}

/// Serialize a store into the binary container (see the module docs for
/// the layout). Writes the v1 single-shot layout so files produced here
/// remain readable by older builds; use [`save_store_chunked`] or
/// [`ChunkedWriter`] for the chunked v2 container.
pub fn write_store_binary(w: &mut impl Write, store: &TraceStore) -> std::io::Result<()> {
    let n = store.len();
    let mut out = Vec::with_capacity(HEADER_BYTES + n * 4);
    out.extend_from_slice(&header_bytes(TRACE_VERSION_V1, n as u64));
    encode_columns(
        &mut out,
        &store.time_ns,
        &store.wire_len,
        &store.tag,
        &store.src,
        &store.dst,
    );
    w.write_all(&out)
}

fn get_block<'a>(buf: &'a [u8], pos: &mut usize, want_id: u8) -> Result<&'a [u8], TraceIoError> {
    let &id = buf
        .get(*pos)
        .ok_or_else(|| TraceIoError::Corrupt("missing column block".into()))?;
    if id != want_id {
        return Err(TraceIoError::Corrupt(format!(
            "expected column block {want_id}, found {id}"
        )));
    }
    *pos += 1;
    let len_bytes = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| TraceIoError::Corrupt("truncated block header".into()))?;
    *pos += 8;
    let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes")) as usize;
    let payload = buf
        .get(*pos..*pos + len)
        .ok_or_else(|| TraceIoError::Corrupt("truncated block payload".into()))?;
    *pos += len;
    Ok(payload)
}

fn varint_column_into<T>(
    payload: &[u8],
    count: usize,
    name: &str,
    convert: impl Fn(u64) -> Option<T>,
    out: &mut Vec<T>,
) -> Result<(), TraceIoError> {
    let mut pos = 0usize;
    out.reserve(count);
    for _ in 0..count {
        let v = get_varint(payload, &mut pos)?;
        out.push(convert(v).ok_or_else(|| TraceIoError::Corrupt(format!("{name} out of range")))?);
    }
    if pos != payload.len() {
        return Err(TraceIoError::Corrupt(format!(
            "{name} block has trailing bytes"
        )));
    }
    Ok(())
}

/// Decoded columns for one chunk (or one whole v1 trace). The vectors
/// are cleared and refilled on every decode, so a long scan reuses one
/// allocation per column instead of churning the allocator per chunk.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ChunkBuf {
    pub time_ns: Vec<u64>,
    pub wire_len: Vec<u32>,
    pub tag: Vec<u8>,
    pub src: Vec<u32>,
    pub dst: Vec<u32>,
}

impl ChunkBuf {
    /// Frames currently decoded into the buffer.
    pub fn len(&self) -> usize {
        self.time_ns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.time_ns.is_empty()
    }

    fn clear(&mut self) {
        self.time_ns.clear();
        self.wire_len.clear();
        self.tag.clear();
        self.src.clear();
        self.dst.clear();
    }

    /// Bytes the decoded columns occupy — the honest per-chunk memory
    /// cost a streaming scan pays (21 bytes per frame).
    pub fn resident_bytes(&self) -> u64 {
        (self.time_ns.len() * 8
            + self.wire_len.len() * 4
            + self.tag.len()
            + self.src.len() * 4
            + self.dst.len() * 4) as u64
    }
}

/// Decode one block section (five column blocks, exactly filling
/// `buf`) into a reused [`ChunkBuf`].
fn decode_columns_into(buf: &[u8], count: usize, out: &mut ChunkBuf) -> Result<(), TraceIoError> {
    out.clear();
    let mut pos = 0usize;

    let time_block = get_block(buf, &mut pos, 1)?;
    let mut tpos = 0usize;
    out.time_ns.reserve(count);
    let mut prev = 0u64;
    for _ in 0..count {
        let delta = unzigzag(get_varint(time_block, &mut tpos)?);
        prev = prev.wrapping_add(delta as u64);
        out.time_ns.push(prev);
    }
    if tpos != time_block.len() {
        return Err(TraceIoError::Corrupt(
            "time block has trailing bytes".into(),
        ));
    }

    varint_column_into(
        get_block(buf, &mut pos, 2)?,
        count,
        "wire_len",
        |v| u32::try_from(v).ok(),
        &mut out.wire_len,
    )?;

    let tag_block = get_block(buf, &mut pos, 3)?;
    if tag_block.len() != count {
        return Err(TraceIoError::Corrupt("tag block length mismatch".into()));
    }
    if let Some(&bad) = tag_block.iter().find(|&&t| unpack_tag(t).is_none()) {
        return Err(TraceIoError::Corrupt(format!("invalid tag byte {bad:#x}")));
    }
    out.tag.extend_from_slice(tag_block);

    varint_column_into(
        get_block(buf, &mut pos, 4)?,
        count,
        "src",
        |v| u32::try_from(v).ok(),
        &mut out.src,
    )?;
    varint_column_into(
        get_block(buf, &mut pos, 5)?,
        count,
        "dst",
        |v| u32::try_from(v).ok(),
        &mut out.dst,
    )?;
    if pos != buf.len() {
        return Err(TraceIoError::Corrupt("trailing bytes after columns".into()));
    }
    Ok(())
}

/// Deserialize a binary trace container (either version) into a store.
pub fn read_store_binary(r: &mut impl Read) -> Result<TraceStore, TraceIoError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    if buf.len() < HEADER_BYTES {
        return Err(TraceIoError::Corrupt("header too short".into()));
    }
    if buf[0..4] != TRACE_MAGIC {
        return Err(TraceIoError::Magic);
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes"));
    if version > TRACE_VERSION {
        return Err(TraceIoError::Version {
            found: version,
            supported: TRACE_VERSION,
        });
    }
    let count = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")) as usize;
    if count > buf.len() {
        // Every frame costs at least one byte per column, so a count
        // beyond the file size is corruption, not a big trace.
        return Err(TraceIoError::Corrupt(
            "frame count exceeds file size".into(),
        ));
    }

    if version == TRACE_VERSION_CHUNKED {
        let dir = parse_directory_from_slice(&buf, count as u64)?;
        let mut all = ChunkBuf::default();
        let mut chunk = ChunkBuf::default();
        all.time_ns.reserve(count);
        all.wire_len.reserve(count);
        all.tag.reserve(count);
        all.src.reserve(count);
        all.dst.reserve(count);
        for meta in &dir.chunks {
            let (start, end) = (meta.offset as usize, (meta.offset + meta.len) as usize);
            decode_chunk_payload(&buf[start..end], meta, &mut chunk)?;
            all.time_ns.extend_from_slice(&chunk.time_ns);
            all.wire_len.extend_from_slice(&chunk.wire_len);
            all.tag.extend_from_slice(&chunk.tag);
            all.src.extend_from_slice(&chunk.src);
            all.dst.extend_from_slice(&chunk.dst);
        }
        return Ok(TraceStore::from_columns(
            all.time_ns,
            all.wire_len,
            all.tag,
            all.src,
            all.dst,
        ));
    }

    let mut cols = ChunkBuf::default();
    decode_columns_into(&buf[HEADER_BYTES..], count, &mut cols)?;
    Ok(TraceStore::from_columns(
        cols.time_ns,
        cols.wire_len,
        cols.tag,
        cols.src,
        cols.dst,
    ))
}

// ---- chunked container (FXTC v2) -----------------------------------------

/// One entry of the v2 tail directory: where a chunk lives and what it
/// spans, enough to schedule a scan without touching the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Frames encoded in this chunk.
    pub frames: u64,
    /// Smallest timestamp in the chunk, nanoseconds.
    pub t_min_ns: u64,
    /// Largest timestamp in the chunk, nanoseconds.
    pub t_max_ns: u64,
    /// Absolute byte offset of the chunk payload in the file.
    pub offset: u64,
    /// Byte length of the chunk payload.
    pub len: u64,
}

/// The parsed tail directory of a chunked trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChunkDirectory {
    pub chunks: Vec<ChunkMeta>,
}

impl ChunkDirectory {
    /// Total frames across all chunks (equals the header count).
    pub fn frames(&self) -> u64 {
        self.chunks.iter().map(|c| c.frames).sum()
    }

    /// Largest single-chunk frame count — the unit the streaming scan's
    /// peak memory is measured in.
    pub fn max_chunk_frames(&self) -> u64 {
        self.chunks.iter().map(|c| c.frames).max().unwrap_or(0)
    }

    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }
}

fn parse_trailer(trailer: &[u8]) -> Result<(u64, u64), TraceIoError> {
    debug_assert_eq!(trailer.len(), CHUNK_TRAILER_BYTES);
    if trailer[16..20] != CHUNK_DIR_MAGIC {
        return Err(TraceIoError::Corrupt(
            "chunk directory trailer magic missing".into(),
        ));
    }
    let dir_offset = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
    let nchunks = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
    Ok((dir_offset, nchunks))
}

fn parse_dir_entries(bytes: &[u8], nchunks: usize) -> Result<Vec<ChunkMeta>, TraceIoError> {
    debug_assert_eq!(bytes.len(), nchunks * CHUNK_META_BYTES);
    let mut chunks = Vec::with_capacity(nchunks);
    for e in bytes.chunks_exact(CHUNK_META_BYTES) {
        let word = |i: usize| u64::from_le_bytes(e[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        chunks.push(ChunkMeta {
            frames: word(0),
            t_min_ns: word(1),
            t_max_ns: word(2),
            offset: word(3),
            len: word(4),
        });
    }
    Ok(chunks)
}

/// Structural validation shared by the in-memory and file readers:
/// chunks must tile `[header, dir_offset)` contiguously and account for
/// exactly the header's frame count.
fn validate_directory(
    chunks: &[ChunkMeta],
    count: u64,
    dir_offset: u64,
) -> Result<(), TraceIoError> {
    let mut pos = HEADER_BYTES as u64;
    let mut frames = 0u64;
    for (i, c) in chunks.iter().enumerate() {
        if c.offset != pos {
            return Err(TraceIoError::Corrupt(format!(
                "chunk {i} offset {} does not follow previous chunk (expected {pos})",
                c.offset
            )));
        }
        if c.frames == 0 || c.len == 0 {
            return Err(TraceIoError::Corrupt(format!("chunk {i} is empty")));
        }
        if c.frames > c.len {
            // Each frame costs at least one tag byte, so frames beyond
            // the payload size is corruption, not a dense chunk.
            return Err(TraceIoError::Corrupt(format!(
                "chunk {i} frame count exceeds its payload size"
            )));
        }
        if c.t_min_ns > c.t_max_ns {
            return Err(TraceIoError::Corrupt(format!(
                "chunk {i} time span is inverted"
            )));
        }
        pos = pos
            .checked_add(c.len)
            .ok_or_else(|| TraceIoError::Corrupt(format!("chunk {i} length overflows")))?;
        frames = frames
            .checked_add(c.frames)
            .ok_or_else(|| TraceIoError::Corrupt(format!("chunk {i} frame count overflows")))?;
    }
    if pos != dir_offset {
        return Err(TraceIoError::Corrupt(
            "chunk payloads do not reach the directory".into(),
        ));
    }
    if frames != count {
        return Err(TraceIoError::Corrupt(format!(
            "directory frames {frames} disagree with header count {count}"
        )));
    }
    Ok(())
}

/// Parse and validate the tail directory of a fully buffered v2 file.
fn parse_directory_from_slice(buf: &[u8], count: u64) -> Result<ChunkDirectory, TraceIoError> {
    if buf.len() < HEADER_BYTES + CHUNK_TRAILER_BYTES {
        return Err(TraceIoError::Corrupt("chunked trace too short".into()));
    }
    let (dir_offset, nchunks) = parse_trailer(&buf[buf.len() - CHUNK_TRAILER_BYTES..])?;
    let dir_bytes = (nchunks as usize)
        .checked_mul(CHUNK_META_BYTES)
        .filter(|&d| {
            dir_offset as usize >= HEADER_BYTES
                && dir_offset as usize + d + CHUNK_TRAILER_BYTES == buf.len()
        })
        .ok_or_else(|| TraceIoError::Corrupt("chunk directory does not fit the file".into()))?;
    let chunks = parse_dir_entries(
        &buf[dir_offset as usize..dir_offset as usize + dir_bytes],
        nchunks as usize,
    )?;
    validate_directory(&chunks, count, dir_offset)?;
    Ok(ChunkDirectory { chunks })
}

/// Decode one chunk payload and cross-check it against its directory
/// entry (frame count and time span must match what was advertised).
fn decode_chunk_payload(
    payload: &[u8],
    meta: &ChunkMeta,
    out: &mut ChunkBuf,
) -> Result<(), TraceIoError> {
    decode_columns_into(payload, meta.frames as usize, out)?;
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    for &t in &out.time_ns {
        lo = lo.min(t);
        hi = hi.max(t);
    }
    if !out.time_ns.is_empty() && (lo != meta.t_min_ns || hi != meta.t_max_ns) {
        return Err(TraceIoError::Corrupt(
            "chunk time span disagrees with directory".into(),
        ));
    }
    Ok(())
}

/// Incremental writer for the chunked container. Created with a
/// placeholder frame count, appended to as column batches arrive (one
/// call = one chunk), and sealed by [`ChunkedWriter::finish`], which
/// writes the tail directory and patches the header count. A file
/// abandoned before `finish` has no trailer and is rejected by readers.
#[derive(Debug)]
pub struct ChunkedWriter {
    file: std::fs::File,
    dir: Vec<ChunkMeta>,
    frames: u64,
    offset: u64,
    scratch: Vec<u8>,
}

impl ChunkedWriter {
    /// Create `path` and write the v2 header with a zero frame count.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<ChunkedWriter> {
        let mut file = std::fs::File::create(path.as_ref())?;
        file.write_all(&header_bytes(TRACE_VERSION_CHUNKED, 0))?;
        Ok(ChunkedWriter {
            file,
            dir: Vec::new(),
            frames: 0,
            offset: HEADER_BYTES as u64,
            scratch: Vec::new(),
        })
    }

    /// Append one chunk from raw columns. Empty batches are skipped.
    /// All slices must be the same length; tags must be valid packed
    /// proto/kind bytes (they are produced by this crate, so a mismatch
    /// is a caller bug, not an I/O condition).
    pub fn append_columns(
        &mut self,
        time_ns: &[u64],
        wire_len: &[u32],
        tag: &[u8],
        src: &[u32],
        dst: &[u32],
    ) -> std::io::Result<()> {
        let n = time_ns.len();
        assert!(
            wire_len.len() == n && tag.len() == n && src.len() == n && dst.len() == n,
            "chunk columns must be equal length"
        );
        assert!(
            tag.iter().all(|&t| unpack_tag(t).is_some()),
            "chunk tags must be valid packed proto/kind bytes"
        );
        if n == 0 {
            return Ok(());
        }
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &t in time_ns {
            lo = lo.min(t);
            hi = hi.max(t);
        }
        self.scratch.clear();
        encode_columns(&mut self.scratch, time_ns, wire_len, tag, src, dst);
        self.file.write_all(&self.scratch)?;
        self.dir.push(ChunkMeta {
            frames: n as u64,
            t_min_ns: lo,
            t_max_ns: hi,
            offset: self.offset,
            len: self.scratch.len() as u64,
        });
        self.offset += self.scratch.len() as u64;
        self.frames += n as u64;
        Ok(())
    }

    /// Append a whole store as one chunk.
    pub fn append_store(&mut self, store: &TraceStore) -> std::io::Result<()> {
        self.append_columns(
            &store.time_ns,
            &store.wire_len,
            &store.tag,
            &store.src,
            &store.dst,
        )
    }

    /// Append captured records as one chunk, without building a store
    /// (no connection index — the writer is on the simulator's path).
    pub fn append_records(&mut self, records: &[FrameRecord]) -> std::io::Result<()> {
        let n = records.len();
        let mut time_ns = Vec::with_capacity(n);
        let mut wire_len = Vec::with_capacity(n);
        let mut tag = Vec::with_capacity(n);
        let mut src = Vec::with_capacity(n);
        let mut dst = Vec::with_capacity(n);
        for r in records {
            time_ns.push(r.time.as_nanos());
            wire_len.push(r.wire_len);
            tag.push(pack_tag(r.proto, r.kind));
            src.push(r.src.0);
            dst.push(r.dst.0);
        }
        self.append_columns(&time_ns, &wire_len, &tag, &src, &dst)
    }

    /// Frames appended so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Chunks appended so far.
    pub fn chunks(&self) -> usize {
        self.dir.len()
    }

    /// Write the tail directory and trailer, patch the header's frame
    /// count, and flush. Returns the directory for immediate scanning.
    pub fn finish(mut self) -> std::io::Result<ChunkDirectory> {
        let mut tail = Vec::with_capacity(self.dir.len() * CHUNK_META_BYTES + CHUNK_TRAILER_BYTES);
        for c in &self.dir {
            tail.extend_from_slice(&c.frames.to_le_bytes());
            tail.extend_from_slice(&c.t_min_ns.to_le_bytes());
            tail.extend_from_slice(&c.t_max_ns.to_le_bytes());
            tail.extend_from_slice(&c.offset.to_le_bytes());
            tail.extend_from_slice(&c.len.to_le_bytes());
        }
        tail.extend_from_slice(&self.offset.to_le_bytes());
        tail.extend_from_slice(&(self.dir.len() as u64).to_le_bytes());
        tail.extend_from_slice(&CHUNK_DIR_MAGIC);
        self.file.write_all(&tail)?;
        self.file.seek(SeekFrom::Start(8))?;
        self.file.write_all(&self.frames.to_le_bytes())?;
        self.file.flush()?;
        Ok(ChunkDirectory { chunks: self.dir })
    }
}

/// Save a store to `path` in the chunked v2 container, `chunk_frames`
/// frames per chunk.
pub fn save_store_chunked(
    path: impl AsRef<Path>,
    store: &TraceStore,
    chunk_frames: usize,
) -> std::io::Result<ChunkDirectory> {
    let step = chunk_frames.max(1);
    let mut w = ChunkedWriter::create(path)?;
    let mut at = 0usize;
    while at < store.len() {
        let end = (at + step).min(store.len());
        w.append_columns(
            &store.time_ns[at..end],
            &store.wire_len[at..end],
            &store.tag[at..end],
            &store.src[at..end],
            &store.dst[at..end],
        )?;
        at = end;
    }
    w.finish()
}

/// Read and validate only the header and tail directory of a chunked
/// trace — O(directory) I/O, no chunk payloads touched.
pub fn read_chunk_directory(path: impl AsRef<Path>) -> Result<ChunkDirectory, TraceIoError> {
    let mut file = std::fs::File::open(path.as_ref())?;
    open_directory(&mut file).map(|(dir, _)| dir)
}

/// Shared open path: validates header + trailer + directory using only
/// seeks, returning the directory and the header frame count.
fn open_directory(file: &mut std::fs::File) -> Result<(ChunkDirectory, u64), TraceIoError> {
    let file_len = file.seek(SeekFrom::End(0))?;
    if file_len < (HEADER_BYTES + CHUNK_TRAILER_BYTES) as u64 {
        return Err(TraceIoError::Corrupt("chunked trace too short".into()));
    }
    let mut header = [0u8; HEADER_BYTES];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut header)?;
    if header[0..4] != TRACE_MAGIC {
        return Err(TraceIoError::Magic);
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
    if version > TRACE_VERSION {
        return Err(TraceIoError::Version {
            found: version,
            supported: TRACE_VERSION,
        });
    }
    if version != TRACE_VERSION_CHUNKED {
        return Err(TraceIoError::Corrupt(format!(
            "not a chunked trace (version {version}); load it with load_store instead"
        )));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut trailer = [0u8; CHUNK_TRAILER_BYTES];
    file.seek(SeekFrom::End(-(CHUNK_TRAILER_BYTES as i64)))?;
    file.read_exact(&mut trailer)?;
    let (dir_offset, nchunks) = parse_trailer(&trailer)?;
    let dir_bytes = (nchunks as usize)
        .checked_mul(CHUNK_META_BYTES)
        .filter(|&d| {
            dir_offset >= HEADER_BYTES as u64
                && dir_offset + d as u64 + CHUNK_TRAILER_BYTES as u64 == file_len
        })
        .ok_or_else(|| TraceIoError::Corrupt("chunk directory does not fit the file".into()))?;
    let mut dir_raw = vec![0u8; dir_bytes];
    file.seek(SeekFrom::Start(dir_offset))?;
    file.read_exact(&mut dir_raw)?;
    let chunks = parse_dir_entries(&dir_raw, nchunks as usize)?;
    validate_directory(&chunks, count, dir_offset)?;
    Ok((ChunkDirectory { chunks }, count))
}

/// Streaming reader over a chunked trace: yields decoded column slices
/// one chunk at a time, reusing one raw buffer and one [`ChunkBuf`] so
/// peak memory is O(largest chunk) regardless of trace length.
#[derive(Debug)]
pub struct ChunkCursor {
    file: std::fs::File,
    dir: ChunkDirectory,
    next: usize,
    raw: Vec<u8>,
    buf: ChunkBuf,
}

impl ChunkCursor {
    /// Open a chunked (v2) trace, validating header and directory.
    pub fn open(path: impl AsRef<Path>) -> Result<ChunkCursor, TraceIoError> {
        let mut file = std::fs::File::open(path.as_ref())?;
        let (dir, _count) = open_directory(&mut file)?;
        Ok(ChunkCursor {
            file,
            dir,
            next: 0,
            raw: Vec::new(),
            buf: ChunkBuf::default(),
        })
    }

    /// The validated tail directory.
    pub fn directory(&self) -> &ChunkDirectory {
        &self.dir
    }

    /// Decode the next chunk into the cursor's reused buffer. Returns
    /// `None` once every chunk has been yielded. The borrow ends at the
    /// next call, which overwrites the buffer — callers fold, not hold.
    pub fn next_chunk(&mut self) -> Result<Option<(&ChunkMeta, &ChunkBuf)>, TraceIoError> {
        let Some(meta) = self.dir.chunks.get(self.next) else {
            return Ok(None);
        };
        self.raw.clear();
        self.raw.resize(meta.len as usize, 0);
        self.file.seek(SeekFrom::Start(meta.offset))?;
        self.file.read_exact(&mut self.raw)?;
        decode_chunk_payload(&self.raw, meta, &mut self.buf)?;
        self.next += 1;
        Ok(Some((&self.dir.chunks[self.next - 1], &self.buf)))
    }
}

/// Decode one directory entry from `path` into `out` — the unit of
/// work a pool worker runs when the scan fans out across chunks.
pub fn read_chunk(
    path: impl AsRef<Path>,
    meta: &ChunkMeta,
    out: &mut ChunkBuf,
) -> Result<(), TraceIoError> {
    let mut file = std::fs::File::open(path.as_ref())?;
    let mut raw = vec![0u8; meta.len as usize];
    file.seek(SeekFrom::Start(meta.offset))?;
    file.read_exact(&mut raw)?;
    decode_chunk_payload(&raw, meta, out)
}

// ---- path-level API ------------------------------------------------------

/// Save a store to `path` in the format implied by its extension.
pub fn save_store(path: impl AsRef<Path>, store: &TraceStore) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path.as_ref())?;
    match TraceFormat::for_path(path.as_ref()) {
        TraceFormat::Binary => write_store_binary(&mut f, store),
        TraceFormat::Text => {
            let mut buf = std::io::BufWriter::new(f);
            for r in store.iter() {
                writeln!(
                    buf,
                    "{} {} {} {} {} {}",
                    r.time.as_nanos(),
                    r.wire_len,
                    proto_str(r.proto),
                    kind_str(r.kind),
                    r.src.0,
                    r.dst.0
                )?;
            }
            buf.flush()
        }
    }
}

/// Load a store from `path` in the format implied by its extension.
pub fn load_store(path: impl AsRef<Path>) -> Result<TraceStore, TraceIoError> {
    let f = std::fs::File::open(path.as_ref()).map_err(TraceIoError::Io)?;
    match TraceFormat::for_path(path.as_ref()) {
        TraceFormat::Binary => read_store_binary(&mut std::io::BufReader::new(f)),
        TraceFormat::Text => Ok(TraceStore::from_records(&read_trace(
            &mut std::io::BufReader::new(f),
        )?)),
    }
}

/// Save a trace to a file path, text or binary by extension.
pub fn save_trace(path: impl AsRef<Path>, trace: &[FrameRecord]) -> std::io::Result<()> {
    match TraceFormat::for_path(path.as_ref()) {
        TraceFormat::Binary => save_store(path, &TraceStore::from_records(trace)),
        TraceFormat::Text => {
            let mut f = std::fs::File::create(path)?;
            write_trace(&mut f, trace)
        }
    }
}

/// Load a trace from a file path, text or binary by extension.
pub fn load_trace(path: impl AsRef<Path>) -> Result<Vec<FrameRecord>, TraceIoError> {
    match TraceFormat::for_path(path.as_ref()) {
        TraceFormat::Binary => Ok(load_store(path)?.to_records()),
        TraceFormat::Text => {
            let f = std::fs::File::open(path).map_err(TraceIoError::Io)?;
            read_trace(&mut std::io::BufReader::new(f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::Frame;
    use proptest::prelude::*;

    fn sample() -> Vec<FrameRecord> {
        vec![
            FrameRecord::capture(
                SimTime::from_micros(5),
                &Frame::tcp(HostId(0), HostId(1), FrameKind::Data, 1460, 0),
            ),
            FrameRecord::capture(
                SimTime::from_micros(9),
                &Frame::tcp(HostId(1), HostId(0), FrameKind::Ack, 0, 0),
            ),
            FrameRecord::capture(
                SimTime::from_micros(12),
                &Frame::udp(HostId(3), HostId(0), 32, 0),
            ),
        ]
    }

    #[test]
    fn round_trip() {
        let tr = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &tr).unwrap();
        let back = read_trace(&mut &buf[..]).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n5000 1518 tcp data 0 1\n";
        let tr = read_trace(&mut text.as_bytes()).unwrap();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].wire_len, 1518);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let text = "5000 1518 tcp data 0 1\nnot a frame\n";
        match read_trace(&mut text.as_bytes()) {
            Err(TraceIoError::Parse(2, _)) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
        let trailing = "5000 1518 tcp data 0 1 junk\n";
        assert!(read_trace(&mut trailing.as_bytes()).is_err());
        let bad_proto = "5000 1518 icmp data 0 1\n";
        assert!(read_trace(&mut bad_proto.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("fxnet-trace-io-test.txt");
        let tr = sample();
        save_trace(&path, &tr).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back, tr);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_round_trip() {
        let tr = sample();
        let store = TraceStore::from_records(&tr);
        let mut buf = Vec::new();
        write_store_binary(&mut buf, &store).unwrap();
        assert_eq!(&buf[0..4], &TRACE_MAGIC);
        let back = read_store_binary(&mut &buf[..]).unwrap();
        assert_eq!(back, store);
        assert_eq!(back.to_records(), tr);
    }

    #[test]
    fn format_selected_by_extension() {
        assert_eq!(
            TraceFormat::for_path("out/cache/SOR.fxb"),
            TraceFormat::Binary
        );
        assert_eq!(
            TraceFormat::for_path("out/cache/SOR.bin"),
            TraceFormat::Binary
        );
        assert_eq!(
            TraceFormat::for_path("out/cache/SOR.trace"),
            TraceFormat::Text
        );
        assert_eq!(TraceFormat::for_path("SOR"), TraceFormat::Text);
        assert_eq!(TraceFormat::Binary.extension(), "fxb");
        assert_eq!("binary".parse::<TraceFormat>(), Ok(TraceFormat::Binary));
        assert_eq!("text".parse::<TraceFormat>(), Ok(TraceFormat::Text));
        assert!("pcap".parse::<TraceFormat>().is_err());
    }

    #[test]
    fn binary_file_round_trip_via_extension() {
        let dir = std::env::temp_dir();
        let tr = sample();
        for name in ["fxnet-trace-io-test.fxb", "fxnet-trace-io-test.trace"] {
            let path = dir.join(name);
            save_trace(&path, &tr).unwrap();
            assert_eq!(load_trace(&path).unwrap(), tr, "{name}");
            assert_eq!(load_store(&path).unwrap().to_records(), tr, "{name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn newer_version_is_rejected_for_cache_invalidation() {
        let store = TraceStore::from_records(&sample());
        let mut buf = Vec::new();
        write_store_binary(&mut buf, &store).unwrap();
        buf[4..6].copy_from_slice(&(TRACE_VERSION + 1).to_le_bytes());
        match read_store_binary(&mut &buf[..]) {
            Err(TraceIoError::Version { found, supported }) => {
                assert_eq!(found, TRACE_VERSION + 1);
                assert_eq!(supported, TRACE_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_binary_is_rejected() {
        let store = TraceStore::from_records(&sample());
        let mut buf = Vec::new();
        write_store_binary(&mut buf, &store).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_store_binary(&mut &bad[..]),
            Err(TraceIoError::Magic)
        ));
        // Truncation anywhere in the payload.
        for cut in [8usize, 17, buf.len() - 1] {
            assert!(
                read_store_binary(&mut &buf[..cut]).is_err(),
                "truncated at {cut}"
            );
        }
        // Trailing garbage.
        let mut long = buf.clone();
        long.push(0);
        assert!(read_store_binary(&mut &long[..]).is_err());
    }

    fn bursty(n: usize) -> Vec<FrameRecord> {
        let mut t_us = 0u64;
        (0..n)
            .map(|i| {
                t_us += if i % 7 == 0 { 40_000 } else { 1_200 };
                FrameRecord::capture(
                    SimTime::from_micros(t_us),
                    &Frame::tcp(
                        HostId((i % 4) as u32),
                        HostId(((i + 1) % 4) as u32),
                        if i % 3 == 0 {
                            FrameKind::Ack
                        } else {
                            FrameKind::Data
                        },
                        if i % 3 == 0 { 0 } else { 1460 },
                        i as u64,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn single_shot_writer_stays_on_v1_layout() {
        let store = TraceStore::from_records(&sample());
        let mut buf = Vec::new();
        write_store_binary(&mut buf, &store).unwrap();
        assert_eq!(u16::from_le_bytes([buf[4], buf[5]]), 1);
        assert_eq!(read_store_binary(&mut &buf[..]).unwrap(), store);
    }

    #[test]
    fn chunked_round_trip_at_many_chunk_sizes() {
        let dir = std::env::temp_dir();
        let store = TraceStore::from_records(&bursty(97));
        for chunk_frames in [1usize, 2, 13, 97, 500] {
            let path = dir.join(format!("fxnet-chunked-{chunk_frames}.fxb"));
            let d = save_store_chunked(&path, &store, chunk_frames).unwrap();
            assert_eq!(d.frames(), 97);
            assert_eq!(d.len(), 97usize.div_ceil(chunk_frames));
            // The v1-compatible loader materializes the whole thing.
            assert_eq!(load_store(&path).unwrap(), store, "chunk={chunk_frames}");
            // The cursor yields the same columns chunk by chunk.
            let mut cursor = ChunkCursor::open(&path).unwrap();
            assert_eq!(cursor.directory(), &d);
            let mut at = 0usize;
            while let Some((meta, buf)) = cursor.next_chunk().unwrap() {
                let end = at + meta.frames as usize;
                assert_eq!(&buf.time_ns[..], &store.time_ns[at..end]);
                assert_eq!(&buf.wire_len[..], &store.wire_len[at..end]);
                assert_eq!(&buf.tag[..], &store.tag[at..end]);
                assert_eq!(&buf.src[..], &store.src[at..end]);
                assert_eq!(&buf.dst[..], &store.dst[at..end]);
                at = end;
            }
            assert_eq!(at, store.len());
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn chunked_writer_appends_and_read_chunk_matches_cursor() {
        let path = std::env::temp_dir().join("fxnet-chunked-append.fxb");
        let tr = bursty(60);
        let mut w = ChunkedWriter::create(&path).unwrap();
        w.append_records(&tr[..25]).unwrap();
        w.append_records(&[]).unwrap(); // empty batch skipped
        w.append_store(&TraceStore::from_records(&tr[25..]))
            .unwrap();
        assert_eq!(w.frames(), 60);
        assert_eq!(w.chunks(), 2);
        let dir = w.finish().unwrap();
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.max_chunk_frames(), 35);
        assert_eq!(read_chunk_directory(&path).unwrap(), dir);
        assert_eq!(load_store(&path).unwrap().to_records(), tr);

        // read_chunk (the pool worker path) sees what the cursor sees.
        let mut cursor = ChunkCursor::open(&path).unwrap();
        let mut worker = ChunkBuf::default();
        for meta in &dir.chunks {
            let (cmeta, cbuf) = cursor.next_chunk().unwrap().unwrap();
            read_chunk(&path, meta, &mut worker).unwrap();
            assert_eq!(cmeta, meta);
            assert_eq!(&worker, cbuf);
            assert_eq!(worker.resident_bytes(), 21 * meta.frames);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_chunked_trace_round_trips() {
        let path = std::env::temp_dir().join("fxnet-chunked-empty.fxb");
        let dir = save_store_chunked(&path, &TraceStore::from_records(&[]), 64).unwrap();
        assert!(dir.is_empty());
        assert_eq!(dir.max_chunk_frames(), 0);
        assert!(load_store(&path).unwrap().is_empty());
        let mut cursor = ChunkCursor::open(&path).unwrap();
        assert!(cursor.next_chunk().unwrap().is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_chunked_trace_is_rejected() {
        let path = std::env::temp_dir().join("fxnet-chunked-corrupt.fxb");
        let store = TraceStore::from_records(&bursty(40));
        save_store_chunked(&path, &store, 16).unwrap();
        let good = std::fs::read(&path).unwrap();

        let reject = |bytes: &[u8], what: &str| {
            std::fs::write(&path, bytes).unwrap();
            assert!(ChunkCursor::open(&path).is_err(), "cursor accepts {what}");
            assert!(
                read_store_binary(&mut &bytes[..]).is_err(),
                "loader accepts {what}"
            );
        };

        // Trailer magic clobbered.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] = b'X';
        reject(&bad, "bad trailer magic");
        // Truncated mid-directory.
        reject(&good[..n - CHUNK_TRAILER_BYTES - 3], "truncated directory");
        // Directory frame count inflated.
        let dir_offset = u64::from_le_bytes(good[n - 20..n - 12].try_into().unwrap()) as usize;
        let mut bad = good.clone();
        bad[dir_offset..dir_offset + 8].copy_from_slice(&999u64.to_le_bytes());
        reject(&bad, "inflated chunk frame count");
        // Second chunk's offset torn away from the first chunk's end.
        let mut bad = good.clone();
        let off2 = dir_offset + CHUNK_META_BYTES + 24;
        let was = u64::from_le_bytes(bad[off2..off2 + 8].try_into().unwrap());
        bad[off2..off2 + 8].copy_from_slice(&(was + 1).to_le_bytes());
        reject(&bad, "non-contiguous chunk offsets");
        // Unfinished file: header + one payload, no trailer (writer
        // dropped before finish).
        let mut w = ChunkedWriter::create(&path).unwrap();
        w.append_store(&store).unwrap();
        drop(w);
        assert!(ChunkCursor::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    proptest! {
        #[test]
        fn binary_and_text_round_trips_agree(
            times in prop::collection::vec(0u64..u64::MAX / 2, 1..50),
            sizes in prop::collection::vec(58u32..1519, 1..50),
            hosts in prop::collection::vec((0u32..16, 0u32..16), 1..50),
        ) {
            let tr: Vec<FrameRecord> = times
                .iter()
                .zip(sizes.iter().cycle())
                .zip(hosts.iter().cycle())
                .map(|((&t, &sz), &(a, b))| FrameRecord {
                    time: SimTime::from_nanos(t),
                    wire_len: sz,
                    proto: if t % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                    kind: match t % 4 {
                        0 => FrameKind::Data,
                        1 => FrameKind::Ack,
                        2 => FrameKind::Syn,
                        _ => FrameKind::Datagram,
                    },
                    src: HostId(a),
                    dst: HostId(b),
                })
                .collect();
            let store = TraceStore::from_records(&tr);
            // Binary: store -> bytes -> store, lossless.
            let mut bin = Vec::new();
            write_store_binary(&mut bin, &store).unwrap();
            let from_bin = read_store_binary(&mut &bin[..]).unwrap();
            prop_assert_eq!(&from_bin, &store);
            // Text: records -> lines -> records, and through the store.
            let mut txt = Vec::new();
            write_trace(&mut txt, &tr).unwrap();
            let from_txt = read_trace(&mut &txt[..]).unwrap();
            prop_assert_eq!(&from_txt, &tr);
            // Both paths land on the same frames.
            prop_assert_eq!(from_bin.to_records(), from_txt);
        }

        #[test]
        fn arbitrary_records_round_trip(
            times in prop::collection::vec(0u64..u64::MAX / 2, 1..50),
            sizes in prop::collection::vec(58u32..1519, 1..50),
            hosts in prop::collection::vec((0u32..16, 0u32..16), 1..50),
        ) {
            let tr: Vec<FrameRecord> = times
                .iter()
                .zip(sizes.iter().cycle())
                .zip(hosts.iter().cycle())
                .map(|((&t, &sz), &(a, b))| FrameRecord {
                    time: SimTime::from_nanos(t),
                    wire_len: sz,
                    proto: if t % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                    kind: match t % 4 {
                        0 => FrameKind::Data,
                        1 => FrameKind::Ack,
                        2 => FrameKind::Syn,
                        _ => FrameKind::Datagram,
                    },
                    src: HostId(a),
                    dst: HostId(b),
                })
                .collect();
            let mut buf = Vec::new();
            write_trace(&mut buf, &tr).unwrap();
            let back = read_trace(&mut &buf[..]).unwrap();
            prop_assert_eq!(back, tr);
        }

        #[test]
        fn chunked_container_round_trips_losslessly(
            times in prop::collection::vec(0u64..u64::MAX / 2, 1..80),
            sizes in prop::collection::vec(58u32..1519, 1..80),
            hosts in prop::collection::vec((0u32..16, 0u32..16), 1..80),
            chunk_frames in 1usize..100,
            case in 0u32..1_000_000,
        ) {
            let tr: Vec<FrameRecord> = times
                .iter()
                .zip(sizes.iter().cycle())
                .zip(hosts.iter().cycle())
                .map(|((&t, &sz), &(a, b))| FrameRecord {
                    time: SimTime::from_nanos(t),
                    wire_len: sz,
                    proto: if t % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                    kind: match t % 4 {
                        0 => FrameKind::Data,
                        1 => FrameKind::Ack,
                        2 => FrameKind::Syn,
                        _ => FrameKind::Datagram,
                    },
                    src: HostId(a),
                    dst: HostId(b),
                })
                .collect();
            let store = TraceStore::from_records(&tr);
            let path = std::env::temp_dir().join(format!("fxnet-chunked-prop-{case}.fxb"));
            let dir = save_store_chunked(&path, &store, chunk_frames).unwrap();
            prop_assert_eq!(dir.frames() as usize, store.len());
            // Materialized loader reconstructs the store exactly.
            prop_assert_eq!(&load_store(&path).unwrap(), &store);
            // Cursor concatenation reconstructs every column exactly.
            let mut cursor = ChunkCursor::open(&path).unwrap();
            let mut cat = ChunkBuf::default();
            while let Some((_, b)) = cursor.next_chunk().unwrap() {
                cat.time_ns.extend_from_slice(&b.time_ns);
                cat.wire_len.extend_from_slice(&b.wire_len);
                cat.tag.extend_from_slice(&b.tag);
                cat.src.extend_from_slice(&b.src);
                cat.dst.extend_from_slice(&b.dst);
            }
            prop_assert_eq!(&cat.time_ns, &store.time_ns);
            prop_assert_eq!(&cat.wire_len, &store.wire_len);
            prop_assert_eq!(&cat.tag, &store.tag);
            prop_assert_eq!(&cat.src, &store.src);
            prop_assert_eq!(&cat.dst, &store.dst);
            let _ = std::fs::remove_file(&path);
        }
    }
}
