//! Interference metrics for multi-tenant runs.
//!
//! When several compiler-parallelized programs share one Ethernet
//! (`fxnet-mix`), each one still emits the periodic burst train the paper
//! measures — but the shared medium couples them. Three observable
//! effects are quantified here, each comparing a tenant's *mixed* trace
//! (demuxed out of the shared capture) against its *solo* baseline run:
//!
//! * **Slowdown** — wall-clock dilation of the whole program,
//!   `t_mixed / t_solo`. The QoS model of §7.3 predicts this from the
//!   bandwidth split; `fxnet-mix` prints both side by side.
//! * **Burst collisions** — how many of the tenant's communication
//!   bursts overlap in time with another tenant's bursts. Collisions are
//!   where the medium is actually contended; a collision-free mix means
//!   the burst trains interleave.
//! * **Spectral interference** — contention perturbs the burst schedule,
//!   which shows up in the periodogram as the dominant spike moving to a
//!   lower frequency (phases stretch) and power smearing out of the
//!   spikes into the floor (burst timing becomes irregular).

use crate::bursts::Burst;
use crate::spectrum::Periodogram;

/// Wall-clock slowdown of a mixed run relative to the solo baseline
/// (`>= 1` when sharing hurts). Returns 1.0 if the solo duration is
/// degenerate.
pub fn slowdown(mixed_secs: f64, solo_secs: f64) -> f64 {
    if solo_secs <= 0.0 {
        1.0
    } else {
        mixed_secs / solo_secs
    }
}

/// Count bursts of `a` that overlap in time with at least one burst of
/// `b`. Both inputs must be start-ordered (as produced by
/// [`crate::detect_bursts`]); the sweep is O(|a| + |b|).
pub fn burst_collisions(a: &[Burst], b: &[Burst]) -> usize {
    let mut collisions = 0;
    let mut j = 0;
    for x in a {
        // Skip b-bursts that end before x starts.
        while j < b.len() && b[j].end < x.start {
            j += 1;
        }
        // x collides iff some remaining b-burst starts before x ends.
        if j < b.len() && b[j].start <= x.end {
            collisions += 1;
        }
    }
    collisions
}

/// How much of the spectrum's AC power sits in its `k` strongest spikes.
/// Near 1 for the paper's sparse "spiky" spectra; drops as interference
/// smears power into the floor.
pub fn spectral_concentration(p: &Periodogram, k: usize) -> f64 {
    let total = p.total_power();
    if total <= 0.0 {
        return 1.0;
    }
    let in_spikes: f64 = p.top_spikes(k, 0.0).iter().map(|s| s.power).sum();
    (in_spikes / total).min(1.0)
}

/// Spectral comparison of a tenant's solo and mixed traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralInterference {
    /// Dominant frequency of the solo run (Hz).
    pub solo_peak_hz: f64,
    /// Dominant frequency of the same program under the mix (Hz).
    pub mixed_peak_hz: f64,
    /// `mixed - solo`: negative when contention stretches the phases.
    pub peak_shift_hz: f64,
    /// Top-spike power concentration of the solo spectrum.
    pub solo_concentration: f64,
    /// Top-spike power concentration of the mixed spectrum.
    pub mixed_concentration: f64,
    /// `solo - mixed` concentration: positive when interference smears
    /// spike power into the spectral floor.
    pub smearing: f64,
}

impl SpectralInterference {
    /// Compare two periodograms. `min_hz` masks the low-frequency bins
    /// when hunting for the dominant spike (long-run trends otherwise
    /// drown the burst fundamental); `k` spikes define concentration.
    /// `None` if either spectrum has no spike above `min_hz`.
    pub fn compare(
        solo: &Periodogram,
        mixed: &Periodogram,
        min_hz: f64,
        k: usize,
    ) -> Option<SpectralInterference> {
        let solo_peak_hz = solo.dominant_frequency(min_hz)?;
        let mixed_peak_hz = mixed.dominant_frequency(min_hz)?;
        let solo_concentration = spectral_concentration(solo, k);
        let mixed_concentration = spectral_concentration(mixed, k);
        Some(SpectralInterference {
            solo_peak_hz,
            mixed_peak_hz,
            peak_shift_hz: mixed_peak_hz - solo_peak_hz,
            solo_concentration,
            mixed_concentration,
            smearing: solo_concentration - mixed_concentration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::SimTime;

    fn burst(start_ms: u64, end_ms: u64) -> Burst {
        Burst {
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            bytes: 1000,
            packets: 1,
        }
    }

    #[test]
    fn slowdown_ratio() {
        assert!((slowdown(3.0, 2.0) - 1.5).abs() < 1e-12);
        assert!((slowdown(2.0, 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(slowdown(1.0, 0.0), 1.0);
    }

    #[test]
    fn interleaved_bursts_do_not_collide() {
        let a = vec![burst(0, 10), burst(100, 110), burst(200, 210)];
        let b = vec![burst(50, 60), burst(150, 160)];
        assert_eq!(burst_collisions(&a, &b), 0);
        assert_eq!(burst_collisions(&b, &a), 0);
    }

    #[test]
    fn overlapping_bursts_collide() {
        let a = vec![burst(0, 10), burst(100, 110), burst(200, 210)];
        let b = vec![burst(5, 15), burst(205, 220)];
        assert_eq!(burst_collisions(&a, &b), 2);
        assert_eq!(burst_collisions(&b, &a), 2);
        // Touching endpoints count as a collision (the medium is busy).
        let c = vec![burst(10, 20)];
        assert_eq!(burst_collisions(&a, &c), 1);
    }

    #[test]
    fn one_long_burst_collides_with_many() {
        let a = vec![burst(0, 1000)];
        let b = vec![burst(10, 20), burst(500, 510), burst(900, 910)];
        assert_eq!(burst_collisions(&a, &b), 1); // a's single burst collides
        assert_eq!(burst_collisions(&b, &a), 3); // all three of b collide
    }

    fn tone(f: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f * i as f64 * 0.01).cos())
            .collect()
    }

    #[test]
    fn peak_shift_detects_stretched_phases() {
        let dt = SimTime::from_millis(10);
        let solo = Periodogram::compute(&tone(5.0, 2048, 3.0), dt);
        let mixed = Periodogram::compute(&tone(4.0, 2048, 3.0), dt);
        let si = SpectralInterference::compare(&solo, &mixed, 0.5, 5).unwrap();
        assert!((si.solo_peak_hz - 5.0).abs() < 2.0 * solo.df);
        assert!((si.mixed_peak_hz - 4.0).abs() < 2.0 * mixed.df);
        assert!(si.peak_shift_hz < 0.0, "shift {}", si.peak_shift_hz);
    }

    #[test]
    fn smearing_detects_power_leaving_the_spikes() {
        let dt = SimTime::from_millis(10);
        // 6.25 Hz is an exact FFT bin (128 of 2048 at 100 Hz sampling),
        // so the clean tone has no leakage and concentration ≈ 1.
        let clean = tone(6.25, 2048, 3.0);
        // Same tone buried in deterministic pseudo-noise.
        let noisy: Vec<f64> = clean
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                v + ((z >> 32) % 600) as f64 / 100.0 - 3.0
            })
            .collect();
        let solo = Periodogram::compute(&clean, dt);
        let mixed = Periodogram::compute(&noisy, dt);
        let si = SpectralInterference::compare(&solo, &mixed, 0.5, 5).unwrap();
        assert!(si.solo_concentration > 0.9, "{}", si.solo_concentration);
        assert!(si.smearing > 0.0, "smearing {}", si.smearing);
    }

    #[test]
    fn empty_burst_lists() {
        assert_eq!(burst_collisions(&[], &[burst(0, 10)]), 0);
        assert_eq!(burst_collisions(&[burst(0, 10)], &[]), 0);
    }
}
