//! Columnar trace storage: structure-of-arrays columns, a one-pass
//! connection index, and zero-copy analysis views.
//!
//! The paper's methodology is post-hoc analysis of one promiscuous
//! capture: per-program *and per-connection* size statistics,
//! interarrivals, binned/sliding bandwidth, periodograms (§5.3, §6).
//! The legacy representation — an array-of-structs `Vec<FrameRecord>` —
//! makes every one of those a strided walk over 24-byte records, and
//! extracting a connection *copies* the matching frames for each of the
//! O(P²) host pairs. Following the columnar shape of the
//! hundred-billion-packet network telescope analyses (PAPERS.md),
//! [`TraceStore`] instead keeps one column per field:
//!
//! * `time_ns: Vec<u64>` — capture timestamps (absolute in memory; the
//!   binary file format in [`crate::io`] delta-encodes them, where the
//!   redundancy actually pays for itself),
//! * `wire_len: Vec<u32>` — on-wire frame sizes,
//! * `tag: Vec<u8>` — [`Proto`] and [`FrameKind`] packed into one byte,
//! * `src`/`dst: Vec<u32>` — host ids.
//!
//! Construction also builds the **connection index** in the same pass:
//! for every `(src, dst)` host pair, the list of row numbers carrying
//! that pair, concatenated into one `rows` array with per-pair ranges.
//! [`TraceStore::connection`] is then a binary search plus a slice
//! borrow — a [`TraceView`] over the store, no copying — and
//! [`TraceStore::host_pairs`] reads the index directly instead of
//! re-counting frames.
//!
//! [`TraceView`] is the unit of analysis: either all rows or an indexed
//! subset (a connection, a demuxed tenant). Its kernels are single fused
//! passes over the columns and share their arithmetic cores with the
//! legacy slice kernels, so both paths produce bitwise-identical
//! results — the property the bench harness asserts byte for byte.
//!
//! `Vec<FrameRecord>` remains the compatibility edge:
//! [`TraceStore::from_records`] / [`TraceStore::to_records`] and the
//! `From`/`FromIterator` impls convert losslessly in both directions.
//!
//! Row numbers are `u32`: a trace is bounded well below 4 billion frames
//! (the 100 Mb/s mixes top out in the tens of millions).

use crate::bandwidth::{average_from, binned_from};
use crate::bursts::{bursts_from, Burst, BurstProfile};
use crate::stats::{Stats, Welford};
use crate::stream::SlidingBandwidth;
use fxnet_sim::{FrameKind, FrameRecord, HostId, Proto, SimTime};
use std::collections::BTreeMap;

/// Pack a frame's protocol and kind into one byte: bit 0 is the
/// protocol, bits 1–2 the kind. The fields are independent in
/// [`FrameRecord`], so all eight combinations must survive the round
/// trip; the same packing is the binary file format's tag column.
pub(crate) fn pack_tag(proto: Proto, kind: FrameKind) -> u8 {
    let p = match proto {
        Proto::Tcp => 0u8,
        Proto::Udp => 1,
    };
    let k = match kind {
        FrameKind::Data => 0u8,
        FrameKind::Ack => 1,
        FrameKind::Syn => 2,
        FrameKind::Datagram => 3,
    };
    (k << 1) | p
}

/// Inverse of [`pack_tag`]; `None` for bytes outside the valid range
/// (the binary loader treats those as corruption).
pub(crate) fn unpack_tag(tag: u8) -> Option<(Proto, FrameKind)> {
    if tag > 0b111 {
        return None;
    }
    let proto = if tag & 1 == 0 { Proto::Tcp } else { Proto::Udp };
    let kind = match tag >> 1 {
        0 => FrameKind::Data,
        1 => FrameKind::Ack,
        2 => FrameKind::Syn,
        _ => FrameKind::Datagram,
    };
    Some((proto, kind))
}

/// Per-host-pair row index: `pairs` is sorted ascending, and the rows
/// carrying `pairs[i]` are `rows[starts[i]..starts[i + 1]]`, ascending
/// (capture order).
#[derive(Debug, Clone, Default, PartialEq)]
struct ConnIndex {
    pairs: Vec<(u32, u32)>,
    starts: Vec<usize>,
    rows: Vec<u32>,
}

impl ConnIndex {
    fn build(src: &[u32], dst: &[u32]) -> ConnIndex {
        let n = src.len();
        // Pass 1: a stable id per pair, assigned on first sight. Real
        // traces are bursty — consecutive frames usually share a pair —
        // so a last-pair cache resolves most rows with one compare;
        // misses binary-search the sorted pair set.
        let mut sorted: Vec<((u32, u32), u32)> = Vec::new(); // (pair, id), pair-ordered
        let mut slot_of_row: Vec<u32> = Vec::with_capacity(n);
        let mut last: Option<((u32, u32), u32)> = None;
        for (&s, &d) in src.iter().zip(dst) {
            let p = (s, d);
            let id = match last {
                Some((lp, id)) if lp == p => id,
                _ => {
                    let id = match sorted.binary_search_by_key(&p, |&(q, _)| q) {
                        Ok(k) => sorted[k].1,
                        Err(k) => {
                            let id = sorted.len() as u32;
                            sorted.insert(k, (p, id));
                            id
                        }
                    };
                    last = Some((p, id));
                    id
                }
            };
            slot_of_row.push(id);
        }
        // Pass 2: counting sort of the rows into pair-ordered groups;
        // iterating rows in trace order keeps each group ascending.
        let np = sorted.len();
        let mut counts = vec![0u32; np];
        for &id in &slot_of_row {
            counts[id as usize] += 1;
        }
        let mut pos_of_id = vec![0u32; np];
        let mut starts = vec![0usize; np + 1];
        for (k, &(_, id)) in sorted.iter().enumerate() {
            pos_of_id[id as usize] = k as u32;
            starts[k + 1] = counts[id as usize] as usize;
        }
        for k in 0..np {
            starts[k + 1] += starts[k];
        }
        let mut cursor = starts[..np].to_vec();
        let mut rows = vec![0u32; n];
        for (i, &id) in slot_of_row.iter().enumerate() {
            let k = pos_of_id[id as usize] as usize;
            rows[cursor[k]] = i as u32;
            cursor[k] += 1;
        }
        let pairs = sorted.into_iter().map(|(q, _)| q).collect();
        ConnIndex {
            pairs,
            starts,
            rows,
        }
    }

    fn rows_of(&self, src: u32, dst: u32) -> &[u32] {
        match self.pairs.binary_search(&(src, dst)) {
            Ok(i) => &self.rows[self.starts[i]..self.starts[i + 1]],
            Err(_) => &[],
        }
    }
}

/// A packet trace stored as structure-of-arrays columns with a built-in
/// connection index. See the module docs for the layout rationale.
#[derive(Clone, Default)]
pub struct TraceStore {
    pub(crate) time_ns: Vec<u64>,
    pub(crate) wire_len: Vec<u32>,
    pub(crate) tag: Vec<u8>,
    pub(crate) src: Vec<u32>,
    pub(crate) dst: Vec<u32>,
    index: ConnIndex,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("frames", &self.len())
            .field("host_pairs", &self.index.pairs.len())
            .finish()
    }
}

impl PartialEq for TraceStore {
    fn eq(&self, other: &Self) -> bool {
        // The index is a pure function of the columns.
        self.time_ns == other.time_ns
            && self.wire_len == other.wire_len
            && self.tag == other.tag
            && self.src == other.src
            && self.dst == other.dst
    }
}

impl TraceStore {
    /// Build a store (columns + connection index) from records in
    /// capture order. One pass over the input.
    pub fn from_records(trace: &[FrameRecord]) -> TraceStore {
        let n = trace.len();
        let mut time_ns = Vec::with_capacity(n);
        let mut wire_len = Vec::with_capacity(n);
        let mut tag = Vec::with_capacity(n);
        let mut src = Vec::with_capacity(n);
        let mut dst = Vec::with_capacity(n);
        for r in trace {
            time_ns.push(r.time.as_nanos());
            wire_len.push(r.wire_len);
            tag.push(pack_tag(r.proto, r.kind));
            src.push(r.src.0);
            dst.push(r.dst.0);
        }
        Self::from_columns(time_ns, wire_len, tag, src, dst)
    }

    /// Assemble a store from raw columns (the binary loader's entry
    /// point). All columns must have equal length and every tag byte
    /// must be valid — both checked.
    pub(crate) fn from_columns(
        time_ns: Vec<u64>,
        wire_len: Vec<u32>,
        tag: Vec<u8>,
        src: Vec<u32>,
        dst: Vec<u32>,
    ) -> TraceStore {
        let n = time_ns.len();
        assert!(
            wire_len.len() == n && tag.len() == n && src.len() == n && dst.len() == n,
            "column length mismatch"
        );
        assert!(tag.iter().all(|&t| unpack_tag(t).is_some()), "invalid tag");
        let index = ConnIndex::build(&src, &dst);
        TraceStore {
            time_ns,
            wire_len,
            tag,
            src,
            dst,
            index,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.time_ns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.time_ns.is_empty()
    }

    /// Bytes the resident columns occupy (21 per frame, excluding the
    /// connection index) — the deterministic O(trace) memory cost the
    /// streaming scan's O(chunk) peak is compared against.
    pub fn column_bytes(&self) -> u64 {
        (self.time_ns.len() * 8
            + self.wire_len.len() * 4
            + self.tag.len()
            + self.src.len() * 4
            + self.dst.len() * 4) as u64
    }

    /// Reassemble row `i` as a [`FrameRecord`]. Panics when out of
    /// bounds.
    pub fn get(&self, i: usize) -> FrameRecord {
        let (proto, kind) = unpack_tag(self.tag[i]).expect("store tags validated on construction");
        FrameRecord {
            time: SimTime::from_nanos(self.time_ns[i]),
            wire_len: self.wire_len[i],
            proto,
            kind,
            src: HostId(self.src[i]),
            dst: HostId(self.dst[i]),
        }
    }

    /// Iterate the trace as [`FrameRecord`]s in capture order — the
    /// compatibility edge for record-oriented consumers.
    pub fn iter(&self) -> impl Iterator<Item = FrameRecord> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Materialize the whole trace as records (lossless inverse of
    /// [`TraceStore::from_records`]).
    pub fn to_records(&self) -> Vec<FrameRecord> {
        self.iter().collect()
    }

    /// A zero-copy view over every row.
    pub fn view(&self) -> TraceView<'_> {
        TraceView {
            store: self,
            rows: Rows::All,
        }
    }

    /// A zero-copy view over an explicit ascending row subset (a demuxed
    /// tenant, a sampled slice). Panics if any row is out of bounds.
    pub fn select<'s>(&'s self, rows: &'s [u32]) -> TraceView<'s> {
        assert!(
            rows.iter().all(|&r| (r as usize) < self.len()),
            "row index out of bounds"
        );
        TraceView {
            store: self,
            rows: Rows::Idx(rows),
        }
    }

    /// The *connection* `src → dst` (the paper's simplex channel: TCP
    /// data that direction, UDP daemon traffic, and the ACKs of the
    /// reverse channel) as a zero-copy view via the connection index.
    pub fn connection(&self, src: HostId, dst: HostId) -> TraceView<'_> {
        TraceView {
            store: self,
            rows: Rows::Idx(self.index.rows_of(src.0, dst.0)),
        }
    }

    /// All `(src, dst)` pairs carrying traffic with frame counts,
    /// ascending — read straight off the connection index, O(pairs).
    pub fn host_pairs(&self) -> Vec<((HostId, HostId), usize)> {
        self.index
            .pairs
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| {
                (
                    (HostId(s), HostId(d)),
                    self.index.starts[i + 1] - self.index.starts[i],
                )
            })
            .collect()
    }
}

impl From<&[FrameRecord]> for TraceStore {
    fn from(trace: &[FrameRecord]) -> TraceStore {
        TraceStore::from_records(trace)
    }
}

impl From<Vec<FrameRecord>> for TraceStore {
    fn from(trace: Vec<FrameRecord>) -> TraceStore {
        TraceStore::from_records(&trace)
    }
}

impl From<&TraceStore> for Vec<FrameRecord> {
    fn from(store: &TraceStore) -> Vec<FrameRecord> {
        store.to_records()
    }
}

impl FromIterator<FrameRecord> for TraceStore {
    fn from_iter<I: IntoIterator<Item = FrameRecord>>(iter: I) -> TraceStore {
        let records: Vec<FrameRecord> = iter.into_iter().collect();
        TraceStore::from_records(&records)
    }
}

#[derive(Debug, Clone, Copy)]
enum Rows<'a> {
    All,
    Idx(&'a [u32]),
}

/// A zero-copy analysis window over a [`TraceStore`]: either the whole
/// trace or an indexed row subset. Every kernel below is one fused pass
/// over the columns, sharing its arithmetic core with the legacy slice
/// kernel of the same name so the two paths agree bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    store: &'a TraceStore,
    rows: Rows<'a>,
}

impl<'a> TraceView<'a> {
    /// Frames in the view.
    pub fn len(&self) -> usize {
        match self.rows {
            Rows::All => self.store.len(),
            Rows::Idx(idx) => idx.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying store.
    pub fn store(&self) -> &'a TraceStore {
        self.store
    }

    fn row(&self, pos: usize) -> usize {
        match self.rows {
            Rows::All => pos,
            Rows::Idx(idx) => idx[pos] as usize,
        }
    }

    /// Store row numbers of the view, in view order.
    pub fn row_ids(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(move |pos| self.row(pos))
    }

    /// `(time_ns, wire_len)` samples in view order — the input shape of
    /// the time-series kernels.
    fn samples(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.row_ids()
            .map(move |i| (self.store.time_ns[i], self.store.wire_len[i]))
    }

    /// Reassemble the view's `pos`-th frame.
    pub fn record(&self, pos: usize) -> FrameRecord {
        self.store.get(self.row(pos))
    }

    /// Iterate the view as [`FrameRecord`]s.
    pub fn iter(&self) -> impl Iterator<Item = FrameRecord> + '_ {
        self.row_ids().map(move |i| self.store.get(i))
    }

    /// Copy the view out as records (the compatibility edge).
    pub fn to_records(&self) -> Vec<FrameRecord> {
        self.iter().collect()
    }

    /// Earliest and latest capture times in the view, in one pass over
    /// the time column; the view need not be time-ordered. `None` for an
    /// empty view.
    pub fn time_bounds(&self) -> Option<(SimTime, SimTime)> {
        let mut bounds: Option<(u64, u64)> = None;
        for (t, _) in self.samples() {
            bounds = Some(match bounds {
                None => (t, t),
                Some((lo, hi)) => (lo.min(t), hi.max(t)),
            });
        }
        bounds.map(|(lo, hi)| (SimTime::from_nanos(lo), SimTime::from_nanos(hi)))
    }

    /// Total bytes carried by the view's frames.
    pub fn bytes(&self) -> u64 {
        self.row_ids()
            .map(|i| u64::from(self.store.wire_len[i]))
            .sum()
    }

    /// Packet-size statistics in bytes (Figures 3 and 8); one pass over
    /// the size column.
    pub fn packet_sizes(&self) -> Option<Stats> {
        let mut w = Welford::new();
        for i in self.row_ids() {
            w.push(f64::from(self.store.wire_len[i]));
        }
        w.finish()
    }

    /// Packet interarrival statistics in milliseconds (Figures 4 and 9);
    /// one pass over the time column. Needs at least two packets.
    pub fn interarrivals_ms(&self) -> Option<Stats> {
        if self.len() < 2 {
            return None;
        }
        let mut w = Welford::new();
        let mut prev: Option<u64> = None;
        for (t, _) in self.samples() {
            if let Some(p) = prev {
                w.push((SimTime::from_nanos(t) - SimTime::from_nanos(p)).as_millis_f64());
            }
            prev = Some(t);
        }
        w.finish()
    }

    /// Lifetime average bandwidth in bytes/second (Figure 5): min/max
    /// time and byte total folded into one pass. `None` for views
    /// spanning zero time.
    pub fn average_bandwidth(&self) -> Option<f64> {
        average_from(self.samples())
    }

    /// Statically binned bandwidth (bytes/second per `bin`), the
    /// spectra's input series (§6.1); one fused pass for time-ordered
    /// views.
    pub fn binned_bandwidth(&self, bin: SimTime) -> Vec<f64> {
        binned_from(|| self.samples(), bin)
    }

    /// Instantaneous bandwidth over a `window` sliding one packet at a
    /// time (Figures 6 and 10), via the same streaming ring as the live
    /// observer.
    pub fn sliding_window_bandwidth(&self, window: SimTime) -> Vec<(SimTime, f64)> {
        let mut ring = SlidingBandwidth::new(window);
        self.samples()
            .map(|(t, len)| {
                let time = SimTime::from_nanos(t);
                (time, ring.push(time, len))
            })
            .collect()
    }

    /// Segment the view into bursts (packets closer than `gap` merge).
    pub fn detect_bursts(&self, gap: SimTime) -> Vec<Burst> {
        bursts_from(self.samples(), gap)
    }

    /// Burst-level summary; `None` for an empty view.
    pub fn burst_profile(&self, gap: SimTime) -> Option<BurstProfile> {
        BurstProfile::of_bursts(self.detect_bursts(gap))
    }

    /// Exact packet-size population `(wire size, count)`, ascending.
    pub fn size_population(&self) -> Vec<(u32, usize)> {
        let mut m: BTreeMap<u32, usize> = BTreeMap::new();
        for i in self.row_ids() {
            *m.entry(self.store.wire_len[i]).or_insert(0) += 1;
        }
        m.into_iter().collect()
    }

    /// Distinct sizes covering at least `frac` of the view — the crude
    /// mode count behind the trimodal-population check.
    pub fn dominant_modes(&self, frac: f64) -> Vec<u32> {
        let total = self.len().max(1);
        self.size_population()
            .into_iter()
            .filter(|&(_, c)| c as f64 / total as f64 >= frac)
            .map(|(s, _)| s)
            .collect()
    }

    /// Host pairs of the view with frame counts, ascending. A whole-store
    /// view reads the connection index; subset views count in one pass.
    pub fn host_pairs(&self) -> Vec<((HostId, HostId), usize)> {
        match self.rows {
            Rows::All => self.store.host_pairs(),
            Rows::Idx(idx) => {
                let mut m: BTreeMap<(u32, u32), usize> = BTreeMap::new();
                for &r in idx {
                    let i = r as usize;
                    *m.entry((self.store.src[i], self.store.dst[i])).or_insert(0) += 1;
                }
                m.into_iter()
                    .map(|((s, d), c)| ((HostId(s), HostId(d)), c))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        average_bandwidth, binned_bandwidth, connection, detect_bursts, host_pairs,
        size_population, sliding_window_bandwidth,
    };
    use fxnet_sim::Frame;

    fn rec(src: u32, dst: u32, size: u32, t_us: u64) -> FrameRecord {
        let f = Frame::tcp(HostId(src), HostId(dst), FrameKind::Data, size - 58, 0);
        FrameRecord::capture(SimTime::from_micros(t_us), &f)
    }

    fn mixed_trace() -> Vec<FrameRecord> {
        let mut tr = Vec::new();
        for i in 0..40u64 {
            tr.push(rec(0, 1, 1518, 10 * i));
            tr.push(rec(1, 0, 58, 10 * i + 3));
            if i % 4 == 0 {
                tr.push(rec(2, 3, 700, 10 * i + 5));
            }
        }
        tr
    }

    #[test]
    fn tag_packing_round_trips_all_combinations() {
        for proto in [Proto::Tcp, Proto::Udp] {
            for kind in [
                FrameKind::Data,
                FrameKind::Ack,
                FrameKind::Syn,
                FrameKind::Datagram,
            ] {
                assert_eq!(unpack_tag(pack_tag(proto, kind)), Some((proto, kind)));
            }
        }
        assert_eq!(unpack_tag(0b1000), None);
        assert_eq!(unpack_tag(0xff), None);
    }

    #[test]
    fn records_round_trip_through_store() {
        let tr = mixed_trace();
        let store = TraceStore::from_records(&tr);
        assert_eq!(store.len(), tr.len());
        assert_eq!(store.to_records(), tr);
        assert_eq!(store.get(0), tr[0]);
        let back: Vec<FrameRecord> = store.iter().collect();
        assert_eq!(back, tr);
        // Conversion traits agree.
        assert_eq!(TraceStore::from(tr.clone()), store);
        assert_eq!(Vec::<FrameRecord>::from(&store), tr);
        assert_eq!(tr.iter().copied().collect::<TraceStore>(), store);
    }

    #[test]
    fn connection_view_matches_legacy_copy() {
        let tr = mixed_trace();
        let store = TraceStore::from_records(&tr);
        for (s, d) in [(0u32, 1u32), (1, 0), (2, 3), (3, 2), (7, 9)] {
            let legacy = connection(&tr, HostId(s), HostId(d));
            let view = store.connection(HostId(s), HostId(d));
            assert_eq!(view.to_records(), legacy, "connection {s}->{d}");
            assert_eq!(view.packet_sizes(), Stats::packet_sizes(&legacy));
            assert_eq!(view.interarrivals_ms(), Stats::interarrivals_ms(&legacy));
        }
    }

    #[test]
    fn host_pairs_come_from_the_index() {
        let tr = mixed_trace();
        let store = TraceStore::from_records(&tr);
        assert_eq!(store.host_pairs(), host_pairs(&tr));
        assert_eq!(store.view().host_pairs(), host_pairs(&tr));
        // A subset view recounts only its rows.
        let conn = store.connection(HostId(2), HostId(3));
        assert_eq!(conn.host_pairs(), vec![((HostId(2), HostId(3)), 10)]);
    }

    #[test]
    fn whole_view_kernels_match_legacy() {
        let tr = mixed_trace();
        let store = TraceStore::from_records(&tr);
        let v = store.view();
        let bin = SimTime::from_millis(1);
        let gap = SimTime::from_micros(20);
        assert_eq!(v.packet_sizes(), Stats::packet_sizes(&tr));
        assert_eq!(v.interarrivals_ms(), Stats::interarrivals_ms(&tr));
        assert_eq!(v.average_bandwidth(), average_bandwidth(&tr));
        assert_eq!(v.binned_bandwidth(bin), binned_bandwidth(&tr, bin));
        assert_eq!(
            v.sliding_window_bandwidth(bin),
            sliding_window_bandwidth(&tr, bin)
        );
        assert_eq!(v.detect_bursts(gap), detect_bursts(&tr, gap));
        assert_eq!(v.size_population(), size_population(&tr));
        assert_eq!(v.bytes(), tr.iter().map(|r| u64::from(r.wire_len)).sum());
    }

    #[test]
    fn empty_and_single_frame_views() {
        let empty = TraceStore::from_records(&[]);
        assert!(empty.is_empty());
        assert!(empty.view().packet_sizes().is_none());
        assert!(empty.view().average_bandwidth().is_none());
        assert!(empty
            .view()
            .binned_bandwidth(SimTime::from_millis(10))
            .is_empty());
        assert!(empty.host_pairs().is_empty());

        let one = TraceStore::from_records(&[rec(0, 1, 500, 42)]);
        let v = one.view();
        assert_eq!(v.len(), 1);
        assert_eq!(v.packet_sizes().unwrap().count, 1);
        assert!(v.interarrivals_ms().is_none());
        assert!(v.average_bandwidth().is_none());
        assert_eq!(v.binned_bandwidth(SimTime::from_millis(10)).len(), 1);
        assert_eq!(v.detect_bursts(SimTime::from_millis(1)).len(), 1);
    }

    #[test]
    fn select_panics_on_out_of_bounds_rows() {
        let store = TraceStore::from_records(&[rec(0, 1, 500, 0)]);
        let rows = [5u32];
        let result = std::panic::catch_unwind(|| store.select(&rows).len());
        assert!(result.is_err());
    }
}
