//! Out-of-core report folding: the chunk-at-a-time twin of
//! [`TraceReport::analyze_view`].
//!
//! [`StreamingReport`] accepts `(time_ns, wire_len)` columns in capture
//! order — whole chunks from a [`crate::ChunkCursor`], or single frames
//! — and folds the same fused kernels the materialized path runs:
//! Welford size/interarrival statistics, the lifetime byte/span totals,
//! inline burst segmentation, and the anchored static binning that
//! feeds the periodogram. Every operation is executed in the same
//! order, on the same `f64` values, as `analyze_view` on a fully
//! materialized store, so the finished [`TraceReport`] is
//! **bitwise-identical** — the property the `analysis-scale` bench leg
//! asserts at ten million frames.
//!
//! Peak state is O(output), not O(trace): the accumulator holds the
//! running scalars, one `u64` per bandwidth bin, and one entry per
//! detected burst. No per-frame data survives the push.

use crate::bursts::{Burst, BurstProfile};
use crate::report::{ReportOptions, TraceReport};
use crate::spectrum::Periodogram;
use crate::stats::Welford;
use crate::stream::SlidingBandwidth;
use fxnet_sim::SimTime;

/// Cross-chunk fold of [`TraceReport::analyze_view`]'s fused pass.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    label: String,
    opts: ReportOptions,
    n: usize,
    sizes: Welford,
    inter: Welford,
    bursts: Vec<Burst>,
    t_min: u64,
    t_max: u64,
    bytes: u64,
    first: u64,
    last: u64,
    prev: Option<u64>,
    bin_anchor: Option<u64>,
    bin_bytes: Vec<u64>,
}

impl StreamingReport {
    /// Start an empty fold for a trace labelled `label`.
    pub fn new(label: impl Into<String>, opts: &ReportOptions) -> StreamingReport {
        assert!(opts.bin.as_nanos() > 0);
        StreamingReport {
            label: label.into(),
            opts: opts.clone(),
            n: 0,
            sizes: Welford::new(),
            inter: Welford::new(),
            bursts: Vec::new(),
            t_min: u64::MAX,
            t_max: 0,
            bytes: 0,
            first: 0,
            last: 0,
            prev: None,
            bin_anchor: None,
            bin_bytes: Vec::new(),
        }
    }

    /// Frames folded so far.
    pub fn frames(&self) -> usize {
        self.n
    }

    /// Fold one frame. Frames must arrive in non-decreasing time order
    /// (the capture invariant every simulator trace satisfies); the
    /// single-pass binning below depends on it.
    pub fn push(&mut self, time_ns: u64, wire_len: u32) {
        if let Some(p) = self.prev {
            assert!(
                time_ns >= p,
                "StreamingReport requires time-ordered frames ({time_ns} after {p})"
            );
        }
        let t = time_ns;
        if self.n == 0 {
            self.first = t;
        }
        self.last = t;
        self.t_min = self.t_min.min(t);
        self.t_max = self.t_max.max(t);
        self.bytes += u64::from(wire_len);
        self.sizes.push(f64::from(wire_len));
        if let Some(p) = self.prev {
            self.inter
                .push((SimTime::from_nanos(t) - SimTime::from_nanos(p)).as_millis_f64());
        }
        self.prev = Some(t);
        let time = SimTime::from_nanos(t);
        match self.bursts.last_mut() {
            Some(b) if time.saturating_sub(b.end) <= self.opts.burst_gap => {
                b.end = time;
                b.bytes += u64::from(wire_len);
                b.packets += 1;
            }
            _ => self.bursts.push(Burst {
                start: time,
                end: time,
                bytes: u64::from(wire_len),
                packets: 1,
            }),
        }
        let bin_ns = self.opts.bin.as_nanos();
        match self.bin_anchor {
            None => {
                self.bin_anchor = Some(t);
                self.bin_bytes.push(u64::from(wire_len));
            }
            Some(anchor) => {
                let idx = ((t - anchor) / bin_ns) as usize;
                if idx >= self.bin_bytes.len() {
                    self.bin_bytes.resize(idx + 1, 0);
                }
                self.bin_bytes[idx] += u64::from(wire_len);
            }
        }
        self.n += 1;
    }

    /// Fold one decoded chunk of columns.
    pub fn push_chunk(&mut self, time_ns: &[u64], wire_len: &[u32]) {
        assert_eq!(time_ns.len(), wire_len.len());
        for (&t, &len) in time_ns.iter().zip(wire_len) {
            self.push(t, len);
        }
    }

    /// Finish the fold, returning the report and the `opts.bin`-binned
    /// bandwidth series it was derived from (bytes/second per bin) —
    /// identical to `view.binned_bandwidth(opts.bin)` on the same
    /// frames, so downstream spectral consumers need no second pass.
    pub fn finish_with_series(self) -> (TraceReport, Vec<f64>) {
        let n = self.n;
        let span_s = if n == 0 {
            0.0
        } else {
            (SimTime::from_nanos(self.last) - SimTime::from_nanos(self.first)).as_secs_f64()
        };
        let avg_bandwidth = if n == 0 {
            None
        } else {
            let span =
                (SimTime::from_nanos(self.t_max) - SimTime::from_nanos(self.t_min)).as_secs_f64();
            if span <= 0.0 {
                None
            } else {
                Some(self.bytes as f64 / span)
            }
        };
        let series: Vec<f64> = if n == 0 {
            Vec::new()
        } else {
            let bin_ns = self.opts.bin.as_nanos();
            let nbins = ((self.t_max - self.t_min) / bin_ns + 1) as usize;
            let mut bin_bytes = self.bin_bytes;
            bin_bytes.resize(nbins, 0);
            let bin_s = self.opts.bin.as_secs_f64();
            bin_bytes.into_iter().map(|b| b as f64 / bin_s).collect()
        };
        let spec = (n != 0).then(|| Periodogram::compute(&series, self.opts.bin));
        let (dominant_hz, flatness) = match &spec {
            None => (None, None),
            Some(spec) => (
                spec.dominant_frequency(self.opts.min_hz),
                Some(spec.flatness()),
            ),
        };
        let report = TraceReport {
            label: self.label,
            frames: n,
            span_s,
            sizes: self.sizes.finish(),
            interarrivals_ms: if n < 2 { None } else { self.inter.finish() },
            avg_bandwidth,
            bursts: BurstProfile::of_bursts(self.bursts),
            dominant_hz,
            flatness,
        };
        (report, series)
    }

    /// Finish the fold, returning just the report.
    pub fn finish(self) -> TraceReport {
        self.finish_with_series().0
    }
}

/// Running peak of the sliding-window bandwidth: the O(window) fold of
/// the quantity `sliding_window_bandwidth` materializes as a full
/// per-packet vector. Both the streamed and materialized `analysis-scale`
/// paths push the same frames through the same
/// [`SlidingBandwidth`] ring, so the peaks agree bitwise.
#[derive(Debug, Clone)]
pub struct SlidingPeak {
    ring: SlidingBandwidth,
    peak: f64,
    n: usize,
}

impl SlidingPeak {
    pub fn new(window: SimTime) -> SlidingPeak {
        SlidingPeak {
            ring: SlidingBandwidth::new(window),
            peak: f64::NEG_INFINITY,
            n: 0,
        }
    }

    /// Fold one frame; returns the instantaneous window bandwidth.
    pub fn push(&mut self, time: SimTime, wire_len: u32) -> f64 {
        let bw = self.ring.push(time, wire_len);
        self.peak = self.peak.max(bw);
        self.n += 1;
        bw
    }

    /// Highest window bandwidth seen, `None` before any frame.
    pub fn peak(&self) -> Option<f64> {
        (self.n > 0).then_some(self.peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::sliding_window_bandwidth;
    use crate::report::markdown_table_views;
    use crate::store::TraceStore;
    use fxnet_sim::{Frame, FrameKind, FrameRecord, HostId, Proto};
    use proptest::prelude::*;

    fn burst_trace(n: usize) -> Vec<FrameRecord> {
        let mut t_us = 0u64;
        (0..n)
            .map(|i| {
                t_us += if i % 20 == 0 { 400_000 } else { 900 };
                FrameRecord::capture(
                    SimTime::from_micros(t_us),
                    &Frame::tcp(
                        HostId((i % 4) as u32),
                        HostId(((i + 1) % 4) as u32),
                        if i % 3 == 0 {
                            FrameKind::Ack
                        } else {
                            FrameKind::Data
                        },
                        if i % 3 == 0 { 0 } else { 1460 },
                        i as u64,
                    ),
                )
            })
            .collect()
    }

    fn assert_reports_bitwise_equal(a: &TraceReport, b: &TraceReport) {
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.span_s.to_bits(), b.span_s.to_bits());
        assert_eq!(a.sizes, b.sizes);
        assert_eq!(a.interarrivals_ms, b.interarrivals_ms);
        assert_eq!(
            a.avg_bandwidth.map(f64::to_bits),
            b.avg_bandwidth.map(f64::to_bits)
        );
        assert_eq!(
            a.dominant_hz.map(f64::to_bits),
            b.dominant_hz.map(f64::to_bits)
        );
        assert_eq!(a.flatness.map(f64::to_bits), b.flatness.map(f64::to_bits));
        assert_eq!(a.markdown_row(), b.markdown_row());
    }

    #[test]
    fn streamed_report_matches_materialized_exactly() {
        let tr = burst_trace(500);
        let store = TraceStore::from_records(&tr);
        let opts = ReportOptions::default();
        let materialized = TraceReport::analyze_view("demo", store.view(), &opts);

        for chunk in [1usize, 7, 100, 500, 1000] {
            let mut s = StreamingReport::new("demo", &opts);
            for slice in tr.chunks(chunk) {
                let t: Vec<u64> = slice.iter().map(|r| r.time.as_nanos()).collect();
                let w: Vec<u32> = slice.iter().map(|r| r.wire_len).collect();
                s.push_chunk(&t, &w);
            }
            assert_eq!(s.frames(), 500);
            let (streamed, series) = s.finish_with_series();
            assert_reports_bitwise_equal(&streamed, &materialized);
            let want = store.view().binned_bandwidth(opts.bin);
            assert_eq!(series.len(), want.len(), "chunk={chunk}");
            for (a, b) in series.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk={chunk}");
            }
            // The rendered table row is what the bench artifacts diff.
            assert_eq!(
                format!(
                    "{}\n{}",
                    TraceReport::markdown_header(),
                    streamed.markdown_row()
                ),
                markdown_table_views([("demo", store.view())], &opts)
            );
        }
    }

    #[test]
    fn empty_stream_matches_empty_view() {
        let opts = ReportOptions::default();
        let empty = TraceStore::from_records(&[]);
        let (streamed, series) = StreamingReport::new("e", &opts).finish_with_series();
        let materialized = TraceReport::analyze_view("e", empty.view(), &opts);
        assert_reports_bitwise_equal(&streamed, &materialized);
        assert!(series.is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_frames_are_rejected() {
        let mut s = StreamingReport::new("x", &ReportOptions::default());
        s.push(1_000_000, 100);
        s.push(999_999, 100);
    }

    #[test]
    fn sliding_peak_matches_materialized_max() {
        let tr = burst_trace(400);
        let window = SimTime::from_millis(10);
        let mut peak = SlidingPeak::new(window);
        assert_eq!(peak.peak(), None);
        for r in &tr {
            peak.push(r.time, r.wire_len);
        }
        let full = sliding_window_bandwidth(&tr, window);
        let want = full.iter().fold(f64::NEG_INFINITY, |m, &(_, v)| m.max(v));
        assert_eq!(peak.peak().unwrap().to_bits(), want.to_bits());
    }

    proptest! {
        /// The satellite-task property: any chunking — 1-frame chunks,
        /// one whole-trace chunk, anything between — folds to the exact
        /// bits of the materialized report.
        #[test]
        fn any_chunking_is_bitwise_identical(
            times in prop::collection::vec(0u64..5_000_000_000u64, 0..120),
            sizes in prop::collection::vec(58u32..1519, 1..120),
            cuts in prop::collection::vec(0usize..120, 0..12),
        ) {
            let mut ts = times;
            ts.sort_unstable();
            let tr: Vec<FrameRecord> = ts
                .iter()
                .zip(sizes.iter().cycle())
                .map(|(&t, &sz)| FrameRecord {
                    time: SimTime::from_nanos(t),
                    wire_len: sz,
                    proto: if t % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                    kind: FrameKind::Data,
                    src: HostId((t % 5) as u32),
                    dst: HostId((t % 3) as u32),
                })
                .collect();
            let store = TraceStore::from_records(&tr);
            let opts = ReportOptions::default();
            let materialized = TraceReport::analyze_view("p", store.view(), &opts);

            let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (tr.len() + 1)).collect();
            bounds.push(0);
            bounds.push(tr.len());
            bounds.sort_unstable();
            bounds.dedup();

            let mut s = StreamingReport::new("p", &opts);
            for w in bounds.windows(2) {
                let slice = &tr[w[0]..w[1]];
                let t: Vec<u64> = slice.iter().map(|r| r.time.as_nanos()).collect();
                let wl: Vec<u32> = slice.iter().map(|r| r.wire_len).collect();
                s.push_chunk(&t, &wl);
            }
            let (streamed, series) = s.finish_with_series();
            prop_assert_eq!(streamed.frames, materialized.frames);
            prop_assert_eq!(streamed.span_s.to_bits(), materialized.span_s.to_bits());
            prop_assert_eq!(&streamed.sizes, &materialized.sizes);
            prop_assert_eq!(&streamed.interarrivals_ms, &materialized.interarrivals_ms);
            prop_assert_eq!(
                streamed.avg_bandwidth.map(f64::to_bits),
                materialized.avg_bandwidth.map(f64::to_bits)
            );
            prop_assert_eq!(
                streamed.dominant_hz.map(f64::to_bits),
                materialized.dominant_hz.map(f64::to_bits)
            );
            prop_assert_eq!(
                streamed.flatness.map(f64::to_bits),
                materialized.flatness.map(f64::to_bits)
            );
            prop_assert_eq!(streamed.markdown_row(), materialized.markdown_row());
            let want = store.view().binned_bandwidth(opts.bin);
            prop_assert_eq!(series.len(), want.len());
            for (a, b) in series.iter().zip(&want) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
