//! Streaming (single-pass, O(1) amortized per frame) bandwidth state.
//!
//! The batch analyses in [`crate::bandwidth`] re-scan a finished trace;
//! the live observer in `fxnet-watch` sees one frame at a time and may
//! never hold the whole trace. Both must agree exactly, so the batch
//! functions are thin wrappers over the incremental structures here:
//! [`SlidingBandwidth`] is the ring behind `sliding_window_bandwidth`,
//! and [`StreamBinner`] reproduces `binned_bandwidth` bin for bin on any
//! time-ordered stream. Window semantics live in exactly one place —
//! there is no batch/streaming edge-case drift to fix twice.

use fxnet_sim::SimTime;
use std::collections::VecDeque;

/// Incremental sliding-window bandwidth: the bytes received in
/// `(t − window, t]` divided by the full window length, updated one
/// frame at a time. Frames must arrive in non-decreasing time order.
///
/// The first frames of a trace are *not* special-cased: a window that
/// extends before the first packet simply contains fewer bytes and is
/// still divided by the full `window`, matching Figures 6 and 10 (and
/// the batch path, which delegates here).
#[derive(Debug, Clone)]
pub struct SlidingBandwidth {
    window: SimTime,
    w_secs: f64,
    ring: VecDeque<(SimTime, u32)>,
    bytes: u64,
}

impl SlidingBandwidth {
    /// A window of `window` simulated time. Panics if zero.
    pub fn new(window: SimTime) -> SlidingBandwidth {
        assert!(window.as_nanos() > 0, "window must be positive");
        SlidingBandwidth {
            window,
            w_secs: window.as_secs_f64(),
            ring: VecDeque::new(),
            bytes: 0,
        }
    }

    /// Account one frame of `wire_len` bytes at `time` and return the
    /// instantaneous bandwidth (bytes/second) of the window ending at
    /// `time`. Panics if `time` precedes the newest frame seen.
    pub fn push(&mut self, time: SimTime, wire_len: u32) -> f64 {
        if let Some(&(last, _)) = self.ring.back() {
            assert!(time >= last, "frames must arrive in time order");
        }
        self.ring.push_back((time, wire_len));
        self.bytes += u64::from(wire_len);
        // Evict frames at or before t − window: the window is (t − w, t].
        while let Some(&(t0, len)) = self.ring.front() {
            if t0 + self.window <= time {
                self.bytes -= u64::from(len);
                self.ring.pop_front();
            } else {
                break;
            }
        }
        self.bytes as f64 / self.w_secs
    }

    /// Bytes currently inside the window.
    pub fn bytes_in_window(&self) -> u64 {
        self.bytes
    }

    /// Frames currently inside the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no frame is inside the window.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// Incremental static binning: reproduces [`crate::binned_bandwidth`]
/// (bins anchored at the first frame, bytes per bin divided by the bin
/// length) over a time-ordered stream, closing bins as frames pass them.
#[derive(Debug, Clone)]
pub struct StreamBinner {
    bin_ns: u64,
    bin_s: f64,
    t0: Option<SimTime>,
    cur_idx: u64,
    cur_bytes: u64,
    pending: VecDeque<f64>,
    closed: u64,
}

impl StreamBinner {
    /// Bins of `bin` simulated time. Panics if zero.
    pub fn new(bin: SimTime) -> StreamBinner {
        assert!(bin.as_nanos() > 0, "bin must be positive");
        StreamBinner {
            bin_ns: bin.as_nanos(),
            bin_s: bin.as_secs_f64(),
            t0: None,
            cur_idx: 0,
            cur_bytes: 0,
            pending: VecDeque::new(),
            closed: 0,
        }
    }

    /// Account one frame. Bins strictly before the frame's bin close and
    /// become available from [`StreamBinner::pop_closed`]. Panics if the
    /// stream runs backwards past a closed bin.
    pub fn push(&mut self, time: SimTime, wire_len: u32) {
        let t0 = *self.t0.get_or_insert(time);
        let idx = (time - t0).as_nanos() / self.bin_ns;
        assert!(idx >= self.cur_idx, "frames must arrive in time order");
        while self.cur_idx < idx {
            self.pending.push_back(self.cur_bytes as f64 / self.bin_s);
            self.closed += 1;
            self.cur_bytes = 0;
            self.cur_idx += 1;
        }
        self.cur_bytes += u64::from(wire_len);
    }

    /// The next closed bin's bandwidth (bytes/second), oldest first.
    pub fn pop_closed(&mut self) -> Option<f64> {
        self.pending.pop_front()
    }

    /// Total bins closed so far (whether or not popped).
    pub fn closed_count(&self) -> u64 {
        self.closed
    }

    /// Close the final (possibly partial) bin and return every bin not
    /// yet popped. The result appended to the already-popped bins equals
    /// `binned_bandwidth` on the same frames exactly.
    pub fn finish(mut self) -> Vec<f64> {
        if self.t0.is_some() {
            self.pending.push_back(self.cur_bytes as f64 / self.bin_s);
        }
        self.pending.into_iter().collect()
    }
}

/// A latched consecutive-breach detector: fires once when a condition
/// has held for `threshold` consecutive windows, then stays latched.
///
/// This is the shared breach rule of the live observers: the watcher
/// (`fxnet-watch`) latches a tenant's bandwidth violation with it, and
/// the fabric weather map (`fxnet-metrics`) latches hotspot links with
/// exactly the same semantics, so "flagged" means the same thing in
/// both reports.
#[derive(Debug, Clone, Default)]
pub struct StreakLatch {
    /// Consecutive over-threshold windows required to latch.
    threshold: usize,
    streak: usize,
    latched: bool,
}

impl StreakLatch {
    /// A latch that fires after `threshold` consecutive breaches.
    /// A zero threshold fires on the first observation, breach or not.
    pub fn new(threshold: usize) -> StreakLatch {
        StreakLatch {
            threshold,
            streak: 0,
            latched: false,
        }
    }

    /// Observe one window: `over` is whether the condition breached.
    /// Returns `true` exactly once — on the observation that completes
    /// the streak while not yet latched.
    pub fn update(&mut self, over: bool) -> bool {
        if over {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        if self.streak >= self.threshold && !self.latched {
            self.latched = true;
            return true;
        }
        false
    }

    /// Latch immediately (single-observation breach rules, e.g. the
    /// watcher's burst check). Returns `true` if this call latched.
    pub fn latch_now(&mut self) -> bool {
        let fired = !self.latched;
        self.latched = true;
        fired
    }

    /// Whether the latch has fired.
    pub fn latched(&self) -> bool {
        self.latched
    }

    /// Current consecutive-breach streak.
    pub fn streak(&self) -> usize {
        self.streak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::{binned_bandwidth, sliding_window_bandwidth};
    use fxnet_sim::{Frame, FrameKind, FrameRecord, HostId};
    use proptest::prelude::*;

    fn rec(t_us: u64, size: u32) -> FrameRecord {
        let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, size - 58, 0);
        FrameRecord::capture(SimTime::from_micros(t_us), &f)
    }

    #[test]
    fn ring_matches_batch_on_a_regular_trace() {
        let tr: Vec<FrameRecord> = (0..50).map(|i| rec(i * 3_000, 500 + i as u32)).collect();
        let w = SimTime::from_millis(10);
        let batch = sliding_window_bandwidth(&tr, w);
        let mut ring = SlidingBandwidth::new(w);
        for (r, (bt, bv)) in tr.iter().zip(batch) {
            let v = ring.push(r.time, r.wire_len);
            assert_eq!(r.time, bt);
            assert_eq!(v, bv, "exact agreement, not approximate");
        }
    }

    #[test]
    fn trace_shorter_than_one_window_never_evicts() {
        // Regression (satellite): every frame fits in one window, so the
        // series is the cumulative byte count over the full window — no
        // partial-window renormalization at either edge.
        let tr = vec![rec(0, 1000), rec(2_000, 1000), rec(4_000, 1000)];
        let w = SimTime::from_millis(10);
        let batch = sliding_window_bandwidth(&tr, w);
        assert_eq!(batch[0].1, 100_000.0);
        assert_eq!(batch[1].1, 200_000.0);
        assert_eq!(batch[2].1, 300_000.0);
        let mut ring = SlidingBandwidth::new(w);
        for (r, (_, bv)) in tr.iter().zip(&batch) {
            assert_eq!(ring.push(r.time, r.wire_len), *bv);
        }
        assert_eq!(ring.len(), 3, "nothing evicted");
        assert_eq!(ring.bytes_in_window(), 3000);
    }

    #[test]
    fn single_frame_window() {
        let mut ring = SlidingBandwidth::new(SimTime::from_millis(10));
        assert!(ring.is_empty());
        let v = ring.push(SimTime::from_secs(5), 1518);
        assert_eq!(v, 151_800.0);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn binner_matches_batch_with_gaps() {
        // Frames spanning empty bins: the binner must emit the zeros.
        let tr = vec![
            rec(0, 100),
            rec(3_000, 100),
            rec(25_000, 100),
            rec(47_000, 200),
        ];
        let bin = SimTime::from_millis(10);
        let batch = binned_bandwidth(&tr, bin);
        let mut b = StreamBinner::new(bin);
        let mut got = Vec::new();
        for r in &tr {
            b.push(r.time, r.wire_len);
            while let Some(v) = b.pop_closed() {
                got.push(v);
            }
        }
        got.extend(b.finish());
        assert_eq!(got, batch);
    }

    #[test]
    fn streak_latch_fires_once_after_k_consecutive_breaches() {
        let mut l = StreakLatch::new(3);
        assert!(!l.update(true));
        assert!(!l.update(true));
        assert!(!l.update(false), "streak resets");
        assert_eq!(l.streak(), 0);
        assert!(!l.update(true));
        assert!(!l.update(true));
        assert!(l.update(true), "third consecutive breach fires");
        assert!(l.latched());
        assert!(!l.update(true), "already latched: never fires again");
        assert!(!l.latch_now());
        let mut direct = StreakLatch::new(5);
        assert!(direct.latch_now(), "direct latch fires once");
        assert!(!direct.update(true));
    }

    #[test]
    fn binner_empty_stream() {
        let b = StreamBinner::new(SimTime::from_millis(10));
        assert_eq!(b.finish(), Vec::<f64>::new());
        assert!(binned_bandwidth(&[], SimTime::from_millis(10)).is_empty());
    }

    proptest! {
        /// The streaming ring and binner agree with the batch functions
        /// exactly (bitwise) on arbitrary sorted traces.
        #[test]
        fn stream_equals_batch(
            times in prop::collection::vec(0u64..2_000_000u64, 1..300),
            sizes in prop::collection::vec(58u32..1518, 1..300),
        ) {
            let mut ts = times;
            ts.sort_unstable();
            let tr: Vec<FrameRecord> = ts
                .iter()
                .zip(sizes.iter().cycle())
                .map(|(&t, &s)| rec(t, s))
                .collect();
            let w = SimTime::from_millis(10);
            let batch = sliding_window_bandwidth(&tr, w);
            let mut ring = SlidingBandwidth::new(w);
            for (r, (_, bv)) in tr.iter().zip(&batch) {
                prop_assert_eq!(ring.push(r.time, r.wire_len), *bv);
            }
            let bbatch = binned_bandwidth(&tr, w);
            let mut binner = StreamBinner::new(w);
            let mut got = Vec::new();
            for r in &tr {
                binner.push(r.time, r.wire_len);
                while let Some(v) = binner.pop_closed() {
                    got.push(v);
                }
            }
            got.extend(binner.finish());
            prop_assert_eq!(got, bbatch);
        }
    }
}
