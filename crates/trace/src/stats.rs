//! Min/max/average/standard-deviation summaries.

use fxnet_sim::FrameRecord;

/// Summary statistics over a sample, as the paper's tables report them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    pub min: f64,
    pub max: f64,
    pub avg: f64,
    /// Population standard deviation.
    pub sd: f64,
    pub count: usize,
}

/// Welford's online min/max/mean/variance accumulator.
///
/// This is the *single* arithmetic core behind every `Stats` in the
/// crate: the legacy slice kernels and the fused columnar kernels both
/// push their samples through it in the same order, so the two paths
/// produce bitwise-identical `f64` results — which is what lets the
/// bench harness assert byte-identical reports between them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Welford {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub(crate) fn new() -> Welford {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub(crate) fn push(&mut self, v: f64) {
        self.n += 1;
        let d = v - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub(crate) fn finish(self) -> Option<Stats> {
        if self.n == 0 {
            return None;
        }
        Some(Stats {
            min: self.min,
            max: self.max,
            avg: self.mean,
            sd: (self.m2 / self.n as f64).max(0.0).sqrt(),
            count: self.n,
        })
    }
}

impl Stats {
    /// Compute over an iterator of samples. Returns `None` when empty.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Option<Stats> {
        // Welford's online algorithm: numerically stable in one pass.
        let mut w = Welford::new();
        for v in values {
            w.push(v);
        }
        w.finish()
    }

    /// Packet-size statistics in bytes (Figures 3 and 8).
    pub fn packet_sizes(trace: &[FrameRecord]) -> Option<Stats> {
        Stats::of(trace.iter().map(|r| f64::from(r.wire_len)))
    }

    /// Packet interarrival statistics in milliseconds (Figures 4 and 9).
    /// Needs at least two packets.
    pub fn interarrivals_ms(trace: &[FrameRecord]) -> Option<Stats> {
        if trace.len() < 2 {
            return None;
        }
        Stats::of(
            trace
                .windows(2)
                .map(|w| (w[1].time - w[0].time).as_millis_f64()),
        )
    }

    /// The max/avg ratio the paper uses as its burstiness indicator.
    pub fn burstiness(&self) -> f64 {
        if self.avg == 0.0 {
            f64::INFINITY
        } else {
            self.max / self.avg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, FrameRecord, HostId, SimTime};
    use proptest::prelude::*;

    fn rec(t_ms: u64, size: u32) -> FrameRecord {
        let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, size - 58, 0);
        FrameRecord::capture(SimTime::from_millis(t_ms), &f)
    }

    #[test]
    fn known_values() {
        let s = Stats::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.avg, 5.0);
        assert_eq!(s.sd, 2.0);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn empty_is_none() {
        assert!(Stats::of(std::iter::empty()).is_none());
    }

    #[test]
    fn packet_sizes_use_wire_length() {
        let tr = vec![rec(0, 58), rec(1, 1518)];
        let s = Stats::packet_sizes(&tr).unwrap();
        assert_eq!(s.min, 58.0);
        assert_eq!(s.max, 1518.0);
        assert_eq!(s.avg, 788.0);
    }

    #[test]
    fn interarrivals_in_ms() {
        let tr = vec![rec(0, 100), rec(10, 100), rec(40, 100)];
        let s = Stats::interarrivals_ms(&tr).unwrap();
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
        assert_eq!(s.avg, 20.0);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn interarrivals_need_two_packets() {
        assert!(Stats::interarrivals_ms(&[rec(0, 100)]).is_none());
        assert!(Stats::interarrivals_ms(&[]).is_none());
    }

    #[test]
    fn burstiness_ratio() {
        let s = Stats::of([1.0, 1.0, 10.0]).unwrap();
        assert!((s.burstiness() - 10.0 / 4.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn sd_is_zero_for_constant_samples(v in -100.0f64..100.0, n in 1usize..50) {
            let s = Stats::of(std::iter::repeat_n(v, n)).unwrap();
            prop_assert!(s.sd < 1e-6);
            prop_assert_eq!(s.min, v);
            prop_assert_eq!(s.max, v);
        }

        #[test]
        fn min_le_avg_le_max(vals in prop::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Stats::of(vals.iter().copied()).unwrap();
            prop_assert!(s.min <= s.avg + 1e-9);
            prop_assert!(s.avg <= s.max + 1e-9);
            prop_assert!(s.sd >= 0.0);
        }
    }
}
