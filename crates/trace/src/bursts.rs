//! Burst detection and the constant-burst-size analysis.
//!
//! Two of the paper's five headline traffic properties are burst-level:
//! *constant burst sizes* (the data exchanged per communication phase is
//! fixed by the program, unlike a media stream's variable frames) and
//! *periodic burstiness*. This module segments a trace into bursts —
//! maximal packet runs separated by quiet gaps — and summarizes their
//! sizes and spacing.

use crate::stats::Stats;
use fxnet_sim::{FrameRecord, SimTime};

/// One detected burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Time of the first packet.
    pub start: SimTime,
    /// Time of the last packet.
    pub end: SimTime,
    /// Total bytes carried.
    pub bytes: u64,
    /// Packets in the burst.
    pub packets: usize,
}

impl Burst {
    /// Burst length in seconds (the paper's `t_b`).
    pub fn duration(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }
}

/// One-pass burst segmentation over `(time_ns, wire_len)` samples —
/// the shared core behind the legacy slice kernel and the columnar
/// [`crate::TraceView`].
pub(crate) fn bursts_from(samples: impl Iterator<Item = (u64, u32)>, gap: SimTime) -> Vec<Burst> {
    let mut out: Vec<Burst> = Vec::new();
    for (t, len) in samples {
        let time = SimTime::from_nanos(t);
        match out.last_mut() {
            Some(b) if time.saturating_sub(b.end) <= gap => {
                b.end = time;
                b.bytes += u64::from(len);
                b.packets += 1;
            }
            _ => out.push(Burst {
                start: time,
                end: time,
                bytes: u64::from(len),
                packets: 1,
            }),
        }
    }
    out
}

/// Segment `trace` into bursts: consecutive packets closer than `gap`
/// belong to the same burst.
pub fn detect_bursts(trace: &[FrameRecord], gap: SimTime) -> Vec<Burst> {
    bursts_from(trace.iter().map(|r| (r.time.as_nanos(), r.wire_len)), gap)
}

/// Burst-level summary of a trace.
#[derive(Debug, Clone)]
pub struct BurstProfile {
    /// Byte-size statistics over bursts.
    pub sizes: Stats,
    /// Burst-interval statistics (start-to-start, seconds) — the paper's
    /// `t_bi`.
    pub intervals: Option<Stats>,
    /// Number of bursts.
    pub count: usize,
}

impl BurstProfile {
    /// Profile the bursts of `trace` using `gap` as the separator.
    /// `None` if the trace is empty.
    pub fn of(trace: &[FrameRecord], gap: SimTime) -> Option<BurstProfile> {
        BurstProfile::of_bursts(detect_bursts(trace, gap))
    }

    /// Profile an already-detected burst list (the columnar path detects
    /// bursts from a view, then summarizes them here).
    pub fn of_bursts(bursts: Vec<Burst>) -> Option<BurstProfile> {
        let sizes = Stats::of(bursts.iter().map(|b| b.bytes as f64))?;
        let intervals = if bursts.len() >= 2 {
            Stats::of(
                bursts
                    .windows(2)
                    .map(|w| (w[1].start - w[0].start).as_secs_f64()),
            )
        } else {
            None
        };
        Some(BurstProfile {
            sizes,
            intervals,
            count: bursts.len(),
        })
    }

    /// Coefficient of variation of burst sizes: ≈0 for the paper's
    /// constant-burst-size programs, large for variable-bit-rate media.
    pub fn size_cv(&self) -> f64 {
        if self.sizes.avg == 0.0 {
            0.0
        } else {
            self.sizes.sd / self.sizes.avg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, HostId};

    fn rec(t_us: u64, size: u32) -> FrameRecord {
        let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, size - 58, 0);
        FrameRecord::capture(SimTime::from_micros(t_us), &f)
    }

    /// Three bursts of 4 packets each, 100 ms apart.
    fn regular_trace() -> Vec<FrameRecord> {
        let mut tr = Vec::new();
        for b in 0..3u64 {
            for i in 0..4u64 {
                tr.push(rec(b * 100_000 + i * 500, 1000));
            }
        }
        tr
    }

    #[test]
    fn detects_gap_separated_bursts() {
        let bursts = detect_bursts(&regular_trace(), SimTime::from_millis(10));
        assert_eq!(bursts.len(), 3);
        for b in &bursts {
            assert_eq!(b.packets, 4);
            assert_eq!(b.bytes, 4000);
            assert!((b.duration() - 0.0015).abs() < 1e-9);
        }
    }

    #[test]
    fn whole_trace_is_one_burst_with_huge_gap() {
        let bursts = detect_bursts(&regular_trace(), SimTime::from_secs(1));
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].packets, 12);
    }

    #[test]
    fn constant_burst_sizes_have_zero_cv() {
        let p = BurstProfile::of(&regular_trace(), SimTime::from_millis(10)).unwrap();
        assert_eq!(p.count, 3);
        assert!(p.size_cv() < 1e-9);
        let iv = p.intervals.unwrap();
        assert!((iv.avg - 0.1).abs() < 1e-9, "interval {:?}", iv.avg);
        assert!(iv.sd < 1e-9);
    }

    #[test]
    fn variable_bursts_have_high_cv() {
        let mut tr = Vec::new();
        let mut t = 0u64;
        for (i, n) in [1u64, 10, 2, 20, 3].iter().enumerate() {
            for j in 0..*n {
                tr.push(rec(t + j * 500, 1000));
            }
            t += 100_000 * (i as u64 + 1);
        }
        let p = BurstProfile::of(&tr, SimTime::from_millis(10)).unwrap();
        assert_eq!(p.count, 5);
        assert!(p.size_cv() > 0.5, "cv {}", p.size_cv());
    }

    #[test]
    fn empty_trace_is_none() {
        assert!(BurstProfile::of(&[], SimTime::from_millis(10)).is_none());
    }

    #[test]
    fn single_packet_trace() {
        let p = BurstProfile::of(&[rec(0, 500)], SimTime::from_millis(10)).unwrap();
        assert_eq!(p.count, 1);
        assert!(p.intervals.is_none());
    }
}
