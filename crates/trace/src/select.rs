//! Trace selection: connections and size populations.

use fxnet_sim::{FrameRecord, HostId};
use std::collections::BTreeMap;

/// Extract the *connection* from `src` to `dst`: every frame with that
/// source and destination machine. Per the paper's definition this
/// captures the message-passing TCP data flowing `src → dst`, the UDP
/// daemon traffic on that direction, and the TCP ACKs `src` emits for the
/// symmetric reverse channel.
pub fn connection(trace: &[FrameRecord], src: HostId, dst: HostId) -> Vec<FrameRecord> {
    trace
        .iter()
        .filter(|r| r.src == src && r.dst == dst)
        .copied()
        .collect()
}

/// All (src, dst) host pairs carrying traffic, with frame counts,
/// deterministically ordered.
pub fn host_pairs(trace: &[FrameRecord]) -> Vec<((HostId, HostId), usize)> {
    let mut m: BTreeMap<(HostId, HostId), usize> = BTreeMap::new();
    for r in trace {
        *m.entry((r.src, r.dst)).or_insert(0) += 1;
    }
    m.into_iter().collect()
}

/// Exact packet-size population: (wire size, frame count), ascending by
/// size. Used to verify the trimodal distributions of §6.1.
pub fn size_population(trace: &[FrameRecord]) -> Vec<(u32, usize)> {
    let mut m: BTreeMap<u32, usize> = BTreeMap::new();
    for r in trace {
        *m.entry(r.wire_len).or_insert(0) += 1;
    }
    m.into_iter().collect()
}

/// Number of distinct sizes that each cover at least `frac` of the trace —
/// a crude mode count (a trimodal population has three dominant sizes).
pub fn dominant_modes(trace: &[FrameRecord], frac: f64) -> Vec<u32> {
    let total = trace.len().max(1);
    size_population(trace)
        .into_iter()
        .filter(|&(_, c)| c as f64 / total as f64 >= frac)
        .map(|(s, _)| s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, SimTime};

    fn rec(src: u32, dst: u32, size: u32, t: u64) -> FrameRecord {
        let f = Frame::tcp(HostId(src), HostId(dst), FrameKind::Data, size - 58, 0);
        FrameRecord::capture(SimTime::from_micros(t), &f)
    }

    #[test]
    fn connection_is_directional() {
        let tr = vec![
            rec(0, 1, 100, 0),
            rec(1, 0, 100, 1),
            rec(0, 1, 200, 2),
            rec(0, 2, 300, 3),
        ];
        let c = connection(&tr, HostId(0), HostId(1));
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|r| r.src == HostId(0) && r.dst == HostId(1)));
    }

    #[test]
    fn host_pairs_counts() {
        let tr = vec![rec(0, 1, 100, 0), rec(0, 1, 100, 1), rec(2, 3, 100, 2)];
        let pairs = host_pairs(&tr);
        assert_eq!(
            pairs,
            vec![((HostId(0), HostId(1)), 2), ((HostId(2), HostId(3)), 1)]
        );
    }

    #[test]
    fn size_population_ascending() {
        let tr = vec![rec(0, 1, 1518, 0), rec(0, 1, 58, 1), rec(0, 1, 1518, 2)];
        assert_eq!(size_population(&tr), vec![(58, 1), (1518, 2)]);
    }

    #[test]
    fn dominant_modes_filters_rare_sizes() {
        let mut tr = Vec::new();
        for i in 0..45 {
            tr.push(rec(0, 1, 1518, i));
        }
        for i in 0..45 {
            tr.push(rec(0, 1, 58, 100 + i));
        }
        for i in 0..10 {
            tr.push(rec(0, 1, 700, 200 + i));
        }
        let modes = dominant_modes(&tr, 0.08);
        assert_eq!(modes, vec![58, 700, 1518]);
        let strict = dominant_modes(&tr, 0.2);
        assert_eq!(strict, vec![58, 1518]);
    }

    #[test]
    fn empty_trace() {
        assert!(host_pairs(&[]).is_empty());
        assert!(size_population(&[]).is_empty());
        assert!(dominant_modes(&[], 0.1).is_empty());
    }
}
