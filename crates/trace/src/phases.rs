//! Phase-attributed traffic breakdown: the cross-layer join of the
//! packet trace and the engine's phase spans.
//!
//! The paper argues causally — SOR's bursts *are* its boundary
//! exchanges, SEQ's 4 Hz component *is* its per-row broadcast loop — but
//! measures only the aggregate wire. This module makes the causal link
//! explicit: every captured frame is attributed to the named collective
//! span active on its source rank (see
//! [`fxnet_telemetry::attribution`]), and the trace is then broken down
//! per phase: frames, bytes, share of simulated rank-time spent inside
//! the phase, and the peak binned bandwidth the phase alone produced.

use fxnet_sim::{FrameRecord, SimTime};
use fxnet_telemetry::{attribute_collectives, SpanKind, SpanRecord};
use serde::Serialize;

/// One named phase's share of the run and of the wire.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseRow {
    /// Collective span name (e.g. `boundary_exchange`).
    pub name: String,
    /// Completed span instances across all ranks.
    pub spans: u64,
    /// Fraction of total rank-time (P × run length) spent inside this
    /// phase, summed over ranks.
    pub sim_time_share: f64,
    /// Frames attributed to this phase.
    pub frames: u64,
    /// Wire bytes attributed to this phase.
    pub bytes: u64,
    /// Peak binned bandwidth of this phase's frames alone, in
    /// bytes/second (max over the breakdown's static bins).
    pub peak_bandwidth: f64,
}

/// A full per-phase decomposition of one run's trace.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseBreakdown {
    /// Bin length the peak bandwidths were computed over.
    pub bin: SimTime,
    /// One row per distinct collective span name, ordered by first begin.
    pub rows: Vec<PhaseRow>,
    /// Frames no collective span claims (daemon chatter from idle hosts,
    /// connection establishment before the first phase).
    pub unattributed_frames: u64,
    /// Wire bytes of the unattributed frames.
    pub unattributed_bytes: u64,
    /// Fraction of `FrameKind::Data` wire bytes attributed to a named
    /// phase — the acceptance figure for the causal claim.
    pub data_attribution_fraction: f64,
}

impl PhaseBreakdown {
    /// Attribute `trace` against `spans` (ranks `0..ranks` live on hosts
    /// `0..ranks`) and aggregate per phase, computing peak bandwidth on
    /// static `bin`-long intervals (the paper's 10 ms).
    pub fn compute(
        trace: &[FrameRecord],
        spans: &[SpanRecord],
        ranks: u32,
        bin: SimTime,
    ) -> PhaseBreakdown {
        let at = attribute_collectives(trace, spans, ranks);
        let nphases = at.names.len();

        // The run ends when the last span closes or the last frame lands.
        let run_end = spans
            .iter()
            .map(|s| s.end)
            .chain(trace.iter().map(|r| r.time))
            .max()
            .unwrap_or(SimTime::ZERO);

        let mut rows: Vec<PhaseRow> = at
            .names
            .iter()
            .map(|name| PhaseRow {
                name: name.clone(),
                spans: 0,
                sim_time_share: 0.0,
                frames: 0,
                bytes: 0,
                peak_bandwidth: 0.0,
            })
            .collect();

        let total_rank_time = u64::from(ranks) as f64 * run_end.as_secs_f64();
        for span in spans {
            if span.kind != SpanKind::Collective || span.rank >= ranks {
                continue;
            }
            if let Some(row) = rows.iter_mut().find(|r| r.name == span.name) {
                row.spans += 1;
                if total_rank_time > 0.0 {
                    row.sim_time_share += span.duration().as_secs_f64() / total_rank_time;
                }
            }
        }

        // Per-phase static binning in one pass over the trace.
        let bin_ns = bin.as_nanos().max(1);
        let nbins = (run_end.as_nanos() / bin_ns + 1) as usize;
        let mut binned = vec![0u64; nphases * nbins];
        let mut unattributed_frames = 0u64;
        let mut unattributed_bytes = 0u64;
        for (frame, label) in trace.iter().zip(&at.labels) {
            match label {
                Some(phase) => {
                    let row = &mut rows[*phase];
                    row.frames += 1;
                    row.bytes += u64::from(frame.wire_len);
                    let b = (frame.time.as_nanos() / bin_ns) as usize;
                    binned[phase * nbins + b] += u64::from(frame.wire_len);
                }
                None => {
                    unattributed_frames += 1;
                    unattributed_bytes += u64::from(frame.wire_len);
                }
            }
        }
        for (phase, row) in rows.iter_mut().enumerate() {
            let peak = binned[phase * nbins..(phase + 1) * nbins]
                .iter()
                .max()
                .copied()
                .unwrap_or(0);
            row.peak_bandwidth = peak as f64 / bin.as_secs_f64();
        }

        PhaseBreakdown {
            bin,
            rows,
            unattributed_frames,
            unattributed_bytes,
            data_attribution_fraction: at.data_attribution_fraction(trace),
        }
    }

    /// Render the breakdown as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>6} {:>8} {:>8} {:>12} {:>14}\n",
            "phase", "spans", "time%", "frames", "bytes", "peak B/s"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<22} {:>6} {:>7.2}% {:>8} {:>12} {:>14.0}\n",
                row.name,
                row.spans,
                100.0 * row.sim_time_share,
                row.frames,
                row.bytes,
                row.peak_bandwidth,
            ));
        }
        out.push_str(&format!(
            "{:<22} {:>6} {:>8} {:>8} {:>12} {:>14}\n",
            "(unattributed)", "-", "-", self.unattributed_frames, self.unattributed_bytes, "-"
        ));
        out.push_str(&format!(
            "data bytes attributed to a named phase: {:.1}%\n",
            100.0 * self.data_attribution_fraction
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, HostId};

    fn span(rank: u32, name: &str, begin_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord {
            rank,
            name: name.into(),
            kind: SpanKind::Collective,
            begin: SimTime::from_micros(begin_us),
            end: SimTime::from_micros(end_us),
        }
    }

    fn frame(src: u32, at_ms: u64, len: u32) -> FrameRecord {
        FrameRecord::capture(
            SimTime::from_millis(at_ms),
            &Frame::tcp(HostId(src), HostId(1), FrameKind::Data, len, 0),
        )
    }

    #[test]
    fn breakdown_aggregates_per_phase() {
        let spans = vec![
            span(0, "exchange", 0, 20_000),
            span(0, "reduce", 40_000, 60_000),
            span(1, "exchange", 0, 20_000),
        ];
        let trace = vec![
            frame(0, 5, 1000),  // exchange
            frame(0, 15, 1000), // exchange (same 10 ms bin? no: bins 0 and 1)
            frame(0, 45, 500),  // reduce
            frame(7, 45, 500),  // idle host -> unattributed
        ];
        let bd = PhaseBreakdown::compute(&trace, &spans, 4, SimTime::from_millis(10));
        assert_eq!(bd.rows.len(), 2);
        let ex = &bd.rows[0];
        assert_eq!(
            (ex.name.as_str(), ex.spans, ex.frames, ex.bytes),
            ("exchange", 2, 2, 2116)
        );
        // One 1058-byte frame per 10 ms bin.
        assert!((ex.peak_bandwidth - 105_800.0).abs() < 1e-6);
        assert_eq!(bd.rows[1].name, "reduce");
        assert_eq!(bd.unattributed_frames, 1);
        // 60 ms run, 4 ranks: exchange covers 2×20 ms / 240 ms.
        assert!((ex.sim_time_share - 40.0 / 240.0).abs() < 1e-12);
        let table = bd.table();
        assert!(table.contains("exchange") && table.contains("(unattributed)"));
    }

    #[test]
    fn empty_run_is_benign() {
        let bd = PhaseBreakdown::compute(&[], &[], 4, SimTime::from_millis(10));
        assert!(bd.rows.is_empty());
        assert_eq!(bd.data_attribution_fraction, 1.0);
    }
}
