//! Per-program trace demultiplexing.
//!
//! The paper's tracer is promiscuous: it captures *every* frame on the
//! shared medium. With one program running, the whole trace is that
//! program's traffic (plus daemon chatter). With several programs
//! sharing the LAN (`fxnet-mix`), recovering per-program statistics
//! requires splitting the single capture by tenant. The split uses the
//! host-ownership map of [`fxnet_pvm::TenantMap`]: a frame belongs to
//! tenant *t* iff both its source and destination hosts are owned by
//! *t* — which captures the tenant's message-passing TCP data, its
//! reverse-channel ACKs, and its intra-tenant daemon datagrams. Frames
//! crossing ownership boundaries (master-daemon heartbeats from hosts
//! of other tenants, chatter from idle hosts) land in `background`.
//!
//! Every frame goes to exactly one bucket, so conservation —
//! `Σ per-tenant + background = total` — holds by construction and is
//! re-checked by [`DemuxedTrace::check_conservation`].

use crate::store::{TraceStore, TraceView};
use fxnet_pvm::TenantMap;
use fxnet_sim::FrameRecord;

/// A promiscuous trace split by tenant.
#[derive(Debug, Clone)]
pub struct DemuxedTrace {
    /// Per-tenant sub-traces, indexed like the map's slices; each keeps
    /// the original capture order (time-sorted, as captured).
    pub per_tenant: Vec<Vec<FrameRecord>>,
    /// Frames attributable to no single tenant (daemon heartbeats across
    /// ownership boundaries, idle-host chatter).
    pub background: Vec<FrameRecord>,
    /// Total frames in the input trace.
    pub total: usize,
}

impl DemuxedTrace {
    /// Frames attributed to tenant `i`.
    pub fn tenant(&self, i: usize) -> &[FrameRecord] {
        &self.per_tenant[i]
    }

    /// Verify that no frame was lost or double-attributed. Returns the
    /// total again so callers can print it.
    pub fn check_conservation(&self) -> usize {
        let attributed: usize =
            self.per_tenant.iter().map(Vec::len).sum::<usize>() + self.background.len();
        assert_eq!(
            attributed, self.total,
            "demux lost or double-attributed frames"
        );
        self.total
    }
}

/// A columnar trace split by tenant: row-index buckets over one shared
/// [`TraceStore`] instead of per-tenant frame copies. Each bucket keeps
/// capture order, and [`DemuxedStore::tenant`] hands back a zero-copy
/// [`TraceView`] ready for the fused analysis kernels.
#[derive(Debug)]
pub struct DemuxedStore<'a> {
    store: &'a TraceStore,
    /// Per-tenant row numbers, indexed like the map's slices.
    pub per_tenant: Vec<Vec<u32>>,
    /// Rows attributable to no single tenant.
    pub background: Vec<u32>,
    /// Total frames in the store.
    pub total: usize,
}

impl DemuxedStore<'_> {
    /// Zero-copy view of tenant `i`'s rows.
    pub fn tenant(&self, i: usize) -> TraceView<'_> {
        self.store.select(&self.per_tenant[i])
    }

    /// Zero-copy view of the background rows.
    pub fn background_view(&self) -> TraceView<'_> {
        self.store.select(&self.background)
    }

    /// Number of tenant buckets.
    pub fn tenants(&self) -> usize {
        self.per_tenant.len()
    }

    /// Verify that no row was lost or double-attributed; returns the
    /// total so callers can print it.
    pub fn check_conservation(&self) -> usize {
        let attributed: usize =
            self.per_tenant.iter().map(Vec::len).sum::<usize>() + self.background.len();
        assert_eq!(
            attributed, self.total,
            "demux lost or double-attributed frames"
        );
        self.total
    }
}

/// Split a columnar `store` by tenant ownership in one pass over the
/// host-id columns. Same attribution rule as [`demux`], but the buckets
/// are row indices — no frame is copied.
pub fn demux_store<'a>(store: &'a TraceStore, map: &TenantMap) -> DemuxedStore<'a> {
    let mut per_tenant: Vec<Vec<u32>> = vec![Vec::new(); map.len()];
    let mut background = Vec::new();
    for i in 0..store.len() {
        let (src, dst) = (
            fxnet_sim::HostId(store.src[i]),
            fxnet_sim::HostId(store.dst[i]),
        );
        match (map.owner_of_host(src), map.owner_of_host(dst)) {
            (Some(a), Some(b)) if a == b => per_tenant[a].push(i as u32),
            _ => background.push(i as u32),
        }
    }
    DemuxedStore {
        store,
        per_tenant,
        background,
        total: store.len(),
    }
}

/// Split `trace` by tenant ownership. Frames are cloned into exactly one
/// bucket each; input order is preserved within every bucket.
pub fn demux(trace: &[FrameRecord], map: &TenantMap) -> DemuxedTrace {
    let mut per_tenant: Vec<Vec<FrameRecord>> = vec![Vec::new(); map.len()];
    let mut background = Vec::new();
    for r in trace {
        match (map.owner_of_host(r.src), map.owner_of_host(r.dst)) {
            (Some(a), Some(b)) if a == b => per_tenant[a].push(*r),
            _ => background.push(*r),
        }
    }
    DemuxedTrace {
        per_tenant,
        background,
        total: trace.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{connection, host_pairs};
    use fxnet_sim::{Frame, FrameKind, HostId, SimTime};

    fn rec(src: u32, dst: u32, t_us: u64) -> FrameRecord {
        let f = Frame::tcp(HostId(src), HostId(dst), FrameKind::Data, 400, 0);
        FrameRecord::capture(SimTime::from_micros(t_us), &f)
    }

    fn two_tenants() -> TenantMap {
        TenantMap::pack([("A".to_string(), 2), ("B".to_string(), 2)])
    }

    /// Interleave two tenants' bidirectional exchanges frame by frame.
    fn interleaved_trace() -> Vec<FrameRecord> {
        let mut tr = Vec::new();
        for i in 0..50u64 {
            tr.push(rec(0, 1, 4 * i)); // A forward
            tr.push(rec(2, 3, 4 * i + 1)); // B forward
            tr.push(rec(1, 0, 4 * i + 2)); // A reverse (ACK channel)
            tr.push(rec(3, 2, 4 * i + 3)); // B reverse
        }
        tr
    }

    #[test]
    fn interleaved_tenants_demux_into_disjoint_connection_sets() {
        let tr = interleaved_trace();
        let d = demux(&tr, &two_tenants());
        assert_eq!(d.check_conservation(), 200);
        assert_eq!(d.tenant(0).len(), 100);
        assert_eq!(d.tenant(1).len(), 100);
        assert!(d.background.is_empty());
        // The connection sets are disjoint: every host pair of tenant A
        // is absent from tenant B's sub-trace and vice versa.
        let pairs_a: Vec<_> = host_pairs(d.tenant(0))
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let pairs_b: Vec<_> = host_pairs(d.tenant(1))
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert!(pairs_a.iter().all(|p| !pairs_b.contains(p)));
        assert_eq!(
            pairs_a,
            vec![(HostId(0), HostId(1)), (HostId(1), HostId(0))]
        );
    }

    #[test]
    fn connection_extraction_from_demuxed_equals_whole_trace_extraction() {
        // `select::connection` on the full interleaved capture must agree
        // with extraction from the tenant's own sub-trace: no frame of a
        // foreign tenant can alias into the connection.
        let tr = interleaved_trace();
        let d = demux(&tr, &two_tenants());
        for (src, dst) in [(0u32, 1u32), (1, 0), (2, 3), (3, 2)] {
            let whole = connection(&tr, HostId(src), HostId(dst));
            let owner = two_tenants().owner_of_host(HostId(src)).unwrap();
            let sub = connection(d.tenant(owner), HostId(src), HostId(dst));
            assert_eq!(whole, sub, "connection {src}->{dst}");
            assert_eq!(whole.len(), 50);
        }
    }

    #[test]
    fn no_frame_double_counted_under_conservation() {
        // Sum of per-(src,dst) counts across buckets equals the input's
        // per-pair counts exactly.
        let tr = interleaved_trace();
        let d = demux(&tr, &two_tenants());
        let mut rebuilt: Vec<FrameRecord> = Vec::new();
        for t in &d.per_tenant {
            rebuilt.extend_from_slice(t);
        }
        rebuilt.extend_from_slice(&d.background);
        rebuilt.sort_by_key(|r| (r.time, r.src, r.dst));
        let mut orig = tr.clone();
        orig.sort_by_key(|r| (r.time, r.src, r.dst));
        assert_eq!(rebuilt, orig);
    }

    #[test]
    fn cross_boundary_frames_are_background() {
        let map = two_tenants();
        let tr = vec![
            rec(0, 1, 0), // A
            rec(2, 0, 1), // B's host → A's host 0 (heartbeat-like): background
            rec(4, 0, 2), // unowned idle host → A: background
            rec(2, 3, 3), // B
        ];
        let d = demux(&tr, &map);
        assert_eq!(d.tenant(0).len(), 1);
        assert_eq!(d.tenant(1).len(), 1);
        assert_eq!(d.background.len(), 2);
        d.check_conservation();
    }

    #[test]
    fn demux_store_matches_record_demux() {
        let tr = interleaved_trace();
        let map = two_tenants();
        let store = TraceStore::from_records(&tr);
        let legacy = demux(&tr, &map);
        let cols = demux_store(&store, &map);
        assert_eq!(cols.check_conservation(), legacy.check_conservation());
        assert_eq!(cols.tenants(), 2);
        for i in 0..2 {
            assert_eq!(cols.tenant(i).to_records(), legacy.tenant(i), "tenant {i}");
        }
        assert_eq!(cols.background_view().to_records(), legacy.background);
    }

    #[test]
    fn demux_store_cross_boundary_rows_are_background() {
        let map = two_tenants();
        let tr = vec![rec(0, 1, 0), rec(2, 0, 1), rec(4, 0, 2), rec(2, 3, 3)];
        let store = TraceStore::from_records(&tr);
        let d = demux_store(&store, &map);
        assert_eq!(d.tenant(0).len(), 1);
        assert_eq!(d.tenant(1).len(), 1);
        assert_eq!(d.background_view().len(), 2);
        d.check_conservation();
    }

    #[test]
    fn empty_trace_and_empty_map() {
        let d = demux(&[], &two_tenants());
        assert_eq!(d.check_conservation(), 0);
        let d = demux(&interleaved_trace(), &TenantMap::default());
        assert_eq!(d.background.len(), 200);
        d.check_conservation();
    }
}
