//! Columnar-vs-legacy equivalence: every analysis kernel must produce
//! identical results on a [`TraceStore`] view and on the legacy
//! `Vec<FrameRecord>` path — bitwise for the `f64` outputs, since both
//! share one arithmetic core. Covers unsorted and single-frame traces,
//! and the text↔binary round trip.

use fxnet_sim::{FrameKind, FrameRecord, HostId, Proto, SimTime};
use fxnet_trace::io::{read_store_binary, read_trace, write_store_binary, write_trace};
use fxnet_trace::{
    average_bandwidth, binned_bandwidth, connection, demux, demux_store, detect_bursts,
    dominant_modes, host_pairs, markdown_table, markdown_table_views, size_population,
    sliding_window_bandwidth, BurstProfile, Periodogram, ReportOptions, Stats, TraceReport,
    TraceStore,
};
use proptest::prelude::*;

const BIN: SimTime = SimTime::from_millis(10);
const GAP: SimTime = SimTime::from_millis(5);

/// Build a trace from raw (time_us, size, src, dst) tuples; proto and
/// kind cycle through every combination.
fn trace_from(parts: &[(u64, u32, u32, u32)]) -> Vec<FrameRecord> {
    parts
        .iter()
        .enumerate()
        .map(|(i, &(t, sz, s, d))| FrameRecord {
            time: SimTime::from_micros(t),
            wire_len: sz,
            proto: if i % 2 == 0 { Proto::Tcp } else { Proto::Udp },
            kind: match i % 4 {
                0 => FrameKind::Data,
                1 => FrameKind::Ack,
                2 => FrameKind::Syn,
                _ => FrameKind::Datagram,
            },
            src: HostId(s),
            dst: HostId(d),
        })
        .collect()
}

fn stats_bits(s: Option<Stats>) -> Option<(u64, u64, u64, u64, usize)> {
    s.map(|s| {
        (
            s.min.to_bits(),
            s.max.to_bits(),
            s.avg.to_bits(),
            s.sd.to_bits(),
            s.count,
        )
    })
}

/// Assert every kernel agrees between the legacy slice path and the
/// columnar view, bit for bit. `sorted` gates the kernels whose legacy
/// versions assume capture order (sliding window's ring asserts
/// monotone time).
fn assert_kernels_agree(tr: &[FrameRecord], sorted: bool) {
    let store = TraceStore::from_records(tr);
    let v = store.view();

    assert_eq!(store.to_records(), tr, "record round trip");
    assert_eq!(
        stats_bits(v.packet_sizes()),
        stats_bits(Stats::packet_sizes(tr))
    );
    assert_eq!(
        v.average_bandwidth().map(f64::to_bits),
        average_bandwidth(tr).map(f64::to_bits)
    );
    let (vb, lb) = (v.binned_bandwidth(BIN), binned_bandwidth(tr, BIN));
    assert_eq!(
        vb.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        lb.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "binned series"
    );
    // The spectrum input series being identical makes the periodogram
    // identical; spot-check the total power anyway.
    if !vb.is_empty() {
        assert_eq!(
            Periodogram::compute(&vb, BIN).total_power().to_bits(),
            Periodogram::compute(&lb, BIN).total_power().to_bits()
        );
    }
    assert_eq!(v.detect_bursts(GAP), detect_bursts(tr, GAP));
    if sorted {
        // Burst intervals subtract consecutive start times, which (like
        // the legacy path) assumes capture order.
        let (vp, lp) = (v.burst_profile(GAP), BurstProfile::of(tr, GAP));
        assert_eq!(
            vp.as_ref().map(|p| (stats_bits(Some(p.sizes)), p.count)),
            lp.as_ref().map(|p| (stats_bits(Some(p.sizes)), p.count))
        );
    }
    assert_eq!(v.size_population(), size_population(tr));
    assert_eq!(v.dominant_modes(0.1), dominant_modes(tr, 0.1));
    assert_eq!(v.host_pairs(), host_pairs(tr));
    assert_eq!(store.host_pairs(), host_pairs(tr));
    for &((s, d), n) in &store.host_pairs() {
        let legacy = connection(tr, s, d);
        let view = store.connection(s, d);
        assert_eq!(view.len(), n);
        assert_eq!(view.to_records(), legacy);
        assert_eq!(
            stats_bits(view.packet_sizes()),
            stats_bits(Stats::packet_sizes(&legacy))
        );
    }
    if sorted {
        assert_eq!(
            stats_bits(v.interarrivals_ms()),
            stats_bits(Stats::interarrivals_ms(tr))
        );
        assert_eq!(
            v.sliding_window_bandwidth(BIN),
            sliding_window_bandwidth(tr, BIN)
        );
        let opts = ReportOptions::default();
        let a = TraceReport::analyze("t", tr, &opts);
        let b = TraceReport::analyze_view("t", v, &opts);
        assert_eq!(a.markdown_row(), b.markdown_row());
        assert_eq!(
            markdown_table([("t", tr)], &opts),
            markdown_table_views([("t", v)], &opts)
        );
    }
}

#[test]
fn single_frame_trace_agrees() {
    assert_kernels_agree(&trace_from(&[(5, 1518, 0, 1)]), true);
}

#[test]
fn empty_trace_agrees() {
    assert_kernels_agree(&[], true);
}

#[test]
fn two_identical_timestamps_agree() {
    assert_kernels_agree(&trace_from(&[(7, 100, 0, 1), (7, 200, 1, 0)]), true);
}

#[test]
fn deterministic_unsorted_trace_agrees() {
    assert_kernels_agree(
        &trace_from(&[
            (900, 1518, 0, 1),
            (100, 58, 1, 0),
            (500, 700, 0, 1),
            (100, 1518, 2, 3),
            (0, 58, 0, 1),
        ]),
        false,
    );
}

#[test]
fn demux_agrees_with_legacy_on_interleaved_tenants() {
    let map = fxnet_pvm::TenantMap::pack([("A".to_string(), 2), ("B".to_string(), 2)]);
    let mut parts = Vec::new();
    for i in 0..60u64 {
        parts.push((4 * i, 1518, 0, 1));
        parts.push((4 * i + 1, 700, 2, 3));
        parts.push((4 * i + 2, 58, 1, 0));
        parts.push((4 * i + 3, 58, 4, 0)); // cross-boundary: background
    }
    let tr = trace_from(&parts);
    let store = TraceStore::from_records(&tr);
    let legacy = demux(&tr, &map);
    let cols = demux_store(&store, &map);
    assert_eq!(cols.check_conservation(), legacy.check_conservation());
    for i in 0..2 {
        assert_eq!(cols.tenant(i).to_records(), legacy.tenant(i));
        assert_eq!(
            stats_bits(cols.tenant(i).packet_sizes()),
            stats_bits(Stats::packet_sizes(legacy.tenant(i)))
        );
    }
    assert_eq!(cols.background_view().to_records(), legacy.background);
}

proptest! {
    #[test]
    fn kernels_agree_on_arbitrary_sorted_traces(
        times in prop::collection::vec(0u64..2_000_000u64, 1..150),
        sizes in prop::collection::vec(58u32..1519, 1..150),
        hosts in prop::collection::vec((0u32..6, 0u32..6), 1..150),
    ) {
        let mut ts = times;
        ts.sort_unstable();
        let parts: Vec<(u64, u32, u32, u32)> = ts
            .iter()
            .zip(sizes.iter().cycle())
            .zip(hosts.iter().cycle())
            .map(|((&t, &sz), &(s, d))| (t, sz, s, d))
            .collect();
        assert_kernels_agree(&trace_from(&parts), true);
    }

    #[test]
    fn kernels_agree_on_arbitrary_unsorted_traces(
        times in prop::collection::vec(0u64..2_000_000u64, 1..150),
        sizes in prop::collection::vec(58u32..1519, 1..150),
        hosts in prop::collection::vec((0u32..6, 0u32..6), 1..150),
    ) {
        let parts: Vec<(u64, u32, u32, u32)> = times
            .iter()
            .zip(sizes.iter().cycle())
            .zip(hosts.iter().cycle())
            .map(|((&t, &sz), &(s, d))| (t, sz, s, d))
            .collect();
        assert_kernels_agree(&trace_from(&parts), false);
    }

    #[test]
    fn demux_store_agrees_on_arbitrary_traces(
        times in prop::collection::vec(0u64..1_000_000u64, 1..120),
        hosts in prop::collection::vec((0u32..8, 0u32..8), 1..120),
    ) {
        let map = fxnet_pvm::TenantMap::pack([("A".to_string(), 3), ("B".to_string(), 3)]);
        let parts: Vec<(u64, u32, u32, u32)> = times
            .iter()
            .zip(hosts.iter().cycle())
            .map(|(&t, &(s, d))| (t, 400, s, d))
            .collect();
        let tr = trace_from(&parts);
        let store = TraceStore::from_records(&tr);
        let legacy = demux(&tr, &map);
        let cols = demux_store(&store, &map);
        prop_assert_eq!(cols.check_conservation(), legacy.check_conservation());
        for i in 0..legacy.per_tenant.len() {
            prop_assert_eq!(cols.tenant(i).to_records(), legacy.tenant(i).to_vec());
        }
        prop_assert_eq!(cols.background_view().to_records(), legacy.background);
    }

    #[test]
    fn binary_text_round_trip_agrees(
        times in prop::collection::vec(0u64..u64::MAX / 2, 1..80),
        sizes in prop::collection::vec(58u32..1519, 1..80),
        hosts in prop::collection::vec((0u32..16, 0u32..16), 1..80),
    ) {
        let parts: Vec<(u64, u32, u32, u32)> = times
            .iter()
            .zip(sizes.iter().cycle())
            .zip(hosts.iter().cycle())
            .map(|((&t, &sz), &(s, d))| (t / 1000, sz, s, d))
            .collect();
        let tr = trace_from(&parts);
        let store = TraceStore::from_records(&tr);
        let mut bin = Vec::new();
        write_store_binary(&mut bin, &store).unwrap();
        let mut txt = Vec::new();
        write_trace(&mut txt, &tr).unwrap();
        let from_bin = read_store_binary(&mut &bin[..]).unwrap();
        let from_txt = read_trace(&mut &txt[..]).unwrap();
        prop_assert_eq!(&from_bin, &store);
        prop_assert_eq!(&from_txt, &tr);
        prop_assert_eq!(from_bin.to_records(), from_txt);
    }
}
