//! Per-link QoS over a multi-segment topology.
//!
//! [`QosNetwork`](crate::QosNetwork) models the paper's environment: one
//! shared capacity every connection draws from. On a switched fabric that
//! is wrong in both directions — two hosts behind the same switch never
//! touch the trunk, while two cross-switch tenants share *only* the
//! trunk. [`FabricQos`] keeps a residual ledger per link resource
//! (segment buses, dedicated switch/router ports, and each trunk
//! direction) and admits a flow against every link on its forwarding
//! path, so the offer for a path is the residual of its *bottleneck*
//! link and admission composes across tenants exactly like the wire
//! does.

use crate::network::Overcommit;
use fxnet_sim::rates::bytes_per_sec;
use fxnet_topo::{NodeKind, TopologySpec};

/// One capacity ledger (bytes/s) for a single link resource.
#[derive(Debug, Clone)]
struct LinkLedger {
    name: String,
    capacity: f64,
    committed: f64,
}

impl LinkLedger {
    fn residual(&self) -> f64 {
        (self.capacity - self.committed).max(0.0)
    }
}

/// Per-link admission control compiled from a [`TopologySpec`].
#[derive(Debug, Clone)]
pub struct FabricQos {
    spec: TopologySpec,
    next_hop: Vec<Vec<Option<usize>>>,
    links: Vec<LinkLedger>,
    /// Resource index of each segment node (`usize::MAX` for non-segments).
    seg_res: Vec<usize>,
    /// Resource index of each host's dedicated access port
    /// (`usize::MAX` for segment-attached hosts, which share `seg_res`).
    host_res: Vec<usize>,
    /// Resource index of trunk `t` direction `d` at `trunk_res[2 * t + d]`
    /// (`d` 0 = a→b).
    trunk_res: Vec<usize>,
}

impl FabricQos {
    /// Build the per-link ledgers for `spec`.
    ///
    /// # Panics
    /// If the spec fails [`TopologySpec::validate`].
    pub fn from_topology(spec: &TopologySpec) -> FabricQos {
        spec.validate().unwrap_or_else(|e| panic!("topology: {e}"));
        let mut links = Vec::new();
        let mut push = |name: String, bps: u64| {
            links.push(LinkLedger {
                name,
                capacity: bytes_per_sec(bps),
                committed: 0.0,
            });
            links.len() - 1
        };
        let seg_res: Vec<usize> = spec
            .nodes
            .iter()
            .map(|n| match n.kind {
                NodeKind::Segment => push(n.name.clone(), n.rate_bps),
                _ => usize::MAX,
            })
            .collect();
        let host_res: Vec<usize> = spec
            .attachments
            .iter()
            .enumerate()
            .map(|(h, &node)| match spec.nodes[node].kind {
                NodeKind::Segment => usize::MAX,
                _ => push(format!("h{h}:port"), spec.nodes[node].rate_bps),
            })
            .collect();
        let mut trunk_res = Vec::with_capacity(spec.trunks.len() * 2);
        for t in &spec.trunks {
            trunk_res.push(push(format!("trunk:n{}-n{}", t.a, t.b), t.rate_bps));
            trunk_res.push(push(format!("trunk:n{}-n{}", t.b, t.a), t.rate_bps));
        }
        FabricQos {
            next_hop: spec.forwarding(),
            links,
            seg_res,
            host_res,
            trunk_res,
            spec: spec.clone(),
        }
    }

    /// The link resources a `src → dst` flow occupies, in path order:
    /// source access, each trunk direction crossed, destination access.
    /// (A segment appears once even when it is both access and transit.)
    fn path(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut push = |r: usize| {
            if r != usize::MAX && !out.contains(&r) {
                out.push(r);
            }
        };
        let src_node = self.spec.attachments[src];
        let dst_node = self.spec.attachments[dst];
        push(self.seg_res[src_node].min(self.host_res[src]));
        let mut node = src_node;
        while node != dst_node {
            let ti = self.next_hop[node][dst_node].expect("validated path");
            let t = self.spec.trunks[ti];
            let dir = usize::from(t.a != node);
            push(self.trunk_res[2 * ti + dir]);
            node = if t.a == node { t.b } else { t.a };
            // A transit segment is a shared medium the flow also crosses.
            push(self.seg_res[node]);
        }
        push(self.seg_res[dst_node].min(self.host_res[dst]));
        out
    }

    /// The burst bandwidth (bytes/s) the fabric can offer a `src → dst`
    /// flow: the residual of the path's bottleneck link.
    pub fn offer_path(&self, src: usize, dst: usize) -> f64 {
        self.path(src, dst)
            .iter()
            .map(|&r| self.links[r].residual())
            .fold(f64::INFINITY, f64::min)
    }

    /// Name and residual of the bottleneck link on the `src → dst` path.
    pub fn bottleneck(&self, src: usize, dst: usize) -> (String, f64) {
        let path = self.path(src, dst);
        let &r = path
            .iter()
            .min_by(|&&a, &&b| {
                self.links[a]
                    .residual()
                    .total_cmp(&self.links[b].residual())
            })
            .expect("path is never empty");
        (self.links[r].name.clone(), self.links[r].residual())
    }

    /// Commit `mean_bw` bytes/s on every link of the `src → dst` path.
    /// All-or-nothing: on refusal, no link ledger changes.
    ///
    /// # Errors
    /// [`Overcommit`] naming the bottleneck's residual when any link on
    /// the path cannot take the load.
    pub fn commit_path(&mut self, src: usize, dst: usize, mean_bw: f64) -> Result<(), Overcommit> {
        let path = self.path(src, dst);
        for &r in &path {
            if mean_bw > self.links[r].residual() + 1e-9 {
                return Err(Overcommit {
                    requested: mean_bw,
                    available: self.links[r].residual(),
                });
            }
        }
        for &r in &path {
            self.links[r].committed += mean_bw;
        }
        Ok(())
    }

    /// Release a previously committed `src → dst` flow.
    pub fn release_path(&mut self, src: usize, dst: usize, mean_bw: f64) {
        for r in self.path(src, dst) {
            let l = &mut self.links[r];
            l.committed = (l.committed - mean_bw).max(0.0);
        }
    }

    /// Residual (bytes/s) of a named link, if it exists.
    pub fn residual_of(&self, name: &str) -> Option<f64> {
        self.links
            .iter()
            .find(|l| l.name == name)
            .map(LinkLedger::residual)
    }

    /// Every link resource as `(name, capacity, committed)` in bytes/s.
    pub fn ledger(&self) -> Vec<(String, f64, f64)> {
        self.links
            .iter()
            .map(|l| (l.name.clone(), l.capacity, l.committed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::RATE_10M;

    const BW: f64 = 1_250_000.0; // 10 Mb/s in bytes/s

    #[test]
    fn same_switch_flows_never_touch_the_trunk() {
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let mut q = FabricQos::from_topology(&spec);
        // Hosts 0,1 are both on sw0.
        q.commit_path(0, 1, BW).unwrap();
        assert_eq!(q.residual_of("trunk:n0-n1"), Some(BW));
        // Host 0's own port is now the limit for it, not the trunk.
        assert_eq!(q.offer_path(0, 2), 0.0);
        assert_eq!(q.bottleneck(0, 2).0, "h0:port");
    }

    #[test]
    fn cross_switch_flows_bottleneck_on_the_trunk() {
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let mut q = FabricQos::from_topology(&spec);
        q.commit_path(0, 2, BW * 0.75).unwrap();
        // A second cross-switch flow in the same direction sees only the
        // trunk residual, and the bottleneck is named.
        assert_eq!(q.offer_path(1, 3), BW * 0.25);
        let (name, residual) = q.bottleneck(1, 3);
        assert_eq!(name, "trunk:n0-n1");
        assert_eq!(residual, BW * 0.25);
        // The reverse path shares only the endpoint ports with the
        // committed flow, not the a→b trunk direction (full duplex) —
        // its offer is limited by host 0/2's ports, not the trunk.
        assert_eq!(q.offer_path(2, 0), BW * 0.25);
        assert_ne!(q.bottleneck(2, 0).0, "trunk:n1-n0");
    }

    #[test]
    fn reverse_direction_is_independent() {
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let mut q = FabricQos::from_topology(&spec);
        q.commit_path(0, 2, BW).unwrap();
        // a→b trunk is full; b→a is untouched. Host 2's port carries the
        // committed flow's delivery, so probe from the other sw1 host.
        assert_eq!(q.offer_path(3, 1), BW);
        assert_eq!(q.offer_path(1, 3), 0.0);
    }

    #[test]
    fn commit_is_all_or_nothing_and_release_restores() {
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let mut q = FabricQos::from_topology(&spec);
        q.commit_path(0, 2, BW * 0.9).unwrap();
        let err = q.commit_path(1, 3, BW * 0.5).unwrap_err();
        assert!((err.available - BW * 0.1).abs() < 1.0);
        // The refused commit left every ledger untouched.
        assert_eq!(q.residual_of("h1:port"), Some(BW));
        q.release_path(0, 2, BW * 0.9);
        assert_eq!(q.offer_path(1, 3), BW);
    }

    #[test]
    fn routed_path_crosses_both_segments_and_both_trunks() {
        let spec = TopologySpec::routed_two_subnets(4, RATE_10M);
        let mut q = FabricQos::from_topology(&spec);
        q.commit_path(0, 3, BW * 0.5).unwrap();
        // Both segments and both trunk hops carry the flow.
        assert_eq!(q.residual_of("seg0"), Some(BW * 0.5));
        assert_eq!(q.residual_of("seg1"), Some(BW * 0.5));
        assert_eq!(q.residual_of("trunk:n0-n2"), Some(BW * 0.5));
        assert_eq!(q.residual_of("trunk:n2-n1"), Some(BW * 0.5));
        // An intra-segment flow on seg0 sees the shared medium residual.
        assert_eq!(q.offer_path(0, 1), BW * 0.5);
    }

    #[test]
    fn single_segment_reduces_to_the_shared_capacity_model() {
        let spec = TopologySpec::single_segment(4, RATE_10M);
        let mut q = FabricQos::from_topology(&spec);
        assert_eq!(q.offer_path(0, 1), BW);
        q.commit_path(0, 1, BW * 0.25).unwrap();
        q.commit_path(2, 3, BW * 0.25).unwrap();
        // Everyone shares the one bus, exactly like QosNetwork.
        assert_eq!(q.offer_path(1, 2), BW * 0.5);
        assert_eq!(q.bottleneck(1, 2).0, "seg0");
    }

    #[test]
    fn ledger_lists_every_resource() {
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let q = FabricQos::from_topology(&spec);
        let names: Vec<String> = q.ledger().into_iter().map(|(n, _, _)| n).collect();
        // 4 ports + 2 trunk directions.
        assert_eq!(names.len(), 6);
        assert!(names.contains(&"trunk:n0-n1".to_string()));
        assert!(names.contains(&"trunk:n1-n0".to_string()));
        assert!(names.contains(&"h0:port".to_string()));
    }
}
