//! The negotiation: "in order to meet the 'guarantee' of minimizing
//! t_bi, the network is allowed to return the number of processors P the
//! program should run on" (§7.3).
//!
//! The tension: more processors shrink the compute share `W/P` of the
//! interval, but increase the number of concurrently active connections
//! the pattern uses, so the network can commit less burst bandwidth `B`
//! to each and the communication share `N/B` grows. The optimum depends
//! on the pattern — exactly the point of the paper's `[l(), b(), c]`
//! characterization.

use crate::descriptor::{AppDescriptor, BurstTiming};
use crate::network::QosNetwork;

/// The accepted operating point of a negotiation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Negotiation {
    /// The processor count the network recommends.
    pub p: u32,
    /// The committed per-connection burst bandwidth, bytes/s.
    pub burst_bw: f64,
    /// The resulting cycle timing.
    pub timing: BurstTiming,
    /// Long-run capacity the program will consume (all connections).
    pub mean_load: f64,
}

/// Negotiate a processor count for `app` against `net`, considering
/// every `P` in `candidates`. Returns the admissible operating point
/// minimizing the burst interval `t_bi`, or `None` if no candidate is
/// admissible.
pub fn negotiate(
    app: &AppDescriptor,
    net: &QosNetwork,
    candidates: impl IntoIterator<Item = u32>,
) -> Option<Negotiation> {
    let mut best: Option<Negotiation> = None;
    for p in candidates {
        if p < 1 {
            continue;
        }
        let concurrent = app.concurrent_connections(p);
        let Some(bw) = net.offer(concurrent) else {
            continue;
        };
        let timing = app.timing(p, bw);
        let mean_load = timing.mean_bw() * app.connections(p) as f64;
        // The long-run load must also fit (burst commitments overlap in
        // time only during bursts, but sustained load cannot exceed what
        // is free).
        if mean_load > net.available() + 1e-9 {
            continue;
        }
        let cand = Negotiation {
            p,
            burst_bw: bw,
            timing,
            mean_load,
        };
        if best
            .as_ref()
            .is_none_or(|b| timing.t_interval < b.timing.t_interval)
        {
            best = Some(cand);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_fx::Pattern;
    use proptest::prelude::*;

    #[test]
    fn compute_bound_app_wants_many_processors() {
        // Huge work, tiny messages: t_bi is dominated by W/P → pick max P.
        let app = AppDescriptor::scalable(Pattern::Shift { k: 1 }, 1000.0, |_| 10_000);
        let net = QosNetwork::ethernet_10mbps();
        let n = negotiate(&app, &net, 1..=16).unwrap();
        assert_eq!(n.p, 16);
    }

    #[test]
    fn communication_bound_all_to_all_prefers_fewer_processors() {
        // Negligible work, constant total data volume: every added
        // processor multiplies concurrent connections (P per round for
        // all-to-all) while per-connection data shrinks only as the
        // round count grows; with per-connection burst N(P) chosen so
        // total bytes stay constant, t_bi rises with P.
        let total_bytes = 8_000_000u64;
        let app = AppDescriptor::scalable(Pattern::AllToAll, 0.1, move |p| {
            total_bytes / u64::from(p * (p - 1).max(1))
        });
        let net = QosNetwork::ethernet_10mbps();
        let n = negotiate(&app, &net, 2..=16).unwrap();
        // All-to-all performs P−1 rounds; our t_bi models one round's
        // burst, so per-round time is N/B with B = capacity/P. Burst
        // bytes fall as 1/P² while B falls as 1/P → larger P still wins
        // on the per-round metric unless work is zero... verify the
        // negotiation at least returns a valid admissible point and that
        // t_interval is the minimum over the candidates.
        for p in 2..=16u32 {
            let bw = net.offer(app.concurrent_connections(p));
            if let Some(bw) = bw {
                let t = app.timing(p, bw);
                let load = t.mean_bw() * app.connections(p) as f64;
                if load <= net.available() + 1e-9 {
                    assert!(
                        n.timing.t_interval <= t.t_interval + 1e-12,
                        "negotiated P={} not optimal vs P={p}",
                        n.p
                    );
                }
            }
        }
    }

    #[test]
    fn crossover_exists_for_balanced_workload() {
        // Work and communication balanced so the optimum is interior:
        // W = 8 s total; message per connection constant 1 MB (neighbor
        // pattern → concurrent connections grow with P).
        let app = AppDescriptor::scalable(Pattern::Neighbor, 8.0, |_| 1_000_000);
        let net = QosNetwork::ethernet_10mbps();
        let n = negotiate(&app, &net, 1..=32).unwrap();
        assert!(
            n.p > 1 && n.p < 32,
            "expected interior optimum, got P={}",
            n.p
        );
    }

    #[test]
    fn congested_network_shifts_optimum_down() {
        let mk = || AppDescriptor::scalable(Pattern::Neighbor, 8.0, |_| 1_000_000);
        let quiet = QosNetwork::ethernet_10mbps();
        let mut busy = QosNetwork::ethernet_10mbps();
        busy.commit(1_000_000.0).unwrap();
        let n_quiet = negotiate(&mk(), &quiet, 1..=32).unwrap();
        let n_busy = negotiate(&mk(), &busy, 1..=32).unwrap();
        assert!(
            n_busy.p <= n_quiet.p,
            "busy network must not recommend more processors ({} vs {})",
            n_busy.p,
            n_quiet.p
        );
        assert!(n_busy.timing.t_interval > n_quiet.timing.t_interval);
    }

    #[test]
    fn saturated_network_rejects() {
        let app = AppDescriptor::scalable(Pattern::AllToAll, 1.0, |_| 1_000_000);
        let mut net = QosNetwork::ethernet_10mbps().with_min_burst_bw(10_000.0);
        net.commit(1_250_000.0).unwrap();
        assert!(negotiate(&app, &net, 1..=16).is_none());
    }

    proptest! {
        #[test]
        fn negotiation_result_is_admissible_and_optimal(
            work_ds in 1u32..100,
            msg_kb in 1u64..2000,
            committed_frac in 0.0f64..0.9,
        ) {
            let work = f64::from(work_ds) * 0.1;
            let app = AppDescriptor::scalable(
                Pattern::Shift { k: 1 },
                work,
                move |_| msg_kb * 1024,
            );
            let mut net = QosNetwork::ethernet_10mbps();
            net.commit(1_250_000.0 * committed_frac).unwrap();
            if let Some(n) = negotiate(&app, &net, 1..=16) {
                prop_assert!(n.mean_load <= net.available() + 1e-6);
                prop_assert!(n.burst_bw > 0.0);
                // Optimality over the candidate set.
                for p in 1..=16u32 {
                    if let Some(bw) = net.offer(app.concurrent_connections(p)) {
                        let t = app.timing(p, bw);
                        let load = t.mean_bw() * app.connections(p) as f64;
                        if load <= net.available() + 1e-9 {
                            prop_assert!(n.timing.t_interval <= t.t_interval + 1e-9);
                        }
                    }
                }
            }
        }
    }
}
