//! # fxnet-qos
//!
//! The paper's QoS negotiation model (§7.3).
//!
//! Unlike a variable-bit-rate video source — known period, variable burst
//! size — a compiler-parallelized program has a burst size known at
//! compile time but a burst *period* that depends on the number of
//! processors `P` and on the bandwidth `B` the network can provide during
//! the burst:
//!
//! ```text
//! t_b  = N / B                 (burst length)
//! t_bi = W / P + N / B         (burst interval)
//! ```
//!
//! The burst interval both constrains and is constrained by what the
//! network can commit to — so the paper proposes that an SPMD program
//! characterize its traffic as `[l(·), b(·), c]`, where `c` is the
//! communication pattern, `l` maps `P` to local computation time, and `b`
//! maps `P` to per-connection burst size; the network is then allowed to
//! answer with the `P` the program should run on. This crate implements
//! that descriptor, the burst algebra, a capacity-sharing network model,
//! and the negotiation returning the optimal processor count.

//! ```
//! use fxnet_fx::Pattern;
//! use fxnet_qos::{negotiate, AppDescriptor, QosNetwork};
//!
//! // 40 s of total work, 1 MB bursts on a shift pattern.
//! let app = AppDescriptor::scalable(Pattern::Shift { k: 1 }, 40.0, |_| 1_000_000);
//! let net = QosNetwork::ethernet_10mbps();
//! let deal = negotiate(&app, &net, 1..=16).expect("admissible");
//! assert!(deal.p >= 1 && deal.p <= 16);
//! assert!(deal.timing.t_interval > 0.0);
//! ```

pub mod descriptor;
pub mod estimate;
pub mod fabric;
pub mod negotiate;
pub mod network;

pub use descriptor::{AppDescriptor, BurstTiming, ContractTerms};
pub use estimate::{estimate_descriptor, TrafficEstimate};
pub use fabric::FabricQos;
pub use negotiate::{negotiate, Negotiation};
pub use network::QosNetwork;
