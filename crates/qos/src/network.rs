//! The network side of the negotiation: a shared capacity from which
//! per-connection burst bandwidths are committed.

/// A network offering QoS commitments from a fixed aggregate capacity
/// (the paper's Ethernet: 1.25 MB/s shared by every connection).
#[derive(Debug, Clone)]
pub struct QosNetwork {
    /// Total capacity, bytes/second.
    capacity: f64,
    /// Capacity already committed to other applications, bytes/second.
    committed: f64,
    /// Floor below which a per-connection commitment is refused
    /// (protects against absurdly long bursts).
    min_burst_bw: f64,
}

impl QosNetwork {
    /// A network with `capacity` bytes/s total.
    pub fn new(capacity: f64) -> QosNetwork {
        assert!(capacity > 0.0);
        QosNetwork {
            capacity,
            committed: 0.0,
            min_burst_bw: 1.0,
        }
    }

    /// The paper's testbed: a 10 Mb/s shared Ethernet.
    pub fn ethernet_10mbps() -> QosNetwork {
        QosNetwork::of_rate(fxnet_sim::RATE_10M)
    }

    /// A network whose capacity is the raw byte rate of a `bps` link.
    pub fn of_rate(bps: u64) -> QosNetwork {
        QosNetwork::new(fxnet_sim::rates::bytes_per_sec(bps))
    }

    /// Set the minimum per-connection commitment.
    pub fn with_min_burst_bw(mut self, bw: f64) -> QosNetwork {
        self.min_burst_bw = bw;
        self
    }

    /// Total capacity, bytes/s.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The minimum per-connection commitment the network will make.
    pub fn min_burst_bw(&self) -> f64 {
        self.min_burst_bw
    }

    /// Capacity currently committed, bytes/s.
    pub fn committed(&self) -> f64 {
        self.committed
    }

    /// Capacity not yet committed.
    pub fn available(&self) -> f64 {
        (self.capacity - self.committed).max(0.0)
    }

    /// The burst bandwidth the network can offer *each* of `concurrent`
    /// simultaneously active connections, or `None` if it falls below the
    /// floor.
    pub fn offer(&self, concurrent: usize) -> Option<f64> {
        if concurrent == 0 {
            return None;
        }
        let per_conn = self.available() / concurrent as f64;
        (per_conn >= self.min_burst_bw).then_some(per_conn)
    }

    /// Commit `mean_bw` bytes/s of long-run capacity (burst bandwidth ×
    /// duty cycle summed over connections). Fails if it exceeds what is
    /// available.
    pub fn commit(&mut self, mean_bw: f64) -> Result<(), Overcommit> {
        if mean_bw > self.available() + 1e-9 {
            return Err(Overcommit {
                requested: mean_bw,
                available: self.available(),
            });
        }
        self.committed += mean_bw;
        Ok(())
    }

    /// Release previously committed capacity.
    pub fn release(&mut self, mean_bw: f64) {
        self.committed = (self.committed - mean_bw).max(0.0);
    }
}

/// Admission failure: the request exceeds the remaining capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overcommit {
    pub requested: f64,
    pub available: f64,
}

impl std::fmt::Display for Overcommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested {:.0} B/s but only {:.0} B/s available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for Overcommit {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_splits_capacity_over_concurrent_connections() {
        let net = QosNetwork::ethernet_10mbps();
        assert_eq!(net.offer(4), Some(312_500.0));
        assert_eq!(net.offer(1), Some(1_250_000.0));
        assert_eq!(net.offer(0), None);
    }

    #[test]
    fn commitments_reduce_offers() {
        let mut net = QosNetwork::ethernet_10mbps();
        net.commit(1_000_000.0).unwrap();
        assert_eq!(net.offer(1), Some(250_000.0));
        net.release(500_000.0);
        assert_eq!(net.offer(1), Some(750_000.0));
    }

    #[test]
    fn overcommit_rejected() {
        let mut net = QosNetwork::new(100.0);
        assert!(net.commit(50.0).is_ok());
        let err = net.commit(60.0).unwrap_err();
        assert_eq!(err.available, 50.0);
        assert_eq!(err.requested, 60.0);
        assert!(err.to_string().contains("available"));
    }

    #[test]
    fn floor_refuses_tiny_offers() {
        let net = QosNetwork::new(1000.0).with_min_burst_bw(100.0);
        assert!(net.offer(5).is_some());
        assert!(net.offer(11).is_none());
    }

    #[test]
    fn release_never_goes_negative() {
        let mut net = QosNetwork::new(100.0);
        net.release(50.0);
        assert_eq!(net.available(), 100.0);
    }

    #[test]
    fn accessors_track_the_ledger() {
        let mut net = QosNetwork::new(1000.0);
        assert_eq!(net.capacity(), 1000.0);
        assert_eq!(net.committed(), 0.0);
        net.commit(300.0).unwrap();
        assert_eq!(net.committed(), 300.0);
        assert_eq!(net.available(), 700.0);
    }

    use proptest::prelude::*;

    proptest! {
        /// Any interleaving of admissions and releases keeps the residual
        /// inside [0, capacity], and a load admitted once can always be
        /// re-admitted after it is released.
        #[test]
        fn admit_release_sequences_keep_residual_bounded(
            ops in proptest::collection::vec((0u8..2u8, 1u32..40u32), 1..30)
        ) {
            let capacity = 1_250_000.0;
            let mut net = QosNetwork::new(capacity);
            let mut held: Vec<f64> = Vec::new();
            for (kind, amt) in ops {
                let load = f64::from(amt) * 20_000.0;
                if kind == 0 {
                    if net.commit(load).is_ok() {
                        held.push(load);
                    }
                } else if let Some(l) = held.pop() {
                    net.release(l);
                }
                prop_assert!(net.available() >= 0.0);
                prop_assert!(net.available() <= capacity + 1e-9);
                prop_assert!(net.committed() >= 0.0);
            }
            // Admit-after-release of the same descriptor succeeds: the
            // freed capacity is exactly what the load needs.
            if let Some(l) = held.pop() {
                net.release(l);
                prop_assert!(net.commit(l).is_ok());
            }
        }
    }
}
