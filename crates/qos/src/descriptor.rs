//! Application traffic descriptors `[l(P), b(P), c]` and the burst algebra.

use fxnet_fx::Pattern;

/// Timing of one compute/communicate cycle at a given `(P, B)` operating
/// point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BurstTiming {
    /// Burst length `t_b = N / B`, seconds.
    pub t_burst: f64,
    /// Burst interval `t_bi = W/P + N/B`, seconds — the program's period.
    pub t_interval: f64,
    /// The per-connection burst bandwidth used, bytes/s.
    pub burst_bw: f64,
}

impl BurstTiming {
    /// Fraction of time the program occupies its connections.
    pub fn duty_cycle(&self) -> f64 {
        if self.t_interval == 0.0 {
            0.0
        } else {
            self.t_burst / self.t_interval
        }
    }

    /// Mean bandwidth per connection (burst bandwidth × duty cycle).
    pub fn mean_bw(&self) -> f64 {
        self.burst_bw * self.duty_cycle()
    }
}

/// The plain-number form of an admitted contract: everything a runtime
/// monitor needs to check a tenant's observed traffic against what it
/// negotiated, with the closures of [`AppDescriptor`] evaluated at the
/// admitted processor count. Serializable so it can ride along in event
/// logs and metrics artifacts.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ContractTerms {
    /// Admitted processor count.
    pub p: u32,
    /// Total simplex connections `c(P)` the pattern uses.
    pub connections: u32,
    /// Maximum connections active in one schedule round.
    pub concurrent_connections: u32,
    /// Claimed per-connection burst size `b(P)`, bytes.
    pub burst_bytes: u64,
    /// Claimed local computation time `l(P)`, seconds.
    pub local_s: f64,
    /// Committed per-connection burst bandwidth, bytes/s.
    pub burst_bw: f64,
    /// Burst length `t_b` at the committed bandwidth, seconds.
    pub t_burst: f64,
    /// Burst interval `t_bi` at the committed bandwidth, seconds.
    pub t_interval: f64,
    /// Long-run aggregate load across all connections, bytes/s.
    pub mean_load: f64,
}

impl ContractTerms {
    /// Admitted-contract headroom against a measured long-run bandwidth
    /// (bytes/s): the fraction of the admitted mean load still unused.
    /// Positive means the tenant ran under its contract, negative means
    /// it over-drove; the fabric weather map gauges this per tenant next
    /// to link utilization so over-driving and fabric congestion can be
    /// told apart at a glance. Zero admitted load yields zero headroom.
    pub fn headroom(&self, measured_mean_bw: f64) -> f64 {
        if self.mean_load <= 0.0 {
            0.0
        } else {
            1.0 - measured_mean_bw / self.mean_load
        }
    }
}

/// The `[l(), b(), c]` characterization an SPMD program hands the
/// network: its communication pattern, its local-computation time as a
/// function of the processor count, and its per-connection burst size as
/// a function of the processor count — both known at compile time for Fx
/// programs.
pub struct AppDescriptor {
    /// The communication pattern `c`.
    pub pattern: Pattern,
    /// `l(P)`: local computation time per processor per cycle, seconds.
    pub local: Box<dyn Fn(u32) -> f64 + Send + Sync>,
    /// `b(P)`: burst size per connection, bytes.
    pub burst: Box<dyn Fn(u32) -> u64 + Send + Sync>,
}

impl AppDescriptor {
    /// A perfectly scalable program: total work `w_s` seconds divided
    /// over `P` processors, message of `bytes(P)` per connection.
    pub fn scalable(
        pattern: Pattern,
        total_work_s: f64,
        burst: impl Fn(u32) -> u64 + Send + Sync + 'static,
    ) -> AppDescriptor {
        AppDescriptor {
            pattern,
            local: Box::new(move |p| total_work_s / f64::from(p)),
            burst: Box::new(burst),
        }
    }

    /// The burst timing at `p` processors with per-connection burst
    /// bandwidth `b` bytes/s.
    pub fn timing(&self, p: u32, bw: f64) -> BurstTiming {
        assert!(p >= 1 && bw > 0.0);
        let n = (self.burst)(p) as f64;
        let t_burst = n / bw;
        BurstTiming {
            t_burst,
            t_interval: (self.local)(p) + t_burst,
            burst_bw: bw,
        }
    }

    /// Simplex connections the program uses at `p` processors — the
    /// pattern-dependent count of §7.1.
    pub fn connections(&self, p: u32) -> usize {
        self.pattern.connection_count(p)
    }

    /// Maximum connections active concurrently in one schedule round —
    /// what actually contends for capacity during a burst.
    pub fn concurrent_connections(&self, p: u32) -> usize {
        self.pattern
            .schedule(p)
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }

    /// Evaluate the descriptor's closures at the operating point of an
    /// accepted negotiation, producing the serializable contract a
    /// runtime monitor checks observed traffic against.
    pub fn terms(&self, neg: &crate::negotiate::Negotiation) -> ContractTerms {
        ContractTerms {
            p: neg.p,
            connections: self.connections(neg.p) as u32,
            concurrent_connections: self.concurrent_connections(neg.p) as u32,
            burst_bytes: (self.burst)(neg.p),
            local_s: (self.local)(neg.p),
            burst_bw: neg.burst_bw,
            t_burst: neg.timing.t_burst,
            t_interval: neg.timing.t_interval,
            mean_load: neg.mean_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift_app() -> AppDescriptor {
        // §7.3's example: a shift pattern, W seconds of work, constant
        // per-connection message of 1 MB.
        AppDescriptor::scalable(Pattern::Shift { k: 1 }, 40.0, |_| 1_000_000)
    }

    #[test]
    fn headroom_measures_contract_slack() {
        let terms = ContractTerms {
            p: 4,
            connections: 4,
            concurrent_connections: 4,
            burst_bytes: 1_000_000,
            local_s: 1.0,
            burst_bw: 1_000_000.0,
            t_burst: 1.0,
            t_interval: 2.0,
            mean_load: 100_000.0,
        };
        assert!((terms.headroom(25_000.0) - 0.75).abs() < 1e-12);
        assert_eq!(terms.headroom(100_000.0), 0.0);
        assert!(terms.headroom(150_000.0) < 0.0, "over-driving is negative");
        let zero = ContractTerms {
            mean_load: 0.0,
            ..terms
        };
        assert_eq!(zero.headroom(1.0), 0.0);
    }

    #[test]
    fn burst_algebra_matches_formulae() {
        let app = shift_app();
        let t = app.timing(4, 500_000.0);
        assert!((t.t_burst - 2.0).abs() < 1e-12); // 1 MB / 500 KB/s
        assert!((t.t_interval - (10.0 + 2.0)).abs() < 1e-12); // 40/4 + 2
        assert!((t.duty_cycle() - 2.0 / 12.0).abs() < 1e-12);
        assert!((t.mean_bw() - 500_000.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn more_processors_shrink_compute_share() {
        let app = shift_app();
        let t4 = app.timing(4, 500_000.0);
        let t8 = app.timing(8, 500_000.0);
        assert!(t8.t_interval < t4.t_interval);
    }

    #[test]
    fn lower_bandwidth_stretches_interval() {
        let app = shift_app();
        let fast = app.timing(4, 1_000_000.0);
        let slow = app.timing(4, 100_000.0);
        assert!(slow.t_interval > fast.t_interval);
        assert_eq!(
            slow.t_interval - slow.t_burst,
            fast.t_interval - fast.t_burst
        );
    }

    #[test]
    fn connection_counts_follow_pattern() {
        let a2a = AppDescriptor::scalable(Pattern::AllToAll, 1.0, |_| 1);
        assert_eq!(a2a.connections(4), 12);
        // All-to-all shift rounds have P concurrent transfers.
        assert_eq!(a2a.concurrent_connections(4), 4);
        let nb = AppDescriptor::scalable(Pattern::Neighbor, 1.0, |_| 1);
        assert_eq!(nb.connections(4), 6);
        assert_eq!(nb.concurrent_connections(4), 6);
    }

    #[test]
    fn terms_evaluate_closures_at_the_negotiated_point() {
        let app = shift_app();
        let net = crate::network::QosNetwork::ethernet_10mbps();
        let n = crate::negotiate::negotiate(&app, &net, 1..=8).unwrap();
        let t = app.terms(&n);
        assert_eq!(t.p, n.p);
        assert_eq!(t.burst_bytes, 1_000_000);
        assert!((t.local_s - 40.0 / f64::from(n.p)).abs() < 1e-12);
        assert_eq!(t.connections as usize, app.connections(n.p));
        assert_eq!(
            t.concurrent_connections as usize,
            app.concurrent_connections(n.p)
        );
        assert!((t.mean_load - n.mean_load).abs() < 1e-12);
        assert!((t.t_burst - n.timing.t_burst).abs() == 0.0);
    }

    #[test]
    fn burst_size_can_depend_on_p() {
        // 2DFFT-like: per-connection message shrinks as (N/P)².
        let app = AppDescriptor::scalable(Pattern::AllToAll, 10.0, |p| {
            let n = 512u64;
            (n / u64::from(p)).pow(2) * 8
        });
        assert_eq!((app.burst)(4), 128 * 128 * 8);
        assert_eq!((app.burst)(8), 64 * 64 * 8);
    }
}
