//! Deriving a `[l(P), b(P), c]` descriptor from a measured trace.
//!
//! The paper assumes the Fx compiler can emit the characterization at
//! compile time. When it cannot (a binary-only program, or a run of an
//! already-deployed code), the same parameters are recoverable from one
//! measured trace at a known `P`: the burst profile gives the burst size
//! `N` and the burst interval `t_bi`; subtracting the observed burst
//! length `t_b` recovers the local computation time `l(P) = t_bi − t_b`.
//! Scaling assumptions (embarrassingly parallel work, fixed or
//! `1/P`-scaled messages) then extend the point estimate to a full
//! descriptor the network can negotiate against.

use crate::descriptor::AppDescriptor;
use fxnet_fx::Pattern;
use fxnet_sim::{FrameRecord, SimTime};
use fxnet_trace::BurstProfile;

/// Point estimates extracted from one measured run at a known `P`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrafficEstimate {
    /// Processor count of the measured run.
    pub p: u32,
    /// Per-cycle aggregate burst size, bytes.
    pub burst_bytes: f64,
    /// Mean burst length `t_b`, seconds.
    pub t_burst: f64,
    /// Mean burst interval `t_bi`, seconds.
    pub t_interval: f64,
    /// Recovered local computation time `l(P) = t_bi − t_b`, seconds.
    pub local_s: f64,
    /// Coefficient of variation of burst sizes — near zero for the
    /// constant-burst programs this model is valid for.
    pub burst_size_cv: f64,
}

/// How the program's message sizes scale with the processor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BurstScaling {
    /// Per-connection bursts independent of `P` (SOR's O(N) rows).
    Constant,
    /// Total volume fixed; per-connection bursts shrink with the
    /// connection count (2DFFT's O((N/P)²) blocks).
    FixedTotal,
}

/// Extract point estimates from a trace measured at `p` processors,
/// segmenting bursts separated by at least `gap`. Returns `None` when the
/// trace has fewer than two bursts (no interval to measure).
pub fn estimate_traffic(trace: &[FrameRecord], p: u32, gap: SimTime) -> Option<TrafficEstimate> {
    let profile = BurstProfile::of(trace, gap)?;
    let intervals = profile.intervals?;
    let bursts = fxnet_trace::detect_bursts(trace, gap);
    let t_burst = bursts.iter().map(|b| b.duration()).sum::<f64>() / bursts.len() as f64;
    Some(TrafficEstimate {
        p,
        burst_bytes: profile.sizes.avg,
        t_burst,
        t_interval: intervals.avg,
        local_s: (intervals.avg - t_burst).max(0.0),
        burst_size_cv: profile.size_cv(),
    })
}

/// Build a negotiable [`AppDescriptor`] from a measured estimate:
/// `l(P)` assumes perfectly divisible work (`l(P) = l(p₀)·p₀/P`), and
/// `b(P)` follows the chosen scaling. The aggregate burst is split over
/// the connections the pattern uses at the measured `P`.
pub fn estimate_descriptor(
    est: &TrafficEstimate,
    pattern: Pattern,
    scaling: BurstScaling,
) -> AppDescriptor {
    let conns_at_p0 = pattern.connection_count(est.p).max(1) as f64;
    let per_conn_at_p0 = est.burst_bytes / conns_at_p0;
    let total = est.burst_bytes;
    let p0 = f64::from(est.p);
    let local_p0 = est.local_s;
    let pattern_for_burst = pattern.clone();
    AppDescriptor {
        pattern,
        local: Box::new(move |p| local_p0 * p0 / f64::from(p)),
        burst: Box::new(move |p| match scaling {
            BurstScaling::Constant => per_conn_at_p0 as u64,
            BurstScaling::FixedTotal => {
                let conns = pattern_for_burst.connection_count(p).max(1) as f64;
                (total / conns) as u64
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::negotiate::negotiate;
    use crate::network::QosNetwork;
    use fxnet_sim::{Frame, FrameKind, HostId};

    /// A synthetic shift-pattern trace: bursts of `frames` full packets
    /// every `period_ms`, alternating over the ring connections.
    fn shift_trace(
        cycles: usize,
        frames: usize,
        period_ms: u64,
        burst_ms: u64,
    ) -> Vec<FrameRecord> {
        let mut out = Vec::new();
        for c in 0..cycles {
            for f in 0..frames {
                let src = (f % 4) as u32;
                let t = SimTime::from_micros(
                    c as u64 * period_ms * 1000 + f as u64 * burst_ms * 1000 / frames as u64,
                );
                let frame =
                    Frame::tcp(HostId(src), HostId((src + 1) % 4), FrameKind::Data, 1460, 0);
                out.push(FrameRecord::capture(t, &frame));
            }
        }
        out
    }

    #[test]
    fn estimates_recover_synthetic_parameters() {
        // 800 ms period, 200 ms bursts of 100 full frames.
        let tr = shift_trace(10, 100, 800, 200);
        let est = estimate_traffic(&tr, 4, SimTime::from_millis(100)).unwrap();
        assert_eq!(est.p, 4);
        assert!(
            (est.t_interval - 0.8).abs() < 0.05,
            "t_bi {}",
            est.t_interval
        );
        assert!((est.t_burst - 0.2).abs() < 0.05, "t_b {}", est.t_burst);
        assert!((est.local_s - 0.6).abs() < 0.08, "l {}", est.local_s);
        assert!((est.burst_bytes - 151_800.0).abs() < 1.0);
        assert!(est.burst_size_cv < 0.01, "constant bursts");
    }

    #[test]
    fn too_few_bursts_is_none() {
        let tr = shift_trace(1, 10, 800, 200);
        assert!(estimate_traffic(&tr, 4, SimTime::from_millis(100)).is_none());
        assert!(estimate_traffic(&[], 4, SimTime::from_millis(100)).is_none());
    }

    #[test]
    fn descriptor_reproduces_measured_point() {
        let tr = shift_trace(10, 100, 800, 200);
        let est = estimate_traffic(&tr, 4, SimTime::from_millis(100)).unwrap();
        let app = estimate_descriptor(&est, Pattern::Shift { k: 1 }, BurstScaling::Constant);
        // At the measured P, the descriptor's l matches the estimate.
        assert!(((app.local)(4) - est.local_s).abs() < 1e-9);
        // Work scales 1/P.
        assert!(((app.local)(8) - est.local_s / 2.0).abs() < 1e-9);
        // Constant scaling: per-connection burst independent of P.
        assert_eq!((app.burst)(4), (app.burst)(16));
    }

    #[test]
    fn fixed_total_scaling_shrinks_bursts_with_connections() {
        let tr = shift_trace(10, 100, 800, 200);
        let est = estimate_traffic(&tr, 4, SimTime::from_millis(100)).unwrap();
        let app = estimate_descriptor(&est, Pattern::AllToAll, BurstScaling::FixedTotal);
        assert!((app.burst)(8) < (app.burst)(4));
    }

    #[test]
    fn measured_descriptor_is_negotiable() {
        let tr = shift_trace(10, 100, 800, 200);
        let est = estimate_traffic(&tr, 4, SimTime::from_millis(100)).unwrap();
        let app = estimate_descriptor(&est, Pattern::Shift { k: 1 }, BurstScaling::Constant);
        let deal = negotiate(&app, &QosNetwork::ethernet_10mbps(), 1..=16).expect("admissible");
        assert!(deal.p >= 1);
        assert!(deal.timing.t_interval > 0.0);
    }
}
