//! Property tests for the composite fabric's cross-topology invariants:
//! over arbitrary offered loads on the four canonical topologies, per-hop
//! `FrameMeta` accounting sums exactly to end-to-end elapsed time, every
//! switch and router conserves frames and bytes, protocol tokens survive
//! the transit-slab swap, and runs are a pure function of the seed.

use fxnet_sim::{
    EtherConfig, Frame, FrameKind, HostId, NicId, SimTime, RATE_100M, RATE_10M, RATE_1G,
};
use fxnet_topo::{NodeKind, TopologySpec};
use proptest::prelude::*;
use std::collections::HashMap;

const HOSTS: u32 = 6;

/// One of the four canonical sweep topologies at one of the three sweep
/// rates, by index.
fn spec_for(topo: usize, rate: usize) -> TopologySpec {
    let rate = [RATE_10M, RATE_100M, RATE_1G][rate % 3];
    TopologySpec::sweep_set(HOSTS, rate).swap_remove(topo % 4)
}

/// An offered load: `(src, dst offset, payload, enqueue time µs)` per
/// frame. The destination offset is nonzero so no frame is self-addressed.
type Load = Vec<(u32, u32, u32, u64)>;

fn drive(spec: TopologySpec, seed: u64, load: &Load) -> fxnet_topo::CompositeFabric {
    let mut fab = fxnet_topo::CompositeFabric::new(spec, &EtherConfig::default(), seed);
    for (i, &(src, off, payload, at)) in load.iter().enumerate() {
        let src = src % HOSTS;
        let dst = (src + 1 + off % (HOSTS - 1)) % HOSTS;
        let f = Frame::tcp(
            HostId(src),
            HostId(dst),
            FrameKind::Data,
            payload,
            i as u64 + 1,
        );
        fab.enqueue(NicId(src), f, SimTime::from_micros(at));
    }
    fab
}

proptest! {
    /// `queue_ns + backoff_ns + tx_ns` equals the frame's end-to-end
    /// elapsed time to the nanosecond, on every topology, and every
    /// enqueued token comes back exactly once (delivered or errored).
    #[test]
    fn per_hop_meta_sums_to_end_to_end_elapsed(
        topo in 0usize..4,
        rate in 0usize..3,
        load in prop::collection::vec((0u32..HOSTS, 0u32..8, 0u32..1400, 0u64..150_000), 1..48),
    ) {
        let mut fab = drive(spec_for(topo, rate), 17, &load);
        let entered: HashMap<u64, SimTime> = load
            .iter()
            .enumerate()
            .map(|(i, &(_, _, _, at))| (i as u64 + 1, SimTime::from_micros(at)))
            .collect();
        let out = fab.run_to_idle();
        prop_assert!(fab.idle());
        let mut seen: Vec<u64> = out.iter().map(|d| d.frame.token).collect();
        for d in &out {
            let e = entered[&d.frame.token];
            prop_assert_eq!(
                d.meta.queue_ns + d.meta.backoff_ns + d.meta.tx_ns,
                (d.time - e).as_nanos(),
                "token {}", d.frame.token
            );
        }
        seen.extend(fab.errors().iter().map(|(_, f, _)| f.token));
        seen.sort_unstable();
        let expected: Vec<u64> = (1..=load.len() as u64).collect();
        prop_assert_eq!(seen, expected, "every token exactly once");
    }

    /// Once drained, every switch and router node conserves frames and
    /// bytes exactly: what finished arriving equals what was handed on.
    #[test]
    fn switches_and_routers_conserve_frames_and_bytes(
        topo in 0usize..4,
        rate in 0usize..3,
        load in prop::collection::vec((0u32..HOSTS, 0u32..8, 0u32..1400, 0u64..150_000), 1..48),
    ) {
        let spec = spec_for(topo, rate);
        let kinds: Vec<NodeKind> = spec.nodes.iter().map(|n| n.kind).collect();
        let label = spec.label();
        let mut fab = drive(spec, 23, &load);
        let _ = fab.run_to_idle();
        prop_assert!(fab.idle());
        for (n, flow) in fab.flows().iter().enumerate() {
            if kinds[n] != NodeKind::Segment {
                prop_assert_eq!(flow.frames_in, flow.frames_out, "{} node {}", label, n);
                prop_assert_eq!(flow.bytes_in, flow.bytes_out, "{} node {}", label, n);
            }
        }
    }

    /// Deliveries and the promiscuous trace are a pure function of
    /// (spec, seed, load): the determinism `--jobs` fan-out relies on.
    #[test]
    fn runs_are_a_pure_function_of_the_seed(
        topo in 0usize..4,
        seed in 0u64..1_000,
        load in prop::collection::vec((0u32..HOSTS, 0u32..8, 0u32..1400, 0u64..150_000), 1..32),
    ) {
        let run = |seed| {
            let mut fab = drive(spec_for(topo, 0), seed, &load);
            fab.set_promiscuous(true);
            let out = fab.run_to_idle();
            (out, fab.take_trace())
        };
        let (a_out, a_trace) = run(seed);
        let (b_out, b_trace) = run(seed);
        prop_assert_eq!(a_out, b_out);
        prop_assert_eq!(a_trace, b_trace);
    }
}
