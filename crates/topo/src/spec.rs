//! Declarative topology graphs.
//!
//! A [`TopologySpec`] is a plain data description of a LAN fabric: nodes
//! (shared-bus collision domains, store-and-forward switches, routers),
//! trunk links between nodes, and the attachment of every host to one
//! node. The spec is *compiled* by [`crate::CompositeFabric`] into a
//! running fabric; everything here is pure graph bookkeeping so it can be
//! validated, serialized into experiment artifacts, and unit-tested
//! without any simulation.

use fxnet_sim::{rates, SimTime};
use serde::{Deserialize, Serialize};

/// What a topology node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A shared CSMA/CD collision domain (compiled to an `EtherBus`).
    /// Hosts on it contend for the medium; a bridge NIC per trunk
    /// interface carries off-segment frames.
    Segment,
    /// A store-and-forward switch: every attached host gets a dedicated
    /// full-duplex port at the node rate.
    Switch,
    /// A router: switch discipline with a larger per-hop forwarding
    /// latency, marking a subnet boundary.
    Router,
}

/// One node of the graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Display name ("seg0", "sw1", "rt0", ...).
    pub name: String,
    pub kind: NodeKind,
    /// Access rate in bits/s: the bus signalling rate of a segment, or
    /// the per-host port rate of a switch/router.
    pub rate_bps: u64,
}

/// A trunk (inter-node) link: full-duplex, one independent queue per
/// direction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Trunk {
    /// Endpoint node indices.
    pub a: usize,
    pub b: usize,
    /// Link rate in bits/s.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimTime,
}

/// A complete declarative topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Stable identifier for artifacts and ledgers ("single", "trunk2",
    /// "tree2", "routed2", or anything a custom builder chooses).
    pub id: String,
    pub nodes: Vec<Node>,
    pub trunks: Vec<Trunk>,
    /// `attachments[h]` is the node host `h` lives on; its length is the
    /// LAN's host count.
    pub attachments: Vec<usize>,
    /// Store-and-forward latency per switch (and per segment bridge) hop.
    pub switch_latency: SimTime,
    /// Store-and-forward latency per router hop.
    pub router_latency: SimTime,
}

/// Default one-way trunk propagation delay (a few hundred meters of
/// cable plus PHY latency).
pub const DEFAULT_PROP_DELAY: SimTime = SimTime::from_micros(1);

/// Default switch forwarding latency — matches
/// [`fxnet_sim::SwitchConfig::default`]'s `forward_latency`.
pub const DEFAULT_SWITCH_LATENCY: SimTime = SimTime::from_micros(10);

/// Default router forwarding latency (software forwarding path).
pub const DEFAULT_ROUTER_LATENCY: SimTime = SimTime::from_micros(50);

impl TopologySpec {
    /// The paper's fabric: every host on one shared collision domain at
    /// `rate_bps`. Compiles to exactly the legacy `EtherBus` path.
    pub fn single_segment(hosts: u32, rate_bps: u64) -> TopologySpec {
        TopologySpec {
            id: "single".to_string(),
            nodes: vec![Node {
                name: "seg0".to_string(),
                kind: NodeKind::Segment,
                rate_bps,
            }],
            trunks: Vec::new(),
            attachments: vec![0; hosts as usize],
            switch_latency: DEFAULT_SWITCH_LATENCY,
            router_latency: DEFAULT_ROUTER_LATENCY,
        }
    }

    /// Two switches joined by one trunk, hosts split evenly (first half
    /// on `sw0`). Port and trunk rates are both `rate_bps`, so the trunk
    /// is oversubscribed whenever more than one cross-switch transfer is
    /// active.
    pub fn two_switches_trunk(hosts: u32, rate_bps: u64) -> TopologySpec {
        let sw = |i: usize| Node {
            name: format!("sw{i}"),
            kind: NodeKind::Switch,
            rate_bps,
        };
        TopologySpec {
            id: "trunk2".to_string(),
            nodes: vec![sw(0), sw(1)],
            trunks: vec![Trunk {
                a: 0,
                b: 1,
                rate_bps,
                prop_delay: DEFAULT_PROP_DELAY,
            }],
            attachments: (0..hosts)
                .map(|h| usize::from(h >= hosts.div_ceil(2)))
                .collect(),
            switch_latency: DEFAULT_SWITCH_LATENCY,
            router_latency: DEFAULT_ROUTER_LATENCY,
        }
    }

    /// A two-level tree: two leaf switches with the hosts, one root
    /// switch with no hosts, uplinks at `rate_bps`. Cross-leaf traffic
    /// crosses two trunks.
    pub fn two_level_tree(hosts: u32, rate_bps: u64) -> TopologySpec {
        let sw = |name: &str| Node {
            name: name.to_string(),
            kind: NodeKind::Switch,
            rate_bps,
        };
        let up = |leaf: usize| Trunk {
            a: leaf,
            b: 2,
            rate_bps,
            prop_delay: DEFAULT_PROP_DELAY,
        };
        TopologySpec {
            id: "tree2".to_string(),
            nodes: vec![sw("leaf0"), sw("leaf1"), sw("root")],
            trunks: vec![up(0), up(1)],
            attachments: (0..hosts)
                .map(|h| usize::from(h >= hosts.div_ceil(2)))
                .collect(),
            switch_latency: DEFAULT_SWITCH_LATENCY,
            router_latency: DEFAULT_ROUTER_LATENCY,
        }
    }

    /// Two shared segments joined through a router: `seg0 — rt0 — seg1`,
    /// all links at `rate_bps`. Cross-subnet frames contend on both
    /// collision domains and pay two routed trunk hops.
    pub fn routed_two_subnets(hosts: u32, rate_bps: u64) -> TopologySpec {
        let seg = |i: usize| Node {
            name: format!("seg{i}"),
            kind: NodeKind::Segment,
            rate_bps,
        };
        let link = |a: usize, b: usize| Trunk {
            a,
            b,
            rate_bps,
            prop_delay: DEFAULT_PROP_DELAY,
        };
        TopologySpec {
            id: "routed2".to_string(),
            nodes: vec![
                seg(0),
                seg(1),
                Node {
                    name: "rt0".to_string(),
                    kind: NodeKind::Router,
                    rate_bps,
                },
            ],
            trunks: vec![link(0, 2), link(2, 1)],
            attachments: (0..hosts)
                .map(|h| usize::from(h >= hosts.div_ceil(2)))
                .collect(),
            switch_latency: DEFAULT_SWITCH_LATENCY,
            router_latency: DEFAULT_ROUTER_LATENCY,
        }
    }

    /// The four canonical fabric-sweep topologies at one rate, in sweep
    /// order.
    pub fn sweep_set(hosts: u32, rate_bps: u64) -> Vec<TopologySpec> {
        vec![
            TopologySpec::single_segment(hosts, rate_bps),
            TopologySpec::two_switches_trunk(hosts, rate_bps),
            TopologySpec::two_level_tree(hosts, rate_bps),
            TopologySpec::routed_two_subnets(hosts, rate_bps),
        ]
    }

    /// Number of hosts on the LAN.
    pub fn host_count(&self) -> usize {
        self.attachments.len()
    }

    /// Artifact label: topology id plus the slowest link rate ("trunk2@10M").
    pub fn label(&self) -> String {
        let min_rate = self
            .nodes
            .iter()
            .map(|n| n.rate_bps)
            .chain(self.trunks.iter().map(|t| t.rate_bps))
            .min()
            .unwrap_or(0);
        format!("{}@{}", self.id, rates::rate_label(min_rate))
    }

    /// Per-hop store-and-forward latency of `node`.
    pub fn latency(&self, node: usize) -> SimTime {
        match self.nodes[node].kind {
            NodeKind::Router => self.router_latency,
            NodeKind::Segment | NodeKind::Switch => self.switch_latency,
        }
    }

    /// Validate the graph: endpoints in range, every host on a real node,
    /// rates nonzero, and every pair of host-bearing nodes connected.
    ///
    /// # Errors
    /// A human-readable description of the first defect found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("topology has no nodes".to_string());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.rate_bps == 0 {
                return Err(format!("node {i} ({}) has zero rate", n.name));
            }
        }
        for (i, t) in self.trunks.iter().enumerate() {
            if t.a >= self.nodes.len() || t.b >= self.nodes.len() || t.a == t.b {
                return Err(format!("trunk {i} endpoints ({}, {}) invalid", t.a, t.b));
            }
            if t.rate_bps == 0 {
                return Err(format!("trunk {i} has zero rate"));
            }
        }
        for (h, &n) in self.attachments.iter().enumerate() {
            if n >= self.nodes.len() {
                return Err(format!("host {h} attached to missing node {n}"));
            }
        }
        let fwd = self.forwarding();
        for &src in &self.attachments {
            for &dst in &self.attachments {
                if src != dst && fwd[src][dst].is_none() {
                    return Err(format!("no path between nodes {src} and {dst}"));
                }
            }
        }
        Ok(())
    }

    /// Forwarding tables derived from the graph: `table[n][d]` is the
    /// trunk index a frame at node `n` takes toward destination node `d`
    /// (`None` when `n == d` or `d` is unreachable). Shortest paths by
    /// hop count; ties broken by lowest trunk index, so the tables are
    /// deterministic.
    pub fn forwarding(&self) -> Vec<Vec<Option<usize>>> {
        let n = self.nodes.len();
        // Adjacency: (neighbor, trunk index), in trunk order.
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (ti, t) in self.trunks.iter().enumerate() {
            adj[t.a].push((t.b, ti));
            adj[t.b].push((t.a, ti));
        }
        let mut table = vec![vec![None; n]; n];
        for dst in 0..n {
            // BFS from the destination; the trunk a node first reaches
            // the frontier through is its next hop toward `dst`.
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut frontier = vec![dst];
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for &u in &frontier {
                    for &(v, ti) in &adj[u] {
                        if dist[v] == usize::MAX {
                            dist[v] = dist[u] + 1;
                            table[v][dst] = Some(ti);
                            next.push(v);
                        }
                    }
                }
                frontier = next;
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::RATE_10M;

    #[test]
    fn canonical_topologies_validate() {
        for spec in TopologySpec::sweep_set(9, RATE_10M) {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.id));
            assert_eq!(spec.host_count(), 9);
        }
    }

    #[test]
    fn single_segment_is_one_bus_no_trunks() {
        let s = TopologySpec::single_segment(4, RATE_10M);
        assert_eq!(s.nodes.len(), 1);
        assert!(s.trunks.is_empty());
        assert_eq!(s.label(), "single@10M");
    }

    #[test]
    fn split_puts_first_half_on_node_zero() {
        let s = TopologySpec::two_switches_trunk(5, RATE_10M);
        assert_eq!(s.attachments, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn tree_forwarding_goes_through_the_root() {
        let s = TopologySpec::two_level_tree(4, RATE_10M);
        let fwd = s.forwarding();
        // leaf0 → leaf1 exits on trunk 0 (leaf0-root), then trunk 1.
        assert_eq!(fwd[0][1], Some(0));
        assert_eq!(fwd[2][1], Some(1));
        assert_eq!(fwd[0][0], None);
    }

    #[test]
    fn routed_path_crosses_the_router() {
        let s = TopologySpec::routed_two_subnets(4, RATE_10M);
        let fwd = s.forwarding();
        assert_eq!(fwd[0][1], Some(0)); // seg0 → rt0
        assert_eq!(fwd[2][1], Some(1)); // rt0 → seg1
        assert_eq!(s.latency(2), DEFAULT_ROUTER_LATENCY);
        assert_eq!(s.latency(0), DEFAULT_SWITCH_LATENCY);
    }

    #[test]
    fn validation_catches_disconnection_and_bad_indices() {
        let mut s = TopologySpec::two_switches_trunk(4, RATE_10M);
        s.trunks.clear();
        assert!(s.validate().unwrap_err().contains("no path"));
        let mut s = TopologySpec::single_segment(2, RATE_10M);
        s.attachments.push(7);
        assert!(s.validate().unwrap_err().contains("missing node"));
        let mut s = TopologySpec::two_switches_trunk(4, RATE_10M);
        s.trunks[0].b = 0;
        assert!(s.validate().is_err());
    }
}
