//! fxnet-topo: declarative multi-segment switched topologies.
//!
//! The measured testbed in the source paper is a single shared 10 Mb/s
//! Ethernet; its analysis, though, is parameterized on *provided
//! bandwidth*, and the natural next instrument is a LAN whose provided
//! bandwidth varies by where you stand: hosts behind different switches
//! see full port rate locally but contend on an oversubscribed trunk.
//! This crate describes such fabrics declaratively — hosts, shared-bus
//! collision domains, store-and-forward switches, routers, and
//! trunk/uplink links at 10/100/1000 Mb/s with per-link propagation
//! delay — and compiles the description into a [`CompositeFabric`] that
//! drives the existing `fxnet-sim` elements behind the same pull
//! interface the protocol stack already speaks.
//!
//! - [`spec`] — the topology graph ([`TopologySpec`]), validation, and
//!   BFS-derived forwarding tables, plus the four canonical shapes the
//!   fabric bandwidth sweep exercises.
//! - [`fabric`] — the compiled [`CompositeFabric`]: per-segment
//!   [`EtherBus`](fxnet_sim::EtherBus) instances, per-trunk output
//!   queues on the calendar event queue, exact per-hop
//!   [`FrameMeta`](fxnet_sim::FrameMeta) accounting, and deterministic
//!   event ordering so traces are byte-identical across thread counts.

//! - [`partition`] — the shard [`Partition`]: contiguous host-balanced
//!   node blocks (one shard per switch subtree by default), cut trunks,
//!   and per-direction inter-shard channel lookaheads for the
//!   conservative parallel core in `fxnet-shard`.

pub mod fabric;
pub mod partition;
pub mod spec;

pub use fabric::{CompositeFabric, CrossFrame, NodeFlow};
pub use partition::{min_frame_tx, Partition, ShardChannel};
pub use spec::{Node, NodeKind, TopologySpec, Trunk};
