//! Topology partitioning for the sharded parallel DES core.
//!
//! A [`Partition`] splits the nodes of a [`TopologySpec`] into contiguous
//! node-index blocks balanced by attached host count. Builders number
//! nodes in subtree order (leaf segments/switches first, parents after),
//! so contiguous blocks honor the "one shard per switch subtree" default:
//! `trunk2` splits into its two switches, `tree2` into `{leaf0}` and
//! `{leaf1, root}` at two shards and one node per shard at three.
//!
//! Every trunk whose endpoints land on different shards becomes a *cut
//! trunk*: its two directions turn into inter-shard channels, each with a
//! conservative lookahead — the earliest a frame leaving the sending
//! shard "now" can possibly finish arriving at the far node:
//!
//! ```text
//! lookahead = tx_time(minimum frame at trunk rate)   // wire occupancy
//!           + trunk propagation delay                // spec'd per trunk
//!           + store-and-forward latency of far node  // switch/router
//! ```
//!
//! All three terms are strictly positive (rates are validated nonzero,
//! the default propagation delay is 1 µs, switch/router latency 10/50 µs),
//! so the null-message protocol in `fxnet-shard` always has slack to
//! advance an idle channel's clock.

use crate::spec::TopologySpec;
use fxnet_sim::frame::PREAMBLE;
use fxnet_sim::{SimTime, MIN_FRAME};

/// One directed inter-shard channel over a cut trunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardChannel {
    /// Sending shard (owner of the trunk end the frame leaves from).
    pub from: usize,
    /// Receiving shard (owner of the far node).
    pub to: usize,
    /// Trunk index in the spec.
    pub trunk: usize,
    /// Direction on that trunk: 0 = a→b, 1 = b→a.
    pub dir: usize,
    /// Conservative lookahead: no frame sent on this channel after the
    /// sending shard's clock reads `t` can arrive before `t + lookahead`.
    pub lookahead: SimTime,
}

/// A shard assignment of a topology's nodes, hosts, and trunks.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Actual shard count after clamping to `[1, node count]`.
    pub shards: usize,
    /// Node index → shard.
    pub node_shard: Vec<usize>,
    /// Host index → shard (the shard of its attachment node).
    pub host_shard: Vec<usize>,
    /// Trunks whose endpoints live on different shards.
    pub cut_trunks: Vec<usize>,
    /// Directed channels, two per cut trunk, in (trunk, dir) order.
    pub channels: Vec<ShardChannel>,
}

/// Wire time of a minimum frame (pure ACK) at `bps`, preamble included —
/// the transmission term of the channel lookahead.
pub fn min_frame_tx(bps: u64) -> SimTime {
    let bits = u64::from(MIN_FRAME + PREAMBLE) * 8;
    SimTime::from_nanos(bits * 1_000_000_000 / bps)
}

impl Partition {
    /// Partition `spec` into at most `requested` shards (clamped to the
    /// node count; 0 means 1). The assignment is deterministic: identical
    /// specs and counts always produce identical partitions.
    pub fn new(spec: &TopologySpec, requested: usize) -> Partition {
        let n = spec.nodes.len();
        let shards = requested.clamp(1, n);
        let mut node_hosts = vec![0usize; n];
        for &a in &spec.attachments {
            node_hosts[a] += 1;
        }
        let total: usize = spec.attachments.len();
        // Contiguous blocks, closed when the cumulative host quota for
        // the block is met — or when only one node per remaining block is
        // left, so every shard owns at least one node.
        let mut node_shard = vec![0usize; n];
        let mut s = 0usize;
        let mut assigned_hosts = 0usize;
        for (i, &h) in node_hosts.iter().enumerate() {
            node_shard[i] = s;
            assigned_hosts += h;
            let blocks_left = shards - s - 1;
            let nodes_left = n - i - 1;
            if blocks_left > 0 {
                let quota = (s + 1) * total / shards;
                if assigned_hosts >= quota || nodes_left == blocks_left {
                    s += 1;
                }
            }
        }
        let host_shard: Vec<usize> = spec
            .attachments
            .iter()
            .map(|&node| node_shard[node])
            .collect();
        let mut cut_trunks = Vec::new();
        let mut channels = Vec::new();
        for (ti, t) in spec.trunks.iter().enumerate() {
            let (sa, sb) = (node_shard[t.a], node_shard[t.b]);
            if sa == sb {
                continue;
            }
            cut_trunks.push(ti);
            for (dir, from, to, far) in [(0, sa, sb, t.b), (1, sb, sa, t.a)] {
                let lookahead = min_frame_tx(t.rate_bps) + t.prop_delay + spec.latency(far);
                assert!(
                    lookahead > SimTime::ZERO,
                    "channel lookahead must be strictly positive"
                );
                channels.push(ShardChannel {
                    from,
                    to,
                    trunk: ti,
                    dir,
                    lookahead,
                });
            }
        }
        Partition {
            shards,
            node_shard,
            host_shard,
            cut_trunks,
            channels,
        }
    }

    /// Owned-node mask for `shard`.
    pub fn owned_mask(&self, shard: usize) -> Vec<bool> {
        self.node_shard.iter().map(|&s| s == shard).collect()
    }

    /// Channels received by `shard`, as indices into [`Partition::channels`].
    pub fn incoming(&self, shard: usize) -> Vec<usize> {
        (0..self.channels.len())
            .filter(|&c| self.channels[c].to == shard)
            .collect()
    }

    /// Channels sent by `shard`, as indices into [`Partition::channels`].
    pub fn outgoing(&self, shard: usize) -> Vec<usize> {
        (0..self.channels.len())
            .filter(|&c| self.channels[c].from == shard)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::RATE_10M;

    #[test]
    fn single_segment_never_splits() {
        let spec = TopologySpec::single_segment(9, RATE_10M);
        for req in [0, 1, 2, 4, 16] {
            let p = Partition::new(&spec, req);
            assert_eq!(p.shards, 1);
            assert!(p.cut_trunks.is_empty() && p.channels.is_empty());
            assert!(p.host_shard.iter().all(|&s| s == 0));
        }
    }

    #[test]
    fn trunk2_splits_per_switch_subtree() {
        let spec = TopologySpec::two_switches_trunk(9, RATE_10M);
        let p = Partition::new(&spec, 4);
        assert_eq!(p.shards, 2, "two nodes clamp four shards to two");
        assert_eq!(p.node_shard, vec![0, 1]);
        assert_eq!(p.cut_trunks, vec![0]);
        assert_eq!(p.channels.len(), 2);
        // Hosts follow their switch.
        for (h, &node) in spec.attachments.iter().enumerate() {
            assert_eq!(p.host_shard[h], p.node_shard[node]);
        }
    }

    #[test]
    fn tree2_balances_leaves_then_isolates_root() {
        let spec = TopologySpec::two_level_tree(9, RATE_10M);
        let p2 = Partition::new(&spec, 2);
        assert_eq!(p2.node_shard, vec![0, 1, 1], "leaf0 | leaf1+root");
        assert_eq!(p2.cut_trunks, vec![0], "only leaf0-root is cut");
        let p3 = Partition::new(&spec, 4);
        assert_eq!(p3.shards, 3);
        assert_eq!(p3.node_shard, vec![0, 1, 2]);
        assert_eq!(p3.cut_trunks, vec![0, 1], "both uplinks are cut");
        assert_eq!(p3.channels.len(), 4);
    }

    #[test]
    fn lookahead_is_tx_plus_prop_plus_latency() {
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let p = Partition::new(&spec, 2);
        let t = spec.trunks[0];
        for c in &p.channels {
            let far = if c.dir == 0 { t.b } else { t.a };
            let expect = min_frame_tx(t.rate_bps) + t.prop_delay + spec.latency(far);
            assert_eq!(c.lookahead, expect);
            assert!(c.lookahead > SimTime::ZERO);
        }
    }

    #[test]
    fn channel_endpoints_are_consistent() {
        let spec = TopologySpec::two_level_tree(6, RATE_10M);
        let p = Partition::new(&spec, 3);
        for (ci, c) in p.channels.iter().enumerate() {
            assert_ne!(c.from, c.to);
            assert!(p.outgoing(c.from).contains(&ci));
            assert!(p.incoming(c.to).contains(&ci));
            let t = spec.trunks[c.trunk];
            let (near, far) = if c.dir == 0 { (t.a, t.b) } else { (t.b, t.a) };
            assert_eq!(p.node_shard[near], c.from);
            assert_eq!(p.node_shard[far], c.to);
        }
    }
}
