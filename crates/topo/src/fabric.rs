//! The composite fabric: a [`TopologySpec`] compiled into a running
//! multi-segment network behind the exact pull interface `fxnet-proto`
//! already drives (`enqueue` / `next_event_time` / `advance` / `idle`,
//! promiscuous trace, live [`FrameTap`], surfaced transmit errors).
//!
//! Element reuse: every `Segment` node *is* an [`EtherBus`] — the full
//! CSMA/CD machine with its own deterministic RNG stream — while switch
//! and router ports and inter-node trunks generalize the
//! [`fxnet_sim::SwitchFabric`] store-and-forward discipline (a free-time
//! scalar per simplex link, output queuing on a [`KeyedQueue`] under the
//! explicit [`EventKey`] order) to arbitrary hop counts. The key order —
//! time, then calendar-before-bus, then fabric-entry stamp and per-frame
//! hop — is a pure function of the offered load, which is what lets
//! `fxnet-shard` split one fabric across worker threads and still merge
//! a byte-identical event stream.
//!
//! Token smuggling: the protocol layer correlates deliveries through
//! `Frame::token`, but a multi-hop frame needs composite-side bookkeeping
//! between hops. On entry every frame's token is swapped for a transit id
//! into a side slab (original token, entry time, accumulated
//! [`FrameMeta`], bottleneck candidates); the original token is restored
//! at final delivery — and on surfaced errors — so the layer above never
//! sees the swap. `FrameRecord` carries no token, so the promiscuous
//! trace is unaffected: a single-segment topology reproduces the legacy
//! shared-bus trace byte for byte.
//!
//! Timing accounting is exact: at final delivery
//! `meta.queue_ns + meta.backoff_ns + meta.tx_ns` equals the frame's
//! end-to-end elapsed time to the nanosecond. Fixed per-hop costs
//! (forwarding latency, trunk propagation) are charged to `queue_ns`;
//! wire occupancy of every hop sums into `tx_ns`; CSMA/CD backoff on
//! segments sums into `backoff_ns`. The trunk whose queue out-waited
//! every access hop is recorded in `meta.trunk` so causal critical paths
//! can name the contended inter-node link.

use crate::spec::{NodeKind, TopologySpec};
use fxnet_sim::ethernet::Delivery;
use fxnet_sim::{
    EtherBus, EtherConfig, EtherStats, EventKey, Frame, FrameMeta, FrameRecord, FrameTap,
    KeyedQueue, LinkProbe, LinkStats, NicId, SimRng, SimTime, TxError,
};

/// Per-frame state while it crosses the fabric.
#[derive(Debug)]
struct Transit {
    /// The protocol layer's original token, restored at delivery.
    token: u64,
    /// Fabric-entry stamp: the global enqueue sequence number, the major
    /// calendar tie-break of the frame's [`EventKey`]s.
    stamp: u64,
    /// Scheduled-event counter for this transit (the minor tie-break).
    hop: u64,
    /// Entry time (the `enqueue` instant), for the exact-sum invariant.
    entered: SimTime,
    /// Accumulated timing across hops.
    meta: FrameMeta,
    /// Worst access-hop wait seen (bus queue+backoff, port queue), ns.
    best_access_ns: u64,
    /// Worst trunk wait seen: `(wait_ns, trunk_code)`.
    best_trunk: Option<(u64, u32)>,
}

/// A frame mid-flight across a cut trunk: everything the receiving
/// shard's fabric needs to resume the transit as if the hop had been
/// local. Produced by a scoped fabric's outbox, consumed by
/// [`CompositeFabric::inject`].
#[derive(Debug)]
pub struct CrossFrame {
    /// When the frame finishes arriving at the far node (trunk tx done +
    /// propagation + far node's store-and-forward latency).
    arrival: SimTime,
    /// The far node (owned by the receiving shard).
    node: usize,
    /// The arrival event's key — identical to the key the hop would have
    /// used had it stayed local, so merged event order is shard-blind.
    key: EventKey,
    /// The cut trunk the frame crossed.
    trunk: usize,
    /// Direction on that trunk: 0 = a→b, 1 = b→a.
    dir: usize,
    /// The frame; its token field is reassigned by `inject`.
    frame: Frame,
    /// The transit record, carried across (token = original protocol
    /// token).
    transit: Transit,
}

impl CrossFrame {
    /// Arrival instant at the receiving shard.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// Global index of the receiving node.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The arrival event's key.
    pub fn key(&self) -> EventKey {
        self.key
    }

    /// The cut trunk crossed.
    pub fn trunk(&self) -> usize {
        self.trunk
    }

    /// Direction on that trunk: 0 = a→b, 1 = b→a.
    pub fn dir(&self) -> usize {
        self.dir
    }
}

/// Shard scoping of a fabric: the owned-node mask and the outbox of
/// frames that crossed a cut trunk toward another shard.
struct ShardScope {
    owned: Vec<bool>,
    outbox: Vec<CrossFrame>,
}

/// Passive per-link samplers (the fabric weather-map feed): one
/// [`LinkProbe`] per trunk direction and per switch/router host port.
/// Purely observational — no RNG draws, no scheduled events, no effect
/// on frame timing — so a sampled run's trace is byte-identical to an
/// unsampled one.
struct FabricProbes {
    /// Base sample window, ns.
    bin_ns: u64,
    /// Per trunk, per direction (0 = a→b).
    trunks: Vec<[LinkProbe; 2]>,
    /// Per host: dedicated uplink / downlink (switch/router attachments
    /// only; segment-attached hosts share their bus's sampler).
    up: Vec<LinkProbe>,
    down: Vec<LinkProbe>,
}

/// One scheduled fabric event.
enum TopoEvent {
    /// Frame fully received at `node` (store-and-forward complete);
    /// forward it toward its destination.
    AtNode { node: usize, frame: Frame },
    /// Final access-link transmission finished: deliver to the host.
    Deliver { frame: Frame },
}

/// Per-node frame/byte flow counters (conservation bookkeeping).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeFlow {
    /// Frames/bytes that finished arriving at this node.
    pub frames_in: u64,
    pub bytes_in: u64,
    /// Frames/bytes this node finished handing onward (next link or
    /// final delivery).
    pub frames_out: u64,
    pub bytes_out: u64,
}

/// A [`TopologySpec`] compiled and running.
pub struct CompositeFabric {
    spec: TopologySpec,
    /// `next_hop[n][d]` = trunk index out of node `n` toward node `d`.
    next_hop: Vec<Vec<Option<usize>>>,
    /// One `EtherBus` per `Segment` node (`None` for switches/routers).
    buses: Vec<Option<EtherBus>>,
    /// Host → NIC on its segment's bus (unused for switch-attached hosts).
    host_nic: Vec<NicId>,
    /// Per node: bridge NIC for each trunk interface, keyed by trunk
    /// index (segments only).
    bridge_nic: Vec<Vec<(usize, NicId)>>,
    /// Per host: next instant its dedicated uplink / downlink is free
    /// (switch/router attachments only).
    up_free: Vec<SimTime>,
    down_free: Vec<SimTime>,
    /// Per trunk, per direction (0 = a→b): next free instant.
    trunk_free: Vec<[SimTime; 2]>,
    events: KeyedQueue<TopoEvent>,
    /// Next fabric-entry stamp (when not overridden by a sharded owner).
    next_stamp: u64,
    /// Time of the last processed event (monotone; causality guard for
    /// [`CompositeFabric::inject`]).
    clock: SimTime,
    /// Shard scoping, when this fabric is one shard of a partition.
    scope: Option<ShardScope>,
    transits: Vec<Option<Transit>>,
    transit_free: Vec<u32>,
    /// Per-bus count of errors already drained into `errors`.
    bus_errors_seen: Vec<usize>,
    errors: Vec<(SimTime, Frame, TxError)>,
    flows: Vec<NodeFlow>,
    promiscuous: bool,
    trace: Vec<FrameRecord>,
    tap: Option<FrameTap>,
    frames_delivered: u64,
    bytes_delivered: u64,
    /// Wire occupancy of non-bus links (ports and trunks), ns.
    link_busy_ns: u64,
    /// Per-link sample probes, when sampling is enabled.
    probes: Option<FabricProbes>,
    scratch: Vec<Delivery>,
}

impl CompositeFabric {
    /// Compile `spec` into a running fabric. Segment `EtherBus` instances
    /// clone `ether` with the node's rate; node 0's RNG stream is seeded
    /// with `seed` exactly (single-segment byte-identity with the legacy
    /// bus), further segments derive independent streams from it.
    ///
    /// # Panics
    /// If the spec fails [`TopologySpec::validate`].
    pub fn new(spec: TopologySpec, ether: &EtherConfig, seed: u64) -> CompositeFabric {
        spec.validate().unwrap_or_else(|e| panic!("topology: {e}"));
        let next_hop = spec.forwarding();
        let n = spec.nodes.len();
        let hosts = spec.host_count();
        let mut buses: Vec<Option<EtherBus>> = Vec::with_capacity(n);
        for (i, node) in spec.nodes.iter().enumerate() {
            buses.push(match node.kind {
                NodeKind::Segment => {
                    let cfg = EtherConfig {
                        bandwidth_bps: node.rate_bps,
                        ..ether.clone()
                    };
                    let node_seed = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64);
                    Some(EtherBus::new(cfg, SimRng::new(node_seed)))
                }
                NodeKind::Switch | NodeKind::Router => None,
            });
        }
        // NIC layout per segment: attached hosts in global host order,
        // then one bridge NIC per incident trunk in trunk-index order.
        // (On a single segment this reproduces the legacy NicId(h) map.)
        let mut host_nic = vec![NicId(0); hosts];
        for (h, &node) in spec.attachments.iter().enumerate() {
            if let Some(bus) = &mut buses[node] {
                host_nic[h] = bus.attach();
            }
        }
        let mut bridge_nic: Vec<Vec<(usize, NicId)>> = vec![Vec::new(); n];
        for (ti, t) in spec.trunks.iter().enumerate() {
            for end in [t.a, t.b] {
                if let Some(bus) = &mut buses[end] {
                    bridge_nic[end].push((ti, bus.attach()));
                }
            }
        }
        CompositeFabric {
            next_hop,
            buses,
            host_nic,
            bridge_nic,
            up_free: vec![SimTime::ZERO; hosts],
            down_free: vec![SimTime::ZERO; hosts],
            trunk_free: vec![[SimTime::ZERO; 2]; spec.trunks.len()],
            events: KeyedQueue::new(),
            next_stamp: 0,
            clock: SimTime::ZERO,
            scope: None,
            transits: Vec::new(),
            transit_free: Vec::new(),
            bus_errors_seen: vec![0; n],
            errors: Vec::new(),
            flows: vec![NodeFlow::default(); n],
            promiscuous: false,
            trace: Vec::new(),
            tap: None,
            frames_delivered: 0,
            bytes_delivered: 0,
            link_busy_ns: 0,
            probes: None,
            scratch: Vec::new(),
            spec,
        }
    }

    /// Enable (`Some(bin_ns)`) or disable (`None`) passive per-link
    /// sampling at the given base window. Sampling covers every trunk
    /// direction, every segment bus, and every switch/router host port;
    /// it is strictly observational and leaves the trace byte-identical.
    pub fn set_link_sampling(&mut self, bin_ns: Option<u64>) {
        for bus in self.buses.iter_mut().flatten() {
            bus.set_link_sampling(bin_ns);
        }
        let hosts = self.spec.host_count();
        self.probes = bin_ns.map(|b| FabricProbes {
            bin_ns: b.max(1),
            trunks: vec![<[LinkProbe; 2]>::default(); self.spec.trunks.len()],
            up: vec![LinkProbe::new(); hosts],
            down: vec![LinkProbe::new(); hosts],
        });
    }

    /// Take the accumulated per-link sample series (resetting every
    /// probe), labeled in a fixed deterministic order: trunks
    /// (`trunk:n{a}-n{b}:fwd` then `:rev`, trunk-index order), segments
    /// (`seg:{name}`, node order), then switch/router host ports
    /// (`host:h{h}:up` / `:down`, host order). `None` when sampling is
    /// disabled.
    pub fn take_link_stats(&mut self) -> Option<LinkStats> {
        let mut p = self.probes.take()?;
        let mut links = Vec::new();
        for (ti, t) in self.spec.trunks.iter().enumerate() {
            let label = format!("trunk:n{}-n{}", t.a, t.b);
            links.push((format!("{label}:fwd"), p.trunks[ti][0].take()));
            links.push((format!("{label}:rev"), p.trunks[ti][1].take()));
        }
        for (i, node) in self.spec.nodes.iter().enumerate() {
            if let Some(bus) = &mut self.buses[i] {
                if let Some(s) = bus.take_link_series() {
                    links.push((format!("seg:{}", node.name), s));
                }
            }
        }
        for (h, &node) in self.spec.attachments.iter().enumerate() {
            if self.spec.nodes[node].kind != NodeKind::Segment {
                links.push((format!("host:h{h}:up"), p.up[h].take()));
                links.push((format!("host:h{h}:down"), p.down[h].take()));
            }
        }
        let stats = LinkStats {
            bin_ns: p.bin_ns,
            links,
        };
        self.probes = Some(p);
        Some(stats)
    }

    /// The compiled spec.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Number of hosts on the LAN.
    pub fn host_count(&self) -> usize {
        self.spec.host_count()
    }

    /// Per-node flow counters. At idle every switch/router node conserves
    /// frames exactly: `frames_in == frames_out`.
    pub fn flows(&self) -> &[NodeFlow] {
        &self.flows
    }

    /// Errors surfaced for frames the fabric destroyed (excessive
    /// collisions or corruption on a segment), with the *original*
    /// protocol-layer tokens restored. Grows monotonically, like
    /// [`EtherBus::errors`].
    pub fn errors(&self) -> &[(SimTime, Frame, TxError)] {
        &self.errors
    }

    /// Enable the promiscuous capture (the tracing workstation; on a
    /// multi-segment fabric, a mirror of every final delivery).
    pub fn set_promiscuous(&mut self, on: bool) {
        self.promiscuous = on;
    }

    /// Install (or remove) a live frame tap at the capture point.
    pub fn set_tap(&mut self, tap: Option<FrameTap>) {
        self.tap = tap;
    }

    /// Captured trace so far.
    pub fn trace(&self) -> &[FrameRecord] {
        &self.trace
    }

    /// Take ownership of the captured trace.
    pub fn take_trace(&mut self) -> Vec<FrameRecord> {
        std::mem::take(&mut self.trace)
    }

    /// Aggregate MAC statistics: delivery counters are end-to-end
    /// (frames counted once, not per hop); contention counters sum over
    /// the segment buses; busy time sums bus occupancy and every port and
    /// trunk transmission.
    pub fn stats(&self) -> EtherStats {
        let mut s = EtherStats {
            frames_delivered: self.frames_delivered,
            bytes_delivered: self.bytes_delivered,
            busy_ns: self.link_busy_ns,
            ..EtherStats::default()
        };
        for bus in self.buses.iter().flatten() {
            let b = bus.stats();
            s.collisions += b.collisions;
            s.backoffs += b.backoffs;
            s.frames_dropped += b.frames_dropped;
            s.busy_ns += b.busy_ns;
        }
        s
    }

    fn transit_insert(&mut self, t: Transit) -> u64 {
        let slot = match self.transit_free.pop() {
            Some(s) => {
                self.transits[s as usize] = Some(t);
                s as usize
            }
            None => {
                self.transits.push(Some(t));
                self.transits.len() - 1
            }
        };
        slot as u64 + 1
    }

    fn transit_remove(&mut self, id: u64) -> Option<Transit> {
        let idx = usize::try_from(id.checked_sub(1)?).ok()?;
        let t = self.transits.get_mut(idx)?.take()?;
        self.transit_free.push(idx as u32);
        Some(t)
    }

    fn transit_mut(&mut self, id: u64) -> &mut Transit {
        self.transits[(id - 1) as usize]
            .as_mut()
            .expect("live transit")
    }

    /// Allocate the calendar key for the transit behind `token` at
    /// scheduled time `time`, bumping the transit's hop counter.
    fn calendar_key(&mut self, token: u64, time: SimTime) -> EventKey {
        let t = self.transit_mut(token);
        let hop = t.hop;
        t.hop += 1;
        EventKey::calendar(time, t.stamp, hop)
    }

    /// Queue a frame from host `nic.0` at time `now` — the entry point
    /// the protocol stack drives, identical in shape to
    /// [`EtherBus::enqueue`]. The fabric-entry stamp is drawn from this
    /// fabric's own counter; a sharded owner uses
    /// [`CompositeFabric::enqueue_stamped`] to keep stamps global.
    pub fn enqueue(&mut self, nic: NicId, frame: Frame, now: SimTime) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.enqueue_stamped(nic, frame, now, stamp);
    }

    /// Queue a frame with an externally allocated fabric-entry `stamp`.
    /// Stamps order equal-time calendar events, so a sharded fabric must
    /// hand every shard stamps from one global counter — in the exact
    /// order the sequential fabric would have assigned them.
    pub fn enqueue_stamped(&mut self, nic: NicId, frame: Frame, now: SimTime, stamp: u64) {
        let host = nic.0 as usize;
        let src_node = self.spec.attachments[host];
        let mut f = frame;
        f.token = self.transit_insert(Transit {
            token: frame.token,
            stamp,
            hop: 0,
            entered: now,
            meta: FrameMeta::default(),
            best_access_ns: 0,
            best_trunk: None,
        });
        match self.spec.nodes[src_node].kind {
            NodeKind::Segment => {
                // Contend on the shared medium; the bus hop's wait, backoff,
                // and wire time are accumulated when the bus delivers.
                if let Some(bus) = &mut self.buses[src_node] {
                    bus.enqueue(self.host_nic[host], f, now);
                }
            }
            NodeKind::Switch | NodeKind::Router => {
                // Dedicated uplink at the node's port rate, then the
                // node's store-and-forward latency.
                let rate = self.spec.nodes[src_node].rate_bps;
                let tx = f.tx_time(rate);
                let start = self.up_free[host].max(now);
                let done = start + tx;
                self.up_free[host] = done;
                self.link_busy_ns += tx.as_nanos();
                let latency = self.spec.latency(src_node);
                let wait = (start - now).as_nanos();
                if let Some(p) = &mut self.probes {
                    p.up[host].record(
                        p.bin_ns,
                        now,
                        done,
                        u64::from(f.wire_len()),
                        tx.as_nanos(),
                        wait,
                    );
                }
                let t = self.transit_mut(f.token);
                t.meta.queue_ns += wait + latency.as_nanos();
                t.meta.tx_ns += tx.as_nanos();
                t.best_access_ns = t.best_access_ns.max(wait);
                let key = self.calendar_key(f.token, done + latency);
                self.events.push(
                    key,
                    TopoEvent::AtNode {
                        node: src_node,
                        frame: f,
                    },
                );
            }
        }
    }

    /// Forward `f` (carrying a transit token) onward from `node` at time
    /// `now`: out the next-hop trunk, down the destination access link,
    /// or onto the destination segment's bus.
    fn forward(&mut self, node: usize, f: Frame, now: SimTime) {
        let wire = u64::from(f.wire_len());
        self.flows[node].frames_in += 1;
        self.flows[node].bytes_in += wire;
        let dst_host = f.dst.0 as usize;
        let dst_node = self.spec.attachments[dst_host];
        if node == dst_node {
            match self.spec.nodes[node].kind {
                NodeKind::Segment => {
                    // Bridge egress: transmit onto the destination
                    // collision domain, contending like any station.
                    // The bus delivery finalizes the frame.
                    if let Some(bus) = &mut self.buses[node] {
                        // A frame only re-enters a segment from a trunk,
                        // so a bridge NIC always exists here.
                        let nic = self.bridge_nic[node][0].1;
                        bus.enqueue(nic, f, now);
                    }
                }
                NodeKind::Switch | NodeKind::Router => {
                    let rate = self.spec.nodes[node].rate_bps;
                    let tx = f.tx_time(rate);
                    let start = self.down_free[dst_host].max(now);
                    let done = start + tx;
                    self.down_free[dst_host] = done;
                    self.link_busy_ns += tx.as_nanos();
                    let wait = (start - now).as_nanos();
                    if let Some(p) = &mut self.probes {
                        p.down[dst_host].record(p.bin_ns, now, done, wire, tx.as_nanos(), wait);
                    }
                    let t = self.transit_mut(f.token);
                    t.meta.queue_ns += wait;
                    t.meta.tx_ns += tx.as_nanos();
                    t.best_access_ns = t.best_access_ns.max(wait);
                    let key = self.calendar_key(f.token, done);
                    self.events.push(key, TopoEvent::Deliver { frame: f });
                }
            }
            self.flows[node].frames_out += 1;
            self.flows[node].bytes_out += wire;
            return;
        }
        // Trunk hop toward the destination's node. Validation guarantees
        // host-bearing nodes are connected, so the table entry exists.
        let ti = self.next_hop[node][dst_node].expect("validated path");
        let trunk = self.spec.trunks[ti];
        let (dir, far) = if trunk.a == node {
            (0, trunk.b)
        } else {
            (1, trunk.a)
        };
        let tx = f.tx_time(trunk.rate_bps);
        let start = self.trunk_free[ti][dir].max(now);
        let done = start + tx;
        self.trunk_free[ti][dir] = done;
        self.link_busy_ns += tx.as_nanos();
        let latency = self.spec.latency(far);
        let wait = (start - now).as_nanos();
        if let Some(p) = &mut self.probes {
            p.trunks[ti][dir].record(p.bin_ns, now, done, wire, tx.as_nanos(), wait);
        }
        let t = self.transit_mut(f.token);
        t.meta.queue_ns += wait + trunk.prop_delay.as_nanos() + latency.as_nanos();
        t.meta.tx_ns += tx.as_nanos();
        let code = FrameMeta::trunk_code(trunk.a as u32, trunk.b as u32);
        if t.best_trunk.is_none_or(|(w, _)| wait > w) {
            t.best_trunk = Some((wait, code));
        }
        self.flows[node].frames_out += 1;
        self.flows[node].bytes_out += wire;
        let arrival = done + trunk.prop_delay + latency;
        let key = self.calendar_key(f.token, arrival);
        if self.scope.as_ref().is_some_and(|s| !s.owned[far]) {
            // The far node belongs to another shard: this is a cut
            // trunk. All sender-side accounting above is final; the
            // frame travels with its transit record and its arrival
            // event's key, so the receiving shard resumes it exactly
            // where a local hop would have.
            let transit = self.transit_remove(f.token).expect("live transit");
            let scope = self.scope.as_mut().expect("scoped");
            scope.outbox.push(CrossFrame {
                arrival,
                node: far,
                key,
                trunk: ti,
                dir,
                frame: f,
                transit,
            });
        } else {
            self.events.push(
                key,
                TopoEvent::AtNode {
                    node: far,
                    frame: f,
                },
            );
        }
    }

    /// Finalize a frame at `now`: restore the original token, settle the
    /// bottleneck-trunk verdict, capture the trace record, and hand the
    /// delivery up.
    fn finalize(&mut self, now: SimTime, mut f: Frame, out: &mut Vec<Delivery>) {
        let t = self.transit_remove(f.token).expect("live transit");
        f.token = t.token;
        let mut meta = t.meta;
        debug_assert_eq!(
            meta.queue_ns + meta.backoff_ns + meta.tx_ns,
            now.saturating_sub(t.entered).as_nanos(),
            "per-hop accounting must sum to end-to-end elapsed"
        );
        // The bottleneck trunk is recorded only when it out-waited every
        // access hop (ties favor the trunk: the inter-node link is the
        // shared, scarcer resource).
        meta.trunk = match t.best_trunk {
            Some((wait, code)) if wait >= t.best_access_ns => code,
            _ => 0,
        };
        self.frames_delivered += 1;
        self.bytes_delivered += u64::from(f.wire_len());
        if self.promiscuous || self.tap.is_some() {
            let record = FrameRecord::capture(now, &f);
            if let Some(tap) = &mut self.tap {
                tap(&record);
            }
            if self.promiscuous {
                self.trace.push(record);
            }
        }
        out.push(Delivery {
            time: now,
            frame: f,
            meta,
        });
    }

    /// Drain newly surfaced errors from segment `node`'s bus, restoring
    /// original tokens.
    fn reap_bus_errors(&mut self, node: usize) {
        loop {
            let Some(bus) = &self.buses[node] else { return };
            let errs = bus.errors();
            let Some(&(time, frame, err)) = errs.get(self.bus_errors_seen[node]) else {
                return;
            };
            self.bus_errors_seen[node] += 1;
            let mut f = frame;
            if let Some(t) = self.transit_remove(f.token) {
                f.token = t.token;
            }
            self.errors.push((time, f, err));
        }
    }

    /// Whether nothing is pending anywhere in the fabric (including the
    /// shard outbox, when scoped).
    pub fn idle(&self) -> bool {
        self.events.is_empty()
            && self.buses.iter().flatten().all(EtherBus::idle)
            && self.scope.as_ref().is_none_or(|s| s.outbox.is_empty())
    }

    /// Key of the next fabric event: the calendar head against every
    /// segment's next bus event, under the global [`EventKey`] order —
    /// calendar first at equal times, then segments by node index.
    pub fn next_key(&self) -> Option<EventKey> {
        let mut k = self.events.peek_key();
        for (n, bus) in self.buses.iter().enumerate() {
            if let Some(t) = bus.as_ref().and_then(EtherBus::next_event_time) {
                let bk = EventKey::bus(t, n as u64);
                k = Some(match k {
                    Some(x) if x < bk => x,
                    _ => bk,
                });
            }
        }
        k
    }

    /// Time of the next fabric event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.next_key().map(|k| k.time)
    }

    /// Process exactly one fabric event, appending any final delivery.
    /// Simultaneous events resolve deterministically by [`EventKey`]:
    /// the calendar queue first (stamp, then hop), then segments by node
    /// index — an order that is a pure function of the offered load, so
    /// it is identical at every shard count.
    pub fn advance(&mut self, out: &mut Vec<Delivery>) -> Option<SimTime> {
        self.advance_keyed(out).map(|k| k.time)
    }

    /// [`CompositeFabric::advance`], returning the processed event's key
    /// so a sharded owner can merge per-shard output streams globally.
    pub fn advance_keyed(&mut self, out: &mut Vec<Delivery>) -> Option<EventKey> {
        let k = self.next_key()?;
        self.clock = k.time;
        if k.class == 0 {
            let (_, ev) = self.events.pop()?;
            match ev {
                TopoEvent::AtNode { node, frame } => self.forward(node, frame, k.time),
                TopoEvent::Deliver { frame } => self.finalize(k.time, frame, out),
            }
            return Some(k);
        }
        let node = usize::try_from(k.major).expect("node index");
        self.scratch.clear();
        let mut deliveries = std::mem::take(&mut self.scratch);
        if let Some(bus) = &mut self.buses[node] {
            bus.advance(&mut deliveries);
        }
        self.reap_bus_errors(node);
        for d in deliveries.drain(..) {
            // Fold the bus hop's exact timing into the transit record.
            let dst_node = self.spec.attachments[d.frame.dst.0 as usize];
            {
                let tr = self.transit_mut(d.frame.token);
                tr.meta.queue_ns += d.meta.queue_ns;
                tr.meta.backoff_ns += d.meta.backoff_ns;
                tr.meta.tx_ns += d.meta.tx_ns;
                tr.meta.attempts += d.meta.attempts;
                tr.best_access_ns = tr.best_access_ns.max(d.meta.queue_ns + d.meta.backoff_ns);
            }
            if dst_node == node {
                // The destination heard it on its own segment: final.
                // (If it re-entered via a bridge, `forward` already
                // counted it through this node's flow.)
                self.finalize(d.time, d.frame, out);
            } else {
                // A bridge picks it up and forwards out the next trunk.
                self.forward(node, d.frame, d.time);
            }
        }
        self.scratch = deliveries;
        Some(k)
    }

    /// Scope this fabric to the nodes where `owned[n]` is true: frames
    /// forwarded across a trunk whose far end is not owned are diverted
    /// to the outbox as [`CrossFrame`]s instead of being scheduled
    /// locally. `owned.len()` must equal the node count.
    pub fn set_scope(&mut self, owned: Vec<bool>) {
        assert_eq!(owned.len(), self.spec.nodes.len(), "mask covers all nodes");
        self.scope = Some(ShardScope {
            owned,
            outbox: Vec::new(),
        });
    }

    /// Drain the outbox of frames bound for other shards (empty when the
    /// fabric is unscoped).
    pub fn drain_outbox(&mut self, into: &mut Vec<CrossFrame>) {
        if let Some(scope) = &mut self.scope {
            into.append(&mut scope.outbox);
        }
    }

    /// Accept a frame that crossed a cut trunk from another shard:
    /// re-slab its transit locally and schedule its arrival event under
    /// the key the sending shard computed. The conservative protocol
    /// guarantees `cf.arrival` has not been passed yet.
    pub fn inject(&mut self, cf: CrossFrame) {
        debug_assert!(
            cf.arrival >= self.clock,
            "causality: injected frame arrives at {:?} but shard clock is {:?}",
            cf.arrival,
            self.clock,
        );
        let mut f = cf.frame;
        f.token = self.transit_insert(cf.transit);
        self.events.push(
            cf.key,
            TopoEvent::AtNode {
                node: cf.node,
                frame: f,
            },
        );
    }

    /// Time of the last processed event (the shard-local clock).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Drain every pending event (test helper).
    pub fn run_to_idle(&mut self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while self.advance(&mut out).is_some() {}
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;
    use fxnet_sim::{EtherConfig, FrameKind, HostId, RATE_10M};
    use std::collections::HashMap;

    fn tcp(src: u32, dst: u32, payload: u32, token: u64) -> Frame {
        Frame::tcp(HostId(src), HostId(dst), FrameKind::Data, payload, token)
    }

    /// The tentpole equivalence: a single-segment topology is the legacy
    /// shared bus — identical deliveries (time, frame, meta) and an
    /// identical promiscuous trace, under contention and collisions.
    #[test]
    fn single_segment_matches_legacy_bus_exactly() {
        let ether = EtherConfig::default();
        let spec = TopologySpec::single_segment(4, ether.bandwidth_bps);
        let mut fab = CompositeFabric::new(spec, &ether, 42);
        fab.set_promiscuous(true);
        let mut bus = EtherBus::new(ether.clone(), SimRng::new(42));
        let nics: Vec<NicId> = (0..4).map(|_| bus.attach()).collect();
        bus.set_promiscuous(true);
        for i in 0..24u32 {
            let f = tcp(i % 4, (i + 1) % 4, 64 + i * 53, u64::from(i) + 1);
            // Bursts of simultaneous enqueues force collisions, so the
            // equivalence covers the RNG-driven backoff path too.
            let t = SimTime::from_micros(u64::from(i / 4) * 900);
            fab.enqueue(NicId(i % 4), f, t);
            bus.enqueue(nics[(i % 4) as usize], f, t);
        }
        let a = fab.run_to_idle();
        let b = bus.run_to_idle();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.frame, y.frame);
            assert_eq!(x.meta, y.meta);
        }
        assert_eq!(fab.trace(), bus.trace());
        assert_eq!(fab.stats().collisions, bus.stats().collisions);
    }

    /// Per-hop accounting sums exactly to end-to-end elapsed time, and
    /// original tokens come back out, across a switched trunk.
    #[test]
    fn multi_hop_meta_sums_to_elapsed() {
        let ether = EtherConfig::default();
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let mut fab = CompositeFabric::new(spec, &ether, 7);
        let mut entered = HashMap::new();
        for i in 0..12u32 {
            let token = u64::from(i) + 1;
            let t = SimTime::from_micros(u64::from(i) * 10);
            entered.insert(token, t);
            fab.enqueue(NicId(i % 2), tcp(i % 2, 2 + (i % 2), 400, token), t);
        }
        let out = fab.run_to_idle();
        assert_eq!(out.len(), 12);
        for d in &out {
            let e = entered[&d.frame.token];
            assert_eq!(
                d.meta.queue_ns + d.meta.backoff_ns + d.meta.tx_ns,
                (d.time - e).as_nanos(),
                "token {}",
                d.frame.token
            );
        }
    }

    /// Saturating the inter-switch trunk makes it the recorded bottleneck
    /// of (at least the later) cross-switch frames.
    #[test]
    fn contended_trunk_is_named_as_bottleneck() {
        let ether = EtherConfig::default();
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let mut fab = CompositeFabric::new(spec, &ether, 7);
        // Both sw0 hosts blast full frames at sw1 hosts simultaneously:
        // uplinks are dedicated, so all queueing lands on the trunk.
        for i in 0..10u32 {
            fab.enqueue(
                NicId(i % 2),
                tcp(i % 2, 2 + (i % 2), 1400, u64::from(i) + 1),
                SimTime::ZERO,
            );
        }
        let out = fab.run_to_idle();
        let named: Vec<_> = out.iter().filter(|d| d.meta.trunk != 0).collect();
        assert!(!named.is_empty(), "trunk queueing must be attributed");
        for d in &named {
            assert_eq!(d.meta.trunk_label().as_deref(), Some("trunk:n0-n1"));
        }
    }

    /// Link sampling is purely observational: a sampled run delivers the
    /// same frames at the same times with the same meta and an identical
    /// trace — and the trunk series conserves cross-trunk wire bytes.
    #[test]
    fn link_sampling_is_pure_and_conserves_trunk_bytes() {
        let ether = EtherConfig::default();
        for spec in TopologySpec::sweep_set(6, RATE_10M) {
            let run = |sample: bool| {
                let mut fab = CompositeFabric::new(spec.clone(), &ether, 11);
                fab.set_promiscuous(true);
                if sample {
                    fab.set_link_sampling(Some(1_000_000));
                }
                for i in 0..30u32 {
                    fab.enqueue(
                        NicId(i % 6),
                        tcp(i % 6, (i + 1) % 6, 100 + i, u64::from(i) + 1),
                        SimTime::from_micros(u64::from(i) * 7),
                    );
                }
                let out = fab.run_to_idle();
                let stats = fab.take_link_stats();
                (out, fab.take_trace(), stats)
            };
            let (plain_out, plain_trace, none) = run(false);
            let (out, trace, stats) = run(true);
            assert!(none.is_none());
            assert_eq!(plain_out, out, "{}", spec.label());
            assert_eq!(plain_trace, trace, "{}", spec.label());
            let stats = stats.expect("sampling enabled");
            assert_eq!(stats.bin_ns, 1_000_000);
            let labels: Vec<&str> = stats.links.iter().map(|(l, _)| l.as_str()).collect();
            for (t, _) in &stats.links {
                assert!(
                    t.starts_with("trunk:") || t.starts_with("seg:") || t.starts_with("host:"),
                    "label {t}"
                );
            }
            if spec.label().starts_with("trunk2") {
                assert!(labels.contains(&"trunk:n0-n1:fwd"), "{labels:?}");
                assert!(labels.contains(&"host:h0:up"), "{labels:?}");
                // Every byte the trunk series saw is a byte some frame
                // carried across it.
                let carried: u64 = ["trunk:n0-n1:fwd", "trunk:n0-n1:rev"]
                    .iter()
                    .map(|l| stats.series(l).expect("trunk series").total().bytes)
                    .sum();
                let cross: u64 = out
                    .iter()
                    .filter(|d| {
                        let a = spec.attachments[usize::try_from(d.frame.src.0).unwrap()];
                        let b = spec.attachments[usize::try_from(d.frame.dst.0).unwrap()];
                        a != b
                    })
                    .map(|d| u64::from(d.frame.wire_len()))
                    .sum();
                assert_eq!(carried, cross, "{}", spec.label());
            }
        }
    }

    /// Every switch and router conserves frames and bytes exactly once
    /// the fabric drains.
    #[test]
    fn switches_and_routers_conserve_frames() {
        let ether = EtherConfig::default();
        for spec in TopologySpec::sweep_set(6, RATE_10M) {
            let label = spec.label();
            let kinds: Vec<NodeKind> = spec.nodes.iter().map(|n| n.kind).collect();
            let mut fab = CompositeFabric::new(spec, &ether, 9);
            for i in 0..18u32 {
                fab.enqueue(
                    NicId(i % 6),
                    tcp(i % 6, (i + 3) % 6, 200, u64::from(i) + 1),
                    SimTime::from_micros(u64::from(i) * 25),
                );
            }
            let out = fab.run_to_idle();
            assert!(fab.idle());
            assert_eq!(out.len(), 18, "{label}");
            for (n, flow) in fab.flows().iter().enumerate() {
                if kinds[n] != NodeKind::Segment {
                    assert_eq!(flow.frames_in, flow.frames_out, "{label} node {n}");
                    assert_eq!(flow.bytes_in, flow.bytes_out, "{label} node {n}");
                }
            }
        }
    }

    /// Same seed, same offered load → byte-identical deliveries and
    /// trace, for every canonical topology.
    #[test]
    fn runs_are_deterministic() {
        let ether = EtherConfig::default();
        for spec in TopologySpec::sweep_set(6, RATE_10M) {
            let run = |seed: u64| {
                let mut fab = CompositeFabric::new(spec.clone(), &ether, seed);
                fab.set_promiscuous(true);
                for i in 0..30u32 {
                    fab.enqueue(
                        NicId(i % 6),
                        tcp(i % 6, (i + 1) % 6, 100 + i, u64::from(i) + 1),
                        SimTime::from_micros(u64::from(i) * 7),
                    );
                }
                let out = fab.run_to_idle();
                (out, fab.take_trace())
            };
            let (a_out, a_trace) = run(11);
            let (b_out, b_trace) = run(11);
            assert_eq!(a_out, b_out, "{}", spec.label());
            assert_eq!(a_trace, b_trace, "{}", spec.label());
        }
    }

    /// Cross-subnet frames traverse the routed path and pay the router's
    /// larger forwarding latency relative to a switch.
    #[test]
    fn routed_subnets_deliver_across_the_router() {
        let ether = EtherConfig::default();
        let spec = TopologySpec::routed_two_subnets(4, RATE_10M);
        let mut fab = CompositeFabric::new(spec, &ether, 3);
        fab.enqueue(NicId(0), tcp(0, 3, 500, 77), SimTime::ZERO);
        let out = fab.run_to_idle();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].frame.token, 77);
        // Two trunk tx + two segment tx of wire time, plus the router
        // hop: strictly slower than the same frame on one segment.
        let mut single = CompositeFabric::new(TopologySpec::single_segment(4, RATE_10M), &ether, 3);
        single.enqueue(NicId(0), tcp(0, 3, 500, 77), SimTime::ZERO);
        let s = single.run_to_idle();
        assert!(out[0].time > s[0].time);
        // Router (node 2) conserved the frame.
        assert_eq!(fab.flows()[2].frames_in, 1);
        assert_eq!(fab.flows()[2].frames_out, 1);
    }

    /// A frame destroyed by excessive collisions on a segment surfaces
    /// through `errors()` with its original token restored.
    #[test]
    fn bus_errors_surface_with_original_tokens() {
        let ether = EtherConfig {
            attempt_limit: 0,
            defer_jitter: SimTime::ZERO,
            ..EtherConfig::default()
        };
        let spec = TopologySpec::routed_two_subnets(4, ether.bandwidth_bps);
        let mut fab = CompositeFabric::new(spec, &ether, 5);
        // Simultaneous senders on seg0 collide deterministically (no
        // defer jitter); with attempt_limit 0 any collision destroys the
        // colliders.
        for i in 0..6u32 {
            fab.enqueue(
                NicId(i % 2),
                tcp(i % 2, 3, 300, u64::from(i) + 100),
                SimTime::ZERO,
            );
        }
        let _ = fab.run_to_idle();
        assert!(!fab.errors().is_empty());
        for (_, f, err) in fab.errors() {
            assert!(*err == TxError::ExcessiveCollisions);
            assert!((100..106).contains(&f.token), "token {}", f.token);
        }
    }
}
