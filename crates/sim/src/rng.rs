//! Seeded, reproducible randomness.
//!
//! Every stochastic decision in the simulator (Ethernet backoff slot
//! selection, optional deschedule injection, synthetic traffic sources)
//! draws from a [`SimRng`] so that a run is a pure function of its
//! configuration and seed. Determinism is load-bearing: the integration
//! suite asserts that two runs with the same seed produce byte-identical
//! packet traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random number generator for simulation components.
///
/// Thin wrapper over [`rand::rngs::StdRng`] exposing only the operations
/// the simulator needs; keeping the surface small makes reproducibility
/// audits easy.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator. Components each get their own
    /// stream so that adding draws in one component does not perturb another.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label in so that forks with different labels from the same
        // parent state are decorrelated.
        let s = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(s)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Pareto-distributed value with scale `xm > 0` and shape `alpha > 0`.
    ///
    /// Used by the self-similar baseline traffic source (`fxnet-spectral`),
    /// which aggregates heavy-tailed on/off sources.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0);
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        xm / u.powf(1.0 / alpha)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.inner.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(
            same < 4,
            "streams should be decorrelated, {same} collisions"
        );
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut f1 = parent1.fork(1);
        let mut f1b = parent2.fork(1);
        for _ in 0..32 {
            assert_eq!(f1.below(u64::MAX), f1b.below(u64::MAX));
        }
        let mut p = SimRng::new(7);
        let mut fa = p.fork(1);
        let mut fb = p.fork(2);
        assert_ne!(fa.below(u64::MAX), fb.below(u64::MAX));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(9);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn below_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
