//! Bounded single-producer/single-consumer rings for inter-shard frame
//! exchange.
//!
//! Each directed cut-trunk channel in the sharded fabric gets exactly one
//! ring: the shard owning the sending end pushes crossing frames, the
//! shard owning the receiving end drains them. Capacity is bounded so a
//! fast producer exerts backpressure instead of growing without limit; a
//! full ring returns the value to the caller, who yields and retries.
//!
//! The implementation is a mutex-guarded deque rather than a lock-free
//! ring: only crossing frames touch it (intra-shard traffic never leaves
//! its shard), the two contenders are exactly one producer and one
//! consumer, and the protocol above batches drains — so the lock is cold
//! and the simpler code wins. The *interface* is the SPSC contract the
//! conservative protocol needs: FIFO per channel, bounded, try-only.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

struct RingInner<T> {
    capacity: usize,
    queue: Mutex<VecDeque<T>>,
}

/// Producer half of a bounded SPSC ring.
pub struct RingSender<T> {
    inner: Arc<RingInner<T>>,
}

/// Consumer half of a bounded SPSC ring.
pub struct RingReceiver<T> {
    inner: Arc<RingInner<T>>,
}

/// A bounded FIFO channel with one sender and one receiver.
/// `capacity` is clamped to at least 1.
pub fn ring<T>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    let inner = Arc::new(RingInner {
        capacity: capacity.max(1),
        queue: Mutex::new(VecDeque::new()),
    });
    (
        RingSender {
            inner: Arc::clone(&inner),
        },
        RingReceiver { inner },
    )
}

impl<T> RingSender<T> {
    /// Push `value`, or hand it back when the ring is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut q = self.inner.queue.lock().expect("spsc ring poisoned");
        if q.len() >= self.inner.capacity {
            return Err(value);
        }
        q.push_back(value);
        Ok(())
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().expect("spsc ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> RingReceiver<T> {
    /// Pop the oldest value, or `None` when the ring is empty.
    pub fn try_pop(&self) -> Option<T> {
        self.inner
            .queue
            .lock()
            .expect("spsc ring poisoned")
            .pop_front()
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().expect("spsc ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_bounded() {
        let (tx, rx) = ring(2);
        assert!(tx.try_push(1).is_ok());
        assert!(tx.try_push(2).is_ok());
        assert_eq!(tx.try_push(3), Err(3), "full ring hands the value back");
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_pop(), Some(1));
        assert!(tx.try_push(3).is_ok());
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), Some(3));
        assert_eq!(rx.try_pop(), None);
        assert!(rx.is_empty() && tx.is_empty());
    }

    #[test]
    fn crosses_threads() {
        let (tx, rx) = ring(8);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..1000u64 {
                    let mut v = i;
                    loop {
                        match tx.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            s.spawn(move || {
                let mut expect = 0u64;
                while expect < 1000 {
                    match rx.try_pop() {
                        Some(v) => {
                            assert_eq!(v, expect, "FIFO across threads");
                            expect += 1;
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        });
    }
}
