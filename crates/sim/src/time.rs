//! Simulated time.
//!
//! Time is a nanosecond count since the start of the simulation. At the
//! paper's 10 Mb/s Ethernet rate one bit time is exactly 100 ns, so every
//! MAC-layer quantity (slot time 51.2 µs = 512 bit times, inter-frame gap
//! 9.6 µs = 96 bit times, jam 3.2 µs = 32 bit times) is representable
//! exactly. A `u64` nanosecond clock covers ~584 years of simulated time,
//! comfortably beyond any trace in the paper (50 s – several hundred s).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel later than any reachable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Panics if `s` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// This time as whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction; `SimTime` has no negative values.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
    }

    #[test]
    fn secs_f64_round_trip() {
        let t = SimTime::from_secs_f64(1.234_567_891);
        assert_eq!(t.as_nanos(), 1_234_567_891);
        assert!((t.as_secs_f64() - 1.234_567_891).abs() < 1e-12);
    }

    #[test]
    fn bit_time_is_exact() {
        // 10 Mb/s → one bit = 100 ns; one 1518-byte frame = 1.2144 ms.
        let bit = SimTime::from_nanos(100);
        let frame = SimTime(bit.as_nanos() * 1518 * 8);
        assert_eq!(frame, SimTime::from_nanos(1_214_400));
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(7);
        assert!(a < b);
        assert_eq!(b - a, SimTime::from_millis(2));
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(12));
    }

    #[test]
    #[should_panic]
    fn negative_duration_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
