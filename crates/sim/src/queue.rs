//! A generic time-ordered event queue.
//!
//! Wraps a binary heap keyed by `(time, sequence)` so that events scheduled
//! for the same instant pop in FIFO order. Deterministic tie-breaking is
//! essential: the whole simulator must be a pure function of its seed, and
//! heap order alone is not stable.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with stable FIFO order at equal times.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of events ever pending at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), "c");
        q.push(SimTime::from_millis(1), "a");
        q.push(SimTime::from_millis(3), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(2);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(9), ());
        q.push(SimTime::from_micros(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(4)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(4));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    proptest! {
        #[test]
        fn pop_order_is_nondecreasing(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        #[test]
        fn equal_time_events_preserve_insertion_order(n in 1usize..100) {
            let mut q = EventQueue::new();
            let t = SimTime::from_secs(1);
            for i in 0..n {
                q.push(t, i);
            }
            let mut prev = None;
            while let Some((_, i)) = q.pop() {
                if let Some(p) = prev {
                    prop_assert!(i > p);
                }
                prev = Some(i);
            }
        }
    }
}
